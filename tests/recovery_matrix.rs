//! The crash matrix: for every failpoint site in the build pipeline
//! and a spread of hit counts, kill the builder, restart, resume
//! (re-crashing if the site re-arms), and verify exactness. This is
//! the systematic version of the targeted crash tests in
//! `crates/oib/tests/crash_tests.rs`.

use online_index_build::prelude::*;

const T: TableId = TableId(1);

fn db() -> std::sync::Arc<Db> {
    let db = Db::new(EngineConfig {
        sort_checkpoint_every_keys: 100,
        merge_checkpoint_every_keys: 100,
        ib_checkpoint_every_keys: 100,
        sort_workspace_keys: 32,
        merge_fan_in: 4,
        lock_timeout_ms: 5_000,
        ..EngineConfig::small()
    });
    db.create_table(T);
    let tx = db.begin();
    for k in 0..600 {
        db.insert_record(tx, T, &Record::new(vec![k, k % 13]))
            .unwrap();
    }
    db.commit(tx).unwrap();
    db
}

fn run_matrix(algorithm: BuildAlgorithm, sites: &[(&'static str, &[u64])]) {
    for &(site, skips) in sites {
        for &skip in skips {
            let db = db();
            db.failpoints.arm_after(site, skip);
            let spec = IndexSpec {
                name: format!("{site}@{skip}"),
                key_cols: vec![0],
                unique: false,
            };
            match build_index(&db, T, spec, algorithm) {
                Ok(idx) => {
                    // The site never fired (e.g. phase skipped): the
                    // build simply succeeded.
                    db.failpoints.clear();
                    verify_index(&db, idx)
                        .unwrap_or_else(|e| panic!("{algorithm:?} {site}@{skip}: {e}"));
                    continue;
                }
                Err(e) if e.is_crash() => {}
                Err(e) => panic!("{algorithm:?} {site}@{skip}: unexpected {e}"),
            }
            db.simulate_crash();
            db.restart().unwrap();
            let id = db.indexes_of(T).last().expect("descriptor").def.id;
            // Resume until done (a site may be re-armed by the test
            // matrix only once, so one resume suffices).
            resume_build(&db, id)
                .unwrap_or_else(|e| panic!("{algorithm:?} {site}@{skip} resume: {e}"));
            assert_eq!(db.index(id).unwrap().state(), IndexState::Complete);
            verify_index(&db, id)
                .unwrap_or_else(|e| panic!("{algorithm:?} {site}@{skip} verify: {e}"));
        }
    }
}

#[test]
fn nsf_crash_matrix() {
    run_matrix(
        BuildAlgorithm::Nsf,
        &[
            ("build.scan.record", &[0, 1, 77, 599]),
            ("build.scan", &[0, 2, 4]),
            ("build.reduce", &[0, 1]),
            ("nsf.insert.key", &[0, 1, 99, 301, 599]),
            ("build.insert", &[0, 2, 4]),
        ],
    );
}

#[test]
fn sf_crash_matrix() {
    run_matrix(
        BuildAlgorithm::Sf,
        &[
            ("build.scan.record", &[0, 1, 77, 599]),
            ("build.scan", &[0, 2, 4]),
            ("build.reduce", &[0, 1]),
            ("sf.load.key", &[0, 1, 99, 301, 599]),
            ("build.load", &[0, 2, 4]),
            ("sf.drain.op", &[0]),
            ("build.drain", &[0]),
        ],
    );
}

#[test]
fn multi_index_build_crash_resumes_each_independently() {
    let db = db();
    db.failpoints.arm_after("build.scan", 3);
    let err = build_indexes(
        &db,
        T,
        &[
            IndexSpec {
                name: "m0".into(),
                key_cols: vec![0],
                unique: false,
            },
            IndexSpec {
                name: "m1".into(),
                key_cols: vec![1],
                unique: false,
            },
        ],
        BuildAlgorithm::Sf,
    )
    .expect_err("armed crash");
    assert!(err.is_crash());
    db.simulate_crash();
    db.restart().unwrap();
    // Each index resumes from its own progress record.
    let ids: Vec<IndexId> = db.indexes_of(T).iter().map(|i| i.def.id).collect();
    assert_eq!(ids.len(), 2);
    for id in ids {
        resume_build(&db, id).unwrap();
        verify_index(&db, id).unwrap();
    }
}

#[test]
fn double_crash_at_same_site_still_converges() {
    for algorithm in [BuildAlgorithm::Nsf, BuildAlgorithm::Sf] {
        let db = db();
        let site = match algorithm {
            BuildAlgorithm::Nsf => "build.insert",
            _ => "build.load",
        };
        db.failpoints.arm(site);
        let err = build_index(
            &db,
            T,
            IndexSpec {
                name: "d".into(),
                key_cols: vec![0],
                unique: false,
            },
            algorithm,
        )
        .expect_err("first crash");
        assert!(err.is_crash());
        db.simulate_crash();
        db.restart().unwrap();
        let id = db.indexes_of(T).last().unwrap().def.id;

        db.failpoints.arm(site); // same site again
        let err = resume_build(&db, id).expect_err("second crash");
        assert!(err.is_crash());
        db.simulate_crash();
        db.restart().unwrap();
        resume_build(&db, id).unwrap();
        verify_index(&db, id).unwrap();
    }
}
