//! Stress test for the sharded storage substrate: 8 updater threads
//! hammer the table through the partitioned buffer pool, sharded
//! free-space map, and reservation-based WAL while an index build
//! runs, crashes mid-flight, and resumes after restart. The finished
//! index must agree entry-for-entry with an Offline-built oracle
//! index created on the quiesced database.
//!
//! This is deliberately the most contended configuration the harness
//! supports — more updaters than cores — because the sharded paths
//! only earn their keep when every shard sees concurrent traffic.

use mohan_bench::workload::{seed_table, start_churn, ChurnConfig, TABLE};
use online_index_build::btree::scan::collect_all;
use online_index_build::prelude::*;

fn stress_cfg() -> EngineConfig {
    EngineConfig {
        data_page_size: 1024,
        index_page_size: 512,
        sort_checkpoint_every_keys: 400,
        merge_checkpoint_every_keys: 400,
        ib_checkpoint_every_keys: 400,
        sort_workspace_keys: 128,
        merge_fan_in: 4,
        lock_timeout_ms: 20_000,
        ..EngineConfig::default()
    }
}

/// Live (non-pseudo-deleted) entries of an index, as a sorted vec.
fn live_entries(db: &std::sync::Arc<Db>, id: IndexId) -> Vec<IndexEntry> {
    let idx = db.index(id).expect("index readable");
    collect_all(&idx.tree, true)
        .expect("tree scan")
        .into_iter()
        .filter(|(_, pseudo)| !pseudo)
        .map(|(entry, _)| entry)
        .collect()
}

#[test]
fn eight_way_churn_crash_resume_matches_offline_oracle() {
    for (algo, site) in [
        (BuildAlgorithm::Nsf, "nsf.insert.key"),
        (BuildAlgorithm::Sf, "sf.load.key"),
    ] {
        let (db, rids) = seed_table(stress_cfg(), 1_200, 42);

        // Phase 1: crash the build mid-flight under 8-way churn.
        let churn = start_churn(
            &db,
            &rids,
            ChurnConfig {
                threads: 8,
                rollback_fraction: 0.25,
                ..ChurnConfig::default()
            },
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
        db.failpoints.arm_after(site, 400);
        let err = build_index(
            &db,
            TABLE,
            IndexSpec {
                name: "stress".into(),
                key_cols: vec![0],
                unique: false,
            },
            algo,
        )
        .expect_err("armed crash must fire");
        assert!(err.is_crash(), "{algo:?}: {err}");
        let stats = churn.stop();
        assert!(stats.ops > 0, "{algo:?}: churn never ran");

        db.simulate_crash();
        db.restart()
            .unwrap_or_else(|e| panic!("{algo:?} restart: {e}"));

        // Phase 2: resume under fresh 8-way churn over the survivors.
        let survivors: Vec<Rid> = db
            .table_scan(TABLE)
            .expect("scan")
            .into_iter()
            .map(|(r, _)| r)
            .collect();
        assert!(!survivors.is_empty(), "{algo:?}: table empty after restart");
        let churn = start_churn(
            &db,
            &survivors,
            ChurnConfig {
                threads: 8,
                rollback_fraction: 0.25,
                ..ChurnConfig::default()
            },
        );
        let id = db.indexes_of(TABLE).last().expect("descriptor").def.id;
        resume_build(&db, id).unwrap_or_else(|e| panic!("{algo:?} resume: {e}"));
        churn.stop();
        assert_eq!(db.active_txs(), 0, "{algo:?} leaked a transaction");
        assert_eq!(
            db.index(id).unwrap().state(),
            IndexState::Complete,
            "{algo:?}"
        );
        verify_index(&db, id).unwrap_or_else(|e| panic!("{algo:?} verify: {e}"));

        // Phase 3: the oracle. On the now-quiescent database, build a
        // second index over the same key with the Offline algorithm
        // (scan-sort-load with no concurrent updates to reconcile)
        // and demand entry-for-entry agreement.
        let oracle = build_index(
            &db,
            TABLE,
            IndexSpec {
                name: "oracle".into(),
                key_cols: vec![0],
                unique: false,
            },
            BuildAlgorithm::Offline,
        )
        .unwrap_or_else(|e| panic!("{algo:?} oracle build: {e}"));
        verify_index(&db, oracle).unwrap_or_else(|e| panic!("{algo:?} oracle verify: {e}"));
        assert_eq!(
            live_entries(&db, id),
            live_entries(&db, oracle),
            "{algo:?}: resumed index disagrees with offline oracle"
        );
    }
}
