//! Property-based model checking: random DML programs (with rollbacks
//! and crashes at random points) executed against the engine must
//! leave every index in exact agreement with a trivial in-memory
//! model of the table.

use online_index_build::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

const T: TableId = TableId(1);

#[derive(Debug, Clone)]
enum Op {
    Insert { key: i64, payload: i64 },
    Delete { victim: usize },
    Update { victim: usize, key: i64 },
    CommitTx,
    RollbackTx,
    CrashRestart,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..10_000i64, 0..100i64).prop_map(|(key, payload)| Op::Insert { key, payload }),
        2 => (0..64usize).prop_map(|victim| Op::Delete { victim }),
        2 => (0..64usize, 0..10_000i64).prop_map(|(victim, key)| Op::Update { victim, key }),
        3 => Just(Op::CommitTx),
        1 => Just(Op::RollbackTx),
        1 => Just(Op::CrashRestart),
    ]
}

/// Run a program against the engine and a model simultaneously.
/// The model tracks only *committed* state; an open transaction's
/// effects are buffered and merged at commit.
fn run_program(ops: Vec<Op>, algorithm: BuildAlgorithm, build_at: usize) {
    let db = Db::new(EngineConfig::small());
    db.create_table(T);
    let mut committed: HashMap<u64, (i64, i64)> = HashMap::new(); // rid.pack -> cols
    let mut pending: Vec<(u64, Option<(i64, i64)>)> = Vec::new(); // (rid, new state)
    let mut tx: Option<TxId> = None;
    let mut index: Option<IndexId> = None;

    let apply_pending = |committed: &mut HashMap<u64, (i64, i64)>,
                         pending: &mut Vec<(u64, Option<(i64, i64)>)>| {
        for (rid, state) in pending.drain(..) {
            match state {
                Some(cols) => {
                    committed.insert(rid, cols);
                }
                None => {
                    committed.remove(&rid);
                }
            }
        }
    };

    for (i, op) in ops.into_iter().enumerate() {
        if i == build_at && index.is_none() {
            // Build the index at a quiescent point mid-program.
            if let Some(t) = tx.take() {
                db.commit(t).unwrap();
                apply_pending(&mut committed, &mut pending);
            }
            index = Some(
                build_index(
                    &db,
                    T,
                    IndexSpec {
                        name: "m".into(),
                        key_cols: vec![0],
                        unique: false,
                    },
                    algorithm,
                )
                .expect("build"),
            );
        }
        let cur = *tx.get_or_insert_with(|| db.begin());
        match op {
            Op::Insert { key, payload } => {
                let rid = db
                    .insert_record(cur, T, &Record::new(vec![key, payload]))
                    .unwrap();
                pending.push((rid.pack(), Some((key, payload))));
            }
            Op::Delete { victim } => {
                // Pick a committed record not touched by this tx.
                let candidates: Vec<u64> = committed
                    .keys()
                    .filter(|r| pending.iter().all(|(p, _)| p != *r))
                    .copied()
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let rid = Rid::unpack(candidates[victim % candidates.len()]);
                db.delete_record(cur, T, rid).unwrap();
                pending.push((rid.pack(), None));
            }
            Op::Update { victim, key } => {
                let candidates: Vec<u64> = committed
                    .keys()
                    .filter(|r| pending.iter().all(|(p, _)| p != *r))
                    .copied()
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let rid = Rid::unpack(candidates[victim % candidates.len()]);
                db.update_record(cur, T, rid, &Record::new(vec![key, 1]))
                    .unwrap();
                pending.push((rid.pack(), Some((key, 1))));
            }
            Op::CommitTx => {
                db.commit(cur).unwrap();
                tx = None;
                apply_pending(&mut committed, &mut pending);
            }
            Op::RollbackTx => {
                db.rollback(cur).unwrap();
                tx = None;
                pending.clear();
            }
            Op::CrashRestart => {
                // Open transaction dies with the crash (it loses).
                tx = None;
                pending.clear();
                db.checkpoint().unwrap(); // make committed state durable
                db.simulate_crash();
                db.restart().unwrap();
            }
        }
    }
    if let Some(t) = tx.take() {
        db.commit(t).unwrap();
        apply_pending(&mut committed, &mut pending);
    }

    // Compare the table against the model.
    let scanned: HashMap<u64, (i64, i64)> = db
        .table_scan(T)
        .unwrap()
        .into_iter()
        .map(|(rid, rec)| (rid.pack(), (rec.0[0], rec.0[1])))
        .collect();
    assert_eq!(scanned, committed, "table diverged from model");

    // And the index against the table.
    if let Some(idx) = index {
        verify_index(&db, idx).expect("index agrees with table");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn prop_engine_matches_model_nsf(ops in prop::collection::vec(op_strategy(), 1..80),
                                     build_at in 0..40usize) {
        run_program(ops, BuildAlgorithm::Nsf, build_at);
    }

    #[test]
    fn prop_engine_matches_model_sf(ops in prop::collection::vec(op_strategy(), 1..80),
                                    build_at in 0..40usize) {
        run_program(ops, BuildAlgorithm::Sf, build_at);
    }

    #[test]
    fn prop_engine_matches_model_offline(ops in prop::collection::vec(op_strategy(), 1..80),
                                         build_at in 0..40usize) {
        run_program(ops, BuildAlgorithm::Offline, build_at);
    }
}
