//! The heavy cross-crate gauntlet: every algorithm, heavy concurrent
//! churn, mixed unique/nonunique/multi-column indexes, sequential
//! crashes — the finished indexes must always agree with the table.

use mohan_bench::workload::{seed_table, start_churn, ChurnConfig, TABLE};
use online_index_build::prelude::*;
use std::sync::Arc;

fn gauntlet_cfg() -> EngineConfig {
    EngineConfig {
        data_page_size: 1024,
        index_page_size: 512,
        sort_checkpoint_every_keys: 500,
        merge_checkpoint_every_keys: 500,
        ib_checkpoint_every_keys: 500,
        sort_workspace_keys: 128,
        merge_fan_in: 4,
        lock_timeout_ms: 10_000,
        ..EngineConfig::default()
    }
}

#[test]
fn every_algorithm_survives_heavy_churn() {
    for algo in [
        BuildAlgorithm::Offline,
        BuildAlgorithm::Nsf,
        BuildAlgorithm::Sf,
    ] {
        let (db, rids) = seed_table(gauntlet_cfg(), 2_000, 7);
        let churn = start_churn(
            &db,
            &rids,
            ChurnConfig {
                threads: 3,
                rollback_fraction: 0.2,
                ..ChurnConfig::default()
            },
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
        let ids = build_indexes(
            &db,
            TABLE,
            &[
                IndexSpec {
                    name: "a".into(),
                    key_cols: vec![0],
                    unique: false,
                },
                IndexSpec {
                    name: "b".into(),
                    key_cols: vec![1],
                    unique: false,
                },
                IndexSpec {
                    name: "c".into(),
                    key_cols: vec![0, 1],
                    unique: true,
                },
            ],
            algo,
        )
        .unwrap_or_else(|e| panic!("{algo:?}: {e}"));
        let stats = churn.stop();
        assert!(stats.ops > 0 || algo == BuildAlgorithm::Offline);
        assert_eq!(db.active_txs(), 0, "{algo:?} leaked a transaction");
        assert_eq!(ids.len(), 3);
        assert_eq!(verify_all(&db, TABLE).unwrap(), 3, "{algo:?}");
    }
}

#[test]
fn back_to_back_builds_with_continuous_churn() {
    // Build three indexes one after another while churn never stops,
    // each with a different algorithm; then drop the middle one and
    // build a replacement.
    let (db, rids) = seed_table(gauntlet_cfg(), 1_500, 8);
    let churn = start_churn(
        &db,
        &rids,
        ChurnConfig {
            threads: 2,
            ..ChurnConfig::default()
        },
    );

    let a = build_index(
        &db,
        TABLE,
        IndexSpec {
            name: "a".into(),
            key_cols: vec![0],
            unique: false,
        },
        BuildAlgorithm::Sf,
    )
    .expect("sf");
    let b = build_index(
        &db,
        TABLE,
        IndexSpec {
            name: "b".into(),
            key_cols: vec![1],
            unique: false,
        },
        BuildAlgorithm::Nsf,
    )
    .expect("nsf");
    drop_index(&db, a).expect("drop");
    let c = build_index(
        &db,
        TABLE,
        IndexSpec {
            name: "c".into(),
            key_cols: vec![0],
            unique: false,
        },
        BuildAlgorithm::Sf,
    )
    .expect("sf again");
    churn.stop();
    assert!(db.index(a).is_err());
    verify_index(&db, b).expect("b");
    verify_index(&db, c).expect("c");
}

#[test]
fn crash_mid_build_with_churn_then_resume_with_new_churn() {
    for (algo, site) in [
        (BuildAlgorithm::Nsf, "nsf.insert.key"),
        (BuildAlgorithm::Sf, "sf.load.key"),
    ] {
        let (db, rids) = seed_table(gauntlet_cfg(), 1_500, 9);
        let churn = start_churn(
            &db,
            &rids,
            ChurnConfig {
                threads: 2,
                ..ChurnConfig::default()
            },
        );
        db.failpoints.arm_after(site, 700);
        let err = build_index(
            &db,
            TABLE,
            IndexSpec {
                name: "x".into(),
                key_cols: vec![0],
                unique: false,
            },
            algo,
        )
        .expect_err("armed crash");
        assert!(err.is_crash(), "{algo:?}");
        churn.stop();

        db.simulate_crash();
        db.restart().expect("restart");

        // Fresh churn during the resume as well.
        let survivors: Vec<Rid> = db
            .table_scan(TABLE)
            .expect("scan")
            .into_iter()
            .map(|(r, _)| r)
            .collect();
        let churn = start_churn(
            &db,
            &survivors,
            ChurnConfig {
                threads: 2,
                ..ChurnConfig::default()
            },
        );
        let id = db.indexes_of(TABLE).last().expect("descriptor").def.id;
        resume_build(&db, id).unwrap_or_else(|e| panic!("{algo:?} resume: {e}"));
        churn.stop();
        verify_index(&db, id).unwrap_or_else(|e| panic!("{algo:?} verify: {e}"));
    }
}

#[test]
fn gc_during_churn_keeps_indexes_consistent() {
    let (db, rids) = seed_table(gauntlet_cfg(), 1_000, 10);
    let idx = build_index(
        &db,
        TABLE,
        IndexSpec {
            name: "g".into(),
            key_cols: vec![0],
            unique: false,
        },
        BuildAlgorithm::Nsf,
    )
    .expect("build");
    let churn = start_churn(
        &db,
        &rids,
        ChurnConfig {
            threads: 2,
            mix: (1, 3, 1),
            ..ChurnConfig::default()
        },
    );
    // Several GC passes racing the churn.
    for _ in 0..5 {
        garbage_collect(&db, idx).expect("gc");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    churn.stop();
    verify_index(&db, idx).expect("verify");
    // A final quiescent GC pass reclaims everything removable.
    let stats = garbage_collect(&db, idx).expect("gc");
    assert_eq!(stats.skipped, 0);
    verify_index(&db, idx).expect("verify after gc");
}

#[test]
fn checkpoint_during_churn_and_build() {
    let (db, rids) = seed_table(gauntlet_cfg(), 1_000, 11);
    let churn = start_churn(
        &db,
        &rids,
        ChurnConfig {
            threads: 2,
            ..ChurnConfig::default()
        },
    );
    let db2 = Arc::clone(&db);
    let checkpointer = std::thread::spawn(move || {
        for _ in 0..10 {
            // Checkpoints may transiently fail against heavy traffic;
            // that is allowed, corruption is not.
            let _ = db2.checkpoint();
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    });
    let idx = build_index(
        &db,
        TABLE,
        IndexSpec {
            name: "k".into(),
            key_cols: vec![0],
            unique: false,
        },
        BuildAlgorithm::Sf,
    )
    .expect("build");
    checkpointer.join().expect("checkpointer");
    churn.stop();

    db.simulate_crash();
    db.restart().expect("restart");
    verify_index(&db, idx).expect("verify after crash+restart");
}

#[test]
fn range_lookup_matches_point_lookups() {
    use online_index_build::btree::PrefetchStrategy;
    let (db, _) = seed_table(gauntlet_cfg(), 1_000, 12);
    let idx = build_index(
        &db,
        TABLE,
        IndexSpec {
            name: "r".into(),
            key_cols: vec![0],
            unique: true,
        },
        BuildAlgorithm::Sf,
    )
    .expect("build");
    let (entries, stats) = db
        .index_range_lookup(
            idx,
            &KeyValue::from_i64(100),
            &KeyValue::from_i64(299),
            PrefetchStrategy::ParentGuided,
        )
        .expect("range");
    assert_eq!(entries.len(), 200);
    assert!(stats.io_batches >= 1 && stats.io_batches <= stats.leaves);
    for e in &entries {
        let hits = db.index_lookup(idx, &e.key).expect("point");
        assert_eq!(hits, vec![e.rid]);
    }
    // The clustered SF tree scans near-optimally under sequential
    // prefetch too.
    let (_, seq) = db
        .index_range_lookup(
            idx,
            &KeyValue::from_i64(i64::MIN),
            &KeyValue::from_i64(i64::MAX),
            PrefetchStrategy::PhysicalSequence,
        )
        .expect("full range");
    assert!(seq.io_batches <= seq.leaves, "prefetch must batch leaves");
}
