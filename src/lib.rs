//! # Online index build without quiescing updates
//!
//! A complete, from-scratch Rust implementation of
//! **C. Mohan and Inderpal Narang, "Algorithms for Creating Indexes
//! for Very Large Tables Without Quiescing Updates", SIGMOD 1992** —
//! the NSF (No Side-File) and SF (Side-File) online index build
//! algorithms, the restartable external sort of §5, and the entire
//! ARIES-style engine substrate they assume: heap tables on slotted
//! pages, a latched B+-tree with pseudo-deleted keys, write-ahead
//! logging with analysis/redo/undo restart, and a lock manager.
//!
//! ## Quickstart
//!
//! ```
//! use online_index_build::prelude::*;
//!
//! let db = Db::new(EngineConfig::default());
//! let table = TableId(1);
//! db.create_table(table);
//!
//! // Populate.
//! let tx = db.begin();
//! for k in 0..1_000 {
//!     db.insert_record(tx, table, &Record::new(vec![k, k * 10])).unwrap();
//! }
//! db.commit(tx).unwrap();
//!
//! // Build an index online (SF: no quiesce at any point) while other
//! // transactions could keep updating the table.
//! let idx = build_index(
//!     &db,
//!     table,
//!     IndexSpec { name: "by_key".into(), key_cols: vec![0], unique: false },
//!     BuildAlgorithm::Sf,
//! )
//! .unwrap();
//!
//! // Query it.
//! let hits = db.index_lookup(idx, &KeyValue::from_i64(42)).unwrap();
//! assert_eq!(hits.len(), 1);
//!
//! // And prove it exact.
//! verify_index(&db, idx).unwrap();
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`common`] | ids, keys, errors, failpoints, config |
//! | [`storage`] | latched pages, crash-aware page caches, slotted pages |
//! | [`wal`] | log records, log manager, analysis/redo/undo driver |
//! | [`lock`] | S/X/IX locks, conditional + instant requests |
//! | [`btree`] | B+-tree with pseudo-delete flags and bulk loading |
//! | [`sort`] | restartable external sort (§5) |
//! | [`heap`] | heap tables with WAL hooks and scan cursors |
//! | [`oib`] | **the paper's contribution**: engine + NSF + SF |
//! | [`wire`] | length-prefixed binary client/server protocol |
//! | [`server`] | threaded TCP service: sessions, admission control, drain |
//! | [`client`] | blocking client with connection pooling |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! the reproduced evaluation.

pub use mohan_btree as btree;
pub use mohan_client as client;
pub use mohan_common as common;
pub use mohan_heap as heap;
pub use mohan_lock as lock;
pub use mohan_oib as oib;
pub use mohan_server as server;
pub use mohan_sort as sort;
pub use mohan_storage as storage;
pub use mohan_wal as wal;
pub use mohan_wire as wire;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use mohan_common::{
        EngineConfig, Error, IndexEntry, IndexId, KeyValue, Lsn, PageId, Result, Rid, TableId, TxId,
    };
    pub use mohan_oib::build::{build_index, build_indexes, drop_index, resume_build, IndexSpec};
    pub use mohan_oib::gc::garbage_collect;
    pub use mohan_oib::primary::build_secondary_via_primary;
    pub use mohan_oib::schema::{BuildAlgorithm, Record};
    pub use mohan_oib::verify::{verify_all, verify_index};
    pub use mohan_oib::{Db, IndexState, Session};
}

#[cfg(test)]
mod smoke {
    use crate::prelude::*;

    #[test]
    fn facade_quickstart_compiles_and_runs() {
        let db = Db::new(EngineConfig::small());
        let table = TableId(1);
        db.create_table(table);
        let tx = db.begin();
        for k in 0..100 {
            db.insert_record(tx, table, &Record::new(vec![k, k]))
                .unwrap();
        }
        db.commit(tx).unwrap();
        let idx = build_index(
            &db,
            table,
            IndexSpec {
                name: "q".into(),
                key_cols: vec![0],
                unique: true,
            },
            BuildAlgorithm::Nsf,
        )
        .unwrap();
        assert_eq!(
            db.index_lookup(idx, &KeyValue::from_i64(7)).unwrap().len(),
            1
        );
        verify_index(&db, idx).unwrap();
    }
}
