//! Record DML with Figure-1 index maintenance, plus the §2.2.3
//! direct-maintenance key logic shared by transactions and the SF
//! drain.
//!
//! Every record operation follows the paper's execution model:
//!
//! 1. acquire the record X lock (strict two-phase locking; for
//!    inserts the lock follows the insert since the RID is new),
//! 2. X-latch the data page, modify the record, log the action
//!    *with the count of visible indexes*, stamp the page LSN,
//!    unlatch,
//! 3. only then touch the indexes — directly (NSF-visible or
//!    complete) or via the side-file (SF-visible) — which is exactly
//!    the latch-free window in which the paper's duplicate-key-insert
//!    and delete-key races live.

use crate::engine::{Db, Mechanism};
use crate::runtime::{IndexRuntime, IndexState};
use crate::schema::{IndexDef, Record};
use mohan_btree::{InsertMode, InsertOutcome};
use mohan_common::{Error, IndexEntry, KeyValue, Lsn, Result, Rid, TableId, TxId};
use mohan_lock::{LockMode, LockName};
use mohan_wal::{LogPayload, RecKind, SideFileOp};
use std::sync::Arc;

/// Key operations an index must eventually reflect for the undo of a
/// record insert: delete the record's key.
pub(crate) fn key_ops_for_undo_of_insert(
    def: &IndexDef,
    data: &[u8],
    rid: Rid,
) -> Result<Vec<SideFileOp>> {
    let rec = Record::decode(data)?;
    Ok(vec![SideFileOp {
        insert: false,
        entry: def.entry_of(&rec, rid)?,
    }])
}

/// Undo of a record delete: re-insert the record's key.
pub(crate) fn key_ops_for_undo_of_delete(
    def: &IndexDef,
    old: &[u8],
    rid: Rid,
) -> Result<Vec<SideFileOp>> {
    let rec = Record::decode(old)?;
    Ok(vec![SideFileOp {
        insert: true,
        entry: def.entry_of(&rec, rid)?,
    }])
}

/// Undo of a record update: remove the new key, restore the old one
/// (only if the indexed columns actually changed).
pub(crate) fn key_ops_for_undo_of_update(
    def: &IndexDef,
    old: &[u8],
    new: &[u8],
    rid: Rid,
) -> Result<Vec<SideFileOp>> {
    let old_rec = Record::decode(old)?;
    let new_rec = Record::decode(new)?;
    let old_e = def.entry_of(&old_rec, rid)?;
    let new_e = def.entry_of(&new_rec, rid)?;
    if old_e == new_e {
        return Ok(vec![]);
    }
    Ok(vec![
        SideFileOp {
            insert: false,
            entry: new_e,
        },
        SideFileOp {
            insert: true,
            entry: old_e,
        },
    ])
}

impl Db {
    // ----- record operations ------------------------------------------

    /// Insert a record.
    pub fn insert_record(&self, tx: TxId, table_id: TableId, rec: &Record) -> Result<Rid> {
        self.ensure_active(tx)?;
        self.lock_table_ix(tx, table_id)?;
        let table = self.table(table_id)?;
        let data = rec.encode();
        let mut actions = Vec::new();
        let rid = table.insert_with(&data, |rid| {
            let (count, acts) = self.plan_forward(table_id, rid, &data);
            actions = acts;
            self.log(
                tx,
                RecKind::UndoRedo,
                LogPayload::HeapInsert {
                    table: table_id,
                    rid,
                    data: data.clone(),
                    visible_indexes: count,
                },
            )
            .unwrap_or(Lsn::NULL)
        })?;
        self.locks
            .lock(tx, LockName::Record(table_id, rid), LockMode::X)?;
        for (idx, mech) in &actions {
            let entry = idx.def.entry_of(rec, rid)?;
            self.apply_key_op(
                tx,
                idx,
                *mech,
                SideFileOp {
                    insert: true,
                    entry,
                },
            )?;
        }
        self.recheck_key_cursors(tx, table_id, rid, rec, &actions, true)?;
        Ok(rid)
    }

    /// Delete a record, returning its old contents.
    pub fn delete_record(&self, tx: TxId, table_id: TableId, rid: Rid) -> Result<Record> {
        self.ensure_active(tx)?;
        self.lock_table_ix(tx, table_id)?;
        self.locks
            .lock(tx, LockName::Record(table_id, rid), LockMode::X)?;
        let table = self.table(table_id)?;
        let mut actions = Vec::new();
        let old = table.delete_with(rid, |old| {
            let (count, acts) = self.plan_forward(table_id, rid, old);
            actions = acts;
            self.log(
                tx,
                RecKind::UndoRedo,
                LogPayload::HeapDelete {
                    table: table_id,
                    rid,
                    old: old.to_vec(),
                    visible_indexes: count,
                },
            )
            .unwrap_or(Lsn::NULL)
        })?;
        self.note_delete(tx, table_id, rid);
        let old_rec = Record::decode(&old)?;
        for (idx, mech) in &actions {
            let entry = idx.def.entry_of(&old_rec, rid)?;
            self.apply_key_op(
                tx,
                idx,
                *mech,
                SideFileOp {
                    insert: false,
                    entry,
                },
            )?;
        }
        self.recheck_key_cursors(tx, table_id, rid, &old_rec, &actions, false)?;
        Ok(old_rec)
    }

    /// Update a record in place, returning its old contents.
    pub fn update_record(
        &self,
        tx: TxId,
        table_id: TableId,
        rid: Rid,
        new: &Record,
    ) -> Result<Record> {
        self.ensure_active(tx)?;
        self.lock_table_ix(tx, table_id)?;
        self.locks
            .lock(tx, LockName::Record(table_id, rid), LockMode::X)?;
        let table = self.table(table_id)?;
        let new_data = new.encode();
        let mut actions = Vec::new();
        let old = table.update_with(rid, &new_data, |old| {
            let (count, acts) = self.plan_forward(table_id, rid, old);
            actions = acts;
            self.log(
                tx,
                RecKind::UndoRedo,
                LogPayload::HeapUpdate {
                    table: table_id,
                    rid,
                    old: old.to_vec(),
                    new: new_data.clone(),
                    visible_indexes: count,
                },
            )
            .unwrap_or(Lsn::NULL)
        })?;
        let old_rec = Record::decode(&old)?;
        for (idx, mech) in actions {
            let old_e = idx.def.entry_of(&old_rec, rid)?;
            let new_e = idx.def.entry_of(new, rid)?;
            if old_e == new_e {
                continue;
            }
            self.apply_key_op(
                tx,
                &idx,
                mech,
                SideFileOp {
                    insert: false,
                    entry: old_e,
                },
            )?;
            self.apply_key_op(
                tx,
                &idx,
                mech,
                SideFileOp {
                    insert: true,
                    entry: new_e,
                },
            )?;
        }
        Ok(old_rec)
    }

    /// Read one record (physical read; no locking — the experiments
    /// read at quiescent points or accept uncommitted reads, as the IB
    /// itself does).
    pub fn read_record(&self, table_id: TableId, rid: Rid) -> Result<Record> {
        Record::decode(&self.table(table_id)?.read(rid)?)
    }

    /// Query a *complete* index: all RIDs carrying `key` (pseudo-
    /// deleted entries excluded).
    pub fn index_lookup(
        &self,
        index_id: mohan_common::IndexId,
        key: &KeyValue,
    ) -> Result<Vec<Rid>> {
        let idx = self.index(index_id)?;
        match idx.state() {
            IndexState::Complete => {}
            // Footnote 3: an NSF index is gradually available for the
            // key range the builder has already committed.
            IndexState::NsfBuilding
                if self.cfg.nsf_gradual_reads && idx.readable_below_watermark(key) => {}
            _ => return Err(Error::IndexNotReadable(index_id)),
        }
        Ok(idx
            .tree
            .lookup_key_group(key)?
            .into_iter()
            .filter(|(_, pseudo)| !pseudo)
            .map(|(rid, _)| rid)
            .collect())
    }

    /// Range query on a *complete* index: live entries with
    /// `lo ≤ key value ≤ hi` in key order, plus the scan's simulated
    /// leaf-I/O statistics under the chosen prefetch strategy
    /// (§2.3.1 — this is what clustering buys).
    pub fn index_range_lookup(
        &self,
        index_id: mohan_common::IndexId,
        lo: &KeyValue,
        hi: &KeyValue,
        strategy: mohan_btree::PrefetchStrategy,
    ) -> Result<(Vec<IndexEntry>, mohan_btree::RangeScanStats)> {
        let idx = self.index(index_id)?;
        if idx.state() != IndexState::Complete {
            return Err(Error::IndexNotReadable(index_id));
        }
        mohan_btree::scan::range_scan(&idx.tree, lo, hi, self.cfg.prefetch_pages, strategy)
    }

    /// Snapshot the whole table (test/verification helper; call at
    /// quiescent points).
    pub fn table_scan(&self, table_id: TableId) -> Result<Vec<(Rid, Record)>> {
        let table = self.table(table_id)?;
        let mut out = Vec::new();
        if table.num_pages() == 0 {
            return Ok(out);
        }
        let last = mohan_common::PageId(table.num_pages() - 1);
        table.scan_from(None, last, |rid, data| {
            out.push((rid, Record::decode(data)?));
            Ok(true)
        })?;
        Ok(out)
    }

    // ----- index maintenance (Figure 1, §2.2.3) -----------------------

    /// Route one key operation to an index through the planned
    /// mechanism.
    pub(crate) fn apply_key_op(
        &self,
        tx: TxId,
        idx: &Arc<IndexRuntime>,
        mech: Mechanism,
        op: SideFileOp,
    ) -> Result<()> {
        match mech {
            Mechanism::SideFile => {
                let mut log_err = None;
                let appended = idx.side_file.append_with(op.clone(), |op| {
                    match self.log(
                        tx,
                        RecKind::RedoOnly,
                        LogPayload::SideFileAppend {
                            index: idx.def.id,
                            op: op.clone(),
                        },
                    ) {
                        Ok(lsn) => lsn,
                        Err(e) => {
                            log_err = Some(e);
                            Lsn::NULL
                        }
                    }
                });
                if let Some(e) = log_err {
                    return Err(e);
                }
                match appended {
                    crate::side_file::Append::Appended(_) => Ok(()),
                    crate::side_file::Append::BuildDone => {
                        // The build finished between the latch-time
                        // plan and now: maintain the index directly.
                        self.apply_key_op(tx, idx, Mechanism::Direct, op)
                    }
                }
            }
            Mechanism::Direct => {
                if op.insert {
                    self.direct_insert_key(tx, idx, op.entry)
                } else {
                    self.direct_delete_key(tx, idx, &op.entry)
                }
            }
        }
    }

    /// §2.2.3, "IB and Insert Operations" — the transaction side.
    pub(crate) fn direct_insert_key(
        &self,
        tx: TxId,
        idx: &Arc<IndexRuntime>,
        entry: IndexEntry,
    ) -> Result<()> {
        match idx.tree.insert(entry.clone(), InsertMode::Transaction)? {
            InsertOutcome::Inserted => {
                self.log(
                    tx,
                    RecKind::UndoRedo,
                    LogPayload::IndexInsert {
                        index: idx.def.id,
                        entry,
                    },
                )?;
                Ok(())
            }
            InsertOutcome::DuplicateEntry { pseudo: false } => {
                // The IB inserted this key already. Write an undo-only
                // record so a rollback will still remove it (§2.1.1).
                self.log(
                    tx,
                    RecKind::UndoOnly,
                    LogPayload::IndexInsert {
                        index: idx.def.id,
                        entry,
                    },
                )?;
                Ok(())
            }
            InsertOutcome::DuplicateEntry { pseudo: true } => {
                // Exact entry exists pseudo-deleted (paper's example,
                // steps 5-8): reset the flag.
                idx.tree.set_pseudo(&entry, false)?;
                self.log(
                    tx,
                    RecKind::UndoRedo,
                    LogPayload::IndexReactivate {
                        index: idx.def.id,
                        entry,
                    },
                )?;
                Ok(())
            }
            InsertOutcome::DuplicateKeyValue {
                existing,
                existing_pseudo,
            } => self.resolve_unique_insert(tx, idx, entry, existing, existing_pseudo),
        }
    }

    /// Unique-key arbitration (§2.2.3): wait for the conflicting
    /// record's owner, re-check whether the duplicate key value still
    /// exists, and either raise a violation, take over a committed-dead
    /// pseudo entry (paper's step 9 "replace R with R1"), or retry.
    fn resolve_unique_insert(
        &self,
        tx: TxId,
        idx: &Arc<IndexRuntime>,
        entry: IndexEntry,
        mut existing: Rid,
        _existing_pseudo: bool,
    ) -> Result<()> {
        for _ in 0..8 {
            // Wait (instant S) for the conflicting record's owner to
            // commit or roll back.
            self.locks
                .instant(tx, LockName::Record(idx.def.table, existing), LockMode::S)?;
            match idx.tree.insert(entry.clone(), InsertMode::Transaction)? {
                InsertOutcome::Inserted => {
                    self.log(
                        tx,
                        RecKind::UndoRedo,
                        LogPayload::IndexInsert {
                            index: idx.def.id,
                            entry,
                        },
                    )?;
                    return Ok(());
                }
                InsertOutcome::DuplicateEntry { pseudo: false } => {
                    self.log(
                        tx,
                        RecKind::UndoOnly,
                        LogPayload::IndexInsert {
                            index: idx.def.id,
                            entry,
                        },
                    )?;
                    return Ok(());
                }
                InsertOutcome::DuplicateEntry { pseudo: true } => {
                    idx.tree.set_pseudo(&entry, false)?;
                    self.log(
                        tx,
                        RecKind::UndoRedo,
                        LogPayload::IndexReactivate {
                            index: idx.def.id,
                            entry,
                        },
                    )?;
                    return Ok(());
                }
                InsertOutcome::DuplicateKeyValue {
                    existing: e2,
                    existing_pseudo: p2,
                } => {
                    let conflict_key = self.record_key(idx, e2)?;
                    let still_conflicts = conflict_key.as_ref() == Some(&entry.key);
                    if still_conflicts && !p2 {
                        return Err(Error::UniqueViolation {
                            index: idx.def.id,
                            existing: e2,
                        });
                    }
                    if !still_conflicts {
                        // Committed-dead conflict: take the entry over
                        // in place (reset flag, replace RID).
                        if idx.tree.unique_replace(&entry.key, e2, entry.rid)? {
                            self.log(
                                tx,
                                RecKind::UndoRedo,
                                LogPayload::IndexInsert {
                                    index: idx.def.id,
                                    entry,
                                },
                            )?;
                            return Ok(());
                        }
                    }
                    // Entry pseudo + record alive (a racing deleter is
                    // mid-flight), or the replace raced away: retry.
                    existing = e2;
                }
            }
        }
        Err(Error::Corruption(format!(
            "unique arbitration did not converge on {}",
            idx.def.id
        )))
    }

    /// §2.2.3, "IB and Delete Operations" — the deleter path: mark
    /// pseudo-deleted, or plant a tombstone if the key is missing.
    pub(crate) fn direct_delete_key(
        &self,
        tx: TxId,
        idx: &Arc<IndexRuntime>,
        entry: &IndexEntry,
    ) -> Result<()> {
        let found = idx.tree.pseudo_delete_or_tombstone(entry)?;
        let payload = if found {
            LogPayload::IndexPseudoDelete {
                index: idx.def.id,
                entry: entry.clone(),
            }
        } else {
            LogPayload::IndexInsertTombstone {
                index: idx.def.id,
                entry: entry.clone(),
            }
        };
        self.log(tx, RecKind::UndoRedo, payload)?;
        Ok(())
    }

    /// The key-cursor (primary-model) visibility decision is temporal:
    /// a plan taken under the heap latch can say "invisible" while the
    /// primary-index walk passes the key's position before the
    /// record's primary entry lands. Because the (complete) primary
    /// index is maintained *before* any in-build key-cursor secondary
    /// (creation order), rechecking after maintenance closes the race:
    /// either the op is visible now (append it), or the walk is still
    /// behind the key's position and will extract the already-placed
    /// primary state.
    fn recheck_key_cursors(
        &self,
        tx: TxId,
        table: TableId,
        rid: Rid,
        rec: &Record,
        applied: &[(Arc<IndexRuntime>, Mechanism)],
        insert: bool,
    ) -> Result<()> {
        for idx in self.indexes_of(table) {
            if idx.key_cursor.is_none() || applied.iter().any(|(a, _)| a.def.id == idx.def.id) {
                continue;
            }
            match idx.state() {
                IndexState::SfBuilding => {
                    let kc = idx.key_cursor.as_ref().expect("checked");
                    let pk = mohan_common::KeyValue::from_i64s(
                        &kc.pk_cols.iter().map(|&c| rec.0[c]).collect::<Vec<_>>(),
                    );
                    if idx.sf_visible(rid, Some(&pk)) {
                        let entry = idx.def.entry_of(rec, rid)?;
                        self.apply_key_op(
                            tx,
                            &idx,
                            Mechanism::SideFile,
                            SideFileOp { insert, entry },
                        )?;
                    }
                    // Still invisible: the walk is provably behind the
                    // key's position and will extract the current
                    // primary state.
                }
                IndexState::Complete => {
                    // The build finished between the latch-time plan
                    // and now: the operation predates completion but
                    // was routed nowhere. Maintain directly; duplicate
                    // rejection / tombstones make this idempotent
                    // against whatever the walk extracted.
                    let entry = idx.def.entry_of(rec, rid)?;
                    self.apply_key_op(tx, &idx, Mechanism::Direct, SideFileOp { insert, entry })?;
                }
                IndexState::NsfBuilding => {}
            }
        }
        Ok(())
    }

    /// Current key value of the record at `rid`, or `None` if the
    /// record no longer exists (used by unique arbitration to decide
    /// whether a conflicting index entry is committed-dead).
    pub(crate) fn record_key(&self, idx: &Arc<IndexRuntime>, rid: Rid) -> Result<Option<KeyValue>> {
        let table = self.table(idx.def.table)?;
        match table.read(rid) {
            Ok(data) => Ok(Some(idx.def.key_of_bytes(&data)?)),
            Err(Error::NotFound(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }
}
