//! Per-connection statement API over the engine.
//!
//! A [`Session`] is the narrow waist between "someone issuing
//! statements" — a TCP connection in `mohan-server`, an example
//! program, a test — and the engine's transaction machinery. It owns at
//! most one open transaction and layers two behaviours the raw
//! [`Db`] methods deliberately do not have:
//!
//! * **auto-commit**: DML issued with no open transaction runs in its
//!   own begin→op→commit envelope, rolled back on failure, so a
//!   connection can do single-statement traffic without the
//!   begin/commit chatter;
//! * **cleanup on drop**: an open transaction is rolled back when the
//!   session goes away (a client disconnecting mid-transaction must
//!   release its locks, or it would wedge every later transaction that
//!   touches the same records).
//!
//! Explicit transaction control is strict: `commit`/`rollback` with
//! nothing open is [`Error::NoOpenTx`], `begin` twice is
//! [`Error::TxAlreadyOpen`] — the server maps both onto structured
//! wire errors rather than guessing intent.

use crate::build::{self, BuildOptions, IndexSpec};
use crate::engine::Db;
use crate::schema::{BuildAlgorithm, Record};
use mohan_common::{Error, IndexId, KeyValue, Result, Rid, TableId, TxId};
use std::sync::Arc;

/// One statement stream over the engine, holding at most one open
/// transaction.
pub struct Session {
    db: Arc<Db>,
    tx: Option<TxId>,
}

impl Session {
    /// Open a session on `db`.
    #[must_use]
    pub fn new(db: Arc<Db>) -> Session {
        Session { db, tx: None }
    }

    /// The engine this session speaks to.
    #[must_use]
    pub fn db(&self) -> &Arc<Db> {
        &self.db
    }

    /// The open transaction, if any.
    #[must_use]
    pub fn current_tx(&self) -> Option<TxId> {
        self.tx
    }

    /// Writes are refused while the engine is a replication follower.
    /// The server performs the same check at the wire boundary (where
    /// it can attach a leader hint); this one is defense in depth for
    /// in-process callers.
    fn check_writable(&self) -> Result<()> {
        if self.db.is_replica() {
            Err(Error::NotWritable)
        } else {
            Ok(())
        }
    }

    // ----- transaction control ----------------------------------------

    /// Open a transaction. Fails if one is already open.
    pub fn begin(&mut self) -> Result<TxId> {
        self.check_writable()?;
        if let Some(tx) = self.tx {
            return Err(Error::TxAlreadyOpen(tx));
        }
        let tx = self.db.begin();
        self.tx = Some(tx);
        Ok(tx)
    }

    /// Commit the open transaction. The session is usable for a new
    /// transaction afterwards even if the commit fails.
    pub fn commit(&mut self) -> Result<()> {
        let tx = self.tx.take().ok_or(Error::NoOpenTx)?;
        self.db.commit(tx)
    }

    /// Roll back the open transaction.
    pub fn rollback(&mut self) -> Result<()> {
        let tx = self.tx.take().ok_or(Error::NoOpenTx)?;
        self.db.rollback(tx)
    }

    /// Run `op` inside the open transaction, or — auto-commit — inside
    /// a fresh one that commits on success and rolls back on failure.
    ///
    /// The rollback error (if any) is deliberately dropped in favour of
    /// the operation's error: the caller wants to know why the
    /// statement failed, and rollback after a failed statement is
    /// best-effort cleanup. A rollback that itself hits an injected
    /// crash still surfaces, since the crash must reach the
    /// orchestrator.
    pub fn with_tx<T>(&mut self, op: impl FnOnce(&Db, TxId) -> Result<T>) -> Result<T> {
        self.check_writable()?;
        if let Some(tx) = self.tx {
            return op(&self.db, tx);
        }
        let tx = self.db.begin();
        match op(&self.db, tx) {
            Ok(v) => {
                self.db.commit(tx)?;
                Ok(v)
            }
            Err(e) => match self.db.rollback(tx) {
                Err(rb) if rb.is_crash() => Err(rb),
                _ => Err(e),
            },
        }
    }

    // ----- DML --------------------------------------------------------

    /// Insert a record (auto-commits if no transaction is open).
    pub fn insert(&mut self, table: TableId, rec: &Record) -> Result<Rid> {
        self.with_tx(|db, tx| db.insert_record(tx, table, rec))
    }

    /// Update the record at `rid`, returning its old contents.
    pub fn update(&mut self, table: TableId, rid: Rid, new: &Record) -> Result<Record> {
        self.with_tx(|db, tx| db.update_record(tx, table, rid, new))
    }

    /// Delete the record at `rid`, returning its old contents.
    pub fn delete(&mut self, table: TableId, rid: Rid) -> Result<Record> {
        self.with_tx(|db, tx| db.delete_record(tx, table, rid))
    }

    /// Read one record (no transaction required).
    pub fn read(&self, table: TableId, rid: Rid) -> Result<Record> {
        self.db.read_record(table, rid)
    }

    /// Exact-match probe of a readable index.
    pub fn lookup(&self, index: IndexId, key: &KeyValue) -> Result<Vec<Rid>> {
        self.db.index_lookup(index, key)
    }

    /// Key-range probe of a complete index: RIDs of live entries with
    /// `lo ≤ key ≤ hi`, in key order. The leaf prefetch strategy is
    /// fixed to physical-sequence (§2.3.1's clustering payoff) so
    /// statement-level callers need no B-tree knowledge.
    pub fn lookup_range(&self, index: IndexId, lo: &KeyValue, hi: &KeyValue) -> Result<Vec<Rid>> {
        let (entries, _stats) = self.db.index_range_lookup(
            index,
            lo,
            hi,
            mohan_btree::PrefetchStrategy::PhysicalSequence,
        )?;
        Ok(entries.into_iter().map(|e| e.rid).collect())
    }

    /// Snapshot every record in a table (the heap-scan access path for
    /// statements with no usable index).
    pub fn table_scan(&self, table: TableId) -> Result<Vec<(Rid, Record)>> {
        self.db.table_scan(table)
    }

    // ----- DDL --------------------------------------------------------

    /// Build one or more indexes in a single scan (§6.2).
    ///
    /// Refused while the session holds an open transaction: the build
    /// runs in its own index-builder transactions, and interleaving it
    /// with a user transaction on the same session would deadlock the
    /// session against itself on the table lock.
    pub fn create_indexes(
        &mut self,
        table: TableId,
        specs: &[IndexSpec],
        algorithm: BuildAlgorithm,
    ) -> Result<Vec<IndexId>> {
        self.create_indexes_with(table, specs, algorithm, &BuildOptions::default())
    }

    /// [`Session::create_indexes`] with explicit [`BuildOptions`].
    pub fn create_indexes_with(
        &mut self,
        table: TableId,
        specs: &[IndexSpec],
        algorithm: BuildAlgorithm,
        options: &BuildOptions,
    ) -> Result<Vec<IndexId>> {
        self.check_writable()?;
        if let Some(tx) = self.tx {
            return Err(Error::TxAlreadyOpen(tx));
        }
        build::build_indexes_with(&self.db, table, specs, algorithm, options)
    }

    /// [`Session::create_indexes`] for a single spec.
    pub fn create_index(
        &mut self,
        table: TableId,
        spec: IndexSpec,
        algorithm: BuildAlgorithm,
    ) -> Result<IndexId> {
        Ok(self.create_indexes(table, &[spec], algorithm)?[0])
    }

    /// [`Session::create_index`] with explicit [`BuildOptions`].
    pub fn create_index_with(
        &mut self,
        table: TableId,
        spec: IndexSpec,
        algorithm: BuildAlgorithm,
        options: &BuildOptions,
    ) -> Result<IndexId> {
        Ok(self.create_indexes_with(table, &[spec], algorithm, options)?[0])
    }

    // ----- lifecycle --------------------------------------------------

    /// Roll back any open transaction, surfacing the result. `Drop`
    /// does the same but has to swallow errors; callers that care
    /// (the server, on connection close) call this explicitly.
    pub fn close(&mut self) -> Result<()> {
        match self.tx.take() {
            Some(tx) => self.db.rollback(tx),
            None => Ok(()),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

/// The shared read surface (bench oracles and closed-loop drivers run
/// against [`mohan_common::ReadApi`], so the same driver code works
/// over an in-process session, a wire client, or a follower reader).
impl mohan_common::ReadApi for Session {
    type Err = Error;

    fn read(&mut self, table: TableId, rid: Rid) -> Result<Vec<i64>> {
        Session::read(self, table, rid).map(|r| r.0)
    }

    fn lookup(&mut self, index: IndexId, key: &KeyValue) -> Result<Vec<Rid>> {
        Session::lookup(self, index, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mohan_common::EngineConfig;

    fn db() -> Arc<Db> {
        let mut cfg = EngineConfig::small();
        cfg.lock_timeout_ms = 200;
        Db::new(cfg)
    }

    fn rec(k: i64, v: i64) -> Record {
        Record(vec![k, v])
    }

    #[test]
    fn autocommit_insert_is_visible_and_unlocked() {
        let db = db();
        db.create_table(TableId(1));
        let mut s = Session::new(db.clone());
        let rid = s.insert(TableId(1), &rec(1, 10)).unwrap();
        assert_eq!(s.read(TableId(1), rid).unwrap(), rec(1, 10));
        assert_eq!(db.active_txs(), 0, "auto-commit must not leak a tx");
        // Another session can immediately lock the same record.
        let mut s2 = Session::new(db.clone());
        s2.update(TableId(1), rid, &rec(1, 11)).unwrap();
    }

    #[test]
    fn explicit_tx_spans_statements_and_rolls_back() {
        let db = db();
        db.create_table(TableId(1));
        let mut s = Session::new(db.clone());
        s.begin().unwrap();
        let rid = s.insert(TableId(1), &rec(1, 10)).unwrap();
        s.update(TableId(1), rid, &rec(1, 20)).unwrap();
        s.rollback().unwrap();
        assert!(s.read(TableId(1), rid).is_err(), "insert must be undone");
        assert_eq!(db.active_txs(), 0);
    }

    #[test]
    fn strict_transaction_state_errors() {
        let db = db();
        let mut s = Session::new(db);
        assert_eq!(s.commit(), Err(Error::NoOpenTx));
        assert_eq!(s.rollback(), Err(Error::NoOpenTx));
        let tx = s.begin().unwrap();
        assert_eq!(s.begin(), Err(Error::TxAlreadyOpen(tx)));
        s.commit().unwrap();
        s.begin().unwrap(); // usable again
        s.rollback().unwrap();
    }

    #[test]
    fn failed_autocommit_statement_rolls_back() {
        let db = db();
        db.create_table(TableId(1));
        let mut s = Session::new(db.clone());
        let missing = Rid::new(500, 0);
        assert!(s.delete(TableId(1), missing).is_err());
        assert_eq!(db.active_txs(), 0, "failed auto-commit must roll back");
    }

    #[test]
    fn drop_rolls_back_open_tx() {
        let db = db();
        db.create_table(TableId(1));
        let rid = {
            let mut s = Session::new(db.clone());
            s.begin().unwrap();
            s.insert(TableId(1), &rec(7, 70)).unwrap()
        }; // s dropped here with the tx open
        assert_eq!(db.active_txs(), 0, "drop must roll back");
        assert!(db.read_record(TableId(1), rid).is_err());
    }

    #[test]
    fn replica_session_refuses_writes_until_promoted() {
        let mut cfg = EngineConfig::small();
        cfg.replica = true;
        let db = Db::new(cfg);
        db.create_table(TableId(1));
        assert!(db.is_replica());
        let mut s = Session::new(db.clone());
        assert_eq!(s.begin(), Err(Error::NotWritable));
        assert_eq!(s.insert(TableId(1), &rec(1, 10)), Err(Error::NotWritable));
        let spec = IndexSpec {
            name: "ix".into(),
            key_cols: vec![0],
            unique: false,
        };
        assert_eq!(
            s.create_index(TableId(1), spec, BuildAlgorithm::Sf),
            Err(Error::NotWritable)
        );
        // Reads stay allowed (they just see an empty table here).
        assert!(s.read(TableId(1), Rid::new(1, 0)).is_err()); // NotFound, not NotWritable
                                                              // Promotion flips the dynamic role; writes work afterwards.
        db.promote_to_primary().unwrap();
        assert!(!db.is_replica());
        let rid = s.insert(TableId(1), &rec(1, 10)).unwrap();
        assert_eq!(s.read(TableId(1), rid).unwrap(), rec(1, 10));
    }

    #[test]
    fn create_index_refused_inside_tx_then_works() {
        let db = db();
        db.create_table(TableId(1));
        let mut s = Session::new(db.clone());
        for k in 0..50 {
            s.insert(TableId(1), &rec(k, k * 10)).unwrap();
        }
        let spec = IndexSpec {
            name: "ix".into(),
            key_cols: vec![0],
            unique: true,
        };
        let tx = s.begin().unwrap();
        assert_eq!(
            s.create_index(TableId(1), spec.clone(), BuildAlgorithm::Sf),
            Err(Error::TxAlreadyOpen(tx))
        );
        s.commit().unwrap();
        let id = s
            .create_index(TableId(1), spec, BuildAlgorithm::Sf)
            .unwrap();
        crate::verify::verify_index(&db, id).unwrap();
        let rids = s.lookup(id, &KeyValue::from_i64(7)).unwrap();
        assert_eq!(rids.len(), 1);
    }
}
