//! Durable build-progress records.
//!
//! Each in-flight index build keeps one progress record in the stable
//! blob area, updated at every checkpoint. It tells
//! [`crate::build::resume_build`] which phase to re-enter and carries
//! the phase's own checkpoint (§5 sort/merge checkpoints, §2.2.3 NSF
//! insert position, §3.2.4 SF bulk-load checkpoint, §3.2.5 drain
//! position).

use crate::build::BuildOptions;
use crate::engine::Db;
use mohan_btree::BulkCheckpoint;
use mohan_common::{Error, IndexEntry, IndexId, Result};
use mohan_sort::{MergeCheckpoint, MergePassCheckpoint, SortCheckpoint};

/// One scan partition's restart point in a parallel build: the page
/// range the worker owns plus its own §5.1 sort checkpoint. Each
/// worker's checkpoint is a valid serial restart point for its range;
/// together they are the build's scan-phase progress.
#[derive(Debug, Clone, PartialEq)]
pub struct PartCheckpoint {
    /// First page of the partition (inclusive).
    pub lo: u32,
    /// Last page of the partition (inclusive).
    pub hi: u32,
    /// The worker's sort-phase checkpoint.
    pub sort: SortCheckpoint<IndexEntry>,
}

impl PartCheckpoint {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.lo.to_be_bytes());
        out.extend_from_slice(&self.hi.to_be_bytes());
        let s = self.sort.encode();
        out.extend_from_slice(&(s.len() as u32).to_be_bytes());
        out.extend_from_slice(&s);
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<PartCheckpoint> {
        let lo = u32::from_be_bytes(buf.get(*pos..*pos + 4)?.try_into().ok()?);
        let hi = u32::from_be_bytes(buf.get(*pos + 4..*pos + 8)?.try_into().ok()?);
        let slen = u32::from_be_bytes(buf.get(*pos + 8..*pos + 12)?.try_into().ok()?) as usize;
        let sort = SortCheckpoint::decode(buf.get(*pos + 12..*pos + 12 + slen)?)?;
        *pos += 12 + slen;
        Some(PartCheckpoint { lo, hi, sort })
    }
}

/// Where an interrupted build resumes.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildProgress {
    /// Scanning data pages and forming sorted runs (§5.1).
    Scanning {
        /// Sort-phase checkpoint (includes the data-scan position).
        sort: SortCheckpoint<IndexEntry>,
    },
    /// Partitioned scan on several workers: one §5.1 checkpoint per
    /// scan partition, restarted per-partition.
    ScanningParallel {
        /// Per-worker partition checkpoints, in partition order.
        parts: Vec<PartCheckpoint>,
    },
    /// Reducing runs below the merge fan-in (§5.2).
    Reducing {
        /// Run-reduction checkpoint.
        pass: MergePassCheckpoint,
    },
    /// SF: bottom-up bulk load fed by the pipelined final merge
    /// (§3.2.4).
    Loading {
        /// Final-merge position.
        merge: MergeCheckpoint,
        /// Tree loader checkpoint.
        bulk: BulkCheckpoint,
    },
    /// NSF: inserting sorted keys into the shared tree (§2.2.3).
    Inserting {
        /// Final-merge position.
        merge: MergeCheckpoint,
        /// Keys handed to the index manager so far.
        inserted: u64,
    },
    /// SF: draining the side-file (§3.2.5).
    Draining {
        /// Entries applied so far.
        pos: u64,
    },
}

impl BuildProgress {
    /// Serialize.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            BuildProgress::Scanning { sort } => {
                out.push(0);
                out.extend_from_slice(&sort.encode());
            }
            BuildProgress::Reducing { pass } => {
                out.push(1);
                out.extend_from_slice(&pass.encode());
            }
            BuildProgress::Loading { merge, bulk } => {
                out.push(2);
                let m = merge.encode();
                out.extend_from_slice(&(m.len() as u32).to_be_bytes());
                out.extend_from_slice(&m);
                out.extend_from_slice(&bulk.encode());
            }
            BuildProgress::Inserting { merge, inserted } => {
                out.push(3);
                let m = merge.encode();
                out.extend_from_slice(&(m.len() as u32).to_be_bytes());
                out.extend_from_slice(&m);
                out.extend_from_slice(&inserted.to_be_bytes());
            }
            BuildProgress::Draining { pos } => {
                out.push(4);
                out.extend_from_slice(&pos.to_be_bytes());
            }
            BuildProgress::ScanningParallel { parts } => {
                out.push(5);
                out.extend_from_slice(&(parts.len() as u16).to_be_bytes());
                for p in parts {
                    p.encode(&mut out);
                }
            }
        }
        out
    }

    /// Deserialize.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Option<BuildProgress> {
        match *buf.first()? {
            0 => Some(BuildProgress::Scanning {
                sort: SortCheckpoint::decode(&buf[1..])?,
            }),
            1 => Some(BuildProgress::Reducing {
                pass: MergePassCheckpoint::decode(&buf[1..])?,
            }),
            2 => {
                let mlen = u32::from_be_bytes(buf.get(1..5)?.try_into().ok()?) as usize;
                let merge = MergeCheckpoint::decode(buf.get(5..5 + mlen)?)?;
                let bulk = BulkCheckpoint::decode(buf.get(5 + mlen..)?)?;
                Some(BuildProgress::Loading { merge, bulk })
            }
            3 => {
                let mlen = u32::from_be_bytes(buf.get(1..5)?.try_into().ok()?) as usize;
                let merge = MergeCheckpoint::decode(buf.get(5..5 + mlen)?)?;
                let inserted =
                    u64::from_be_bytes(buf.get(5 + mlen..5 + mlen + 8)?.try_into().ok()?);
                Some(BuildProgress::Inserting { merge, inserted })
            }
            4 => Some(BuildProgress::Draining {
                pos: u64::from_be_bytes(buf.get(1..9)?.try_into().ok()?),
            }),
            5 => {
                let n = u16::from_be_bytes(buf.get(1..3)?.try_into().ok()?) as usize;
                let mut pos = 3;
                let mut parts = Vec::with_capacity(n);
                for _ in 0..n {
                    parts.push(PartCheckpoint::decode(buf, &mut pos)?);
                }
                Some(BuildProgress::ScanningParallel { parts })
            }
            _ => None,
        }
    }
}

fn key(id: IndexId) -> String {
    format!("build/{}/progress", id.0)
}

fn options_key(id: IndexId) -> String {
    format!("build/{}/options", id.0)
}

/// Durably record build progress.
pub fn store(db: &Db, id: IndexId, progress: &BuildProgress) {
    db.blobs.put(&key(id), progress.encode());
}

/// Load build progress, if any.
pub fn load(db: &Db, id: IndexId) -> Result<Option<BuildProgress>> {
    match db.blobs.get(&key(id)) {
        None => Ok(None),
        Some(bytes) => BuildProgress::decode(&bytes)
            .map(Some)
            .ok_or_else(|| Error::Corruption(format!("corrupt build progress for {id}"))),
    }
}

/// Remove the progress (and options) records — build finished or
/// cancelled.
pub fn clear(db: &Db, id: IndexId) {
    db.blobs.remove(&key(id));
    db.blobs.remove(&options_key(id));
}

/// Durably record the build's [`BuildOptions`], so a resumed build
/// keeps the worker count, run compression and interval overrides it
/// started with.
pub fn store_options(db: &Db, id: IndexId, options: &BuildOptions) {
    db.blobs.put(&options_key(id), options.encode());
}

/// The options a build was started with ([`BuildOptions::default`]
/// for builds that predate the record).
pub fn load_options(db: &Db, id: IndexId) -> BuildOptions {
    db.blobs
        .get(&options_key(id))
        .and_then(|b| BuildOptions::decode(&b))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mohan_common::Rid;
    use mohan_sort::RunMeta;

    #[test]
    fn all_variants_roundtrip() {
        let e = IndexEntry::from_i64(5, Rid::new(1, 1));
        let cases = vec![
            BuildProgress::Scanning {
                sort: SortCheckpoint {
                    runs: vec![RunMeta { id: 1, len: 10 }],
                    scan_pos: 99,
                    last_run_high: Some(e.clone()),
                },
            },
            BuildProgress::Reducing {
                pass: MergePassCheckpoint {
                    remaining: vec![1, 2],
                    inflight: Some((
                        7,
                        MergeCheckpoint {
                            inputs: vec![1, 2],
                            counters: vec![3, 4],
                            emitted: 7,
                        },
                    )),
                },
            },
            BuildProgress::Loading {
                merge: MergeCheckpoint {
                    inputs: vec![5],
                    counters: vec![2],
                    emitted: 2,
                },
                bulk: BulkCheckpoint {
                    highest: Some(e.clone()),
                    count: 2,
                    allocated: 4,
                    root: mohan_common::PageId(1),
                    height: 1,
                    right_path: vec![mohan_common::PageId(1)],
                },
            },
            BuildProgress::Inserting {
                merge: MergeCheckpoint {
                    inputs: vec![],
                    counters: vec![],
                    emitted: 0,
                },
                inserted: 123,
            },
            BuildProgress::Draining { pos: 77 },
            BuildProgress::ScanningParallel {
                parts: vec![
                    PartCheckpoint {
                        lo: 0,
                        hi: 9,
                        sort: SortCheckpoint {
                            runs: vec![RunMeta { id: 3, len: 5 }],
                            scan_pos: 41,
                            last_run_high: Some(e.clone()),
                        },
                    },
                    PartCheckpoint {
                        lo: 10,
                        hi: 19,
                        sort: SortCheckpoint {
                            runs: vec![],
                            scan_pos: 0,
                            last_run_high: None,
                        },
                    },
                ],
            },
        ];
        for c in cases {
            assert_eq!(BuildProgress::decode(&c.encode()), Some(c));
        }
    }

    #[test]
    fn decode_garbage_is_none() {
        assert_eq!(BuildProgress::decode(&[]), None);
        assert_eq!(BuildProgress::decode(&[9, 1, 2]), None);
    }
}
