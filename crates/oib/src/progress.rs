//! Durable build-progress records.
//!
//! Each in-flight index build keeps one progress record in the stable
//! blob area, updated at every checkpoint. It tells
//! [`crate::build::resume_build`] which phase to re-enter and carries
//! the phase's own checkpoint (§5 sort/merge checkpoints, §2.2.3 NSF
//! insert position, §3.2.4 SF bulk-load checkpoint, §3.2.5 drain
//! position).

use crate::engine::Db;
use mohan_btree::BulkCheckpoint;
use mohan_common::{Error, IndexEntry, IndexId, Result};
use mohan_sort::{MergeCheckpoint, MergePassCheckpoint, SortCheckpoint};

/// Where an interrupted build resumes.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildProgress {
    /// Scanning data pages and forming sorted runs (§5.1).
    Scanning {
        /// Sort-phase checkpoint (includes the data-scan position).
        sort: SortCheckpoint<IndexEntry>,
    },
    /// Reducing runs below the merge fan-in (§5.2).
    Reducing {
        /// Run-reduction checkpoint.
        pass: MergePassCheckpoint,
    },
    /// SF: bottom-up bulk load fed by the pipelined final merge
    /// (§3.2.4).
    Loading {
        /// Final-merge position.
        merge: MergeCheckpoint,
        /// Tree loader checkpoint.
        bulk: BulkCheckpoint,
    },
    /// NSF: inserting sorted keys into the shared tree (§2.2.3).
    Inserting {
        /// Final-merge position.
        merge: MergeCheckpoint,
        /// Keys handed to the index manager so far.
        inserted: u64,
    },
    /// SF: draining the side-file (§3.2.5).
    Draining {
        /// Entries applied so far.
        pos: u64,
    },
}

impl BuildProgress {
    /// Serialize.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            BuildProgress::Scanning { sort } => {
                out.push(0);
                out.extend_from_slice(&sort.encode());
            }
            BuildProgress::Reducing { pass } => {
                out.push(1);
                out.extend_from_slice(&pass.encode());
            }
            BuildProgress::Loading { merge, bulk } => {
                out.push(2);
                let m = merge.encode();
                out.extend_from_slice(&(m.len() as u32).to_be_bytes());
                out.extend_from_slice(&m);
                out.extend_from_slice(&bulk.encode());
            }
            BuildProgress::Inserting { merge, inserted } => {
                out.push(3);
                let m = merge.encode();
                out.extend_from_slice(&(m.len() as u32).to_be_bytes());
                out.extend_from_slice(&m);
                out.extend_from_slice(&inserted.to_be_bytes());
            }
            BuildProgress::Draining { pos } => {
                out.push(4);
                out.extend_from_slice(&pos.to_be_bytes());
            }
        }
        out
    }

    /// Deserialize.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Option<BuildProgress> {
        match *buf.first()? {
            0 => Some(BuildProgress::Scanning {
                sort: SortCheckpoint::decode(&buf[1..])?,
            }),
            1 => Some(BuildProgress::Reducing {
                pass: MergePassCheckpoint::decode(&buf[1..])?,
            }),
            2 => {
                let mlen = u32::from_be_bytes(buf.get(1..5)?.try_into().ok()?) as usize;
                let merge = MergeCheckpoint::decode(buf.get(5..5 + mlen)?)?;
                let bulk = BulkCheckpoint::decode(buf.get(5 + mlen..)?)?;
                Some(BuildProgress::Loading { merge, bulk })
            }
            3 => {
                let mlen = u32::from_be_bytes(buf.get(1..5)?.try_into().ok()?) as usize;
                let merge = MergeCheckpoint::decode(buf.get(5..5 + mlen)?)?;
                let inserted =
                    u64::from_be_bytes(buf.get(5 + mlen..5 + mlen + 8)?.try_into().ok()?);
                Some(BuildProgress::Inserting { merge, inserted })
            }
            4 => Some(BuildProgress::Draining {
                pos: u64::from_be_bytes(buf.get(1..9)?.try_into().ok()?),
            }),
            _ => None,
        }
    }
}

fn key(id: IndexId) -> String {
    format!("build/{}/progress", id.0)
}

/// Durably record build progress.
pub fn store(db: &Db, id: IndexId, progress: &BuildProgress) {
    db.blobs.put(&key(id), progress.encode());
}

/// Load build progress, if any.
pub fn load(db: &Db, id: IndexId) -> Result<Option<BuildProgress>> {
    match db.blobs.get(&key(id)) {
        None => Ok(None),
        Some(bytes) => BuildProgress::decode(&bytes)
            .map(Some)
            .ok_or_else(|| Error::Corruption(format!("corrupt build progress for {id}"))),
    }
}

/// Remove the progress record (build finished or cancelled).
pub fn clear(db: &Db, id: IndexId) {
    db.blobs.remove(&key(id));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mohan_common::Rid;
    use mohan_sort::RunMeta;

    #[test]
    fn all_variants_roundtrip() {
        let e = IndexEntry::from_i64(5, Rid::new(1, 1));
        let cases = vec![
            BuildProgress::Scanning {
                sort: SortCheckpoint {
                    runs: vec![RunMeta { id: 1, len: 10 }],
                    scan_pos: 99,
                    last_run_high: Some(e.clone()),
                },
            },
            BuildProgress::Reducing {
                pass: MergePassCheckpoint {
                    remaining: vec![1, 2],
                    inflight: Some((
                        7,
                        MergeCheckpoint {
                            inputs: vec![1, 2],
                            counters: vec![3, 4],
                            emitted: 7,
                        },
                    )),
                },
            },
            BuildProgress::Loading {
                merge: MergeCheckpoint {
                    inputs: vec![5],
                    counters: vec![2],
                    emitted: 2,
                },
                bulk: BulkCheckpoint {
                    highest: Some(e.clone()),
                    count: 2,
                    allocated: 4,
                    root: mohan_common::PageId(1),
                    height: 1,
                    right_path: vec![mohan_common::PageId(1)],
                },
            },
            BuildProgress::Inserting {
                merge: MergeCheckpoint {
                    inputs: vec![],
                    counters: vec![],
                    emitted: 0,
                },
                inserted: 123,
            },
            BuildProgress::Draining { pos: 77 },
        ];
        for c in cases {
            assert_eq!(BuildProgress::decode(&c.encode()), Some(c));
        }
    }

    #[test]
    fn decode_garbage_is_none() {
        assert_eq!(BuildProgress::decode(&[]), None);
        assert_eq!(BuildProgress::decode(&[9, 1, 2]), None);
    }
}
