//! The correctness oracle.
//!
//! Every experiment ends by checking that the finished index agrees
//! *entry-for-entry* with the table's committed state — the live
//! entries must be exactly the `<key value, RID>` pairs derivable from
//! the records, pseudo-deleted entries must not shadow a live record's
//! key, and the tree must satisfy all structural invariants.
//!
//! Call at quiescent points (no in-flight transactions), as a real
//! `CHECK INDEX` utility would.

use crate::engine::Db;
use crate::runtime::IndexState;
use crate::schema::Record;
use mohan_common::{Error, IndexEntry, IndexId, Result};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Full agreement check between index and table.
pub fn verify_index(db: &Arc<Db>, index: IndexId) -> Result<()> {
    let idx = db.index(index)?;
    if idx.state() != IndexState::Complete {
        return Err(Error::IndexNotReadable(index));
    }
    mohan_btree::scan::verify_structure(&idx.tree)?;

    let mut expected: BTreeSet<IndexEntry> = BTreeSet::new();
    let table = db.table(idx.def.table)?;
    if table.num_pages() > 0 {
        let last = mohan_common::PageId(table.num_pages() - 1);
        table.scan_from(None, last, |rid, data| {
            let rec = Record::decode(data)?;
            expected.insert(idx.def.entry_of(&rec, rid)?);
            Ok(true)
        })?;
    }

    let mut live: BTreeSet<IndexEntry> = BTreeSet::new();
    for (entry, pseudo) in mohan_btree::scan::collect_all(&idx.tree, true)? {
        if pseudo {
            // A tombstone must not correspond to a live record.
            if expected.contains(&entry) {
                return Err(Error::Corruption(format!(
                    "{index}: entry {entry:?} is pseudo-deleted but its record is live"
                )));
            }
            continue;
        }
        live.insert(entry);
    }

    if live != expected {
        let missing: Vec<_> = expected.difference(&live).take(5).collect();
        let extra: Vec<_> = live.difference(&expected).take(5).collect();
        return Err(Error::Corruption(format!(
            "{index} disagrees with table: {} missing (e.g. {missing:?}), {} extra (e.g. {extra:?})",
            expected.difference(&live).count(),
            live.difference(&expected).count(),
        )));
    }

    if idx.def.unique {
        let mut prev: Option<IndexEntry> = None;
        for entry in &live {
            if let Some(p) = &prev {
                if p.key == entry.key {
                    return Err(Error::Corruption(format!(
                        "{index}: unique index holds two live entries for one key value"
                    )));
                }
            }
            prev = Some(entry.clone());
        }
    }
    Ok(())
}

/// Verify every complete index of a table.
pub fn verify_all(db: &Arc<Db>, table: mohan_common::TableId) -> Result<usize> {
    let mut checked = 0;
    for idx in db.indexes_of(table) {
        if idx.state() == IndexState::Complete {
            verify_index(db, idx.def.id)?;
            checked += 1;
        }
    }
    Ok(checked)
}
