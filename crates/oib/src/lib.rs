//! Online index build without quiescing updates.
//!
//! This crate is the paper's primary contribution: the **NSF** (No
//! Side-File) and **SF** (Side-File) algorithms of C. Mohan and
//! Inderpal Narang, *"Algorithms for Creating Indexes for Very Large
//! Tables Without Quiescing Updates"*, SIGMOD 1992 — built on the full
//! engine the paper assumes (heap tables, a latched B+-tree with
//! pseudo-deleted keys, ARIES-style WAL recovery, a lock manager, and
//! the restartable sort of §5).
//!
//! The entry points:
//!
//! * [`engine::Db`] — the transactional engine: tables, indexes,
//!   record DML with Figure-1 index maintenance, rollback with
//!   Figure-2 compensation, crash simulation and restart recovery.
//! * [`build::build_indexes`] — create one or more indexes in one data
//!   scan (§6.2) with the chosen [`schema::BuildAlgorithm`]:
//!   [`Offline`](schema::BuildAlgorithm::Offline) (quiesce everything;
//!   the baseline the paper wants to retire),
//!   [`Nsf`](schema::BuildAlgorithm::Nsf) or
//!   [`Sf`](schema::BuildAlgorithm::Sf).
//! * [`build::resume_build`] — continue an interrupted build after
//!   [`engine::Db::restart`], losing at most one checkpoint interval
//!   of work (§2.2.3, §3.2.4, §5).
//! * [`gc::garbage_collect`] — background cleanup of pseudo-deleted
//!   keys (§2.2.4).
//! * [`verify`] — the correctness oracle used by every experiment: the
//!   finished index must agree entry-for-entry with the table.
//! * [`primary`] — the §6.2 storage-model extension: building a
//!   secondary index by scanning a clustering primary index with a
//!   *current-key* cursor instead of Current-RID.
//! * [`session::Session`] — the per-connection statement API (one
//!   open transaction, auto-commit DML, rollback on drop) shared by
//!   the TCP server, the examples, and the tests.

#![warn(missing_docs)]

pub mod build;
pub mod convert;
pub mod dml;
pub mod engine;
pub mod gc;
pub mod primary;
pub mod progress;
pub mod runtime;
pub mod schema;
pub mod session;
pub mod side_file;
pub mod verify;

pub use build::{BuildOptions, IndexSpec};
pub use engine::Db;
pub use runtime::{IndexRuntime, IndexState};
pub use schema::{BuildAlgorithm, IndexDef, Record};
pub use session::Session;
