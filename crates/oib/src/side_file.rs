//! The side-file: an append-only table of `<operation, key>` entries
//! (§3.1).
//!
//! "Transactions append entries without doing any locking of the
//! appended entries" — a single mutex guards the tail pointer, which
//! is the moral equivalent: no entry is ever locked, and appends never
//! wait on the index builder's work.
//!
//! The end-of-drain handshake closes the race the paper leaves
//! implicit: a transaction that saw `Index_Build = '1'` under the data
//! page latch might append only after the IB checked for the last
//! entry. Here the close decision and every append share the mutex:
//! [`SideFile::try_close`] succeeds only if the drain position equals
//! the tail, and any append that arrives after a successful close is
//! refused with [`Append::BuildDone`] so the transaction updates the
//! index directly instead.

use mohan_common::stats::{Counter, MaxGauge};
use mohan_common::Lsn;
use mohan_wal::SideFileOp;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Result of an append attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Append {
    /// Entry appended at this position.
    Appended(u64),
    /// The build finished concurrently; the caller must apply the
    /// operation to the index directly.
    BuildDone,
}

#[derive(Default)]
struct Inner {
    entries: Vec<SideFileOp>,
    closed: bool,
    /// LSN of the first logged append (0 = none yet). Side-file
    /// contents are volatile and rebuilt purely from redo of
    /// `SideFileAppend` records, so a checkpoint's `redo_start` must
    /// not advance past the logged history of any open side-file —
    /// this is where that lower bound comes from.
    first_lsn: u64,
}

/// One index build's side-file.
#[derive(Default)]
pub struct SideFile {
    inner: Mutex<Inner>,
    /// Entries appended over the build's lifetime.
    pub appended: Counter,
    /// Peak backlog (appended − drained) observed at drain time.
    pub max_backlog: MaxGauge,
    /// Non-empty catch-up passes the drain executed (§3.2.5): how many
    /// times the IB found new entries appended since its last pass.
    /// Stays small when the drain converges on its own; hitting the
    /// quiesce fallback shows up as a value ≥ 3.
    pub drain_passes: Counter,
    /// Entries the IB has applied so far (its drain position),
    /// published for the live `build.drain_lag` gauge.
    drained: AtomicU64,
}

impl SideFile {
    /// Fresh, open side-file.
    #[must_use]
    pub fn new() -> SideFile {
        SideFile::default()
    }

    /// Transaction append (Figure 1). Returns [`Append::BuildDone`]
    /// if the build already completed.
    pub fn append(&self, op: SideFileOp) -> Append {
        self.append_with(op, |_| Lsn::NULL)
    }

    /// Append and run `log` under the same critical section, so the
    /// side-file's entry order always equals the WAL order of the
    /// `SideFileAppend` records — which is what makes the rebuilt
    /// side-file's drain position meaningful after a crash. `log`
    /// returns the appended record's LSN ([`Lsn::NULL`] if it logged
    /// nothing); the first valid one is remembered as the open
    /// side-file's redo lower bound.
    pub fn append_with(&self, op: SideFileOp, log: impl FnOnce(&SideFileOp) -> Lsn) -> Append {
        let mut g = self.inner.lock();
        if g.closed {
            return Append::BuildDone;
        }
        let lsn = log(&op);
        if g.first_lsn == 0 && lsn.is_valid() {
            g.first_lsn = lsn.0;
        }
        g.entries.push(op);
        self.appended.bump();
        Append::Appended(g.entries.len() as u64 - 1)
    }

    /// Recovery replay of a logged append (always accepted; the
    /// side-file is rebuilt from the log in LSN order). `lsn` is the
    /// replayed record's own LSN, re-establishing the redo lower
    /// bound for checkpoints taken after the restart.
    pub fn redo_append(&self, op: SideFileOp, lsn: Lsn) {
        let mut g = self.inner.lock();
        if g.first_lsn == 0 && lsn.is_valid() {
            g.first_lsn = lsn.0;
        }
        g.entries.push(op);
    }

    /// LSN of the first logged append while the side-file is still
    /// open; `None` once closed (its history no longer constrains
    /// checkpoints) or before any logged append.
    #[must_use]
    pub fn open_first_lsn(&self) -> Option<Lsn> {
        let g = self.inner.lock();
        if g.closed || g.first_lsn == 0 {
            None
        } else {
            Some(Lsn(g.first_lsn))
        }
    }

    /// Current length.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.inner.lock().entries.len() as u64
    }

    /// True if no entries exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read up to `n` entries starting at `pos` (the IB's drain).
    #[must_use]
    pub fn read(&self, pos: u64, n: usize) -> Vec<SideFileOp> {
        let g = self.inner.lock();
        let start = (pos as usize).min(g.entries.len());
        let end = start.saturating_add(n).min(g.entries.len());
        self.max_backlog.observe((g.entries.len() - start) as u64);
        g.entries[start..end].to_vec()
    }

    /// Atomically close the side-file if everything up to `drained`
    /// has been applied. On success transactions switch to direct
    /// index maintenance (§3.2.5: "after processing the last entry in
    /// the side-file, IB resets the Index_Build flag").
    #[must_use]
    pub fn try_close(&self, drained: u64) -> bool {
        let mut g = self.inner.lock();
        if g.entries.len() as u64 == drained {
            g.closed = true;
            true
        } else {
            false
        }
    }

    /// Is the side-file closed (build complete)?
    #[must_use]
    pub fn closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Publish the IB's drain position (entries applied so far).
    pub fn set_drained(&self, pos: u64) {
        self.drained.store(pos, Ordering::Relaxed);
    }

    /// Live drain lag: entries appended but not yet applied by the IB.
    /// 0 once the build closes the side-file.
    #[must_use]
    pub fn backlog(&self) -> u64 {
        self.len()
            .saturating_sub(self.drained.load(Ordering::Relaxed))
    }

    /// Crash: contents are volatile (rebuilt from redo), the closed
    /// flag is re-derived from the catalog state.
    pub fn crash(&self) {
        let mut g = self.inner.lock();
        g.entries.clear();
        g.closed = false;
        g.first_lsn = 0;
        self.drained.store(0, Ordering::Relaxed);
    }

    /// Mark closed without a position check (restart of a build whose
    /// completion was already durable in the catalog).
    pub fn force_close(&self) {
        self.inner.lock().closed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mohan_common::{IndexEntry, Rid};

    fn op(k: i64, insert: bool) -> SideFileOp {
        SideFileOp {
            insert,
            entry: IndexEntry::from_i64(k, Rid::new(1, k as u16)),
        }
    }

    #[test]
    fn append_read_in_order() {
        let sf = SideFile::new();
        assert_eq!(sf.append(op(1, true)), Append::Appended(0));
        assert_eq!(sf.append(op(2, false)), Append::Appended(1));
        let got = sf.read(0, 10);
        assert_eq!(got.len(), 2);
        assert!(got[0].insert && !got[1].insert);
        assert_eq!(sf.read(1, 10).len(), 1);
    }

    #[test]
    fn close_only_when_fully_drained() {
        let sf = SideFile::new();
        sf.append(op(1, true));
        assert!(!sf.try_close(0));
        assert!(sf.try_close(1));
        assert!(sf.closed());
    }

    #[test]
    fn appends_after_close_are_refused() {
        let sf = SideFile::new();
        assert!(sf.try_close(0));
        assert_eq!(sf.append(op(9, true)), Append::BuildDone);
        assert_eq!(sf.len(), 0);
    }

    #[test]
    fn close_race_never_loses_an_entry() {
        // Hammer append vs try_close from two threads: either the
        // entry lands before the close (and the close fails) or the
        // appender is told the build is done.
        use std::sync::Arc;
        for _ in 0..200 {
            let sf = Arc::new(SideFile::new());
            let sf2 = Arc::clone(&sf);
            let closer = std::thread::spawn(move || sf2.try_close(0));
            let res = sf.append(op(1, true));
            let closed = closer.join().unwrap();
            match res {
                Append::Appended(_) => assert!(!closed, "closed while an entry was pending"),
                Append::BuildDone => assert!(closed),
            }
        }
    }

    #[test]
    fn crash_clears_and_reopens() {
        let sf = SideFile::new();
        sf.append(op(1, true));
        assert!(sf.try_close(1));
        sf.crash();
        assert_eq!(sf.len(), 0);
        assert!(!sf.closed());
        sf.redo_append(op(1, true), Lsn(9));
        assert_eq!(sf.len(), 1);
        assert_eq!(sf.open_first_lsn(), Some(Lsn(9)));
    }

    #[test]
    fn first_logged_lsn_bounds_open_history() {
        let sf = SideFile::new();
        // Unlogged appends leave no bound.
        sf.append(op(1, true));
        assert_eq!(sf.open_first_lsn(), None);
        // The first *logged* append sets it; later ones don't move it.
        sf.append_with(op(2, true), |_| Lsn(41));
        sf.append_with(op(3, true), |_| Lsn(55));
        assert_eq!(sf.open_first_lsn(), Some(Lsn(41)));
        // A closed side-file no longer constrains checkpoints.
        assert!(sf.try_close(3));
        assert_eq!(sf.open_first_lsn(), None);
        // Crash clears the bound along with the contents.
        sf.crash();
        assert_eq!(sf.open_first_lsn(), None);
    }

    #[test]
    fn live_backlog_follows_drain_position() {
        let sf = SideFile::new();
        for i in 0..10 {
            sf.append(op(i, true));
        }
        assert_eq!(sf.backlog(), 10);
        sf.set_drained(4);
        assert_eq!(sf.backlog(), 6);
        sf.set_drained(10);
        assert_eq!(sf.backlog(), 0);
        // A stale (over-large) position never underflows.
        sf.set_drained(99);
        assert_eq!(sf.backlog(), 0);
        sf.crash();
        assert_eq!(sf.backlog(), 0);
    }

    #[test]
    fn backlog_gauge_tracks_peak() {
        let sf = SideFile::new();
        for i in 0..10 {
            sf.append(op(i, true));
        }
        let _ = sf.read(0, 2);
        let _ = sf.read(8, 2);
        assert_eq!(sf.max_backlog.get(), 10);
    }
}
