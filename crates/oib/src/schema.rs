//! Records, index definitions and key extraction.
//!
//! A record is a tuple of `i64` columns; an index key value is the
//! order-preserving concatenation of the values of the indexed columns
//! (§1.1: "key value is the concatenation of the values of the columns
//! (fields) of the table over which the index is defined").

use mohan_common::{Error, IndexEntry, IndexId, KeyValue, Result, Rid, TableId};

/// A table row: a fixed tuple of integer columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record(pub Vec<i64>);

impl Record {
    /// Construct from column values.
    #[must_use]
    pub fn new(cols: Vec<i64>) -> Record {
        Record(cols)
    }

    /// Serialize for heap storage.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.0.len() * 8);
        out.extend_from_slice(&(self.0.len() as u16).to_be_bytes());
        for &c in &self.0 {
            out.extend_from_slice(&c.to_be_bytes());
        }
        out
    }

    /// Deserialize from heap bytes.
    pub fn decode(buf: &[u8]) -> Result<Record> {
        if buf.len() < 2 {
            return Err(Error::Corruption("record too short".into()));
        }
        let n = u16::from_be_bytes([buf[0], buf[1]]) as usize;
        if buf.len() < 2 + n * 8 {
            return Err(Error::Corruption("record truncated".into()));
        }
        let mut cols = Vec::with_capacity(n);
        for i in 0..n {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[2 + i * 8..2 + i * 8 + 8]);
            cols.push(i64::from_be_bytes(b));
        }
        Ok(Record(cols))
    }
}

/// Which build algorithm an index was (or is being) created with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildAlgorithm {
    /// The pre-paper baseline: quiesce all updates for the whole build.
    Offline,
    /// §2: no side-file; transactions maintain the index directly
    /// while the IB inserts into the same tree.
    Nsf,
    /// §3: bottom-up build plus a side-file drained at the end; no
    /// quiesce at any point.
    Sf,
}

impl BuildAlgorithm {
    /// Stable tag for catalog serialization.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            BuildAlgorithm::Offline => 0,
            BuildAlgorithm::Nsf => 1,
            BuildAlgorithm::Sf => 2,
        }
    }

    /// Inverse of [`BuildAlgorithm::tag`].
    #[must_use]
    pub fn from_tag(t: u8) -> Option<BuildAlgorithm> {
        match t {
            0 => Some(BuildAlgorithm::Offline),
            1 => Some(BuildAlgorithm::Nsf),
            2 => Some(BuildAlgorithm::Sf),
            _ => None,
        }
    }
}

/// Definition of an index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index identity.
    pub id: IndexId,
    /// Human-readable name.
    pub name: String,
    /// Table indexed.
    pub table: TableId,
    /// Key-value uniqueness enforced?
    pub unique: bool,
    /// Column positions forming the key, in order.
    pub key_cols: Vec<usize>,
}

impl IndexDef {
    /// Extract this index's key value from a record.
    pub fn key_of(&self, rec: &Record) -> Result<KeyValue> {
        let mut vals = Vec::with_capacity(self.key_cols.len());
        for &c in &self.key_cols {
            let v = rec
                .0
                .get(c)
                .ok_or_else(|| Error::Corruption(format!("column {c} out of range")))?;
            vals.push(*v);
        }
        Ok(KeyValue::from_i64s(&vals))
    }

    /// Extract the full `<key value, RID>` entry.
    pub fn entry_of(&self, rec: &Record, rid: Rid) -> Result<IndexEntry> {
        Ok(IndexEntry::new(self.key_of(rec)?, rid))
    }

    /// Extract the key from encoded record bytes.
    pub fn key_of_bytes(&self, data: &[u8]) -> Result<KeyValue> {
        self.key_of(&Record::decode(data)?)
    }

    /// Catalog serialization.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.id.0.to_be_bytes());
        out.extend_from_slice(&self.table.0.to_be_bytes());
        out.push(u8::from(self.unique));
        out.extend_from_slice(&(self.name.len() as u16).to_be_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&(self.key_cols.len() as u16).to_be_bytes());
        for &c in &self.key_cols {
            out.extend_from_slice(&(c as u16).to_be_bytes());
        }
        out
    }

    /// Catalog deserialization; advances `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<IndexDef> {
        let err = || Error::Corruption("truncated index def".into());
        let rd_u32 = |buf: &[u8], pos: &mut usize| -> Result<u32> {
            let b: [u8; 4] = buf.get(*pos..*pos + 4).ok_or_else(err)?.try_into().unwrap();
            *pos += 4;
            Ok(u32::from_be_bytes(b))
        };
        let rd_u16 = |buf: &[u8], pos: &mut usize| -> Result<u16> {
            let b: [u8; 2] = buf.get(*pos..*pos + 2).ok_or_else(err)?.try_into().unwrap();
            *pos += 2;
            Ok(u16::from_be_bytes(b))
        };
        let id = IndexId(rd_u32(buf, pos)?);
        let table = TableId(rd_u32(buf, pos)?);
        let unique = *buf.get(*pos).ok_or_else(err)? != 0;
        *pos += 1;
        let nlen = rd_u16(buf, pos)? as usize;
        let name = String::from_utf8(buf.get(*pos..*pos + nlen).ok_or_else(err)?.to_vec())
            .map_err(|_| err())?;
        *pos += nlen;
        let ncols = rd_u16(buf, pos)? as usize;
        let mut key_cols = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            key_cols.push(rd_u16(buf, pos)? as usize);
        }
        Ok(IndexDef {
            id,
            name,
            table,
            unique,
            key_cols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let r = Record::new(vec![1, -2, i64::MAX]);
        assert_eq!(Record::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn record_decode_rejects_garbage() {
        assert!(Record::decode(&[]).is_err());
        assert!(Record::decode(&[0, 3, 1]).is_err());
    }

    #[test]
    fn key_extraction_single_and_composite() {
        let def = IndexDef {
            id: IndexId(1),
            name: "ix".into(),
            table: TableId(1),
            unique: false,
            key_cols: vec![2, 0],
        };
        let r = Record::new(vec![10, 20, 30]);
        assert_eq!(def.key_of(&r).unwrap(), KeyValue::from_i64s(&[30, 10]));
        assert!(def.key_of(&Record::new(vec![1])).is_err());
    }

    #[test]
    fn key_of_bytes_matches_key_of() {
        let def = IndexDef {
            id: IndexId(1),
            name: "ix".into(),
            table: TableId(1),
            unique: true,
            key_cols: vec![0],
        };
        let r = Record::new(vec![77, 5]);
        assert_eq!(
            def.key_of_bytes(&r.encode()).unwrap(),
            def.key_of(&r).unwrap()
        );
    }

    #[test]
    fn def_roundtrip() {
        let def = IndexDef {
            id: IndexId(9),
            name: "orders_by_customer".into(),
            table: TableId(3),
            unique: true,
            key_cols: vec![1, 4],
        };
        let bytes = def.encode();
        let mut pos = 0;
        assert_eq!(IndexDef::decode(&bytes, &mut pos).unwrap(), def);
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn algorithm_tags_roundtrip() {
        for a in [
            BuildAlgorithm::Offline,
            BuildAlgorithm::Nsf,
            BuildAlgorithm::Sf,
        ] {
            assert_eq!(BuildAlgorithm::from_tag(a.tag()), Some(a));
        }
        assert_eq!(BuildAlgorithm::from_tag(9), None);
    }
}
