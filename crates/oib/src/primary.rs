//! §6.2 storage-model extension: building a secondary index by
//! scanning the clustering *primary index* instead of the heap.
//!
//! "In SF, in the place of Current-RID, we would use the current-key
//! as the scan position in the primary index. Since the primary key
//! has to be unique, this position also would be a unique one in the
//! index."
//!
//! Substitution note (see DESIGN.md): record payloads still live in
//! heap pages — what this module changes is the *scan order* (primary
//! key order via the index leaf chain) and the *visibility rule* (a
//! [`KeyCursor`] compared against each record's primary key). That is
//! precisely the behavioural delta §6.2 describes.
//!
//! The scan snapshots one leaf at a time under its share latch and
//! advances the key cursor to the leaf's last key before unlatching;
//! operations racing on the boundary key go to the side-file and are
//! reconciled at drain time (duplicate-insert rejection / missing-key
//! deletes), so no key is lost or duplicated.

use crate::build::IndexSpec;
use crate::engine::Db;
use crate::progress::{self, BuildProgress};
use crate::runtime::{IndexRuntime, IndexState, KeyCursor};
use crate::schema::{BuildAlgorithm, IndexDef, Record};
use mohan_btree::scan::for_each_leaf;
use mohan_btree::{BulkLoader, Node};
use mohan_common::{Error, IndexEntry, IndexId, Result, Rid};
use mohan_sort::{ExternalSort, MergeCheckpoint};
use std::sync::Arc;

/// Build a secondary index with SF, scanning the (complete, unique)
/// primary index `primary` in key order.
pub fn build_secondary_via_primary(
    db: &Arc<Db>,
    primary: IndexId,
    spec: IndexSpec,
) -> Result<IndexId> {
    let prim = db.index(primary)?;
    if prim.state() != IndexState::Complete || !prim.def.unique {
        return Err(Error::Corruption(format!(
            "{primary} is not a complete unique primary index"
        )));
    }
    let table = prim.def.table;
    let def = IndexDef {
        id: db.next_index_id(),
        name: spec.name.clone(),
        table,
        unique: spec.unique,
        key_cols: spec.key_cols.clone(),
    };
    let mut rt = IndexRuntime::new(def, BuildAlgorithm::Sf, IndexState::SfBuilding, &db.cfg);
    rt.key_cursor = Some(KeyCursor::for_pk_cols(prim.def.key_cols.clone()));
    let idx = Arc::new(rt);
    db.wal.flush_all();
    idx.tree.force_all(db.wal.flushed_lsn())?;
    db.register_index(Arc::clone(&idx));
    let id = idx.def.id;

    let result = (|| -> Result<()> {
        // Scan the primary index leaf by leaf: snapshot the live
        // entries under the latch, advance the cursor to the leaf's
        // last key, then read the records and feed the sorter.
        let store = idx.run_store();
        let mut rf = mohan_sort::RunFormation::new(Arc::clone(&store), db.cfg.sort_workspace_keys);
        let mut seq = 0u64;
        let heap = db.table(table)?;
        let kc = idx.key_cursor.as_ref().expect("cursor installed");
        let mut leaves: Vec<Vec<(mohan_common::KeyValue, Rid)>> = Vec::new();
        // Two-stage per leaf: copy under latch + advance cursor...
        for_each_leaf(&prim.tree, |_page, node| {
            let mut batch = Vec::new();
            for le in node.leaf_entries() {
                if !le.pseudo_deleted {
                    batch.push((le.entry.key.clone(), le.entry.rid));
                }
            }
            // Advance the cursor to the leaf's *high fence* — the
            // upper bound of its whole key range — not just its last
            // existing key: a new primary key landing between the last
            // key and the fence belongs to this (already walked) leaf
            // and must count as visible.
            match node {
                Node::Leaf {
                    high_fence: Some(f),
                    ..
                } => kc.advance(f.key.clone()),
                _ => {
                    if let Some((last_key, _)) = batch.last() {
                        kc.advance(last_key.clone());
                    }
                }
            }
            if matches!(node, Node::Leaf { next: None, .. }) {
                // Rightmost leaf: finish the cursor *under its latch*.
                // A primary-entry insert above the walked key space
                // needs this leaf's X latch, so it either landed before
                // the walk (snapshotted) or will see the done flag and
                // go to the side-file.
                kc.finish();
            }
            leaves.push(batch);
            // ...then process the snapshot. (The callback runs under
            // the leaf latch; the heap reads below happen after
            // `for_each_leaf` moves on, which is safe because the
            // cursor already covers this leaf.)
        })?;
        // The key-space walk is complete: everything from here on —
        // including primary keys above the highest walked key, the
        // key-model analog of records on pages beyond the RID scan's
        // end bound — is the transactions' responsibility. Finish the
        // cursor *before* the deferred heap reads so operations racing
        // those reads go to the side-file, where drain reconciliation
        // (duplicate rejection, missing-key deletes) absorbs the
        // overlap.
        idx.finish_scan();
        for batch in leaves {
            for (_pk, rid) in batch {
                match heap.read(rid) {
                    Ok(data) => {
                        let rec = Record::decode(&data)?;
                        let entry = idx.def.entry_of(&rec, rid)?;
                        seq += 1;
                        rf.push(entry, seq)?;
                    }
                    Err(Error::NotFound(_)) => {
                        // Deleted behind the cursor: the deleter's
                        // side-file entry (or the absence of the key)
                        // covers it.
                    }
                    Err(e) => return Err(e),
                }
                db.failpoints.hit("primary.scan.record")?;
            }
        }
        let runs = rf.finish()?;

        // Reduce + bottom-up load, same as the RID-based SF build.
        let ext = ExternalSort {
            store,
            workspace: db.cfg.sort_workspace_keys,
            fan_in: db.cfg.merge_fan_in,
            checkpoint_every: db.cfg.merge_checkpoint_every_keys,
        };
        let finals = ext.reduce_runs(runs, &mut |_| Ok(()))?;
        let merge = mohan_sort::Merge::resume(
            &ext.store,
            &MergeCheckpoint {
                counters: vec![0; finals.len()],
                inputs: finals,
                emitted: 0,
            },
        )?;
        let mut sorted: Vec<IndexEntry> = merge.collect();
        // The sorter ran on a sequence number, not the entry order of
        // the *secondary* key — entries are already key-ordered by the
        // sort itself; deduplicate exact repeats from boundary overlap.
        sorted.dedup();
        let mut loader = BulkLoader::new(&idx.tree)?;
        if idx.def.unique {
            for w in sorted.windows(2) {
                if w[0].key == w[1].key {
                    return Err(Error::UniqueViolation {
                        index: id,
                        existing: w[0].rid,
                    });
                }
            }
        }
        for e in sorted {
            loader.append(e)?;
        }
        db.wal.flush_all();
        loader.finish(db.wal.flushed_lsn())?;
        progress::store(db, id, &BuildProgress::Draining { pos: 0 });
        crate::build::sf_drain_phase(db, &idx, 0, &crate::build::BuildOptions::default())
    })();

    match result {
        Ok(()) => Ok(id),
        Err(e) => {
            if !e.is_crash() {
                db.unregister_index(id);
                progress::clear(db, id);
            }
            Err(e)
        }
    }
}
