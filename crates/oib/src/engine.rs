//! The transactional engine: tables, indexes, transactions, engine
//! checkpoints, crash simulation and ARIES restart.
//!
//! Rollback implements Figure 2: when a data-page operation is undone,
//! the count of visible indexes recorded in its log record is compared
//! against the indexes visible *now*, and index changes are
//! compensated through the right mechanism — a side-file entry for an
//! index still under SF construction, a direct root-to-leaf logical
//! undo for an index that became visible (or whose side-file era
//! ended) since the forward operation, and nothing for indexes whose
//! maintenance the transaction logged itself.

use crate::runtime::{IndexRuntime, IndexState};
use crate::schema::{BuildAlgorithm, Record};
use mohan_common::failpoint::{FailpointSet, Failpoints};
use mohan_common::stats::MaxGauge;
use mohan_common::{EngineConfig, Error, IndexEntry, IndexId, Lsn, Result, Rid, TableId, TxId};
use mohan_heap::HeapTable;
use mohan_lock::{LockManager, LockMode, LockName};
use mohan_obs::Registry;
use mohan_storage::blob::BlobStore;
use mohan_wal::recovery::RecoveryStats;
use mohan_wal::{LogManager, LogPayload, LogRecord, RecKind, RecoveryTarget, SideFileOp};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How a transaction's key change reaches an index (Figure 1 / 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mechanism {
    /// Insert/delete the key in the tree directly, with logging.
    Direct,
    /// Append `<operation, key>` to the index's side-file.
    SideFile,
}

/// The engine.
pub struct Db {
    /// Configuration.
    pub cfg: EngineConfig,
    /// Write-ahead log.
    pub wal: LogManager,
    /// Lock manager.
    pub locks: LockManager,
    /// Stable metadata area (checkpoints, catalog).
    pub blobs: BlobStore,
    /// Crash-injection points.
    pub failpoints: Failpoints,
    /// Metrics registry + trace ring for this engine instance. WAL,
    /// cache, latch and build metrics register here under the dotted
    /// namespace DESIGN.md documents; the server layer adds its own.
    pub obs: Arc<Registry>,
    /// High-water worker count across every build this engine ran
    /// (the `build.sort_workers` gauge).
    pub build_sort_workers: MaxGauge,
    tables: RwLock<HashMap<TableId, Arc<HeapTable>>>,
    indexes: RwLock<Vec<Arc<IndexRuntime>>>,
    txs: Mutex<HashMap<TxId, Lsn>>,
    /// Slots reserved by each transaction's deletes; released (made
    /// reusable) at commit, restored in place by rollback.
    tx_deletes: Mutex<HashMap<TxId, Vec<(TableId, Rid)>>>,
    next_tx: AtomicU64,
    next_index: AtomicU32,
    /// Dynamic role. Seeded from `cfg.replica`; promotion flips it to
    /// false at runtime, which re-enables writes and stops redo from
    /// applying shipped `CatalogUpdate` snapshots.
    replica: AtomicBool,
    /// Replication lag in LSNs, published by the follower's apply loop
    /// and read by the server's staleness gate (`max_lag_lsn`). Always
    /// 0 on a primary.
    repl_lag: AtomicU64,
}

impl Db {
    /// Create an empty engine.
    #[must_use]
    pub fn new(cfg: EngineConfig) -> Arc<Db> {
        let lock_timeout = Duration::from_millis(cfg.lock_timeout_ms);
        let replica = AtomicBool::new(cfg.replica);
        let db = Arc::new(Db {
            cfg,
            wal: LogManager::new(),
            locks: LockManager::new(lock_timeout),
            blobs: BlobStore::new(),
            failpoints: FailpointSet::new(),
            obs: Registry::new(),
            build_sort_workers: MaxGauge::new(),
            tables: RwLock::new(HashMap::new()),
            indexes: RwLock::new(Vec::new()),
            txs: Mutex::new(HashMap::new()),
            tx_deletes: Mutex::new(HashMap::new()),
            next_tx: AtomicU64::new(1),
            next_index: AtomicU32::new(1),
            replica,
            repl_lag: AtomicU64::new(0),
        });
        db.register_observability();
        db
    }

    /// Publish the engine's pre-existing stats counters as gauges and
    /// adopt subsystem-owned histograms under the public namespace.
    /// Gauges capture a `Weak<Db>` so the registry (held by long-lived
    /// snapshot consumers) never keeps the engine alive.
    fn register_observability(self: &Arc<Db>) {
        self.wal.set_trace_sink(self.obs.trace_handle());
        self.locks.set_trace_sink(self.obs.trace_handle());
        self.obs
            .adopt_histogram("wal.flush_us", Arc::clone(&self.wal.stats.flush_us));
        self.obs.adopt_histogram(
            "wal.coalesce_depth",
            Arc::clone(&self.wal.stats.coalesce_depth),
        );
        let gauge = |name: &str, f: fn(&Db) -> u64| {
            let w = Arc::downgrade(self);
            self.obs
                .gauge_fn(name, move || w.upgrade().map_or(0, |db| f(&db)));
        };
        gauge("wal.records", |db| db.wal.stats.records.get());
        gauge("wal.bytes", |db| db.wal.stats.bytes.get());
        gauge("wal.flushes", |db| db.wal.stats.flushes.get());
        gauge("wal.group_flush_coalesced", |db| {
            db.wal.stats.group_flush_coalesced.get()
        });
        gauge("wal.ib_records", |db| db.wal.stats.ib_records.get());
        gauge("cache.hit", |db| db.fold_caches(|s| s.hits.get()));
        gauge("cache.miss", |db| db.fold_caches(|s| s.misses.get()));
        gauge("cache.force", |db| db.fold_caches(|s| s.forces.get()));
        gauge("build.drain_lag", |db| {
            db.indexes
                .read()
                .iter()
                .filter(|i| i.state() == IndexState::SfBuilding)
                .map(|i| i.side_file.backlog())
                .sum()
        });
        gauge("build.side_file_appended", |db| {
            db.indexes
                .read()
                .iter()
                .map(|i| i.side_file.appended.get())
                .sum()
        });
        gauge("build.drain_passes", |db| {
            db.indexes
                .read()
                .iter()
                .map(|i| i.side_file.drain_passes.get())
                .sum()
        });
        gauge("build.sort_workers", |db| db.build_sort_workers.get());
        gauge("build.run_bytes", |db| {
            db.indexes
                .read()
                .iter()
                .filter_map(|i| i.sort_store.lock().as_ref().map(|rs| rs.raw_bytes.get()))
                .sum()
        });
        gauge("build.run_bytes_compressed", |db| {
            db.indexes
                .read()
                .iter()
                .filter_map(|i| i.sort_store.lock().as_ref().map(|rs| rs.stored_bytes.get()))
                .sum()
        });
        self.obs
            .adopt_histogram("lock.wait_us", Arc::clone(&self.locks.stats.wait_us));
        gauge("lock.calls", |db| db.locks.stats.calls.get());
        gauge("lock.waits", |db| db.locks.stats.waits.get());
        gauge("lock.timeouts", |db| db.locks.stats.timeouts.get());
        gauge("engine.active_txs", |db| db.active_txs() as u64);
        gauge("latch.wait_events", |db| {
            let mut n = 0;
            for t in db.tables.read().values() {
                n += t.cache.latch_stats().wait_events.get();
            }
            for i in db.indexes.read().iter() {
                n += i.tree.cache.latch_stats().wait_events.get();
            }
            n
        });
    }

    /// Sum `f` over every page cache in the engine (all heap tables
    /// plus all index trees).
    fn fold_caches(&self, f: fn(&mohan_storage::cache::CacheStats) -> u64) -> u64 {
        let mut n = 0;
        for t in self.tables.read().values() {
            n += f(&t.cache.stats);
        }
        for i in self.indexes.read().iter() {
            n += f(&i.tree.cache.stats);
        }
        n
    }

    // ----- tables and indexes ---------------------------------------

    /// Create a table.
    pub fn create_table(&self, id: TableId) -> Arc<HeapTable> {
        let t = Arc::new(HeapTable::new(
            id,
            self.cfg.data_page_size,
            self.cfg.prefetch_pages,
        ));
        self.obs
            .adopt_histogram("latch.wait_us", Arc::clone(&t.cache.latch_stats().wait_us));
        self.tables.write().insert(id, Arc::clone(&t));
        t
    }

    /// Ids of every existing table (SQL catalogs enumerate these to
    /// name tables created outside SQL).
    #[must_use]
    pub fn table_ids(&self) -> Vec<TableId> {
        let mut ids: Vec<TableId> = self.tables.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Look up a table.
    pub fn table(&self, id: TableId) -> Result<Arc<HeapTable>> {
        self.tables
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("{id}")))
    }

    /// All indexes of `table`, in creation (= visibility) order.
    #[must_use]
    pub fn indexes_of(&self, table: TableId) -> Vec<Arc<IndexRuntime>> {
        self.indexes
            .read()
            .iter()
            .filter(|i| i.def.table == table)
            .cloned()
            .collect()
    }

    /// Look up an index.
    pub fn index(&self, id: IndexId) -> Result<Arc<IndexRuntime>> {
        self.indexes
            .read()
            .iter()
            .find(|i| i.def.id == id)
            .cloned()
            .ok_or(Error::NoSuchIndex(id))
    }

    /// Allocate a fresh index id.
    pub fn next_index_id(&self) -> IndexId {
        IndexId(self.next_index.fetch_add(1, Ordering::Relaxed))
    }

    /// Register a new index descriptor and persist the catalog.
    pub(crate) fn register_index(&self, rt: Arc<IndexRuntime>) {
        self.obs.adopt_histogram(
            "latch.wait_us",
            Arc::clone(&rt.tree.cache.latch_stats().wait_us),
        );
        self.indexes.write().push(rt);
        self.persist_catalog();
    }

    /// Remove an index descriptor (drop / cancelled build).
    pub(crate) fn unregister_index(&self, id: IndexId) {
        self.indexes.write().retain(|i| i.def.id != id);
        self.persist_catalog();
    }

    /// Durably record every index's descriptor + state. Called at
    /// creation, completion and drop — the points the paper treats as
    /// catalog updates.
    pub(crate) fn persist_catalog(&self) {
        let idxs = self.indexes.read();
        let mut out = Vec::new();
        out.extend_from_slice(&(idxs.len() as u32).to_be_bytes());
        for i in idxs.iter() {
            let entry = i.encode_catalog();
            out.extend_from_slice(&(entry.len() as u32).to_be_bytes());
            out.extend_from_slice(&entry);
        }
        // Ship the snapshot down the WAL so a streaming follower sees
        // index DDL at its log position. The primary's own restart
        // ignores the record: there the blob is authoritative.
        self.wal.append(
            TxId(0),
            Lsn::NULL,
            RecKind::RedoOnly,
            LogPayload::CatalogUpdate { bytes: out.clone() },
        );
        self.blobs.put("catalog", out);
    }

    /// Replica-side application of a [`LogPayload::CatalogUpdate`]
    /// snapshot: reconcile the runtime index list with the shipped
    /// catalog. When an index's *completion* arrives, the replica
    /// materializes it from its own heap — which at this log position
    /// is identical to the primary's, so the rebuild is equivalent to
    /// the primary's unlogged, page-forced bulk load. That also makes
    /// any index records the stream carried *before* the index's
    /// creation record (the registration/first-maintenance race)
    /// harmless: the completion rebuild supersedes them.
    pub(crate) fn apply_catalog_update(&self, bytes: &[u8]) -> Result<()> {
        let err = || Error::Corruption("bad catalog update".into());
        let n: [u8; 4] = bytes.get(0..4).ok_or_else(err)?.try_into().unwrap();
        let n = u32::from_be_bytes(n) as usize;
        let mut pos = 4;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let len: [u8; 4] = bytes.get(pos..pos + 4).ok_or_else(err)?.try_into().unwrap();
            pos += 4;
            let len = u32::from_be_bytes(len) as usize;
            let chunk = bytes.get(pos..pos + len).ok_or_else(err)?;
            let mut epos = 0;
            entries.push(crate::runtime::CatalogEntry::decode(chunk, &mut epos)?);
            pos += len;
        }
        let mut completed = Vec::new();
        {
            let mut idxs = self.indexes.write();
            // Dropped on the primary ⇒ dropped here.
            idxs.retain(|i| entries.iter().any(|e| e.def.id == i.def.id));
            for e in entries {
                // Keep the id allocator ahead of everything the
                // primary ever created, in case this engine is later
                // promoted.
                self.next_index.fetch_max(e.def.id.0 + 1, Ordering::Relaxed);
                if let Some(rt) = idxs.iter().find(|i| i.def.id == e.def.id) {
                    let was = rt.state();
                    rt.apply_catalog_entry(&e);
                    if was != IndexState::Complete && e.state == IndexState::Complete {
                        completed.push(Arc::clone(rt));
                    }
                } else {
                    let rt = Arc::new(IndexRuntime::new(
                        e.def.clone(),
                        e.algorithm,
                        e.state,
                        &self.cfg,
                    ));
                    rt.apply_catalog_entry(&e);
                    self.obs.adopt_histogram(
                        "latch.wait_us",
                        Arc::clone(&rt.tree.cache.latch_stats().wait_us),
                    );
                    if e.state == IndexState::Complete {
                        completed.push(Arc::clone(&rt));
                    }
                    idxs.push(rt);
                }
            }
        }
        // Keep the local blob coherent so the replica's own restart
        // starts from the same catalog it had applied.
        self.blobs.put("catalog", bytes.to_vec());
        for rt in completed {
            self.replica_materialize(&rt)?;
        }
        Ok(())
    }

    /// Rebuild a completed index's tree from the local heap (see
    /// [`Db::apply_catalog_update`]).
    fn replica_materialize(&self, idx: &Arc<IndexRuntime>) -> Result<()> {
        idx.tree.clear();
        for (rid, rec) in self.table_scan(idx.def.table)? {
            Self::tree_ensure_live(idx, &idx.def.entry_of(&rec, rid)?)?;
        }
        Ok(())
    }

    fn load_catalog(&self) -> Result<()> {
        let Some(bytes) = self.blobs.get("catalog") else {
            return Ok(());
        };
        let idxs = self.indexes.read();
        let mut pos = 0;
        let n: [u8; 4] = bytes
            .get(0..4)
            .ok_or_else(|| Error::Corruption("bad catalog".into()))?
            .try_into()
            .unwrap();
        pos += 4;
        let n = u32::from_be_bytes(n) as usize;
        if n != idxs.len() {
            return Err(Error::Corruption(format!(
                "catalog has {n} indexes, runtime has {}",
                idxs.len()
            )));
        }
        for rt in idxs.iter() {
            let len: [u8; 4] = bytes
                .get(pos..pos + 4)
                .ok_or_else(|| Error::Corruption("bad catalog".into()))?
                .try_into()
                .unwrap();
            pos += 4;
            let len = u32::from_be_bytes(len) as usize;
            let mut epos = 0;
            rt.restore_catalog(&bytes[pos..pos + len], &mut epos)?;
            pos += len;
            // Conservative post-crash visibility: an SF build whose
            // exact Current-RID died with the crash treats *everything*
            // as visible. Duplicate-insert rejection at drain time
            // absorbs the overlap with the rescanned key range (see
            // DESIGN.md §6).
            if rt.state() == IndexState::SfBuilding {
                rt.finish_scan_conservative();
            }
        }
        Ok(())
    }

    // ----- transactions ----------------------------------------------

    /// Begin an ordinary transaction.
    pub fn begin(&self) -> TxId {
        let tx = TxId(self.next_tx.fetch_add(1, Ordering::Relaxed));
        let lsn = self
            .wal
            .append(tx, Lsn::NULL, RecKind::RedoOnly, LogPayload::TxBegin);
        self.txs.lock().insert(tx, lsn);
        tx
    }

    /// Begin an index-builder transaction (log volume attributed to
    /// the IB).
    pub fn begin_ib(&self) -> TxId {
        let tx = self.begin();
        self.wal.register_ib_tx(tx);
        tx
    }

    /// Number of active transactions.
    #[must_use]
    pub fn active_txs(&self) -> usize {
        self.txs.lock().len()
    }

    pub(crate) fn ensure_active(&self, tx: TxId) -> Result<()> {
        if self.txs.lock().contains_key(&tx) {
            Ok(())
        } else {
            Err(Error::TxNotActive(tx))
        }
    }

    /// Append a log record for `tx`, chaining `prev_lsn`.
    pub(crate) fn log(&self, tx: TxId, kind: RecKind, payload: LogPayload) -> Result<Lsn> {
        let mut txs = self.txs.lock();
        let last = txs.get_mut(&tx).ok_or(Error::TxNotActive(tx))?;
        let lsn = self.wal.append(tx, *last, kind, payload);
        *last = lsn;
        Ok(lsn)
    }

    /// Commit: log, force the log, release locks and reserved slots.
    pub fn commit(&self, tx: TxId) -> Result<()> {
        let lsn = self.log(tx, RecKind::RedoOnly, LogPayload::TxCommit)?;
        self.wal.flush_to(lsn);
        if let Some(deleted) = self.tx_deletes.lock().remove(&tx) {
            for (table, rid) in deleted {
                if let Ok(t) = self.table(table) {
                    let _ = t.release_slot(rid);
                }
            }
        }
        self.locks.release_all(tx);
        self.txs.lock().remove(&tx);
        Ok(())
    }

    /// Record that `tx` deleted `rid` (slot released at commit).
    pub(crate) fn note_delete(&self, tx: TxId, table: TableId, rid: Rid) {
        self.tx_deletes
            .lock()
            .entry(tx)
            .or_default()
            .push((table, rid));
    }

    /// Roll back: undo the whole chain with CLRs, then end.
    pub fn rollback(&self, tx: TxId) -> Result<()> {
        let last = {
            let mut txs = self.txs.lock();
            let last = *txs.get(&tx).ok_or(Error::TxNotActive(tx))?;
            let abort = self
                .wal
                .append(tx, last, RecKind::RedoOnly, LogPayload::TxAbort);
            txs.insert(tx, abort);
            abort
        };
        let new_last = mohan_wal::rollback_tx(&self.wal, self, tx, last, Lsn::NULL)?;
        let end = self
            .wal
            .append(tx, new_last, RecKind::RedoOnly, LogPayload::TxEnd);
        self.wal.flush_to(end);
        // Rollback restored the deleted records in place; the
        // reservations simply lapse.
        self.tx_deletes.lock().remove(&tx);
        self.locks.release_all(tx);
        self.txs.lock().remove(&tx);
        Ok(())
    }

    /// IB helper: commit the current builder transaction and open the
    /// next one (periodic checkpoint commits, §2.2.3 / §3.2.5).
    pub fn ib_commit_cycle(&self, tx: &mut TxId) -> Result<()> {
        self.commit(*tx)?;
        *tx = self.begin_ib();
        Ok(())
    }

    // ----- checkpoint / crash / restart --------------------------------

    /// Engine checkpoint: force the log, then every page of every
    /// table and index. Retries if concurrent activity outruns the
    /// flush.
    pub fn checkpoint(&self) -> Result<()> {
        let mut last_err = None;
        for _ in 0..5 {
            self.wal.flush_all();
            let flushed = self.wal.flushed_lsn();
            let result = (|| -> Result<()> {
                for t in self.tables.read().values() {
                    t.cache.force_all(flushed)?;
                }
                for i in self.indexes.read().iter() {
                    i.tree.force_all(flushed)?;
                }
                Ok(())
            })();
            match result {
                Ok(()) => {
                    // Redo after a crash may start at the flushed
                    // horizon — except that open side-files are
                    // volatile and rebuilt purely from redo of their
                    // logged appends, so the bound must not advance
                    // past any open side-file's first logged append.
                    // Appends racing with this computation get LSNs
                    // above `flushed` and cannot lower the bound.
                    let mut redo_start = flushed;
                    for i in self.indexes.read().iter() {
                        if let Some(first) = i.side_file.open_first_lsn() {
                            redo_start = redo_start.min(Lsn(first.0.saturating_sub(1)));
                        }
                    }
                    let lsn = self.wal.append(
                        TxId(0),
                        Lsn::NULL,
                        RecKind::RedoOnly,
                        LogPayload::Checkpoint { redo_start },
                    );
                    self.wal.flush_to(lsn);
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| Error::Corruption("checkpoint failed".into())))
    }

    /// Simulated system failure: every volatile structure is dropped.
    pub fn simulate_crash(&self) {
        self.wal.crash();
        self.locks.crash();
        self.txs.lock().clear();
        self.tx_deletes.lock().clear();
        for t in self.tables.read().values() {
            t.crash();
        }
        for i in self.indexes.read().iter() {
            i.tree.cache.crash();
            i.side_file.crash();
            if let Some(rs) = &*i.sort_store.lock() {
                rs.crash();
            }
        }
    }

    /// ARIES restart: restore catalog state, then analysis / redo /
    /// undo. Interrupted index builds stay in their building state;
    /// call [`crate::build::resume_build`] to finish them.
    pub fn restart(&self) -> Result<RecoveryStats> {
        self.load_catalog()?;
        let stats = mohan_wal::recover(&self.wal, self)?;
        // Losers' deletes were rolled back (records restored); every
        // still-reserved slot belongs to a committed deleter — free
        // them.
        for t in self.tables.read().values() {
            t.sweep_reserved()?;
        }
        Ok(stats)
    }

    // ----- replication role --------------------------------------------

    /// True while the engine is a replication follower. Seeded from
    /// `cfg.replica`, cleared by [`Db::promote_to_primary`].
    #[must_use]
    pub fn is_replica(&self) -> bool {
        self.replica.load(Ordering::Acquire)
    }

    /// Flip the dynamic role (promotion path; tests).
    pub fn set_replica(&self, replica: bool) {
        self.replica.store(replica, Ordering::Release);
    }

    /// Replication lag in LSNs as last published by the follower's
    /// apply loop (0 on a primary).
    #[must_use]
    pub fn repl_lag(&self) -> u64 {
        self.repl_lag.load(Ordering::Acquire)
    }

    /// Publish the current replication lag (follower apply loop).
    pub fn set_repl_lag(&self, lag: u64) {
        self.repl_lag.store(lag, Ordering::Release);
    }

    /// Keep the local transaction-id allocator above every replicated
    /// transaction id, so transactions begun after promotion never
    /// collide with ids the old primary handed out.
    pub fn bump_tx_floor(&self, tx: TxId) {
        self.next_tx.fetch_max(tx.0 + 1, Ordering::AcqRel);
    }

    /// Promote a replication follower to primary: force the mirrored
    /// log, run ARIES restart over it (redo is idempotent against the
    /// already-applied state thanks to page LSNs; the undo pass rolls
    /// back whatever transactions were still in flight on the dead
    /// primary), then flip the role so writes are accepted. The caller
    /// must have stopped the WAL subscription first — nothing may be
    /// applying records concurrently.
    pub fn promote_to_primary(&self) -> Result<RecoveryStats> {
        self.wal.flush_all();
        let stats = self.restart()?;
        self.set_replica(false);
        self.set_repl_lag(0);
        Ok(stats)
    }

    // ----- visibility planning (Figures 1 and 2) ----------------------

    /// Under the data-page latch: which indexes are visible for this
    /// operation, and through which mechanism. Returns the count to
    /// log and the actions to perform after unlatching.
    pub(crate) fn plan_forward(
        &self,
        table: TableId,
        rid: Rid,
        data: &[u8],
    ) -> (u32, Vec<(Arc<IndexRuntime>, Mechanism)>) {
        let mut count = 0u32;
        let mut acts = Vec::new();
        for idx in self.indexes_of(table) {
            match idx.state() {
                IndexState::Complete | IndexState::NsfBuilding => {
                    count += 1;
                    acts.push((idx, Mechanism::Direct));
                }
                IndexState::SfBuilding => {
                    let pk = idx.key_cursor.as_ref().and_then(|kc| {
                        Record::decode(data).ok().map(|r| {
                            mohan_common::KeyValue::from_i64s(
                                &kc.pk_cols.iter().map(|&c| r.0[c]).collect::<Vec<_>>(),
                            )
                        })
                    });
                    if idx.sf_visible(rid, pk.as_ref()) {
                        count += 1;
                        acts.push((idx, Mechanism::SideFile));
                    }
                }
            }
        }
        (count, acts)
    }

    /// Figure 2: which indexes need *compensation* when this data-page
    /// log record is undone. `logged_count` is the count of visible
    /// indexes the forward operation recorded.
    pub(crate) fn plan_undo(
        &self,
        table: TableId,
        rid: Rid,
        data: &[u8],
        logged_count: u32,
        rec_lsn: Lsn,
    ) -> Vec<(Arc<IndexRuntime>, Mechanism)> {
        let mut acts = Vec::new();
        for (p, idx) in self.indexes_of(table).into_iter().enumerate() {
            let p = p as u32;
            match idx.state() {
                IndexState::SfBuilding => {
                    let pk = idx.key_cursor.as_ref().and_then(|kc| {
                        Record::decode(data).ok().map(|r| {
                            mohan_common::KeyValue::from_i64s(
                                &kc.pk_cols.iter().map(|&c| r.0[c]).collect::<Vec<_>>(),
                            )
                        })
                    });
                    if idx.sf_visible(rid, pk.as_ref()) {
                        acts.push((idx, Mechanism::SideFile));
                    }
                    // Invisible: the IB's (re)scan will extract the
                    // restored state.
                }
                IndexState::NsfBuilding => {
                    if p >= logged_count {
                        // Only reachable in the no-quiesce extension:
                        // the index appeared after the forward op.
                        acts.push((idx, Mechanism::Direct));
                    }
                    // Otherwise the transaction logged its own index
                    // operations; the undo driver handles them.
                }
                IndexState::Complete => {
                    let was_visible = p < logged_count;
                    if !was_visible {
                        // Became visible since the original data
                        // change: traverse the tree (Figure 2).
                        acts.push((idx, Mechanism::Direct));
                    } else if idx.algorithm == BuildAlgorithm::Sf && rec_lsn < idx.completed_lsn() {
                        // Forward maintenance went through the (now
                        // drained) side-file; compensate directly.
                        acts.push((idx, Mechanism::Direct));
                    }
                    // Otherwise the transaction's own index log
                    // records carry the undo.
                }
            }
        }
        acts
    }

    // ----- absolute (idempotent) index state transitions --------------

    /// Make `entry` present and live, replaying a forward insert or
    /// reactivation. Handles unique-replace replays.
    pub(crate) fn tree_ensure_live(idx: &IndexRuntime, entry: &IndexEntry) -> Result<()> {
        use mohan_btree::{InsertMode, InsertOutcome};
        match idx.tree.insert(entry.clone(), InsertMode::Transaction)? {
            InsertOutcome::Inserted => Ok(()),
            InsertOutcome::DuplicateEntry { pseudo: true } => {
                idx.tree.set_pseudo(entry, false)?;
                Ok(())
            }
            InsertOutcome::DuplicateEntry { pseudo: false } => Ok(()),
            InsertOutcome::DuplicateKeyValue { existing, .. } => {
                // Forward execution performed a unique replace; replay
                // it.
                idx.tree.unique_replace(&entry.key, existing, entry.rid)?;
                Ok(())
            }
        }
    }

    /// Make `entry` present, preserving its pseudo flag if it already
    /// exists. Replays the IB's batched inserts: the batch log record
    /// is written *after* the tree mutations it describes, so a
    /// committed pseudo-delete logged in between has a smaller LSN
    /// than the batch yet reflects a *later* tree state — replaying
    /// the batch as "ensure live" would resurrect that deleted key.
    pub(crate) fn tree_ensure_present(idx: &IndexRuntime, entry: &IndexEntry) -> Result<()> {
        use mohan_btree::{InsertMode, InsertOutcome};
        match idx.tree.insert(entry.clone(), InsertMode::Ib)? {
            InsertOutcome::Inserted | InsertOutcome::DuplicateEntry { .. } => Ok(()),
            InsertOutcome::DuplicateKeyValue { .. } => {
                // Unique arbitration already ran forward; the entry's
                // fate is carried by other log records.
                Ok(())
            }
        }
    }

    /// Make `entry` present and pseudo-deleted.
    pub(crate) fn tree_ensure_pseudo(idx: &IndexRuntime, entry: &IndexEntry) -> Result<()> {
        let _ = idx.tree.pseudo_delete_or_tombstone(entry)?;
        Ok(())
    }
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("tables", &self.tables.read().len())
            .field("indexes", &self.indexes.read().len())
            .field("active_txs", &self.active_txs())
            .finish()
    }
}

impl RecoveryTarget for Db {
    fn redo(&self, rec: &LogRecord) -> Result<()> {
        match &rec.payload {
            LogPayload::HeapInsert {
                table, rid, data, ..
            } => self.table(*table)?.redo_insert(*rid, data, rec.lsn),
            LogPayload::HeapDelete { table, rid, .. } => {
                self.table(*table)?.redo_delete(*rid, rec.lsn)
            }
            LogPayload::HeapUpdate {
                table, rid, new, ..
            } => self.table(*table)?.redo_update(*rid, new, rec.lsn),
            LogPayload::IndexInsert { index, entry }
            | LogPayload::IndexReactivate { index, entry } => {
                if let Ok(idx) = self.index(*index) {
                    Self::tree_ensure_live(&idx, entry)?;
                }
                Ok(())
            }
            LogPayload::IndexPseudoDelete { index, entry }
            | LogPayload::IndexInsertTombstone { index, entry } => {
                if let Ok(idx) = self.index(*index) {
                    Self::tree_ensure_pseudo(&idx, entry)?;
                }
                Ok(())
            }
            LogPayload::IndexPhysicalDelete { index, entry, .. } => {
                if let Ok(idx) = self.index(*index) {
                    let _ = idx.tree.physical_delete(entry)?;
                }
                Ok(())
            }
            LogPayload::IndexBulkInsert { index, entries } => {
                if let Ok(idx) = self.index(*index) {
                    for e in entries {
                        Self::tree_ensure_present(&idx, e)?;
                    }
                }
                Ok(())
            }
            LogPayload::IndexBulkRemove { index, entries } => {
                if let Ok(idx) = self.index(*index) {
                    for e in entries {
                        let _ = idx.tree.physical_delete(e)?;
                    }
                }
                Ok(())
            }
            LogPayload::SideFileAppend { index, op } => {
                if let Ok(idx) = self.index(*index) {
                    if !idx.side_file.closed() {
                        idx.side_file.redo_append(op.clone(), rec.lsn);
                    }
                }
                Ok(())
            }
            LogPayload::CatalogUpdate { bytes } => {
                // Dynamic role, not `cfg.replica`: a promoted follower
                // replays its own snapshots as no-ops, like a primary.
                if self.is_replica() {
                    self.apply_catalog_update(bytes)
                } else {
                    Ok(())
                }
            }
            LogPayload::TxBegin
            | LogPayload::TxCommit
            | LogPayload::TxAbort
            | LogPayload::TxEnd
            | LogPayload::Checkpoint { .. } => Ok(()),
        }
    }

    fn undo(&self, rec: &LogRecord, clr_prev: Lsn, undo_next: Lsn) -> Result<Lsn> {
        let clr = |payload: LogPayload| -> Lsn {
            self.wal
                .append(rec.tx, clr_prev, RecKind::Clr { undo_next }, payload)
        };
        match &rec.payload {
            LogPayload::HeapInsert {
                table,
                rid,
                data,
                visible_indexes,
            } => {
                let tbl = self.table(*table)?;
                let mut plan = Vec::new();
                let mut clr_lsn = Lsn::NULL;
                tbl.undo_insert(*rid, || {
                    let (count_now, _) = self.plan_forward(*table, *rid, data);
                    plan = self.plan_undo(*table, *rid, data, *visible_indexes, rec.lsn);
                    clr_lsn = clr(LogPayload::HeapDelete {
                        table: *table,
                        rid: *rid,
                        old: data.clone(),
                        visible_indexes: count_now,
                    });
                    clr_lsn
                })?;
                let mut last = clr_lsn;
                for (idx, mech) in plan {
                    for op in crate::dml::key_ops_for_undo_of_insert(&idx.def, data, *rid)? {
                        last = self.compensate(rec.tx, last, &idx, mech, op)?;
                    }
                }
                Ok(last)
            }
            LogPayload::HeapDelete {
                table,
                rid,
                old,
                visible_indexes,
            } => {
                let tbl = self.table(*table)?;
                let mut plan = Vec::new();
                let mut clr_lsn = Lsn::NULL;
                tbl.undo_delete(*rid, old, || {
                    let (count_now, _) = self.plan_forward(*table, *rid, old);
                    plan = self.plan_undo(*table, *rid, old, *visible_indexes, rec.lsn);
                    clr_lsn = clr(LogPayload::HeapInsert {
                        table: *table,
                        rid: *rid,
                        data: old.clone(),
                        visible_indexes: count_now,
                    });
                    clr_lsn
                })?;
                let mut last = clr_lsn;
                for (idx, mech) in plan {
                    for op in crate::dml::key_ops_for_undo_of_delete(&idx.def, old, *rid)? {
                        last = self.compensate(rec.tx, last, &idx, mech, op)?;
                    }
                }
                Ok(last)
            }
            LogPayload::HeapUpdate {
                table,
                rid,
                old,
                new,
                visible_indexes,
            } => {
                let tbl = self.table(*table)?;
                let mut plan = Vec::new();
                let mut clr_lsn = Lsn::NULL;
                tbl.undo_update(*rid, old, || {
                    let (count_now, _) = self.plan_forward(*table, *rid, old);
                    plan = self.plan_undo(*table, *rid, old, *visible_indexes, rec.lsn);
                    clr_lsn = clr(LogPayload::HeapUpdate {
                        table: *table,
                        rid: *rid,
                        old: new.clone(),
                        new: old.clone(),
                        visible_indexes: count_now,
                    });
                    clr_lsn
                })?;
                let mut last = clr_lsn;
                for (idx, mech) in plan {
                    for op in crate::dml::key_ops_for_undo_of_update(&idx.def, old, new, *rid)? {
                        last = self.compensate(rec.tx, last, &idx, mech, op)?;
                    }
                }
                Ok(last)
            }
            LogPayload::IndexInsert { index, entry } => {
                // §2.2.3: the deleter (here: the rolling-back inserter)
                // does not physically remove the key — it may already
                // have been extracted by the IB — it pseudo-deletes it.
                if let Ok(idx) = self.index(*index) {
                    Self::tree_ensure_pseudo(&idx, entry)?;
                }
                Ok(clr(LogPayload::IndexPseudoDelete {
                    index: *index,
                    entry: entry.clone(),
                }))
            }
            LogPayload::IndexReactivate { index, entry } => {
                if let Ok(idx) = self.index(*index) {
                    Self::tree_ensure_pseudo(&idx, entry)?;
                }
                Ok(clr(LogPayload::IndexPseudoDelete {
                    index: *index,
                    entry: entry.clone(),
                }))
            }
            LogPayload::IndexPseudoDelete { index, entry }
            | LogPayload::IndexInsertTombstone { index, entry } => {
                // Rollback of a delete puts the key back in the
                // inserted state (§2.2.3).
                if let Ok(idx) = self.index(*index) {
                    Self::tree_ensure_live(&idx, entry)?;
                }
                Ok(clr(LogPayload::IndexReactivate {
                    index: *index,
                    entry: entry.clone(),
                }))
            }
            LogPayload::IndexPhysicalDelete {
                index,
                entry,
                was_pseudo,
            } => {
                if let Ok(idx) = self.index(*index) {
                    if *was_pseudo {
                        Self::tree_ensure_pseudo(&idx, entry)?;
                    } else {
                        Self::tree_ensure_live(&idx, entry)?;
                    }
                }
                let payload = if *was_pseudo {
                    LogPayload::IndexInsertTombstone {
                        index: *index,
                        entry: entry.clone(),
                    }
                } else {
                    LogPayload::IndexInsert {
                        index: *index,
                        entry: entry.clone(),
                    }
                };
                Ok(clr(payload))
            }
            LogPayload::IndexBulkInsert { index, entries } => {
                // Undo only the entries that are still live: one a
                // committed deleter has pseudo-deleted since the IB
                // inserted it is that deleter's tombstone, and the
                // resumed IB relies on it to reject the stale key
                // (§2.2.3). The CLR lists only what was actually
                // removed so its redo cannot destroy a kept tombstone
                // after a second crash either.
                let mut removed = Vec::new();
                if let Ok(idx) = self.index(*index) {
                    for e in entries {
                        if idx.tree.physical_delete_if_live(e)? {
                            removed.push(e.clone());
                        }
                    }
                }
                Ok(clr(LogPayload::IndexBulkRemove {
                    index: *index,
                    entries: removed,
                }))
            }
            other => Err(Error::Corruption(format!(
                "undo of non-undoable payload {other:?}"
            ))),
        }
    }
}

impl Db {
    /// Apply one compensation during rollback, through the right
    /// mechanism, logging it redo-only under the transaction. Returns
    /// the transaction's new last LSN.
    pub(crate) fn compensate(
        &self,
        tx: TxId,
        last: Lsn,
        idx: &Arc<IndexRuntime>,
        mech: Mechanism,
        op: SideFileOp,
    ) -> Result<Lsn> {
        match mech {
            Mechanism::SideFile => {
                let mut lsn = last;
                let appended = idx.side_file.append_with(op.clone(), |op| {
                    lsn = self.wal.append(
                        tx,
                        last,
                        RecKind::RedoOnly,
                        LogPayload::SideFileAppend {
                            index: idx.def.id,
                            op: op.clone(),
                        },
                    );
                    lsn
                });
                match appended {
                    crate::side_file::Append::Appended(_) => Ok(lsn),
                    crate::side_file::Append::BuildDone => {
                        self.compensate(tx, last, idx, Mechanism::Direct, op)
                    }
                }
            }
            Mechanism::Direct => {
                if op.insert {
                    Self::tree_ensure_live(idx, &op.entry)?;
                    Ok(self.wal.append(
                        tx,
                        last,
                        RecKind::RedoOnly,
                        LogPayload::IndexInsert {
                            index: idx.def.id,
                            entry: op.entry,
                        },
                    ))
                } else {
                    Self::tree_ensure_pseudo(idx, &op.entry)?;
                    Ok(self.wal.append(
                        tx,
                        last,
                        RecKind::RedoOnly,
                        LogPayload::IndexPseudoDelete {
                            index: idx.def.id,
                            entry: op.entry,
                        },
                    ))
                }
            }
        }
    }

    /// Convenience for tests/benches: is any build currently running
    /// on this table?
    #[must_use]
    pub fn build_in_progress(&self, table: TableId) -> bool {
        self.indexes_of(table)
            .iter()
            .any(|i| i.state() != IndexState::Complete)
    }

    /// Lock-manager name for a record (data-only locking: key locks
    /// and record locks coincide, §6.2).
    #[must_use]
    pub fn record_lock(table: TableId, rid: Rid) -> LockName {
        LockName::Record(table, rid)
    }

    /// Acquire the table IX intent lock (updaters) for `tx`.
    pub(crate) fn lock_table_ix(&self, tx: TxId, table: TableId) -> Result<()> {
        self.locks.lock(tx, LockName::Table(table), LockMode::IX)
    }
}
