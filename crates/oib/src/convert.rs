//! Lossless conversions between engine build types and their wire
//! mirrors.
//!
//! The wire crate deliberately depends only on `mohan-common`, so it
//! carries *mirrors* of [`IndexSpec`] and [`BuildOptions`] rather than
//! the types themselves. These `From` impls are the one place the two
//! shapes meet; the server and client call sites convert with
//! `.into()` instead of copying fields by hand, so a field added to
//! either side fails to compile here instead of silently dropping on
//! the wire.
//!
//! Width notes: key column positions are `usize` in the engine and
//! `u16` on the wire (the protocol caps list lengths at
//! `wire::MAX_LIST` anyway), and the worker count is `usize` vs
//! `u16` / `checkpoint_every` is `Option<usize>` vs `u32` with 0 as
//! "unset". Values in range — every real value — round-trip exactly.

use crate::build::{BuildOptions, IndexSpec};
use mohan_wire::message::{BuildOptionsWire, IndexSpecWire};

impl From<IndexSpecWire> for IndexSpec {
    fn from(w: IndexSpecWire) -> Self {
        IndexSpec {
            name: w.name,
            key_cols: w.key_cols.into_iter().map(usize::from).collect(),
            unique: w.unique,
        }
    }
}

impl From<IndexSpec> for IndexSpecWire {
    fn from(s: IndexSpec) -> Self {
        IndexSpecWire {
            name: s.name,
            key_cols: s.key_cols.into_iter().map(|c| c as u16).collect(),
            unique: s.unique,
        }
    }
}

impl From<BuildOptionsWire> for BuildOptions {
    fn from(w: BuildOptionsWire) -> Self {
        BuildOptions {
            parallel_workers: usize::from(w.parallel_workers),
            compress_runs: w.compress_runs,
            sort_side_file_drain: w.sort_side_file_drain,
            checkpoint_every: if w.checkpoint_every == 0 {
                None
            } else {
                Some(w.checkpoint_every as usize)
            },
        }
    }
}

impl From<BuildOptions> for BuildOptionsWire {
    fn from(o: BuildOptions) -> Self {
        BuildOptionsWire {
            parallel_workers: o.parallel_workers.min(u16::MAX as usize) as u16,
            compress_runs: o.compress_runs,
            sort_side_file_drain: o.sort_side_file_drain,
            checkpoint_every: o
                .checkpoint_every
                .map_or(0, |k| u32::try_from(k).unwrap_or(u32::MAX)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_through_wire() {
        let spec = IndexSpec {
            name: "ix_kv".into(),
            key_cols: vec![2, 0, 1],
            unique: true,
        };
        let wire: IndexSpecWire = spec.clone().into();
        assert_eq!(IndexSpec::from(wire), spec);
    }

    #[test]
    fn options_roundtrip_through_wire() {
        for opts in [
            BuildOptions::default(),
            BuildOptions::new()
                .workers(4)
                .compress(true)
                .sorted_drain(false)
                .checkpoint_every(10_000),
        ] {
            let wire: BuildOptionsWire = opts.clone().into();
            assert_eq!(BuildOptions::from(wire), opts);
        }
    }

    #[test]
    fn zero_checkpoint_on_the_wire_means_engine_default() {
        let wire = BuildOptionsWire {
            checkpoint_every: 0,
            ..BuildOptionsWire::default()
        };
        assert_eq!(BuildOptions::from(wire).checkpoint_every, None);
    }
}
