//! Per-index runtime state: the tree, the build state machine, the
//! SF visibility cursor and the side-file.

use crate::schema::{BuildAlgorithm, IndexDef};
use crate::side_file::SideFile;
use mohan_btree::{BTree, BTreeConfig};
use mohan_common::{EngineConfig, Error, FileId, KeyValue, Lsn, PageId, Result, Rid};
use mohan_sort::RunStore;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// Build/visibility state of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexState {
    /// NSF build in progress: visible for maintenance since descriptor
    /// creation, not yet readable (§2.2.1).
    NsfBuilding,
    /// SF build in progress: visibility governed by the Current-RID
    /// cursor; maintenance goes to the side-file (§3.1).
    SfBuilding,
    /// Fully built: readable, maintained directly.
    Complete,
}

impl IndexState {
    fn tag(self) -> u8 {
        match self {
            IndexState::NsfBuilding => 0,
            IndexState::SfBuilding => 1,
            IndexState::Complete => 2,
        }
    }

    fn from_tag(t: u8) -> IndexState {
        match t {
            0 => IndexState::NsfBuilding,
            1 => IndexState::SfBuilding,
            _ => IndexState::Complete,
        }
    }
}

/// Sentinel for "scan finished": every RID is behind the cursor.
const CURRENT_INFINITY: u64 = u64::MAX;
/// Sentinel for "nothing processed yet". Stored cursor values are
/// `rid.pack() + 1` so RID (0,0) is distinguishable from "none".
const CURRENT_NONE: u64 = 0;

/// The §6.2 primary-index storage-model cursor: the SF scan position
/// expressed as a *key* in the clustering index rather than a RID.
#[derive(Default)]
pub struct KeyCursor {
    /// Column positions of the clustering (primary) key in the
    /// record, used to derive the visibility probe.
    pub pk_cols: Vec<usize>,
    current: Mutex<Option<KeyValue>>,
    done: AtomicU8,
}

impl KeyCursor {
    /// Fresh cursor deriving the visibility probe from `pk_cols`.
    #[must_use]
    pub fn for_pk_cols(pk_cols: Vec<usize>) -> KeyCursor {
        KeyCursor {
            pk_cols,
            ..KeyCursor::default()
        }
    }

    /// Advance to `key` (must be monotone).
    pub fn advance(&self, key: KeyValue) {
        *self.current.lock() = Some(key);
    }

    /// Mark the scan complete (everything visible).
    pub fn finish(&self) {
        self.done.store(1, Ordering::Release);
    }

    /// Is `key` at or behind the cursor (visible)? Inclusive: the
    /// primary-model scan snapshots a whole leaf and then reads the
    /// records outside the latch, so operations racing on the boundary
    /// key must go to the side-file, where drain-time reconciliation
    /// absorbs the overlap.
    #[must_use]
    pub fn passed(&self, key: &KeyValue) -> bool {
        if self.done.load(Ordering::Acquire) != 0 {
            return true;
        }
        match &*self.current.lock() {
            Some(cur) => key <= cur,
            None => false,
        }
    }
}

/// One index's complete runtime state.
pub struct IndexRuntime {
    /// Definition (identity, table, columns, uniqueness).
    pub def: IndexDef,
    /// Algorithm the index was built with.
    pub algorithm: BuildAlgorithm,
    /// The B+-tree.
    pub tree: BTree,
    /// SF side-file (unused but present for other algorithms).
    pub side_file: SideFile,
    state: AtomicU8,
    /// SF scan cursor: `0` = nothing processed, `u64::MAX` = done,
    /// otherwise `rid.pack() + 1` of the last record processed.
    current_rid: AtomicU64,
    /// Last data page the SF scan will visit; records on later pages
    /// are visible by definition (§2.3.1: "transactions would insert
    /// directly into the index the keys of records belonging to those
    /// new pages").
    scan_end_page: AtomicU32,
    /// LSN horizon of the build's completion ([`Lsn::NULL`] while
    /// building); rollback uses it to tell side-file-era operations
    /// from direct-maintenance ones.
    completed_lsn: AtomicU64,
    /// Optional §6.2 key cursor (primary-index storage model).
    pub key_cursor: Option<KeyCursor>,
    /// The build's sorted-run storage; survives across restart so the
    /// §5 checkpoints have something to reposition.
    pub sort_store: Mutex<Option<std::sync::Arc<RunStore<mohan_common::IndexEntry>>>>,
    /// Footnote 3: highest key value *committed* by the NSF builder.
    /// When gradual reads are enabled, lookups at or below this
    /// watermark are served even while the build is in flight.
    read_watermark: Mutex<Option<KeyValue>>,
}

impl IndexRuntime {
    /// Create the runtime for a new index. The tree's page file id is
    /// derived from the index id.
    #[must_use]
    pub fn new(
        def: IndexDef,
        algorithm: BuildAlgorithm,
        initial_state: IndexState,
        cfg: &EngineConfig,
    ) -> IndexRuntime {
        let tree = BTree::create(
            FileId(1_000_000 + def.id.0),
            BTreeConfig {
                page_size: cfg.index_page_size,
                fill_factor: cfg.index_fill_factor,
                unique: def.unique,
                hint_enabled: cfg.ib_remembered_path,
            },
        );
        IndexRuntime {
            def,
            algorithm,
            tree,
            side_file: SideFile::new(),
            state: AtomicU8::new(initial_state.tag()),
            current_rid: AtomicU64::new(CURRENT_NONE),
            scan_end_page: AtomicU32::new(u32::MAX),
            completed_lsn: AtomicU64::new(0),
            key_cursor: None,
            sort_store: Mutex::new(None),
            read_watermark: Mutex::new(None),
        }
    }

    /// Advance the gradual-read watermark (NSF builder, after a
    /// checkpoint commit).
    pub fn set_read_watermark(&self, key: KeyValue) {
        *self.read_watermark.lock() = Some(key);
    }

    /// Is `key` within the gradually-available prefix (footnote 3)?
    #[must_use]
    pub fn readable_below_watermark(&self, key: &KeyValue) -> bool {
        self.read_watermark
            .lock()
            .as_ref()
            .is_some_and(|w| key <= w)
    }

    /// Get (or lazily create) the build's run store.
    #[must_use]
    pub fn run_store(&self) -> std::sync::Arc<RunStore<mohan_common::IndexEntry>> {
        self.configure_run_store(false)
    }

    /// Get the build's run store, creating it with the given
    /// compression mode if it does not exist yet. An existing store's
    /// mode wins: a resumed build keeps whatever layout its runs were
    /// written in.
    pub fn configure_run_store(
        &self,
        compress: bool,
    ) -> std::sync::Arc<RunStore<mohan_common::IndexEntry>> {
        let mut g = self.sort_store.lock();
        if let Some(rs) = &*g {
            return std::sync::Arc::clone(rs);
        }
        let rs = std::sync::Arc::new(RunStore::with_compression(compress));
        *g = Some(std::sync::Arc::clone(&rs));
        rs
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> IndexState {
        IndexState::from_tag(self.state.load(Ordering::Acquire))
    }

    /// Transition the state (caller persists the catalog).
    pub fn set_state(&self, s: IndexState) {
        self.state.store(s.tag(), Ordering::Release);
    }

    /// Record the completion LSN when the build finishes.
    pub fn set_completed_lsn(&self, lsn: Lsn) {
        self.completed_lsn.store(lsn.0, Ordering::Release);
    }

    /// LSN at which the build completed (NULL while building).
    #[must_use]
    pub fn completed_lsn(&self) -> Lsn {
        Lsn(self.completed_lsn.load(Ordering::Acquire))
    }

    /// Set the last page the SF scan will visit.
    pub fn set_scan_end(&self, page: PageId) {
        self.scan_end_page.store(page.0, Ordering::Release);
    }

    /// Last page of the SF scan.
    #[must_use]
    pub fn scan_end(&self) -> PageId {
        PageId(self.scan_end_page.load(Ordering::Acquire))
    }

    /// Advance the SF scan cursor (IB, under the data page S latch).
    /// Monotone: the cursor never regresses, so a resumed scan that
    /// restarts behind a conservatively-restored cursor cannot shrink
    /// visibility.
    pub fn set_current_rid(&self, rid: Rid) {
        self.current_rid.fetch_max(rid.pack() + 1, Ordering::AcqRel);
    }

    /// Conservative post-crash visibility: with the exact Current-RID
    /// lost, treat every record as visible. Safe because visibility
    /// may only ever grow, and the drain's duplicate-rejection absorbs
    /// overlap with the rescanned range.
    pub fn finish_scan_conservative(&self) {
        self.finish_scan();
    }

    /// Mark the SF scan finished: Current-RID becomes infinity
    /// (§3.2.2).
    pub fn finish_scan(&self) {
        self.current_rid.store(CURRENT_INFINITY, Ordering::Release);
        if let Some(kc) = &self.key_cursor {
            kc.finish();
        }
    }

    /// Current-RID of the SF scan (the last record processed;
    /// [`Rid::MIN`] before the scan touches anything).
    #[must_use]
    pub fn current_rid(&self) -> Rid {
        match self.current_rid.load(Ordering::Acquire) {
            CURRENT_NONE => Rid::MIN,
            CURRENT_INFINITY => Rid::MAX,
            v => Rid::unpack(v - 1),
        }
    }

    /// The SF visibility rule evaluated for a record (Figure 1):
    /// the record has been *processed* by the scan
    /// (`Target-RID ≤ Current-RID` with the cursor naming the last
    /// record consumed — the paper's `Target < Current` with a
    /// next-to-process cursor), or the record lives beyond the scan's
    /// end bound, or (storage-model extension) its primary key is
    /// behind the key cursor. The inclusive boundary matters: the page
    /// latch serializes the scan against updaters, so an operation on
    /// the boundary record necessarily happens *after* the IB consumed
    /// its old image and must go to the side-file.
    #[must_use]
    pub fn sf_visible(&self, rid: Rid, primary_key: Option<&KeyValue>) -> bool {
        if let (Some(kc), Some(pk)) = (&self.key_cursor, primary_key) {
            return kc.passed(pk);
        }
        match self.current_rid.load(Ordering::Acquire) {
            CURRENT_INFINITY => true,
            CURRENT_NONE => rid.page > self.scan_end(),
            cur => rid.pack() < cur || rid.page > self.scan_end(),
        }
    }

    /// Is the index visible *for maintenance* to a transaction
    /// touching `rid`? (Readability is separate: only
    /// [`IndexState::Complete`] serves queries.)
    #[must_use]
    pub fn visible_for(&self, rid: Rid, primary_key: Option<&KeyValue>) -> bool {
        match self.state() {
            IndexState::NsfBuilding | IndexState::Complete => true,
            IndexState::SfBuilding => self.sf_visible(rid, primary_key),
        }
    }

    /// Catalog serialization of the volatile-but-durable metadata.
    #[must_use]
    pub fn encode_catalog(&self) -> Vec<u8> {
        let mut out = self.def.encode();
        out.push(self.algorithm.tag());
        out.push(self.state().tag());
        out.extend_from_slice(&self.scan_end().0.to_be_bytes());
        out.extend_from_slice(&self.completed_lsn().0.to_be_bytes());
        out.push(u8::from(self.key_cursor.is_some()));
        out
    }

    /// Rebuild runtime metadata from a catalog entry. The tree object
    /// (with its durable pages) is supplied by the caller — in this
    /// simulation the runtime object itself survives, so this method
    /// *restores state onto* an existing runtime.
    pub fn restore_catalog(&self, buf: &[u8], pos: &mut usize) -> Result<()> {
        let e = CatalogEntry::decode(buf, pos)?;
        if e.def != self.def {
            return Err(Error::Corruption(format!(
                "catalog def mismatch for {}",
                self.def.id
            )));
        }
        self.apply_catalog_entry(&e);
        Ok(())
    }

    /// Apply a decoded catalog entry's state onto this runtime. Shared
    /// by the primary's restart ([`IndexRuntime::restore_catalog`])
    /// and the replica's redo of shipped catalog snapshots.
    pub fn apply_catalog_entry(&self, e: &CatalogEntry) {
        self.set_state(e.state);
        self.scan_end_page.store(e.scan_end.0, Ordering::Release);
        self.completed_lsn
            .store(e.completed_lsn.0, Ordering::Release);
        if e.state == IndexState::Complete {
            self.side_file.force_close();
        }
        // Current-RID is restored by resume_build from the build's
        // progress record; until then nothing new is visible.
        self.set_current_rid(Rid::MIN);
    }
}

/// One catalog entry decoded on its own, independent of any runtime.
/// A replica applies shipped catalog snapshots to indexes it may not
/// have created yet, so decoding cannot presuppose an existing
/// [`IndexRuntime`].
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Index definition (identity, table, columns, uniqueness).
    pub def: IndexDef,
    /// Algorithm the index was (or is being) built with.
    pub algorithm: BuildAlgorithm,
    /// Build/visibility state at snapshot time.
    pub state: IndexState,
    /// Last page of the SF scan.
    pub scan_end: PageId,
    /// Build completion LSN horizon (NULL while building).
    pub completed_lsn: Lsn,
    /// Whether the index uses the §6.2 key cursor.
    pub has_key_cursor: bool,
}

impl CatalogEntry {
    /// Decode one entry as produced by
    /// [`IndexRuntime::encode_catalog`].
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<CatalogEntry> {
        let def = IndexDef::decode(buf, pos)?;
        let err = || Error::Corruption("truncated catalog entry".into());
        let algorithm =
            BuildAlgorithm::from_tag(*buf.get(*pos).ok_or_else(err)?).ok_or_else(err)?;
        *pos += 1;
        let state = IndexState::from_tag(*buf.get(*pos).ok_or_else(err)?);
        *pos += 1;
        let se: [u8; 4] = buf.get(*pos..*pos + 4).ok_or_else(err)?.try_into().unwrap();
        *pos += 4;
        let cl: [u8; 8] = buf.get(*pos..*pos + 8).ok_or_else(err)?.try_into().unwrap();
        *pos += 8;
        let has_kc = *buf.get(*pos).ok_or_else(err)? != 0;
        *pos += 1;
        Ok(CatalogEntry {
            def,
            algorithm,
            state,
            scan_end: PageId(u32::from_be_bytes(se)),
            completed_lsn: Lsn(u64::from_be_bytes(cl)),
            has_key_cursor: has_kc,
        })
    }
}

impl std::fmt::Debug for IndexRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexRuntime")
            .field("id", &self.def.id)
            .field("state", &self.state())
            .field("algorithm", &self.algorithm)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mohan_common::{IndexId, TableId};

    fn rt(state: IndexState) -> IndexRuntime {
        IndexRuntime::new(
            IndexDef {
                id: IndexId(1),
                name: "t".into(),
                table: TableId(1),
                unique: false,
                key_cols: vec![0],
            },
            BuildAlgorithm::Sf,
            state,
            &EngineConfig::small(),
        )
    }

    #[test]
    fn sf_visibility_follows_cursor() {
        let r = rt(IndexState::SfBuilding);
        r.set_scan_end(PageId(10));
        assert!(!r.visible_for(Rid::new(0, 0), None));
        r.set_current_rid(Rid::new(5, 3));
        assert!(r.visible_for(Rid::new(5, 2), None));
        assert!(r.visible_for(Rid::new(4, 9), None));
        // The just-processed record itself is visible: its old image
        // is already in the IB's hands.
        assert!(r.visible_for(Rid::new(5, 3), None));
        assert!(!r.visible_for(Rid::new(5, 4), None));
        assert!(!r.visible_for(Rid::new(6, 0), None));
        // Beyond the scan-end bound: always visible.
        assert!(r.visible_for(Rid::new(11, 0), None));
        r.finish_scan();
        assert!(r.visible_for(Rid::new(6, 0), None));
    }

    #[test]
    fn page_end_cursor_covers_tail_inserts_into_scanned_page() {
        let r = rt(IndexState::SfBuilding);
        r.set_scan_end(PageId(10));
        // The scan consumed page 3, whose last record sat in slot 7.
        r.set_current_rid(Rid::new(3, 7));
        // A tail insert into page 3's free space now compares *above*
        // the last-record cursor — with only that cursor its key
        // would be lost (neither scanned nor side-filed) ...
        assert!(!r.sf_visible(Rid::new(3, 8), None));
        // ... so the scan's page-done hook advances Current-RID past
        // the whole page before releasing the page latch.
        r.set_current_rid(Rid::new(3, u16::MAX));
        assert!(r.sf_visible(Rid::new(3, 8), None));
        assert!(r.sf_visible(Rid::new(3, u16::MAX), None));
        // Pages the scan has not reached stay its responsibility.
        assert!(!r.sf_visible(Rid::new(4, 0), None));
    }

    #[test]
    fn nsf_and_complete_always_visible() {
        let r = rt(IndexState::NsfBuilding);
        assert!(r.visible_for(Rid::new(999, 0), None));
        r.set_state(IndexState::Complete);
        assert!(r.visible_for(Rid::MIN, None));
    }

    #[test]
    fn key_cursor_visibility() {
        let mut r = rt(IndexState::SfBuilding);
        r.key_cursor = Some(KeyCursor::default());
        let kc = r.key_cursor.as_ref().unwrap();
        let k = |v: i64| KeyValue::from_i64(v);
        assert!(!r.sf_visible(Rid::new(0, 0), Some(&k(5))));
        kc.advance(k(10));
        assert!(r.sf_visible(Rid::new(0, 0), Some(&k(5))));
        // Inclusive boundary: the cursor key itself is visible (the
        // leaf-snapshot scan already covers it; drain reconciles).
        assert!(r.sf_visible(Rid::new(0, 0), Some(&k(10))));
        assert!(!r.sf_visible(Rid::new(0, 0), Some(&k(11))));
        kc.finish();
        assert!(r.sf_visible(Rid::new(0, 0), Some(&k(11))));
    }

    #[test]
    fn catalog_roundtrip() {
        let r = rt(IndexState::SfBuilding);
        r.set_scan_end(PageId(42));
        r.set_current_rid(Rid::new(5, 5));
        let bytes = r.encode_catalog();
        let r2 = rt(IndexState::NsfBuilding);
        let mut pos = 0;
        r2.restore_catalog(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        assert_eq!(r2.state(), IndexState::SfBuilding);
        assert_eq!(r2.scan_end(), PageId(42));
        // Current-RID resets to MIN until resume restores it.
        assert_eq!(r2.current_rid(), Rid::MIN);
    }

    #[test]
    fn completed_catalog_closes_side_file() {
        let r = rt(IndexState::Complete);
        r.set_completed_lsn(Lsn(9));
        let bytes = r.encode_catalog();
        let r2 = rt(IndexState::SfBuilding);
        let mut pos = 0;
        r2.restore_catalog(&bytes, &mut pos).unwrap();
        assert!(r2.side_file.closed());
        assert_eq!(r2.completed_lsn(), Lsn(9));
    }
}
