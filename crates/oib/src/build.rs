//! The index-build drivers: offline baseline, NSF (§2), SF (§3),
//! multi-index single-scan builds (§6.2), restart resume, and drop /
//! cancel (§2.3.2).

use crate::engine::Db;
use crate::progress::{self, BuildProgress, PartCheckpoint};
use crate::runtime::{IndexRuntime, IndexState};
use crate::schema::{BuildAlgorithm, IndexDef, Record};
use mohan_btree::{BulkLoader, InsertMode, InsertOutcome};
use mohan_common::{
    EngineConfig, Error, IndexEntry, IndexId, PageId, Result, Rid, SlotId, TableId, TxId,
};
use mohan_lock::{LockMode, LockName};
use mohan_sort::{
    ExternalSort, Merge, MergeCheckpoint, MergePassCheckpoint, RunFormation, SortCheckpoint,
};
use mohan_wal::{LogPayload, RecKind};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Times one build phase: on drop (success, error and crash paths
/// alike) the duration lands in the `build.phase_us.<label>` histogram
/// and a `build.phase` trace event, so the ring shows the scan → sort
/// → load/insert → drain → flip transitions in order.
struct PhaseTimer<'a> {
    db: &'a Db,
    label: &'static str,
    started: Instant,
}

impl<'a> PhaseTimer<'a> {
    fn new(db: &'a Db, label: &'static str) -> PhaseTimer<'a> {
        PhaseTimer {
            db,
            label,
            started: Instant::now(),
        }
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        let d = self.started.elapsed();
        self.db
            .obs
            .histogram(&format!("build.phase_us.{}", self.label))
            .record_micros(d);
        self.db.obs.trace().span_event(
            "build.phase",
            self.label,
            d.as_micros().min(u128::from(u64::MAX)) as u64,
            0,
        );
    }
}

/// What the caller wants indexed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpec {
    /// Index name.
    pub name: String,
    /// Key columns, in order.
    pub key_cols: Vec<usize>,
    /// Enforce key-value uniqueness.
    pub unique: bool,
}

/// How a build runs. One configuration type shared by every layer:
/// the engine API ([`build_indexes_with`] /
/// [`crate::Session::create_index_with`]), the wire protocol
/// (`Request::CreateIndexV2`), the native client, and SQL
/// `CREATE INDEX ... WITH (...)`.
///
/// The durable per-build options blob (`build/{id}/options`) records
/// the options a build started with, so a post-crash
/// [`resume_build`] keeps the same worker layout and intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildOptions {
    /// Worker threads for the scan + run-formation phase (≥ 1). The
    /// scan range is split into one contiguous page partition per
    /// worker; each partition checkpoints independently.
    pub parallel_workers: usize,
    /// Store sorted runs prefix-compressed (common-prefix truncation
    /// per block, decoded only when the merge reads them back).
    pub compress_runs: bool,
    /// Per-build override of [`EngineConfig::side_file_sorted_apply`]
    /// (`None` keeps the engine default).
    pub sort_side_file_drain: Option<bool>,
    /// Per-build override of every checkpoint interval — sort, merge
    /// and insert/load keys between checkpoints (`None` keeps the
    /// engine defaults).
    pub checkpoint_every: Option<usize>,
}

impl Default for BuildOptions {
    fn default() -> BuildOptions {
        BuildOptions {
            parallel_workers: 1,
            compress_runs: false,
            sort_side_file_drain: None,
            checkpoint_every: None,
        }
    }
}

impl BuildOptions {
    /// Engine defaults: serial, uncompressed, config-driven intervals.
    #[must_use]
    pub fn new() -> BuildOptions {
        BuildOptions::default()
    }

    /// Set the scan/sort worker count (clamped to at least 1).
    #[must_use]
    pub fn workers(mut self, n: usize) -> BuildOptions {
        self.parallel_workers = n.max(1);
        self
    }

    /// Enable / disable prefix-compressed run storage.
    #[must_use]
    pub fn compress(mut self, on: bool) -> BuildOptions {
        self.compress_runs = on;
        self
    }

    /// Override the sorted side-file drain pass.
    #[must_use]
    pub fn sorted_drain(mut self, on: bool) -> BuildOptions {
        self.sort_side_file_drain = Some(on);
        self
    }

    /// Override every checkpoint interval of the build.
    #[must_use]
    pub fn checkpoint_every(mut self, keys: usize) -> BuildOptions {
        self.checkpoint_every = Some(keys);
        self
    }

    fn validate(&self) -> Result<()> {
        if self.parallel_workers == 0 {
            return Err(Error::InvalidArg(
                "parallel_workers must be at least 1".into(),
            ));
        }
        if self.checkpoint_every == Some(0) {
            return Err(Error::InvalidArg(
                "checkpoint_every must be at least 1".into(),
            ));
        }
        Ok(())
    }

    pub(crate) fn sort_checkpoint_keys(&self, cfg: &EngineConfig) -> usize {
        self.checkpoint_every
            .unwrap_or(cfg.sort_checkpoint_every_keys)
    }

    pub(crate) fn merge_checkpoint_keys(&self, cfg: &EngineConfig) -> usize {
        self.checkpoint_every
            .unwrap_or(cfg.merge_checkpoint_every_keys)
    }

    pub(crate) fn ib_checkpoint_keys(&self, cfg: &EngineConfig) -> usize {
        self.checkpoint_every
            .unwrap_or(cfg.ib_checkpoint_every_keys)
    }

    pub(crate) fn sorted_apply(&self, cfg: &EngineConfig) -> bool {
        self.sort_side_file_drain
            .unwrap_or(cfg.side_file_sorted_apply)
    }

    /// Serialize for the durable options blob:
    /// `[u16 workers][u8 flags][u32 checkpoint_every, 0 = unset]`,
    /// flags bit 0 = compress, bit 1 = drain override present, bit 2 =
    /// drain override value.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(7);
        let w = self.parallel_workers.min(u16::MAX as usize) as u16;
        out.extend_from_slice(&w.to_be_bytes());
        let mut flags = 0u8;
        if self.compress_runs {
            flags |= 1;
        }
        if self.sort_side_file_drain.is_some() {
            flags |= 2;
        }
        if self.sort_side_file_drain == Some(true) {
            flags |= 4;
        }
        out.push(flags);
        let ce = self.checkpoint_every.unwrap_or(0).min(u32::MAX as usize) as u32;
        out.extend_from_slice(&ce.to_be_bytes());
        out
    }

    /// Deserialize; `None` on malformed bytes.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Option<BuildOptions> {
        let workers = u16::from_be_bytes(buf.get(0..2)?.try_into().ok()?) as usize;
        let flags = *buf.get(2)?;
        let ce = u32::from_be_bytes(buf.get(3..7)?.try_into().ok()?) as usize;
        Some(BuildOptions {
            parallel_workers: workers.max(1),
            compress_runs: flags & 1 != 0,
            sort_side_file_drain: if flags & 2 != 0 {
                Some(flags & 4 != 0)
            } else {
                None
            },
            checkpoint_every: if ce == 0 { None } else { Some(ce) },
        })
    }
}

/// Build one index.
pub fn build_index(
    db: &Arc<Db>,
    table: TableId,
    spec: IndexSpec,
    algorithm: BuildAlgorithm,
) -> Result<IndexId> {
    Ok(build_indexes(db, table, &[spec], algorithm)?[0])
}

/// Build several indexes in **one scan of the data** (§6.2). Returns
/// their ids. On a unique-key violation every index of the batch is
/// cancelled; on an injected crash the builds stay resumable via
/// [`resume_build`].
pub fn build_indexes(
    db: &Arc<Db>,
    table: TableId,
    specs: &[IndexSpec],
    algorithm: BuildAlgorithm,
) -> Result<Vec<IndexId>> {
    build_indexes_with(db, table, specs, algorithm, &BuildOptions::default())
}

/// [`build_indexes`] with explicit [`BuildOptions`].
pub fn build_indexes_with(
    db: &Arc<Db>,
    table: TableId,
    specs: &[IndexSpec],
    algorithm: BuildAlgorithm,
    options: &BuildOptions,
) -> Result<Vec<IndexId>> {
    build_indexes_observed(db, table, specs, algorithm, options, |_| {})
}

/// [`build_indexes_with`] with an observer hook: `on_ids` fires once
/// the batch's index ids are allocated (descriptors registered for
/// NSF/SF, runtimes created for offline), before any scan work. An
/// observer — e.g. a server streaming progress frames — can then poll
/// [`progress::load`] for exactly these ids instead of guessing which
/// of the table's in-flight builds is this one.
pub fn build_indexes_observed(
    db: &Arc<Db>,
    table: TableId,
    specs: &[IndexSpec],
    algorithm: BuildAlgorithm,
    options: &BuildOptions,
    on_ids: impl FnOnce(&[IndexId]),
) -> Result<Vec<IndexId>> {
    if specs.is_empty() {
        return Err(Error::InvalidArg("no index specs".into()));
    }
    options.validate()?;
    db.build_sort_workers
        .observe(options.parallel_workers as u64);
    match algorithm {
        BuildAlgorithm::Offline => offline_build(db, table, specs, options, on_ids),
        BuildAlgorithm::Nsf | BuildAlgorithm::Sf => {
            let idxs = create_descriptors(db, table, specs, algorithm)?;
            let ids: Vec<IndexId> = idxs.iter().map(|i| i.def.id).collect();
            for idx in &idxs {
                idx.configure_run_store(options.compress_runs);
                progress::store_options(db, idx.def.id, options);
            }
            on_ids(&ids);
            match run_from_scratch(db, &idxs, options) {
                Ok(()) => Ok(ids),
                Err(e) if e.is_crash() => Err(e),
                Err(e) => {
                    cancel_builds(db, &idxs)?;
                    Err(e)
                }
            }
        }
    }
}

/// Continue an interrupted build after [`Db::restart`], with the
/// [`BuildOptions`] the build was started with (from the durable
/// options blob).
pub fn resume_build(db: &Arc<Db>, id: IndexId) -> Result<()> {
    let idx = db.index(id)?;
    if idx.state() == IndexState::Complete {
        return Ok(());
    }
    let options = progress::load_options(db, id);
    idx.configure_run_store(options.compress_runs);
    let result = resume_one(db, &idx, &options);
    match result {
        Ok(()) => Ok(()),
        Err(e) if e.is_crash() => Err(e),
        Err(e) => {
            cancel_builds(db, std::slice::from_ref(&idx))?;
            Err(e)
        }
    }
}

/// Drop a completed index (or abandon one mid-build from the outside):
/// quiesce updates with a table S lock (footnote 6), then remove the
/// descriptor.
pub fn drop_index(db: &Arc<Db>, id: IndexId) -> Result<()> {
    let idx = db.index(id)?;
    let tx = db.begin();
    db.locks
        .lock(tx, LockName::Table(idx.def.table), LockMode::S)?;
    db.unregister_index(id);
    progress::clear(db, id);
    db.commit(tx)
}

// ===================================================================
// descriptor creation
// ===================================================================

fn make_runtime(
    db: &Db,
    table: TableId,
    spec: &IndexSpec,
    algorithm: BuildAlgorithm,
    state: IndexState,
) -> Arc<IndexRuntime> {
    let def = IndexDef {
        id: db.next_index_id(),
        name: spec.name.clone(),
        table,
        unique: spec.unique,
        key_cols: spec.key_cols.clone(),
    };
    Arc::new(IndexRuntime::new(def, algorithm, state, &db.cfg))
}

/// NSF: short quiesce (table S lock) around descriptor creation so no
/// update transaction straddles it (§2.2.1). SF: no quiesce (§3.2.1).
fn create_descriptors(
    db: &Arc<Db>,
    table: TableId,
    specs: &[IndexSpec],
    algorithm: BuildAlgorithm,
) -> Result<Vec<Arc<IndexRuntime>>> {
    let tbl = db.table(table)?;
    let mut out = Vec::with_capacity(specs.len());
    match algorithm {
        BuildAlgorithm::Nsf => {
            // §2.2.1's short quiesce — or the §3.2.3 no-quiesce
            // alternative, where transactions straddling the creation
            // are compensated via the visible-index-count comparison
            // at rollback.
            let quiesce_tx = if db.cfg.nsf_descriptor_quiesce {
                let tx = db.begin();
                db.locks.lock(tx, LockName::Table(table), LockMode::S)?;
                Some(tx)
            } else {
                None
            };
            for spec in specs {
                let rt = make_runtime(db, table, spec, algorithm, IndexState::NsfBuilding);
                set_scan_bounds(&rt, &tbl);
                force_empty_tree(db, &rt)?;
                db.register_index(Arc::clone(&rt));
                out.push(rt);
            }
            if let Some(tx) = quiesce_tx {
                // End the quiesce: update transactions may run again.
                db.commit(tx)?;
            }
        }
        BuildAlgorithm::Sf => {
            for spec in specs {
                let rt = make_runtime(db, table, spec, algorithm, IndexState::SfBuilding);
                set_scan_bounds(&rt, &tbl);
                force_empty_tree(db, &rt)?;
                db.register_index(Arc::clone(&rt));
                out.push(rt);
            }
        }
        BuildAlgorithm::Offline => unreachable!("offline uses offline_build"),
    }
    Ok(out)
}

/// Note the last data page before the scan starts (§2.3.1): records
/// added to later pages are the transactions' responsibility.
/// Descriptor creation is a durable catalog update: force the empty
/// tree (anchor + root) so restart always finds a structurally valid
/// index to recover into.
fn force_empty_tree(db: &Db, rt: &IndexRuntime) -> mohan_common::Result<()> {
    db.wal.flush_all();
    rt.tree.force_all(db.wal.flushed_lsn())
}

fn set_scan_bounds(rt: &IndexRuntime, tbl: &mohan_heap::HeapTable) {
    let pages = tbl.num_pages();
    if pages == 0 {
        rt.set_scan_end(PageId(u32::MAX));
        rt.finish_scan();
    } else {
        rt.set_scan_end(PageId(pages - 1));
    }
}

// ===================================================================
// the build pipeline
// ===================================================================

fn run_from_scratch(db: &Arc<Db>, idxs: &[Arc<IndexRuntime>], opts: &BuildOptions) -> Result<()> {
    let runs = if opts.parallel_workers > 1 {
        parallel_scan_and_sort(db, idxs, &vec![None; idxs.len()], opts)?
    } else {
        scan_and_sort(db, idxs, &vec![None; idxs.len()], opts)?
    };
    for (idx, idx_runs) in idxs.iter().zip(runs) {
        let finals = reduce_phase(db, idx, idx_runs, None, opts)?;
        enter_final_phase(db, idx, finals, opts)?;
    }
    Ok(())
}

fn resume_one(db: &Arc<Db>, idx: &Arc<IndexRuntime>, opts: &BuildOptions) -> Result<()> {
    match progress::load(db, idx.def.id)? {
        None => {
            // Crash before the first sort checkpoint: start over.
            run_from_scratch(db, std::slice::from_ref(idx), opts)
        }
        Some(BuildProgress::Scanning { sort }) => {
            let runs = scan_and_sort(db, std::slice::from_ref(idx), &[Some(sort)], opts)?;
            let finals = reduce_phase(db, idx, runs.into_iter().next().expect("one"), None, opts)?;
            enter_final_phase(db, idx, finals, opts)
        }
        Some(BuildProgress::ScanningParallel { parts }) => {
            let runs = parallel_scan_and_sort(db, std::slice::from_ref(idx), &[Some(parts)], opts)?;
            let finals = reduce_phase(db, idx, runs.into_iter().next().expect("one"), None, opts)?;
            enter_final_phase(db, idx, finals, opts)
        }
        Some(BuildProgress::Reducing { pass }) => {
            let finals = reduce_phase(db, idx, Vec::new(), Some(pass), opts)?;
            enter_final_phase(db, idx, finals, opts)
        }
        Some(BuildProgress::Loading { merge, bulk }) => {
            sf_load_phase(db, idx, merge, Some(bulk), opts)?;
            sf_drain_phase(db, idx, 0, opts)
        }
        Some(BuildProgress::Inserting { merge, inserted }) => {
            nsf_insert_phase(db, idx, merge, inserted, opts)
        }
        Some(BuildProgress::Draining { pos }) => sf_drain_phase(db, idx, pos, opts),
    }
}

/// Scan the data pages once, feeding every index's run formation;
/// checkpoint all sorters together (§5.1). `resumes[i]` repositions
/// index `i` after a crash.
fn scan_and_sort(
    db: &Arc<Db>,
    idxs: &[Arc<IndexRuntime>],
    resumes: &[Option<SortCheckpoint<IndexEntry>>],
    opts: &BuildOptions,
) -> Result<Vec<Vec<u64>>> {
    let _phase = PhaseTimer::new(db, "scan");
    let cp_every = opts.sort_checkpoint_keys(&db.cfg);
    let table = db.table(idxs[0].def.table)?;
    let ws = db.cfg.sort_workspace_keys;
    let mut rfs: Vec<RunFormation<IndexEntry>> = Vec::with_capacity(idxs.len());
    let mut floors: Vec<u64> = Vec::with_capacity(idxs.len());
    for (idx, resume) in idxs.iter().zip(resumes) {
        let store = idx.run_store();
        match resume {
            Some(cp) => {
                floors.push(cp.scan_pos);
                rfs.push(RunFormation::resume(store, ws, cp)?);
            }
            None => {
                floors.push(0);
                rfs.push(RunFormation::new(store, ws));
            }
        }
    }
    let scan_end = idxs[0].scan_end();
    if scan_end != PageId(u32::MAX) && table.num_pages() > 0 {
        // Scan positions are `rid.pack() + 1` so that position 0
        // unambiguously means "nothing fed" (RID (0,0) packs to 0).
        let min_floor = floors.iter().copied().min().unwrap_or(0);
        let from = if min_floor == 0 {
            None
        } else {
            Some(Rid::unpack(min_floor - 1))
        };
        let mut since_cp = 0usize;
        table.scan_pages(
            from,
            scan_end,
            |rid, data| {
                let rec = Record::decode(data)?;
                let pos = rid.pack() + 1;
                for (i, idx) in idxs.iter().enumerate() {
                    if pos > floors[i] {
                        let entry = idx.def.entry_of(&rec, rid)?;
                        rfs[i].push(entry, pos)?;
                    }
                    if idx.algorithm == BuildAlgorithm::Sf {
                        // Advance Current-RID under the page's S latch
                        // (§3.2.2): this record's key is now the IB's
                        // responsibility; everything before it is the
                        // transactions'.
                        idx.set_current_rid(rid);
                    }
                }
                db.failpoints.hit("build.scan.record")?;
                since_cp += 1;
                if since_cp >= cp_every {
                    since_cp = 0;
                    for (i, idx) in idxs.iter().enumerate() {
                        let cp = rfs[i].checkpoint()?;
                        progress::store(db, idx.def.id, &BuildProgress::Scanning { sort: cp });
                    }
                    db.failpoints.hit("build.scan")?;
                }
                Ok(true)
            },
            |page| {
                for idx in idxs {
                    if idx.algorithm == BuildAlgorithm::Sf {
                        // The scan is done with this page. Advance
                        // Current-RID past every slot the page could
                        // ever hold *before* the S latch drops: an
                        // insert that reuses the page's free space
                        // after the scan has left must compare below
                        // the cursor and go to the side-file — with
                        // only the last-record cursor it would land
                        // above it and its key would never reach the
                        // index.
                        idx.set_current_rid(Rid {
                            page,
                            slot: SlotId(u16::MAX),
                        });
                    }
                }
            },
        )?;
    }
    for idx in idxs {
        if idx.algorithm == BuildAlgorithm::Sf {
            idx.finish_scan();
        }
    }
    let mut all_runs = Vec::with_capacity(idxs.len());
    for rf in rfs {
        all_runs.push(rf.finish()?);
    }
    Ok(all_runs)
}

/// Persist one [`BuildProgress::ScanningParallel`] record per index
/// from the combined per-worker checkpoint state. Callers hold the
/// state lock, so concurrent workers never interleave half-updated
/// records.
fn persist_parallel_parts(
    db: &Db,
    idxs: &[Arc<IndexRuntime>],
    parts: &[(u32, u32)],
    state: &[Vec<SortCheckpoint<IndexEntry>>],
) {
    for (i, idx) in idxs.iter().enumerate() {
        let pcs: Vec<PartCheckpoint> = parts
            .iter()
            .enumerate()
            .map(|(w, &(lo, hi))| PartCheckpoint {
                lo,
                hi,
                sort: state[i][w].clone(),
            })
            .collect();
        progress::store(
            db,
            idx.def.id,
            &BuildProgress::ScanningParallel { parts: pcs },
        );
    }
}

/// [`scan_and_sort`] on several worker threads: the scan range is
/// split into one contiguous page partition per worker, and each
/// worker runs its own §5.1 replacement selection per index into the
/// index's shared run store. Checkpoints are per-partition
/// ([`PartCheckpoint`]): each worker's checkpoint is a valid serial
/// restart point for its page range, so a crash resumes every worker
/// from its own position (re-using the checkpointed partition table).
///
/// Safety of the §3.2.2 visibility rule under out-of-order page
/// completion: Current-RID only ever advances (`fetch_max`), so a
/// worker finishing a *later* partition first makes records in
/// still-unscanned earlier partitions conservatively visible. Their
/// updates go straight to the index/side-file *and* their keys are
/// extracted by the scan — the same over-visibility the post-crash
/// conservative rescan produces, absorbed the same way: duplicate
/// inserts are rejected and missing-key deletes are no-ops at drain.
///
/// The §6.2 multi-index batch rides the same partitioned scan: one
/// worker feeds every index's sorter for its page range.
fn parallel_scan_and_sort(
    db: &Arc<Db>,
    idxs: &[Arc<IndexRuntime>],
    resumes: &[Option<Vec<PartCheckpoint>>],
    opts: &BuildOptions,
) -> Result<Vec<Vec<u64>>> {
    let _phase = PhaseTimer::new(db, "scan");
    let table = db.table(idxs[0].def.table)?;
    let ws = db.cfg.sort_workspace_keys;
    let cp_every = opts.sort_checkpoint_keys(&db.cfg);
    let scan_end = idxs[0].scan_end();
    let empty = scan_end == PageId(u32::MAX) || table.num_pages() == 0;

    // Partition table: a resume re-uses the checkpointed partitions
    // (they define which runs belong to which worker); a fresh build
    // splits the scan range evenly.
    let parts: Vec<(u32, u32)> = match resumes.iter().flatten().next() {
        Some(cps) => cps.iter().map(|p| (p.lo, p.hi)).collect(),
        None if empty => vec![(0, 0)],
        None => {
            let pages = u64::from(scan_end.0) + 1;
            let w = (opts.parallel_workers as u64).min(pages).max(1);
            let chunk = pages / w;
            let rem = pages % w;
            let mut out = Vec::with_capacity(w as usize);
            let mut lo = 0u64;
            for i in 0..w {
                let len = chunk + u64::from(i < rem);
                out.push((lo as u32, (lo + len - 1) as u32));
                lo += len;
            }
            out
        }
    };
    let nw = parts.len();
    db.build_sort_workers.observe(nw as u64);

    // One RunFormation per (worker, index). Resumed workers reposition
    // via `resume_keeping`, preserving every sibling partition's
    // checkpointed runs in the shared store; runs no checkpoint knows
    // (flushed after the last checkpoint, then lost to the crash) are
    // deleted once here.
    let mut worker_rfs: Vec<Vec<RunFormation<IndexEntry>>> = Vec::with_capacity(nw);
    let mut worker_floors: Vec<Vec<u64>> = Vec::with_capacity(nw);
    let mut cp_init: Vec<Vec<SortCheckpoint<IndexEntry>>> = vec![Vec::new(); idxs.len()];
    for w in 0..nw {
        let mut row = Vec::with_capacity(idxs.len());
        let mut frow = Vec::with_capacity(idxs.len());
        for (i, idx) in idxs.iter().enumerate() {
            let store = idx.run_store();
            match &resumes[i] {
                Some(cps) => {
                    let preserve: Vec<u64> = cps
                        .iter()
                        .flat_map(|p| p.sort.runs.iter().map(|r| r.id))
                        .collect();
                    let cp = &cps[w].sort;
                    frow.push(cp.scan_pos);
                    cp_init[i].push(cp.clone());
                    row.push(RunFormation::resume_keeping(store, ws, cp, &preserve)?);
                }
                None => {
                    frow.push(0);
                    cp_init[i].push(SortCheckpoint {
                        runs: Vec::new(),
                        scan_pos: 0,
                        last_run_high: None,
                    });
                    row.push(RunFormation::new(store, ws));
                }
            }
        }
        worker_rfs.push(row);
        worker_floors.push(frow);
    }

    let stop = AtomicBool::new(false);
    let first_err: Mutex<Option<Error>> = Mutex::new(None);
    // cp_state[i][w]: index `i`'s latest checkpoint for partition `w`.
    let cp_state = Mutex::new(cp_init);

    if !empty {
        let finished: Vec<Vec<RunFormation<IndexEntry>>> = std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(nw);
            for (w, (row, floors)) in worker_rfs
                .drain(..)
                .zip(worker_floors.drain(..))
                .enumerate()
            {
                let (lo, hi) = parts[w];
                let (stop, first_err, cp_state) = (&stop, &first_err, &cp_state);
                let (table, parts) = (&table, &parts);
                handles.push(s.spawn(move || {
                    let mut rfs = row;
                    // Resume strictly after the checkpointed position.
                    // A fresh partition starts just before its first
                    // page: every RID of page `lo - 1` compares ≤
                    // `from`, so only the page_done hook re-fires there
                    // — harmless, Current-RID only grows.
                    let min_floor = floors.iter().copied().min().unwrap_or(0);
                    let from = if min_floor > 0 {
                        Some(Rid::unpack(min_floor - 1))
                    } else if lo == 0 {
                        None
                    } else {
                        Some(Rid {
                            page: PageId(lo - 1),
                            slot: SlotId(u16::MAX),
                        })
                    };
                    let mut since_cp = 0usize;
                    let r = table.scan_pages(
                        from,
                        PageId(hi),
                        |rid, data| {
                            if stop.load(Ordering::Relaxed) {
                                return Ok(false);
                            }
                            let rec = Record::decode(data)?;
                            let pos = rid.pack() + 1;
                            for (i, idx) in idxs.iter().enumerate() {
                                if pos > floors[i] {
                                    let entry = idx.def.entry_of(&rec, rid)?;
                                    rfs[i].push(entry, pos)?;
                                }
                                if idx.algorithm == BuildAlgorithm::Sf {
                                    idx.set_current_rid(rid);
                                }
                            }
                            db.failpoints.hit("build.scan.record")?;
                            since_cp += 1;
                            if since_cp >= cp_every {
                                since_cp = 0;
                                let mut cps = Vec::with_capacity(idxs.len());
                                for rf in rfs.iter_mut() {
                                    cps.push(rf.checkpoint()?);
                                }
                                let mut state = cp_state.lock();
                                for (i, cp) in cps.into_iter().enumerate() {
                                    state[i][w] = cp;
                                }
                                persist_parallel_parts(db, idxs, parts, &state);
                                db.failpoints.hit("build.scan")?;
                            }
                            Ok(true)
                        },
                        |page| {
                            for idx in idxs {
                                if idx.algorithm == BuildAlgorithm::Sf {
                                    idx.set_current_rid(Rid {
                                        page,
                                        slot: SlotId(u16::MAX),
                                    });
                                }
                            }
                        },
                    );
                    if let Err(e) = r {
                        stop.store(true, Ordering::Relaxed);
                        let mut g = first_err.lock();
                        if g.is_none() {
                            *g = Some(e);
                        }
                    }
                    rfs
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker panicked"))
                .collect()
        });
        worker_rfs = finished;
    }
    if let Some(e) = first_err.into_inner() {
        return Err(e);
    }
    for idx in idxs {
        if idx.algorithm == BuildAlgorithm::Sf {
            idx.finish_scan();
        }
    }
    // Combined run set, partition order: deterministic input for the
    // merge (which is order-insensitive anyway — the total order on
    // `IndexEntry` makes the merged output identical to the serial
    // build's).
    let mut all_runs: Vec<Vec<u64>> = vec![Vec::new(); idxs.len()];
    for row in worker_rfs {
        for (i, rf) in row.into_iter().enumerate() {
            all_runs[i].extend(rf.finish()?);
        }
    }
    Ok(all_runs)
}

/// Reduce runs below the merge fan-in, persisting §5.2 checkpoints.
fn reduce_phase(
    db: &Arc<Db>,
    idx: &Arc<IndexRuntime>,
    runs: Vec<u64>,
    resume: Option<MergePassCheckpoint>,
    opts: &BuildOptions,
) -> Result<Vec<u64>> {
    let _phase = PhaseTimer::new(db, "reduce");
    let ext = ExternalSort {
        store: idx.run_store(),
        workspace: db.cfg.sort_workspace_keys,
        fan_in: db.cfg.merge_fan_in,
        checkpoint_every: opts.merge_checkpoint_keys(&db.cfg),
    };
    let id = idx.def.id;
    let mut persist = |cp: &MergePassCheckpoint| -> Result<()> {
        progress::store(db, id, &BuildProgress::Reducing { pass: cp.clone() });
        db.failpoints.hit("build.reduce")
    };
    match resume {
        Some(cp) => ext.resume_reduce(&cp, &mut persist),
        None => ext.reduce_runs(runs, &mut persist),
    }
}

/// Persist the initial final-phase progress record, then run it.
fn enter_final_phase(
    db: &Arc<Db>,
    idx: &Arc<IndexRuntime>,
    finals: Vec<u64>,
    opts: &BuildOptions,
) -> Result<()> {
    let merge_cp = MergeCheckpoint {
        counters: vec![0; finals.len()],
        inputs: finals,
        emitted: 0,
    };
    match idx.algorithm {
        BuildAlgorithm::Nsf => {
            progress::store(
                db,
                idx.def.id,
                &BuildProgress::Inserting {
                    merge: merge_cp.clone(),
                    inserted: 0,
                },
            );
            nsf_insert_phase(db, idx, merge_cp, 0, opts)
        }
        BuildAlgorithm::Sf => {
            sf_load_phase(db, idx, merge_cp, None, opts)?;
            sf_drain_phase(db, idx, 0, opts)
        }
        BuildAlgorithm::Offline => offline_load(db, idx, merge_cp),
    }
}

/// Mark the index complete: record the completion horizon, flip the
/// state, persist the catalog and drop the progress record.
fn complete_index(
    db: &Arc<Db>,
    idx: &Arc<IndexRuntime>,
    completed_at: mohan_common::Lsn,
) -> Result<()> {
    idx.set_completed_lsn(completed_at);
    idx.set_state(IndexState::Complete);
    db.obs
        .trace()
        .event("build.phase", "flip", u64::from(idx.def.id.0));
    db.persist_catalog();
    progress::clear(db, idx.def.id);
    db.wal.flush_all();
    idx.tree.force_all(db.wal.flushed_lsn())?;
    Ok(())
}

// ===================================================================
// NSF: insert into the shared tree (§2.2.3)
// ===================================================================

fn nsf_insert_phase(
    db: &Arc<Db>,
    idx: &Arc<IndexRuntime>,
    merge_cp: MergeCheckpoint,
    mut inserted: u64,
    opts: &BuildOptions,
) -> Result<()> {
    let _phase = PhaseTimer::new(db, "insert");
    let cp_every = opts.ib_checkpoint_keys(&db.cfg);
    let store = idx.run_store();
    let mut merge = Merge::resume(&store, &merge_cp)?;
    let mut ib = db.begin_ib();
    let mut batch: Vec<IndexEntry> = Vec::with_capacity(db.cfg.ib_multi_key_batch);
    let mut since_cp = 0usize;
    let mut last_key: Option<mohan_common::KeyValue> = None;

    let result = (|| -> Result<()> {
        while let Some(entry) = merge.next() {
            db.failpoints.hit("nsf.insert.key")?;
            last_key = Some(entry.key.clone());
            match idx.tree.insert(entry.clone(), InsertMode::Ib)? {
                InsertOutcome::Inserted => batch.push(entry),
                InsertOutcome::DuplicateEntry { .. } => {
                    // Already present (a transaction beat the IB, or a
                    // committed deleter left a tombstone): rejected, no
                    // log record written (§2.2.3).
                }
                InsertOutcome::DuplicateKeyValue { existing, .. } => {
                    ib_resolve_unique(db, ib, idx, entry, existing)?;
                }
            }
            inserted += 1;
            since_cp += 1;
            if batch.len() >= db.cfg.ib_multi_key_batch {
                flush_ib_batch(db, ib, idx, &mut batch)?;
            }
            if since_cp >= cp_every {
                since_cp = 0;
                flush_ib_batch(db, ib, idx, &mut batch)?;
                // §2.2.3 periodic checkpointing: force the tree, commit
                // the inserts, record the position.
                db.wal.flush_all();
                idx.tree.force_all(db.wal.flushed_lsn())?;
                db.ib_commit_cycle(&mut ib)?;
                if db.cfg.nsf_gradual_reads {
                    // Footnote 3: everything at or below the committed
                    // high key is now readable.
                    if let Some(high) = &last_key {
                        idx.set_read_watermark(high.clone());
                    }
                }
                progress::store(
                    db,
                    idx.def.id,
                    &BuildProgress::Inserting {
                        merge: merge.checkpoint(),
                        inserted,
                    },
                );
                db.failpoints.hit("build.insert")?;
            }
        }
        flush_ib_batch(db, ib, idx, &mut batch)?;
        let completed_at = db.wal.tail_lsn();
        db.commit(ib)?;
        complete_index(db, idx, completed_at)
    })();

    if let Err(e) = &result {
        if !e.is_crash() {
            let _ = db.rollback(ib);
        }
    }
    result
}

/// Log one multi-key record for the batch (§2.3.1: "one log record
/// for multiple keys").
fn flush_ib_batch(
    db: &Db,
    ib: TxId,
    idx: &IndexRuntime,
    batch: &mut Vec<IndexEntry>,
) -> Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    db.log(
        ib,
        RecKind::UndoRedo,
        LogPayload::IndexBulkInsert {
            index: idx.def.id,
            entries: std::mem::take(batch),
        },
    )?;
    Ok(())
}

/// §2.2.3 IB unique arbitration: lock *both* records (share, instant),
/// re-verify the duplicate condition against the data pages, and abort
/// the build only if it genuinely holds.
fn ib_resolve_unique(
    db: &Arc<Db>,
    ib: TxId,
    idx: &Arc<IndexRuntime>,
    entry: IndexEntry,
    existing: Rid,
) -> Result<()> {
    for _ in 0..8 {
        db.locks
            .instant(ib, LockName::Record(idx.def.table, entry.rid), LockMode::S)?;
        db.locks
            .instant(ib, LockName::Record(idx.def.table, existing), LockMode::S)?;
        let own = db.record_key(idx, entry.rid)?;
        if own.as_ref() != Some(&entry.key) {
            // Our record vanished or changed key: skip this key; the
            // responsible transaction maintains the index itself.
            return Ok(());
        }
        let theirs = db.record_key(idx, existing)?;
        if theirs.as_ref() == Some(&entry.key) {
            // Both records committed with the same key value: a unique
            // index cannot be built on this table (§2.2.3).
            return Err(Error::UniqueViolation {
                index: idx.def.id,
                existing,
            });
        }
        // The conflicting entry is committed-dead: take it over.
        if idx.tree.unique_replace(&entry.key, existing, entry.rid)? {
            db.log(
                ib,
                RecKind::UndoRedo,
                LogPayload::IndexInsert {
                    index: idx.def.id,
                    entry,
                },
            )?;
            return Ok(());
        }
        // Raced away; re-attempt the plain insert.
        match idx.tree.insert(entry.clone(), InsertMode::Ib)? {
            InsertOutcome::Inserted => {
                db.log(
                    ib,
                    RecKind::UndoRedo,
                    LogPayload::IndexInsert {
                        index: idx.def.id,
                        entry,
                    },
                )?;
                return Ok(());
            }
            InsertOutcome::DuplicateEntry { .. } => return Ok(()),
            InsertOutcome::DuplicateKeyValue { .. } => {}
        }
    }
    Err(Error::Corruption(format!(
        "IB unique arbitration did not converge on {}",
        idx.def.id
    )))
}

// ===================================================================
// SF: bottom-up load + side-file drain (§3.2)
// ===================================================================

fn sf_load_phase(
    db: &Arc<Db>,
    idx: &Arc<IndexRuntime>,
    merge_cp: MergeCheckpoint,
    bulk_cp: Option<mohan_btree::BulkCheckpoint>,
    opts: &BuildOptions,
) -> Result<()> {
    let _phase = PhaseTimer::new(db, "load");
    let cp_keys = opts.ib_checkpoint_keys(&db.cfg);
    let store = idx.run_store();
    let mut merge = Merge::resume(&store, &merge_cp)?;
    let mut loader = match &bulk_cp {
        Some(cp) => BulkLoader::resume(&idx.tree, cp)?,
        None => {
            // Persist the phase transition before touching the tree.
            let init = loader_init_checkpoint(db, idx)?;
            progress::store(
                db,
                idx.def.id,
                &BuildProgress::Loading {
                    merge: merge.checkpoint(),
                    bulk: init.clone(),
                },
            );
            BulkLoader::resume(&idx.tree, &init)?
        }
    };
    let ib = db.begin_ib();
    let unique = idx.def.unique;
    let mut since_cp = 0usize;
    let mut pending: Option<IndexEntry> = None;

    let result = (|| -> Result<()> {
        loop {
            if since_cp >= cp_keys {
                // The unique-path lookahead may hold one consumed
                // entry; it can be flushed (making the merge counters
                // and the loader agree) unless an equal-key run is
                // still in flight.
                if let Some(p) = &pending {
                    if merge.peek().is_none_or(|e| e.key != p.key) {
                        loader.append(pending.take().expect("pending"))?;
                    }
                }
                if pending.is_none() {
                    since_cp = 0;
                    db.wal.flush_all();
                    let bulk = loader.checkpoint(db.wal.flushed_lsn())?;
                    progress::store(
                        db,
                        idx.def.id,
                        &BuildProgress::Loading {
                            merge: merge.checkpoint(),
                            bulk,
                        },
                    );
                    db.failpoints.hit("build.load")?;
                }
            }
            let Some(entry) = merge.next() else { break };
            db.failpoints.hit("sf.load.key")?;
            since_cp += 1;
            if !unique {
                loader.append(entry)?;
                continue;
            }
            // Unique index: resolve runs of equal key values before
            // loading (both-committed ⇒ violation; committed-dead
            // entries are skipped).
            match pending.take() {
                None => pending = Some(entry),
                Some(prev) if prev.key != entry.key => {
                    loader.append(prev)?;
                    pending = Some(entry);
                }
                Some(prev) => {
                    let mut group = vec![prev, entry];
                    while merge.peek().is_some_and(|e| e.key == group[0].key) {
                        group.push(merge.next().expect("peeked"));
                        since_cp += 1;
                    }
                    if let Some(survivor) = resolve_unique_group(db, ib, idx, group)? {
                        loader.append(survivor)?;
                    }
                }
            }
        }
        if let Some(p) = pending.take() {
            loader.append(p)?;
        }
        db.wal.flush_all();
        loader.finish(db.wal.flushed_lsn())?;
        db.commit(ib)?;
        progress::store(db, idx.def.id, &BuildProgress::Draining { pos: 0 });
        Ok(())
    })();

    if let Err(e) = &result {
        if !e.is_crash() {
            let _ = db.rollback(ib);
        }
    }
    result
}

/// An "empty loader" checkpoint used to enter the loading phase
/// deterministically even if a crash hits before the first real
/// checkpoint.
fn loader_init_checkpoint(db: &Db, idx: &IndexRuntime) -> Result<mohan_btree::BulkCheckpoint> {
    db.wal.flush_all();
    let loader = BulkLoader::new(&idx.tree)?;
    loader.checkpoint(db.wal.flushed_lsn())
}

/// §2.2.3-style arbitration for a sorted group of equal keys during
/// the SF bulk load. Returns the surviving entry, if any.
fn resolve_unique_group(
    db: &Arc<Db>,
    ib: TxId,
    idx: &Arc<IndexRuntime>,
    group: Vec<IndexEntry>,
) -> Result<Option<IndexEntry>> {
    let mut survivor: Option<IndexEntry> = None;
    for e in group {
        db.locks
            .instant(ib, LockName::Record(idx.def.table, e.rid), LockMode::S)?;
        if db.record_key(idx, e.rid)?.as_ref() == Some(&e.key) {
            if let Some(s) = &survivor {
                return Err(Error::UniqueViolation {
                    index: idx.def.id,
                    existing: s.rid,
                });
            }
            survivor = Some(e);
        }
    }
    Ok(survivor)
}

pub(crate) fn sf_drain_phase(
    db: &Arc<Db>,
    idx: &Arc<IndexRuntime>,
    mut pos: u64,
    opts: &BuildOptions,
) -> Result<()> {
    let _phase = PhaseTimer::new(db, "drain");
    idx.side_file.set_drained(pos);
    let mut ib = db.begin_ib();
    let result = (|| -> Result<()> {
        // First pass: optionally sort the backlog for clustered index
        // access, preserving the relative order of identical keys
        // (§3.2.5). Applied as one atomic IB transaction; a crash
        // repeats the pass.
        if opts.sorted_apply(&db.cfg) {
            let snapshot = idx.side_file.len();
            if snapshot > pos {
                let mut ops = idx.side_file.read(pos, (snapshot - pos) as usize);
                ops.sort_by(|a, b| a.entry.cmp(&b.entry)); // stable
                for op in ops {
                    apply_drain_op(db, ib, idx, op)?;
                    db.failpoints.hit("sf.drain.op")?;
                }
                db.ib_commit_cycle(&mut ib)?;
                pos = snapshot;
                idx.side_file.set_drained(pos);
                idx.side_file.drain_passes.bump();
                db.obs.trace().event("build.phase", "sf.drain.pass", pos);
                progress::store(db, idx.def.id, &BuildProgress::Draining { pos });
                db.failpoints.hit("build.drain")?;
            }
        }
        // Catch-up passes: drain the whole visible backlog each pass.
        // If sustained appends outpace the drain for several passes,
        // fall back to a short table quiesce for the final catch-up —
        // the paper assumes the IB eventually reaches the last entry
        // (§3.2.5); against adversarial unthrottled updaters that
        // assumption needs the same brief lock phase production online
        // DDL implementations use (see DESIGN.md).
        let mut nonempty_passes = 0u32;
        let mut quiesce_tx: Option<TxId> = None;
        let result2 = (|| -> Result<()> {
            loop {
                let backlog = idx.side_file.len().saturating_sub(pos) as usize;
                let batch = idx.side_file.read(pos, backlog.max(db.cfg.side_file_batch));
                if batch.is_empty() {
                    let completed_at = db.wal.tail_lsn();
                    if idx.side_file.try_close(pos) {
                        db.commit(ib)?;
                        return complete_index(db, idx, completed_at);
                    }
                    std::thread::yield_now();
                    continue;
                }
                for op in batch {
                    apply_drain_op(db, ib, idx, op)?;
                    pos += 1;
                    idx.side_file.set_drained(pos);
                    db.failpoints.hit("sf.drain.op")?;
                }
                db.ib_commit_cycle(&mut ib)?;
                db.obs.trace().event("build.phase", "sf.drain.pass", pos);
                progress::store(db, idx.def.id, &BuildProgress::Draining { pos });
                db.failpoints.hit("build.drain")?;
                nonempty_passes += 1;
                idx.side_file.drain_passes.bump();
                if nonempty_passes >= 3 && quiesce_tx.is_none() {
                    db.obs.trace().event("build.phase", "sf.drain.quiesce", pos);
                    let qtx = db.begin();
                    db.locks
                        .lock(qtx, LockName::Table(idx.def.table), LockMode::S)?;
                    quiesce_tx = Some(qtx);
                }
            }
        })();
        if let Some(qtx) = quiesce_tx {
            let _ = db.commit(qtx);
        }
        result2
    })();
    if let Err(e) = &result {
        if !e.is_crash() {
            let _ = db.rollback(ib);
        }
    }
    result
}

/// Apply one side-file entry "as a normal transaction would", with
/// undo-redo logging (§3.2.5). Inserts tolerate duplicates (crash
/// overlap with the rescan window); deletes tolerate missing keys.
///
/// Each operation is verified against the record's *current* state
/// first (the same data-page re-verification §2.2.3 uses for unique
/// checks): RID reuse can produce a stale entry — e.g. record A with
/// key K deleted at RID R (side-file `delete <K,R>`) and record B
/// re-inserted at R with the same derived key while *invisible* to
/// the side-file (different primary key, or the post-crash rescan
/// window). Applying the stale delete would remove B's perfectly
/// valid key. An operation that disagrees with the current record
/// state is skipped: whatever changed the record either appended a
/// later side-file entry (it was visible) or is covered by the IB's
/// own extraction.
fn apply_drain_op(
    db: &Arc<Db>,
    ib: TxId,
    idx: &Arc<IndexRuntime>,
    op: mohan_wal::SideFileOp,
) -> Result<()> {
    let current = db.record_key(idx, op.entry.rid)?;
    let record_has_key = current.as_ref() == Some(&op.entry.key);
    if op.insert != record_has_key {
        return Ok(());
    }
    if op.insert {
        match idx.tree.insert(op.entry.clone(), InsertMode::Transaction)? {
            InsertOutcome::Inserted => {
                db.log(
                    ib,
                    RecKind::UndoRedo,
                    LogPayload::IndexInsert {
                        index: idx.def.id,
                        entry: op.entry,
                    },
                )?;
            }
            InsertOutcome::DuplicateEntry { pseudo: true } => {
                idx.tree.set_pseudo(&op.entry, false)?;
                db.log(
                    ib,
                    RecKind::UndoRedo,
                    LogPayload::IndexReactivate {
                        index: idx.def.id,
                        entry: op.entry,
                    },
                )?;
            }
            InsertOutcome::DuplicateEntry { pseudo: false } => {}
            InsertOutcome::DuplicateKeyValue { existing, .. } => {
                ib_resolve_unique(db, ib, idx, op.entry, existing)?;
            }
        }
    } else {
        let was = idx.tree.lookup_exact(&op.entry)?;
        if let Some(state) = was {
            idx.tree.physical_delete(&op.entry)?;
            db.log(
                ib,
                RecKind::UndoRedo,
                LogPayload::IndexPhysicalDelete {
                    index: idx.def.id,
                    entry: op.entry,
                    was_pseudo: state.pseudo_deleted,
                },
            )?;
        }
    }
    Ok(())
}

// ===================================================================
// Offline baseline
// ===================================================================

/// The pre-paper way: quiesce *all* updates for the whole build.
fn offline_build(
    db: &Arc<Db>,
    table: TableId,
    specs: &[IndexSpec],
    opts: &BuildOptions,
    on_ids: impl FnOnce(&[IndexId]),
) -> Result<Vec<IndexId>> {
    let tx = db.begin();
    db.locks.lock(tx, LockName::Table(table), LockMode::S)?;
    let result = (|| -> Result<Vec<IndexId>> {
        let tbl = db.table(table)?;
        let mut idxs = Vec::with_capacity(specs.len());
        for spec in specs {
            let rt = make_runtime(
                db,
                table,
                spec,
                BuildAlgorithm::Offline,
                IndexState::Complete,
            );
            set_scan_bounds(&rt, &tbl);
            rt.configure_run_store(opts.compress_runs);
            idxs.push(rt);
        }
        on_ids(&idxs.iter().map(|i| i.def.id).collect::<Vec<_>>());
        // One shared scan, unregistered runtimes: a crash leaves no
        // trace (the offline strategy is restart-from-scratch).
        let runs = if opts.parallel_workers > 1 {
            parallel_scan_and_sort(db, &idxs, &vec![None; idxs.len()], opts)?
        } else {
            scan_and_sort(db, &idxs, &vec![None; idxs.len()], opts)?
        };
        for (idx, idx_runs) in idxs.iter().zip(runs) {
            let finals = reduce_phase(db, idx, idx_runs, None, opts)?;
            let merge_cp = MergeCheckpoint {
                counters: vec![0; finals.len()],
                inputs: finals,
                emitted: 0,
            };
            offline_load(db, idx, merge_cp)?;
        }
        let ids = idxs.iter().map(|i| i.def.id).collect();
        for idx in idxs {
            idx.set_completed_lsn(db.wal.tail_lsn());
            progress::clear(db, idx.def.id);
            db.register_index(idx);
        }
        Ok(ids)
    })();
    match result {
        Ok(ids) => {
            db.commit(tx)?;
            Ok(ids)
        }
        Err(e) => {
            let _ = db.rollback(tx);
            Err(e)
        }
    }
}

/// Plain bottom-up load for the offline baseline (quiesced, so no
/// uniqueness races: adjacent equal keys are a straight violation).
fn offline_load(db: &Arc<Db>, idx: &Arc<IndexRuntime>, merge_cp: MergeCheckpoint) -> Result<()> {
    let store = idx.run_store();
    let merge = Merge::resume(&store, &merge_cp)?;
    let mut loader = BulkLoader::new(&idx.tree)?;
    let mut prev: Option<IndexEntry> = None;
    for entry in merge {
        if idx.def.unique {
            if let Some(p) = &prev {
                if p.key == entry.key {
                    return Err(Error::UniqueViolation {
                        index: idx.def.id,
                        existing: p.rid,
                    });
                }
            }
        }
        prev = Some(entry.clone());
        loader.append(entry)?;
    }
    db.wal.flush_all();
    loader.finish(db.wal.flushed_lsn())?;
    Ok(())
}

// ===================================================================
// cancel (§2.3.2)
// ===================================================================

/// Cancelling an in-progress build: quiesce updates (so rollbacks
/// never meet a half-vanished descriptor), then delete the descriptor
/// and all build state.
fn cancel_builds(db: &Arc<Db>, idxs: &[Arc<IndexRuntime>]) -> Result<()> {
    let tx = db.begin();
    db.locks
        .lock(tx, LockName::Table(idxs[0].def.table), LockMode::S)?;
    for idx in idxs {
        db.unregister_index(idx.def.id);
        progress::clear(db, idx.def.id);
        idx.tree.clear();
    }
    db.commit(tx)
}
