//! The index-build drivers: offline baseline, NSF (§2), SF (§3),
//! multi-index single-scan builds (§6.2), restart resume, and drop /
//! cancel (§2.3.2).

use crate::engine::Db;
use crate::progress::{self, BuildProgress};
use crate::runtime::{IndexRuntime, IndexState};
use crate::schema::{BuildAlgorithm, IndexDef, Record};
use mohan_btree::{BulkLoader, InsertMode, InsertOutcome};
use mohan_common::{Error, IndexEntry, IndexId, PageId, Result, Rid, SlotId, TableId, TxId};
use mohan_lock::{LockMode, LockName};
use mohan_sort::{
    ExternalSort, Merge, MergeCheckpoint, MergePassCheckpoint, RunFormation, SortCheckpoint,
};
use mohan_wal::{LogPayload, RecKind};
use std::sync::Arc;
use std::time::Instant;

/// Times one build phase: on drop (success, error and crash paths
/// alike) the duration lands in the `build.phase_us.<label>` histogram
/// and a `build.phase` trace event, so the ring shows the scan → sort
/// → load/insert → drain → flip transitions in order.
struct PhaseTimer<'a> {
    db: &'a Db,
    label: &'static str,
    started: Instant,
}

impl<'a> PhaseTimer<'a> {
    fn new(db: &'a Db, label: &'static str) -> PhaseTimer<'a> {
        PhaseTimer {
            db,
            label,
            started: Instant::now(),
        }
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        let d = self.started.elapsed();
        self.db
            .obs
            .histogram(&format!("build.phase_us.{}", self.label))
            .record_micros(d);
        self.db.obs.trace().span_event(
            "build.phase",
            self.label,
            d.as_micros().min(u128::from(u64::MAX)) as u64,
            0,
        );
    }
}

/// What the caller wants indexed.
#[derive(Debug, Clone)]
pub struct IndexSpec {
    /// Index name.
    pub name: String,
    /// Key columns, in order.
    pub key_cols: Vec<usize>,
    /// Enforce key-value uniqueness.
    pub unique: bool,
}

/// Build one index.
pub fn build_index(
    db: &Arc<Db>,
    table: TableId,
    spec: IndexSpec,
    algorithm: BuildAlgorithm,
) -> Result<IndexId> {
    Ok(build_indexes(db, table, &[spec], algorithm)?[0])
}

/// Build several indexes in **one scan of the data** (§6.2). Returns
/// their ids. On a unique-key violation every index of the batch is
/// cancelled; on an injected crash the builds stay resumable via
/// [`resume_build`].
pub fn build_indexes(
    db: &Arc<Db>,
    table: TableId,
    specs: &[IndexSpec],
    algorithm: BuildAlgorithm,
) -> Result<Vec<IndexId>> {
    build_indexes_observed(db, table, specs, algorithm, |_| {})
}

/// [`build_indexes`] with an observer hook: `on_ids` fires once the
/// batch's index ids are allocated (descriptors registered for NSF/SF,
/// runtimes created for offline), before any scan work. An observer —
/// e.g. a server streaming progress frames — can then poll
/// [`progress::load`] for exactly these ids instead of guessing which
/// of the table's in-flight builds is this one.
pub fn build_indexes_observed(
    db: &Arc<Db>,
    table: TableId,
    specs: &[IndexSpec],
    algorithm: BuildAlgorithm,
    on_ids: impl FnOnce(&[IndexId]),
) -> Result<Vec<IndexId>> {
    assert!(!specs.is_empty());
    match algorithm {
        BuildAlgorithm::Offline => offline_build(db, table, specs, on_ids),
        BuildAlgorithm::Nsf | BuildAlgorithm::Sf => {
            let idxs = create_descriptors(db, table, specs, algorithm)?;
            let ids: Vec<IndexId> = idxs.iter().map(|i| i.def.id).collect();
            on_ids(&ids);
            match run_from_scratch(db, &idxs) {
                Ok(()) => Ok(ids),
                Err(e) if e.is_crash() => Err(e),
                Err(e) => {
                    cancel_builds(db, &idxs)?;
                    Err(e)
                }
            }
        }
    }
}

/// Continue an interrupted build after [`Db::restart`].
pub fn resume_build(db: &Arc<Db>, id: IndexId) -> Result<()> {
    let idx = db.index(id)?;
    if idx.state() == IndexState::Complete {
        return Ok(());
    }
    let result = resume_one(db, &idx);
    match result {
        Ok(()) => Ok(()),
        Err(e) if e.is_crash() => Err(e),
        Err(e) => {
            cancel_builds(db, std::slice::from_ref(&idx))?;
            Err(e)
        }
    }
}

/// Drop a completed index (or abandon one mid-build from the outside):
/// quiesce updates with a table S lock (footnote 6), then remove the
/// descriptor.
pub fn drop_index(db: &Arc<Db>, id: IndexId) -> Result<()> {
    let idx = db.index(id)?;
    let tx = db.begin();
    db.locks
        .lock(tx, LockName::Table(idx.def.table), LockMode::S)?;
    db.unregister_index(id);
    progress::clear(db, id);
    db.commit(tx)
}

// ===================================================================
// descriptor creation
// ===================================================================

fn make_runtime(
    db: &Db,
    table: TableId,
    spec: &IndexSpec,
    algorithm: BuildAlgorithm,
    state: IndexState,
) -> Arc<IndexRuntime> {
    let def = IndexDef {
        id: db.next_index_id(),
        name: spec.name.clone(),
        table,
        unique: spec.unique,
        key_cols: spec.key_cols.clone(),
    };
    Arc::new(IndexRuntime::new(def, algorithm, state, &db.cfg))
}

/// NSF: short quiesce (table S lock) around descriptor creation so no
/// update transaction straddles it (§2.2.1). SF: no quiesce (§3.2.1).
fn create_descriptors(
    db: &Arc<Db>,
    table: TableId,
    specs: &[IndexSpec],
    algorithm: BuildAlgorithm,
) -> Result<Vec<Arc<IndexRuntime>>> {
    let tbl = db.table(table)?;
    let mut out = Vec::with_capacity(specs.len());
    match algorithm {
        BuildAlgorithm::Nsf => {
            // §2.2.1's short quiesce — or the §3.2.3 no-quiesce
            // alternative, where transactions straddling the creation
            // are compensated via the visible-index-count comparison
            // at rollback.
            let quiesce_tx = if db.cfg.nsf_descriptor_quiesce {
                let tx = db.begin();
                db.locks.lock(tx, LockName::Table(table), LockMode::S)?;
                Some(tx)
            } else {
                None
            };
            for spec in specs {
                let rt = make_runtime(db, table, spec, algorithm, IndexState::NsfBuilding);
                set_scan_bounds(&rt, &tbl);
                force_empty_tree(db, &rt)?;
                db.register_index(Arc::clone(&rt));
                out.push(rt);
            }
            if let Some(tx) = quiesce_tx {
                // End the quiesce: update transactions may run again.
                db.commit(tx)?;
            }
        }
        BuildAlgorithm::Sf => {
            for spec in specs {
                let rt = make_runtime(db, table, spec, algorithm, IndexState::SfBuilding);
                set_scan_bounds(&rt, &tbl);
                force_empty_tree(db, &rt)?;
                db.register_index(Arc::clone(&rt));
                out.push(rt);
            }
        }
        BuildAlgorithm::Offline => unreachable!("offline uses offline_build"),
    }
    Ok(out)
}

/// Note the last data page before the scan starts (§2.3.1): records
/// added to later pages are the transactions' responsibility.
/// Descriptor creation is a durable catalog update: force the empty
/// tree (anchor + root) so restart always finds a structurally valid
/// index to recover into.
fn force_empty_tree(db: &Db, rt: &IndexRuntime) -> mohan_common::Result<()> {
    db.wal.flush_all();
    rt.tree.force_all(db.wal.flushed_lsn())
}

fn set_scan_bounds(rt: &IndexRuntime, tbl: &mohan_heap::HeapTable) {
    let pages = tbl.num_pages();
    if pages == 0 {
        rt.set_scan_end(PageId(u32::MAX));
        rt.finish_scan();
    } else {
        rt.set_scan_end(PageId(pages - 1));
    }
}

// ===================================================================
// the build pipeline
// ===================================================================

fn run_from_scratch(db: &Arc<Db>, idxs: &[Arc<IndexRuntime>]) -> Result<()> {
    let runs = scan_and_sort(db, idxs, &vec![None; idxs.len()])?;
    for (idx, idx_runs) in idxs.iter().zip(runs) {
        let finals = reduce_phase(db, idx, idx_runs, None)?;
        enter_final_phase(db, idx, finals)?;
    }
    Ok(())
}

fn resume_one(db: &Arc<Db>, idx: &Arc<IndexRuntime>) -> Result<()> {
    match progress::load(db, idx.def.id)? {
        None => {
            // Crash before the first sort checkpoint: start over.
            run_from_scratch(db, std::slice::from_ref(idx))
        }
        Some(BuildProgress::Scanning { sort }) => {
            let runs = scan_and_sort(db, std::slice::from_ref(idx), &[Some(sort)])?;
            let finals = reduce_phase(db, idx, runs.into_iter().next().expect("one"), None)?;
            enter_final_phase(db, idx, finals)
        }
        Some(BuildProgress::Reducing { pass }) => {
            let finals = reduce_phase(db, idx, Vec::new(), Some(pass))?;
            enter_final_phase(db, idx, finals)
        }
        Some(BuildProgress::Loading { merge, bulk }) => {
            sf_load_phase(db, idx, merge, Some(bulk))?;
            sf_drain_phase(db, idx, 0)
        }
        Some(BuildProgress::Inserting { merge, inserted }) => {
            nsf_insert_phase(db, idx, merge, inserted)
        }
        Some(BuildProgress::Draining { pos }) => sf_drain_phase(db, idx, pos),
    }
}

/// Scan the data pages once, feeding every index's run formation;
/// checkpoint all sorters together (§5.1). `resumes[i]` repositions
/// index `i` after a crash.
fn scan_and_sort(
    db: &Arc<Db>,
    idxs: &[Arc<IndexRuntime>],
    resumes: &[Option<SortCheckpoint<IndexEntry>>],
) -> Result<Vec<Vec<u64>>> {
    let _phase = PhaseTimer::new(db, "scan");
    let table = db.table(idxs[0].def.table)?;
    let ws = db.cfg.sort_workspace_keys;
    let mut rfs: Vec<RunFormation<IndexEntry>> = Vec::with_capacity(idxs.len());
    let mut floors: Vec<u64> = Vec::with_capacity(idxs.len());
    for (idx, resume) in idxs.iter().zip(resumes) {
        let store = idx.run_store();
        match resume {
            Some(cp) => {
                floors.push(cp.scan_pos);
                rfs.push(RunFormation::resume(store, ws, cp)?);
            }
            None => {
                floors.push(0);
                rfs.push(RunFormation::new(store, ws));
            }
        }
    }
    let scan_end = idxs[0].scan_end();
    if scan_end != PageId(u32::MAX) && table.num_pages() > 0 {
        // Scan positions are `rid.pack() + 1` so that position 0
        // unambiguously means "nothing fed" (RID (0,0) packs to 0).
        let min_floor = floors.iter().copied().min().unwrap_or(0);
        let from = if min_floor == 0 {
            None
        } else {
            Some(Rid::unpack(min_floor - 1))
        };
        let mut since_cp = 0usize;
        table.scan_pages(
            from,
            scan_end,
            |rid, data| {
                let rec = Record::decode(data)?;
                let pos = rid.pack() + 1;
                for (i, idx) in idxs.iter().enumerate() {
                    if pos > floors[i] {
                        let entry = idx.def.entry_of(&rec, rid)?;
                        rfs[i].push(entry, pos)?;
                    }
                    if idx.algorithm == BuildAlgorithm::Sf {
                        // Advance Current-RID under the page's S latch
                        // (§3.2.2): this record's key is now the IB's
                        // responsibility; everything before it is the
                        // transactions'.
                        idx.set_current_rid(rid);
                    }
                }
                db.failpoints.hit("build.scan.record")?;
                since_cp += 1;
                if since_cp >= db.cfg.sort_checkpoint_every_keys {
                    since_cp = 0;
                    for (i, idx) in idxs.iter().enumerate() {
                        let cp = rfs[i].checkpoint()?;
                        progress::store(db, idx.def.id, &BuildProgress::Scanning { sort: cp });
                    }
                    db.failpoints.hit("build.scan")?;
                }
                Ok(true)
            },
            |page| {
                for idx in idxs {
                    if idx.algorithm == BuildAlgorithm::Sf {
                        // The scan is done with this page. Advance
                        // Current-RID past every slot the page could
                        // ever hold *before* the S latch drops: an
                        // insert that reuses the page's free space
                        // after the scan has left must compare below
                        // the cursor and go to the side-file — with
                        // only the last-record cursor it would land
                        // above it and its key would never reach the
                        // index.
                        idx.set_current_rid(Rid {
                            page,
                            slot: SlotId(u16::MAX),
                        });
                    }
                }
            },
        )?;
    }
    for idx in idxs {
        if idx.algorithm == BuildAlgorithm::Sf {
            idx.finish_scan();
        }
    }
    let mut all_runs = Vec::with_capacity(idxs.len());
    for rf in rfs {
        all_runs.push(rf.finish()?);
    }
    Ok(all_runs)
}

/// Reduce runs below the merge fan-in, persisting §5.2 checkpoints.
fn reduce_phase(
    db: &Arc<Db>,
    idx: &Arc<IndexRuntime>,
    runs: Vec<u64>,
    resume: Option<MergePassCheckpoint>,
) -> Result<Vec<u64>> {
    let _phase = PhaseTimer::new(db, "reduce");
    let ext = ExternalSort {
        store: idx.run_store(),
        workspace: db.cfg.sort_workspace_keys,
        fan_in: db.cfg.merge_fan_in,
        checkpoint_every: db.cfg.merge_checkpoint_every_keys,
    };
    let id = idx.def.id;
    let mut persist = |cp: &MergePassCheckpoint| -> Result<()> {
        progress::store(db, id, &BuildProgress::Reducing { pass: cp.clone() });
        db.failpoints.hit("build.reduce")
    };
    match resume {
        Some(cp) => ext.resume_reduce(&cp, &mut persist),
        None => ext.reduce_runs(runs, &mut persist),
    }
}

/// Persist the initial final-phase progress record, then run it.
fn enter_final_phase(db: &Arc<Db>, idx: &Arc<IndexRuntime>, finals: Vec<u64>) -> Result<()> {
    let merge_cp = MergeCheckpoint {
        counters: vec![0; finals.len()],
        inputs: finals,
        emitted: 0,
    };
    match idx.algorithm {
        BuildAlgorithm::Nsf => {
            progress::store(
                db,
                idx.def.id,
                &BuildProgress::Inserting {
                    merge: merge_cp.clone(),
                    inserted: 0,
                },
            );
            nsf_insert_phase(db, idx, merge_cp, 0)
        }
        BuildAlgorithm::Sf => {
            sf_load_phase(db, idx, merge_cp, None)?;
            sf_drain_phase(db, idx, 0)
        }
        BuildAlgorithm::Offline => offline_load(db, idx, merge_cp),
    }
}

/// Mark the index complete: record the completion horizon, flip the
/// state, persist the catalog and drop the progress record.
fn complete_index(
    db: &Arc<Db>,
    idx: &Arc<IndexRuntime>,
    completed_at: mohan_common::Lsn,
) -> Result<()> {
    idx.set_completed_lsn(completed_at);
    idx.set_state(IndexState::Complete);
    db.obs
        .trace()
        .event("build.phase", "flip", u64::from(idx.def.id.0));
    db.persist_catalog();
    progress::clear(db, idx.def.id);
    db.wal.flush_all();
    idx.tree.force_all(db.wal.flushed_lsn())?;
    Ok(())
}

// ===================================================================
// NSF: insert into the shared tree (§2.2.3)
// ===================================================================

fn nsf_insert_phase(
    db: &Arc<Db>,
    idx: &Arc<IndexRuntime>,
    merge_cp: MergeCheckpoint,
    mut inserted: u64,
) -> Result<()> {
    let _phase = PhaseTimer::new(db, "insert");
    let store = idx.run_store();
    let mut merge = Merge::resume(&store, &merge_cp)?;
    let mut ib = db.begin_ib();
    let mut batch: Vec<IndexEntry> = Vec::with_capacity(db.cfg.ib_multi_key_batch);
    let mut since_cp = 0usize;
    let mut last_key: Option<mohan_common::KeyValue> = None;

    let result = (|| -> Result<()> {
        while let Some(entry) = merge.next() {
            db.failpoints.hit("nsf.insert.key")?;
            last_key = Some(entry.key.clone());
            match idx.tree.insert(entry.clone(), InsertMode::Ib)? {
                InsertOutcome::Inserted => batch.push(entry),
                InsertOutcome::DuplicateEntry { .. } => {
                    // Already present (a transaction beat the IB, or a
                    // committed deleter left a tombstone): rejected, no
                    // log record written (§2.2.3).
                }
                InsertOutcome::DuplicateKeyValue { existing, .. } => {
                    ib_resolve_unique(db, ib, idx, entry, existing)?;
                }
            }
            inserted += 1;
            since_cp += 1;
            if batch.len() >= db.cfg.ib_multi_key_batch {
                flush_ib_batch(db, ib, idx, &mut batch)?;
            }
            if since_cp >= db.cfg.ib_checkpoint_every_keys {
                since_cp = 0;
                flush_ib_batch(db, ib, idx, &mut batch)?;
                // §2.2.3 periodic checkpointing: force the tree, commit
                // the inserts, record the position.
                db.wal.flush_all();
                idx.tree.force_all(db.wal.flushed_lsn())?;
                db.ib_commit_cycle(&mut ib)?;
                if db.cfg.nsf_gradual_reads {
                    // Footnote 3: everything at or below the committed
                    // high key is now readable.
                    if let Some(high) = &last_key {
                        idx.set_read_watermark(high.clone());
                    }
                }
                progress::store(
                    db,
                    idx.def.id,
                    &BuildProgress::Inserting {
                        merge: merge.checkpoint(),
                        inserted,
                    },
                );
                db.failpoints.hit("build.insert")?;
            }
        }
        flush_ib_batch(db, ib, idx, &mut batch)?;
        let completed_at = db.wal.tail_lsn();
        db.commit(ib)?;
        complete_index(db, idx, completed_at)
    })();

    if let Err(e) = &result {
        if !e.is_crash() {
            let _ = db.rollback(ib);
        }
    }
    result
}

/// Log one multi-key record for the batch (§2.3.1: "one log record
/// for multiple keys").
fn flush_ib_batch(
    db: &Db,
    ib: TxId,
    idx: &IndexRuntime,
    batch: &mut Vec<IndexEntry>,
) -> Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    db.log(
        ib,
        RecKind::UndoRedo,
        LogPayload::IndexBulkInsert {
            index: idx.def.id,
            entries: std::mem::take(batch),
        },
    )?;
    Ok(())
}

/// §2.2.3 IB unique arbitration: lock *both* records (share, instant),
/// re-verify the duplicate condition against the data pages, and abort
/// the build only if it genuinely holds.
fn ib_resolve_unique(
    db: &Arc<Db>,
    ib: TxId,
    idx: &Arc<IndexRuntime>,
    entry: IndexEntry,
    existing: Rid,
) -> Result<()> {
    for _ in 0..8 {
        db.locks
            .instant(ib, LockName::Record(idx.def.table, entry.rid), LockMode::S)?;
        db.locks
            .instant(ib, LockName::Record(idx.def.table, existing), LockMode::S)?;
        let own = db.record_key(idx, entry.rid)?;
        if own.as_ref() != Some(&entry.key) {
            // Our record vanished or changed key: skip this key; the
            // responsible transaction maintains the index itself.
            return Ok(());
        }
        let theirs = db.record_key(idx, existing)?;
        if theirs.as_ref() == Some(&entry.key) {
            // Both records committed with the same key value: a unique
            // index cannot be built on this table (§2.2.3).
            return Err(Error::UniqueViolation {
                index: idx.def.id,
                existing,
            });
        }
        // The conflicting entry is committed-dead: take it over.
        if idx.tree.unique_replace(&entry.key, existing, entry.rid)? {
            db.log(
                ib,
                RecKind::UndoRedo,
                LogPayload::IndexInsert {
                    index: idx.def.id,
                    entry,
                },
            )?;
            return Ok(());
        }
        // Raced away; re-attempt the plain insert.
        match idx.tree.insert(entry.clone(), InsertMode::Ib)? {
            InsertOutcome::Inserted => {
                db.log(
                    ib,
                    RecKind::UndoRedo,
                    LogPayload::IndexInsert {
                        index: idx.def.id,
                        entry,
                    },
                )?;
                return Ok(());
            }
            InsertOutcome::DuplicateEntry { .. } => return Ok(()),
            InsertOutcome::DuplicateKeyValue { .. } => {}
        }
    }
    Err(Error::Corruption(format!(
        "IB unique arbitration did not converge on {}",
        idx.def.id
    )))
}

// ===================================================================
// SF: bottom-up load + side-file drain (§3.2)
// ===================================================================

fn sf_load_phase(
    db: &Arc<Db>,
    idx: &Arc<IndexRuntime>,
    merge_cp: MergeCheckpoint,
    bulk_cp: Option<mohan_btree::BulkCheckpoint>,
) -> Result<()> {
    let _phase = PhaseTimer::new(db, "load");
    let store = idx.run_store();
    let mut merge = Merge::resume(&store, &merge_cp)?;
    let mut loader = match &bulk_cp {
        Some(cp) => BulkLoader::resume(&idx.tree, cp)?,
        None => {
            // Persist the phase transition before touching the tree.
            let init = loader_init_checkpoint(db, idx)?;
            progress::store(
                db,
                idx.def.id,
                &BuildProgress::Loading {
                    merge: merge.checkpoint(),
                    bulk: init.clone(),
                },
            );
            BulkLoader::resume(&idx.tree, &init)?
        }
    };
    let ib = db.begin_ib();
    let unique = idx.def.unique;
    let mut since_cp = 0usize;
    let mut pending: Option<IndexEntry> = None;

    let result = (|| -> Result<()> {
        loop {
            if since_cp >= db.cfg.ib_checkpoint_every_keys {
                // The unique-path lookahead may hold one consumed
                // entry; it can be flushed (making the merge counters
                // and the loader agree) unless an equal-key run is
                // still in flight.
                if let Some(p) = &pending {
                    if merge.peek().is_none_or(|e| e.key != p.key) {
                        loader.append(pending.take().expect("pending"))?;
                    }
                }
                if pending.is_none() {
                    since_cp = 0;
                    db.wal.flush_all();
                    let bulk = loader.checkpoint(db.wal.flushed_lsn())?;
                    progress::store(
                        db,
                        idx.def.id,
                        &BuildProgress::Loading {
                            merge: merge.checkpoint(),
                            bulk,
                        },
                    );
                    db.failpoints.hit("build.load")?;
                }
            }
            let Some(entry) = merge.next() else { break };
            db.failpoints.hit("sf.load.key")?;
            since_cp += 1;
            if !unique {
                loader.append(entry)?;
                continue;
            }
            // Unique index: resolve runs of equal key values before
            // loading (both-committed ⇒ violation; committed-dead
            // entries are skipped).
            match pending.take() {
                None => pending = Some(entry),
                Some(prev) if prev.key != entry.key => {
                    loader.append(prev)?;
                    pending = Some(entry);
                }
                Some(prev) => {
                    let mut group = vec![prev, entry];
                    while merge.peek().is_some_and(|e| e.key == group[0].key) {
                        group.push(merge.next().expect("peeked"));
                        since_cp += 1;
                    }
                    if let Some(survivor) = resolve_unique_group(db, ib, idx, group)? {
                        loader.append(survivor)?;
                    }
                }
            }
        }
        if let Some(p) = pending.take() {
            loader.append(p)?;
        }
        db.wal.flush_all();
        loader.finish(db.wal.flushed_lsn())?;
        db.commit(ib)?;
        progress::store(db, idx.def.id, &BuildProgress::Draining { pos: 0 });
        Ok(())
    })();

    if let Err(e) = &result {
        if !e.is_crash() {
            let _ = db.rollback(ib);
        }
    }
    result
}

/// An "empty loader" checkpoint used to enter the loading phase
/// deterministically even if a crash hits before the first real
/// checkpoint.
fn loader_init_checkpoint(db: &Db, idx: &IndexRuntime) -> Result<mohan_btree::BulkCheckpoint> {
    db.wal.flush_all();
    let loader = BulkLoader::new(&idx.tree)?;
    loader.checkpoint(db.wal.flushed_lsn())
}

/// §2.2.3-style arbitration for a sorted group of equal keys during
/// the SF bulk load. Returns the surviving entry, if any.
fn resolve_unique_group(
    db: &Arc<Db>,
    ib: TxId,
    idx: &Arc<IndexRuntime>,
    group: Vec<IndexEntry>,
) -> Result<Option<IndexEntry>> {
    let mut survivor: Option<IndexEntry> = None;
    for e in group {
        db.locks
            .instant(ib, LockName::Record(idx.def.table, e.rid), LockMode::S)?;
        if db.record_key(idx, e.rid)?.as_ref() == Some(&e.key) {
            if let Some(s) = &survivor {
                return Err(Error::UniqueViolation {
                    index: idx.def.id,
                    existing: s.rid,
                });
            }
            survivor = Some(e);
        }
    }
    Ok(survivor)
}

pub(crate) fn sf_drain_phase(db: &Arc<Db>, idx: &Arc<IndexRuntime>, mut pos: u64) -> Result<()> {
    let _phase = PhaseTimer::new(db, "drain");
    idx.side_file.set_drained(pos);
    let mut ib = db.begin_ib();
    let result = (|| -> Result<()> {
        // First pass: optionally sort the backlog for clustered index
        // access, preserving the relative order of identical keys
        // (§3.2.5). Applied as one atomic IB transaction; a crash
        // repeats the pass.
        if db.cfg.side_file_sorted_apply {
            let snapshot = idx.side_file.len();
            if snapshot > pos {
                let mut ops = idx.side_file.read(pos, (snapshot - pos) as usize);
                ops.sort_by(|a, b| a.entry.cmp(&b.entry)); // stable
                for op in ops {
                    apply_drain_op(db, ib, idx, op)?;
                    db.failpoints.hit("sf.drain.op")?;
                }
                db.ib_commit_cycle(&mut ib)?;
                pos = snapshot;
                idx.side_file.set_drained(pos);
                idx.side_file.drain_passes.bump();
                db.obs.trace().event("build.phase", "sf.drain.pass", pos);
                progress::store(db, idx.def.id, &BuildProgress::Draining { pos });
                db.failpoints.hit("build.drain")?;
            }
        }
        // Catch-up passes: drain the whole visible backlog each pass.
        // If sustained appends outpace the drain for several passes,
        // fall back to a short table quiesce for the final catch-up —
        // the paper assumes the IB eventually reaches the last entry
        // (§3.2.5); against adversarial unthrottled updaters that
        // assumption needs the same brief lock phase production online
        // DDL implementations use (see DESIGN.md).
        let mut nonempty_passes = 0u32;
        let mut quiesce_tx: Option<TxId> = None;
        let result2 = (|| -> Result<()> {
            loop {
                let backlog = idx.side_file.len().saturating_sub(pos) as usize;
                let batch = idx.side_file.read(pos, backlog.max(db.cfg.side_file_batch));
                if batch.is_empty() {
                    let completed_at = db.wal.tail_lsn();
                    if idx.side_file.try_close(pos) {
                        db.commit(ib)?;
                        return complete_index(db, idx, completed_at);
                    }
                    std::thread::yield_now();
                    continue;
                }
                for op in batch {
                    apply_drain_op(db, ib, idx, op)?;
                    pos += 1;
                    idx.side_file.set_drained(pos);
                    db.failpoints.hit("sf.drain.op")?;
                }
                db.ib_commit_cycle(&mut ib)?;
                db.obs.trace().event("build.phase", "sf.drain.pass", pos);
                progress::store(db, idx.def.id, &BuildProgress::Draining { pos });
                db.failpoints.hit("build.drain")?;
                nonempty_passes += 1;
                idx.side_file.drain_passes.bump();
                if nonempty_passes >= 3 && quiesce_tx.is_none() {
                    db.obs.trace().event("build.phase", "sf.drain.quiesce", pos);
                    let qtx = db.begin();
                    db.locks
                        .lock(qtx, LockName::Table(idx.def.table), LockMode::S)?;
                    quiesce_tx = Some(qtx);
                }
            }
        })();
        if let Some(qtx) = quiesce_tx {
            let _ = db.commit(qtx);
        }
        result2
    })();
    if let Err(e) = &result {
        if !e.is_crash() {
            let _ = db.rollback(ib);
        }
    }
    result
}

/// Apply one side-file entry "as a normal transaction would", with
/// undo-redo logging (§3.2.5). Inserts tolerate duplicates (crash
/// overlap with the rescan window); deletes tolerate missing keys.
///
/// Each operation is verified against the record's *current* state
/// first (the same data-page re-verification §2.2.3 uses for unique
/// checks): RID reuse can produce a stale entry — e.g. record A with
/// key K deleted at RID R (side-file `delete <K,R>`) and record B
/// re-inserted at R with the same derived key while *invisible* to
/// the side-file (different primary key, or the post-crash rescan
/// window). Applying the stale delete would remove B's perfectly
/// valid key. An operation that disagrees with the current record
/// state is skipped: whatever changed the record either appended a
/// later side-file entry (it was visible) or is covered by the IB's
/// own extraction.
fn apply_drain_op(
    db: &Arc<Db>,
    ib: TxId,
    idx: &Arc<IndexRuntime>,
    op: mohan_wal::SideFileOp,
) -> Result<()> {
    let current = db.record_key(idx, op.entry.rid)?;
    let record_has_key = current.as_ref() == Some(&op.entry.key);
    if op.insert != record_has_key {
        return Ok(());
    }
    if op.insert {
        match idx.tree.insert(op.entry.clone(), InsertMode::Transaction)? {
            InsertOutcome::Inserted => {
                db.log(
                    ib,
                    RecKind::UndoRedo,
                    LogPayload::IndexInsert {
                        index: idx.def.id,
                        entry: op.entry,
                    },
                )?;
            }
            InsertOutcome::DuplicateEntry { pseudo: true } => {
                idx.tree.set_pseudo(&op.entry, false)?;
                db.log(
                    ib,
                    RecKind::UndoRedo,
                    LogPayload::IndexReactivate {
                        index: idx.def.id,
                        entry: op.entry,
                    },
                )?;
            }
            InsertOutcome::DuplicateEntry { pseudo: false } => {}
            InsertOutcome::DuplicateKeyValue { existing, .. } => {
                ib_resolve_unique(db, ib, idx, op.entry, existing)?;
            }
        }
    } else {
        let was = idx.tree.lookup_exact(&op.entry)?;
        if let Some(state) = was {
            idx.tree.physical_delete(&op.entry)?;
            db.log(
                ib,
                RecKind::UndoRedo,
                LogPayload::IndexPhysicalDelete {
                    index: idx.def.id,
                    entry: op.entry,
                    was_pseudo: state.pseudo_deleted,
                },
            )?;
        }
    }
    Ok(())
}

// ===================================================================
// Offline baseline
// ===================================================================

/// The pre-paper way: quiesce *all* updates for the whole build.
fn offline_build(
    db: &Arc<Db>,
    table: TableId,
    specs: &[IndexSpec],
    on_ids: impl FnOnce(&[IndexId]),
) -> Result<Vec<IndexId>> {
    let tx = db.begin();
    db.locks.lock(tx, LockName::Table(table), LockMode::S)?;
    let result = (|| -> Result<Vec<IndexId>> {
        let tbl = db.table(table)?;
        let mut idxs = Vec::with_capacity(specs.len());
        for spec in specs {
            let rt = make_runtime(
                db,
                table,
                spec,
                BuildAlgorithm::Offline,
                IndexState::Complete,
            );
            set_scan_bounds(&rt, &tbl);
            idxs.push(rt);
        }
        on_ids(&idxs.iter().map(|i| i.def.id).collect::<Vec<_>>());
        // One shared scan, unregistered runtimes: a crash leaves no
        // trace (the offline strategy is restart-from-scratch).
        let runs = scan_and_sort(db, &idxs, &vec![None; idxs.len()])?;
        for (idx, idx_runs) in idxs.iter().zip(runs) {
            let finals = reduce_phase(db, idx, idx_runs, None)?;
            let merge_cp = MergeCheckpoint {
                counters: vec![0; finals.len()],
                inputs: finals,
                emitted: 0,
            };
            offline_load(db, idx, merge_cp)?;
        }
        let ids = idxs.iter().map(|i| i.def.id).collect();
        for idx in idxs {
            idx.set_completed_lsn(db.wal.tail_lsn());
            progress::clear(db, idx.def.id);
            db.register_index(idx);
        }
        Ok(ids)
    })();
    match result {
        Ok(ids) => {
            db.commit(tx)?;
            Ok(ids)
        }
        Err(e) => {
            let _ = db.rollback(tx);
            Err(e)
        }
    }
}

/// Plain bottom-up load for the offline baseline (quiesced, so no
/// uniqueness races: adjacent equal keys are a straight violation).
fn offline_load(db: &Arc<Db>, idx: &Arc<IndexRuntime>, merge_cp: MergeCheckpoint) -> Result<()> {
    let store = idx.run_store();
    let merge = Merge::resume(&store, &merge_cp)?;
    let mut loader = BulkLoader::new(&idx.tree)?;
    let mut prev: Option<IndexEntry> = None;
    for entry in merge {
        if idx.def.unique {
            if let Some(p) = &prev {
                if p.key == entry.key {
                    return Err(Error::UniqueViolation {
                        index: idx.def.id,
                        existing: p.rid,
                    });
                }
            }
        }
        prev = Some(entry.clone());
        loader.append(entry)?;
    }
    db.wal.flush_all();
    loader.finish(db.wal.flushed_lsn())?;
    Ok(())
}

// ===================================================================
// cancel (§2.3.2)
// ===================================================================

/// Cancelling an in-progress build: quiesce updates (so rollbacks
/// never meet a half-vanished descriptor), then delete the descriptor
/// and all build state.
fn cancel_builds(db: &Arc<Db>, idxs: &[Arc<IndexRuntime>]) -> Result<()> {
    let tx = db.begin();
    db.locks
        .lock(tx, LockName::Table(idxs[0].def.table), LockMode::S)?;
    for idx in idxs {
        db.unregister_index(idx.def.id);
        progress::clear(db, idx.def.id);
        idx.tree.clear();
    }
    db.commit(tx)
}
