//! Garbage collection of pseudo-deleted keys (§2.2.4).
//!
//! "Scan the leaf pages. For each page, latch the page and check if
//! there are any pseudo-deleted keys ... for each pseudo-deleted key,
//! request a conditional instant share lock on it. If the lock is
//! granted, then delete the key; otherwise, skip it since the key's
//! deletion is probably uncommitted."
//!
//! With data-only locking the lock on a key is the lock on its record,
//! so the conditional instant probe targets the record's lock name.
//! (The Commit_LSN shortcut of \[Moha90b\] is approximated by the lock
//! probe itself; see DESIGN.md.)

use crate::engine::Db;
use mohan_common::{IndexId, Result};
use mohan_lock::{LockMode, LockName};
use mohan_wal::{LogPayload, RecKind};
use std::sync::Arc;

/// Outcome of one garbage-collection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcStats {
    /// Entries examined.
    pub scanned: u64,
    /// Pseudo-deleted keys physically removed.
    pub removed: u64,
    /// Pseudo-deleted keys skipped (deletion probably uncommitted).
    pub skipped: u64,
}

/// One background GC pass over an index.
pub fn garbage_collect(db: &Arc<Db>, index: IndexId) -> Result<GcStats> {
    let idx = db.index(index)?;
    let mut stats = GcStats::default();
    // Snapshot the pseudo-deleted keys (leaf scan), then probe each.
    let all = mohan_btree::scan::collect_all(&idx.tree, true)?;
    let tx = db.begin();
    let result = (|| -> Result<()> {
        for (entry, pseudo) in all {
            stats.scanned += 1;
            if !pseudo {
                continue;
            }
            match db
                .locks
                .try_instant(tx, LockName::Record(idx.def.table, entry.rid), LockMode::S)
            {
                Ok(()) => {
                    // The marking transaction has finished. A rollback
                    // would have reactivated the key, so a still-pseudo
                    // key is committed-dead: remove it.
                    if idx.tree.physical_delete(&entry)? {
                        db.log(
                            tx,
                            RecKind::UndoRedo,
                            LogPayload::IndexPhysicalDelete {
                                index,
                                entry,
                                was_pseudo: true,
                            },
                        )?;
                        stats.removed += 1;
                    }
                }
                Err(_) => {
                    stats.skipped += 1;
                }
            }
        }
        Ok(())
    })();
    match result {
        Ok(()) => {
            db.commit(tx)?;
            Ok(stats)
        }
        Err(e) => {
            let _ = db.rollback(tx);
            Err(e)
        }
    }
}
