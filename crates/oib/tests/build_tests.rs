//! Online index builds (NSF and SF) under concurrent update
//! transactions — the paper's core claim: the finished index always
//! agrees with the table, with no quiesce (SF) or only a short
//! descriptor-create quiesce (NSF).

use mohan_common::{EngineConfig, Error, KeyValue, Rid, TableId};
use mohan_oib::build::{build_index, build_indexes, drop_index, IndexSpec};
use mohan_oib::gc::garbage_collect;
use mohan_oib::runtime::IndexState;
use mohan_oib::schema::{BuildAlgorithm, Record};
use mohan_oib::verify::{verify_all, verify_index};
use mohan_oib::Db;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const T: TableId = TableId(1);

fn db() -> Arc<Db> {
    let db = Db::new(EngineConfig {
        lock_timeout_ms: 5_000,
        ..EngineConfig::small()
    });
    db.create_table(T);
    db
}

fn rec(k: i64, v: i64) -> Record {
    Record::new(vec![k, v])
}

fn spec(name: &str, unique: bool) -> IndexSpec {
    IndexSpec {
        name: name.into(),
        key_cols: vec![0],
        unique,
    }
}

fn seed(db: &Arc<Db>, n: i64) -> Vec<Rid> {
    let tx = db.begin();
    let rids = (0..n)
        .map(|k| db.insert_record(tx, T, &rec(k, 0)).unwrap())
        .collect();
    db.commit(tx).unwrap();
    rids
}

/// Run `updaters` threads doing a random insert/delete/update mix
/// (with occasional rollbacks) until `stop` is set; returns when all
/// have finished. Key space is partitioned per thread so unique
/// indexes stay satisfiable.
fn churn(
    db: &Arc<Db>,
    stop: &Arc<AtomicBool>,
    updaters: usize,
    base_key: i64,
) -> Vec<std::thread::JoinHandle<u64>> {
    (0..updaters)
        .map(|u| {
            let db = Arc::clone(db);
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + u as u64);
                let mut mine: Vec<Rid> = Vec::new();
                let mut next_key = base_key + (u as i64) * 1_000_000;
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let tx = db.begin();
                    let roll = rng.random_bool(0.15);
                    let mut ok = true;
                    for _ in 0..rng.random_range(1..4) {
                        let action = rng.random_range(0..3);
                        let res: Result<(), Error> = match action {
                            0 => {
                                next_key += 1;
                                db.insert_record(tx, T, &rec(next_key, 7)).map(|rid| {
                                    if !roll {
                                        mine.push(rid);
                                    }
                                })
                            }
                            1 if !mine.is_empty() => {
                                let i = rng.random_range(0..mine.len());
                                let rid = mine[i];
                                match db.delete_record(tx, T, rid) {
                                    Ok(_) => {
                                        if !roll {
                                            mine.swap_remove(i);
                                        }
                                        Ok(())
                                    }
                                    Err(e) => Err(e),
                                }
                            }
                            _ if !mine.is_empty() => {
                                let rid = mine[rng.random_range(0..mine.len())];
                                next_key += 1;
                                db.update_record(tx, T, rid, &rec(next_key, 9)).map(|_| ())
                            }
                            _ => Ok(()),
                        };
                        if res.is_err() {
                            ok = false;
                            break;
                        }
                        ops += 1;
                    }
                    if ok && !roll {
                        let _ = db.commit(tx);
                    } else {
                        let _ = db.rollback(tx);
                        if roll {
                            // Deletes tracked optimistically: rebuild
                            // `mine` is overkill; rolls only affect
                            // inserts we didn't track. Nothing to fix.
                        }
                    }
                }
                ops
            })
        })
        .collect()
}

fn online_build_with_churn(algorithm: BuildAlgorithm, unique: bool) {
    let db = db();
    seed(&db, 400);
    let stop = Arc::new(AtomicBool::new(false));
    let handles = churn(&db, &stop, 3, 10_000);
    // Let the churn get going.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let idx = build_index(&db, T, spec("online", unique), algorithm).unwrap();
    stop.store(true, Ordering::Relaxed);
    let total_ops: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_ops > 0, "churn never ran");
    assert_eq!(db.active_txs(), 0);
    verify_index(&db, idx).unwrap();
}

#[test]
fn nsf_build_with_concurrent_updates_is_correct() {
    online_build_with_churn(BuildAlgorithm::Nsf, false);
}

#[test]
fn sf_build_with_concurrent_updates_is_correct() {
    online_build_with_churn(BuildAlgorithm::Sf, false);
}

#[test]
fn nsf_unique_build_with_concurrent_updates_is_correct() {
    online_build_with_churn(BuildAlgorithm::Nsf, true);
}

#[test]
fn sf_unique_build_with_concurrent_updates_is_correct() {
    online_build_with_churn(BuildAlgorithm::Sf, true);
}

#[test]
fn all_three_algorithms_agree_on_quiet_tables() {
    for algo in [
        BuildAlgorithm::Offline,
        BuildAlgorithm::Nsf,
        BuildAlgorithm::Sf,
    ] {
        let db = db();
        seed(&db, 300);
        let idx = build_index(&db, T, spec("quiet", false), algo).unwrap();
        verify_index(&db, idx).unwrap();
        let hits = db.index_lookup(idx, &KeyValue::from_i64(123)).unwrap();
        assert_eq!(hits.len(), 1, "{algo:?}");
    }
}

#[test]
fn multi_index_single_scan_builds_all() {
    for algo in [
        BuildAlgorithm::Offline,
        BuildAlgorithm::Nsf,
        BuildAlgorithm::Sf,
    ] {
        let db = db();
        let tx = db.begin();
        for k in 0..200 {
            db.insert_record(tx, T, &rec(k, k * 3)).unwrap();
        }
        db.commit(tx).unwrap();
        let scans_before = db.table(T).unwrap().stats.scan_pages.get();
        let ids = build_indexes(
            &db,
            T,
            &[
                spec("by_k", false),
                IndexSpec {
                    name: "by_v".into(),
                    key_cols: vec![1],
                    unique: false,
                },
                IndexSpec {
                    name: "by_kv".into(),
                    key_cols: vec![0, 1],
                    unique: true,
                },
            ],
            algo,
        )
        .unwrap();
        assert_eq!(ids.len(), 3);
        // One scan, not three (measured before verification rescans).
        let pages = db.table(T).unwrap().num_pages() as u64;
        let scanned = db.table(T).unwrap().stats.scan_pages.get() - scans_before;
        assert!(
            scanned <= pages + 1,
            "{algo:?}: scanned {scanned} of {pages} pages"
        );
        assert_eq!(verify_all(&db, T).unwrap(), 3, "{algo:?}");
    }
}

#[test]
fn sf_never_quiesces_nsf_quiesces_briefly() {
    // With an updater holding IX for the whole build window, an NSF
    // descriptor create must wait, while SF proceeds immediately.
    let db = db();
    seed(&db, 50);
    let holder = db.begin();
    db.insert_record(holder, T, &rec(90_000, 0)).unwrap(); // holds IX

    // SF build succeeds while the IX is held.
    let idx = build_index(&db, T, spec("sf", false), BuildAlgorithm::Sf).unwrap();
    db.commit(holder).unwrap();
    verify_index(&db, idx).unwrap();

    // NSF against a fresh long-running updater times out on the
    // descriptor-create quiesce (lock timeout stands in for "waits").
    let db2 = Db::new(EngineConfig {
        lock_timeout_ms: 150,
        ..EngineConfig::small()
    });
    db2.create_table(T);
    let tx = db2.begin();
    db2.insert_record(tx, T, &rec(1, 0)).unwrap();
    db2.commit(tx).unwrap();
    let holder2 = db2.begin();
    db2.insert_record(holder2, T, &rec(2, 0)).unwrap();
    let err = build_index(&db2, T, spec("nsf", false), BuildAlgorithm::Nsf).unwrap_err();
    assert!(matches!(err, Error::LockTimeout { .. }));
    db2.commit(holder2).unwrap();
}

#[test]
fn nsf_tolerates_interleaved_deletes_of_scanned_records() {
    // The delete-key problem (§1.2): records deleted after the IB
    // extracted their keys must not reappear in the index.
    let db = db();
    let rids = seed(&db, 200);
    let stop = Arc::new(AtomicBool::new(false));
    let db2 = Arc::clone(&db);
    let victims: Vec<Rid> = rids.iter().copied().step_by(3).collect();
    let deleter = std::thread::spawn(move || {
        for rid in victims {
            let tx = db2.begin();
            if db2.delete_record(tx, T, rid).is_ok() {
                db2.commit(tx).unwrap();
            } else {
                db2.rollback(tx).unwrap();
            }
        }
    });
    let idx = build_index(&db, T, spec("del", false), BuildAlgorithm::Nsf).unwrap();
    stop.store(true, Ordering::Relaxed);
    deleter.join().unwrap();
    verify_index(&db, idx).unwrap();
}

#[test]
fn paper_example_scenario_nonunique() {
    // The nine-step example of §2.2.3 on a *nonunique* index, driven
    // through the real engine with a completed NSF build standing in
    // for "IB already inserted the key".
    let db = db();
    seed(&db, 10);
    let idx_id = build_index(&db, T, spec("ex", false), BuildAlgorithm::Nsf).unwrap();
    let idx = db.index(idx_id).unwrap();

    // T1 inserts a record with key K; key goes into the index.
    let t1 = db.begin();
    let rid = db.insert_record(t1, T, &rec(424_242, 0)).unwrap();
    // T1 rolls back: the key is marked pseudo-deleted, the record is
    // gone.
    db.rollback(t1).unwrap();
    let entry = idx.def.entry_of(&rec(424_242, 0), rid).unwrap();
    assert_eq!(
        idx.tree
            .lookup_exact(&entry)
            .unwrap()
            .map(|s| s.pseudo_deleted),
        Some(true),
        "rollback leaves a pseudo-deleted key, not a hole"
    );

    // T2 inserts a record at the same location with the same key
    // value: the pseudo-deleted flag is reset.
    let t2 = db.begin();
    let rid2 = db.insert_record(t2, T, &rec(424_242, 1)).unwrap();
    assert_eq!(rid2, rid, "slot is reused");
    db.commit(t2).unwrap();
    assert_eq!(
        idx.tree
            .lookup_exact(&entry)
            .unwrap()
            .map(|s| s.pseudo_deleted),
        Some(false)
    );
    verify_index(&db, idx_id).unwrap();
}

#[test]
fn unique_violation_cancels_build_and_leaves_no_descriptor() {
    let db = db();
    let tx = db.begin();
    db.insert_record(tx, T, &rec(5, 1)).unwrap();
    db.insert_record(tx, T, &rec(5, 2)).unwrap(); // duplicate key value
    db.commit(tx).unwrap();
    for algo in [
        BuildAlgorithm::Offline,
        BuildAlgorithm::Nsf,
        BuildAlgorithm::Sf,
    ] {
        let err = build_index(&db, T, spec("uk", true), algo).unwrap_err();
        assert!(
            matches!(err, Error::UniqueViolation { .. }),
            "{algo:?}: {err}"
        );
        assert!(
            db.indexes_of(T).is_empty(),
            "{algo:?} left a descriptor behind"
        );
    }
    // Updates still work afterwards.
    let tx = db.begin();
    db.insert_record(tx, T, &rec(6, 0)).unwrap();
    db.commit(tx).unwrap();
}

#[test]
fn gc_removes_committed_tombstones_only() {
    let db = db();
    let rids = seed(&db, 100);
    let idx = build_index(&db, T, spec("gc", false), BuildAlgorithm::Nsf).unwrap();
    // Commit some deletes (tombstones), keep one delete in flight.
    let tx = db.begin();
    for rid in &rids[..30] {
        db.delete_record(tx, T, *rid).unwrap();
    }
    db.commit(tx).unwrap();
    let inflight = db.begin();
    db.delete_record(inflight, T, rids[50]).unwrap();

    let stats = garbage_collect(&db, idx).unwrap();
    assert_eq!(stats.removed, 30);
    assert_eq!(stats.skipped, 1, "in-flight delete must be skipped");
    db.rollback(inflight).unwrap();
    verify_index(&db, idx).unwrap();

    // After the rollback the skipped key is live again; a second pass
    // removes nothing.
    let stats2 = garbage_collect(&db, idx).unwrap();
    assert_eq!(stats2.removed, 0);
}

#[test]
fn drop_index_quiesces_and_removes() {
    let db = db();
    seed(&db, 20);
    let idx = build_index(&db, T, spec("dropme", false), BuildAlgorithm::Sf).unwrap();
    drop_index(&db, idx).unwrap();
    assert!(db.index(idx).is_err());
    // Table still updatable.
    let tx = db.begin();
    db.insert_record(tx, T, &rec(1234, 0)).unwrap();
    db.commit(tx).unwrap();
}

#[test]
fn sf_side_file_collects_only_behind_scan_updates() {
    // Updates entirely ahead of the scan cursor leave no side-file
    // entries; updates behind it do.
    let db = Db::new(EngineConfig {
        // Huge checkpoint interval: the scan runs in one sweep, so we
        // can reason about cursor positions.
        sort_checkpoint_every_keys: usize::MAX,
        ..EngineConfig::small()
    });
    db.create_table(T);
    seed(&db, 300);
    let idx = build_index(&db, T, spec("sf", false), BuildAlgorithm::Sf).unwrap();
    let rt = db.index(idx).unwrap();
    // The build is done; all appended entries were drained.
    assert!(rt.side_file.closed());
    verify_index(&db, idx).unwrap();

    // Post-build updates go directly to the tree, not the side-file.
    let appended_before = rt.side_file.appended.get();
    let tx = db.begin();
    db.insert_record(tx, T, &rec(777_777, 0)).unwrap();
    db.commit(tx).unwrap();
    assert_eq!(rt.side_file.appended.get(), appended_before);
    assert_eq!(
        db.index_lookup(idx, &KeyValue::from_i64(777_777))
            .unwrap()
            .len(),
        1
    );
}

#[test]
fn build_states_progress_correctly() {
    let db = db();
    seed(&db, 50);
    // Crash mid-scan, observe SfBuilding; then resume to completion in
    // crash_tests.rs — here we only check the state machine.
    db.failpoints.arm_after("build.scan.record", 20);
    let err = build_index(&db, T, spec("st", false), BuildAlgorithm::Sf).unwrap_err();
    assert!(err.is_crash());
    let rt = &db.indexes_of(T)[0];
    assert_eq!(rt.state(), IndexState::SfBuilding);
}

/// §3.2.5 drain catch-up: appends keep arriving *while the drain
/// runs*, so the IB needs multiple catch-up passes; the pass count
/// must converge (the ≥3-pass quiesce fallback bounds it even against
/// this unthrottled appender) and the finished tree must agree
/// entry-for-entry with an offline-built oracle.
#[test]
fn sf_drain_catches_up_under_continuous_appends() {
    // Whether the appender lands anything in the side-file is a race
    // against a 400-row build finishing; on a loaded machine the build
    // can win outright. An attempt that never achieved the race proves
    // nothing either way, so rerun the scenario (fresh engine) instead
    // of flaking; the convergence and correctness assertions run on
    // the attempt where the appender actually competed.
    let mut raced = None;
    for _attempt in 0..5 {
        let db = db();
        seed(&db, 400);

        let done = Arc::new(AtomicBool::new(false));
        let builder = {
            let db = Arc::clone(&db);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let r = build_index(&db, T, spec("catchup", false), BuildAlgorithm::Sf);
                done.store(true, Ordering::Relaxed);
                r
            })
        };

        // Appender: single-statement inserts as fast as the engine
        // allows, for the whole duration of the build. Entries
        // appended during the scan + drain go through the side-file;
        // each drain pass exposes a fresh backlog.
        let mut key = 10_000_000i64;
        let mut appended = 0u64;
        while !done.load(Ordering::Relaxed) {
            key += 1;
            let tx = db.begin();
            db.insert_record(tx, T, &rec(key, 1)).unwrap();
            db.commit(tx).unwrap();
            appended += 1;
        }
        let idx = builder.join().unwrap().expect("SF build must converge");

        let rt = db.index(idx).unwrap();
        assert!(rt.side_file.closed());
        let passes = rt.side_file.drain_passes.get();
        if appended > 0 && passes >= 1 {
            raced = Some((db, idx, passes));
            break;
        }
    }
    let (db, idx, passes) = raced.expect("appender never competed with the build in 5 attempts");
    // Convergence: 2 free catch-up passes, quiesce at 3, and a couple
    // of bounded passes while the S table lock drains out stragglers.
    assert!(passes <= 8, "drain did not converge: {passes} passes");

    // The finished index agrees entry-for-entry with an offline oracle
    // built on the now-quiescent database.
    verify_index(&db, idx).unwrap();
    let oracle = build_index(&db, T, spec("oracle", false), BuildAlgorithm::Offline).unwrap();
    let live = |id| {
        let rt = db.index(id).unwrap();
        mohan_btree::scan::collect_all(&rt.tree, true)
            .unwrap()
            .into_iter()
            .filter(|(_, pseudo)| !pseudo)
            .map(|(e, _)| e)
            .collect::<Vec<_>>()
    };
    assert_eq!(live(idx), live(oracle));
}
