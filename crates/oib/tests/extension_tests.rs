//! Tests for the paper's optional extensions: the NSF no-quiesce
//! variant (§2.2.1 alternative / §3.2.3), gradual read availability
//! (footnote 3), and the §6.2 primary-index storage model.

use mohan_common::{EngineConfig, Error, KeyValue, Rid, TableId};
use mohan_oib::build::{build_index, IndexSpec};
use mohan_oib::primary::build_secondary_via_primary;
use mohan_oib::runtime::IndexState;
use mohan_oib::schema::{BuildAlgorithm, Record};
use mohan_oib::verify::verify_index;
use mohan_oib::Db;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const T: TableId = TableId(1);

fn rec(k: i64, v: i64) -> Record {
    Record::new(vec![k, v])
}

fn spec(name: &str, unique: bool) -> IndexSpec {
    IndexSpec {
        name: name.into(),
        key_cols: vec![0],
        unique,
    }
}

fn seed(db: &Arc<Db>, n: i64) -> Vec<Rid> {
    let tx = db.begin();
    let rids = (0..n)
        .map(|k| db.insert_record(tx, T, &rec(k, 1)).unwrap())
        .collect();
    db.commit(tx).unwrap();
    rids
}

// ===================================================================
// NSF without the descriptor-create quiesce
// ===================================================================

fn no_quiesce_db() -> Arc<Db> {
    let db = Db::new(EngineConfig {
        nsf_descriptor_quiesce: false,
        lock_timeout_ms: 5_000,
        ..EngineConfig::small()
    });
    db.create_table(T);
    db
}

#[test]
fn nsf_no_quiesce_builds_while_a_transaction_holds_ix() {
    // The whole point: an updater holding IX for the entire build no
    // longer blocks descriptor creation.
    let db = no_quiesce_db();
    seed(&db, 100);
    let holder = db.begin();
    db.insert_record(holder, T, &rec(900_000, 0)).unwrap();
    let idx = build_index(&db, T, spec("nq", false), BuildAlgorithm::Nsf).unwrap();
    db.commit(holder).unwrap();
    verify_index(&db, idx).unwrap();
    assert_eq!(
        db.index_lookup(idx, &KeyValue::from_i64(900_000))
            .unwrap()
            .len(),
        1
    );
}

#[test]
fn nsf_no_quiesce_straddling_rollback_is_compensated() {
    // §2.2.1's problem scenario: T1 inserts a record *before* the
    // descriptor exists (so its log record counts zero visible
    // indexes), the build starts, and T1 rolls back afterwards. The
    // count comparison (Figure 2 applied to NSF per §3.2.3) must
    // compensate: the key may not survive in the index.
    let db = no_quiesce_db();
    seed(&db, 200);

    let t1 = db.begin();
    let ghost = db.insert_record(t1, T, &rec(777_777, 0)).unwrap();

    // Run the build in another thread; it will scan the uncommitted
    // record and insert its key.
    let db2 = Arc::clone(&db);
    let builder =
        std::thread::spawn(move || build_index(&db2, T, spec("nq2", false), BuildAlgorithm::Nsf));
    // Wait until the descriptor is visible, then roll T1 back: the
    // undo happens while the index is visible although the forward
    // insert predates it.
    while db.indexes_of(T).is_empty() {
        std::thread::yield_now();
    }
    db.rollback(t1).unwrap();
    let idx = builder.join().unwrap().unwrap();

    assert!(!db.table(T).unwrap().exists(ghost));
    assert!(db
        .index_lookup(idx, &KeyValue::from_i64(777_777))
        .unwrap()
        .is_empty());
    verify_index(&db, idx).unwrap();
}

#[test]
fn nsf_no_quiesce_with_churn_is_exact() {
    let db = no_quiesce_db();
    let rids = seed(&db, 300);
    let stop = Arc::new(AtomicBool::new(false));
    let db2 = Arc::clone(&db);
    let stop2 = Arc::clone(&stop);
    let rids2 = rids.clone();
    let churn = std::thread::spawn(move || {
        let mut k = 500_000i64;
        while !stop2.load(Ordering::Relaxed) {
            let tx = db2.begin();
            k += 1;
            let ok = db2.insert_record(tx, T, &rec(k, 0)).is_ok()
                && db2.delete_record(tx, T, rids2[(k % 250) as usize]).is_ok()
                && db2.insert_record(tx, T, &rec(k + 1_000_000, 0)).is_ok();
            if !ok || k % 4 == 0 {
                let _ = db2.rollback(tx);
            } else {
                let _ = db2.commit(tx);
            }
        }
    });
    std::thread::sleep(Duration::from_millis(20));
    let idx = build_index(&db, T, spec("nq3", false), BuildAlgorithm::Nsf).unwrap();
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
    verify_index(&db, idx).unwrap();
}

// ===================================================================
// Gradual read availability (footnote 3)
// ===================================================================

#[test]
fn gradual_reads_serve_the_committed_prefix() {
    let db = Db::new(EngineConfig {
        nsf_gradual_reads: true,
        ib_checkpoint_every_keys: 100,
        lock_timeout_ms: 5_000,
        ..EngineConfig::small()
    });
    db.create_table(T);
    seed(&db, 1_000);

    // Pause the builder mid-insert with a crash failpoint so the
    // watermark is guaranteed to sit between two checkpoints.
    db.failpoints.arm_after("nsf.insert.key", 550);
    let err = build_index(&db, T, spec("grad", false), BuildAlgorithm::Nsf).unwrap_err();
    assert!(err.is_crash());

    let idx = db.indexes_of(T).last().unwrap().def.id;
    let rt = db.index(idx).unwrap();
    assert_eq!(rt.state(), IndexState::NsfBuilding);

    // Keys below the committed watermark (≥ 500 keys committed) are
    // readable mid-build; keys beyond it are refused.
    assert_eq!(
        db.index_lookup(idx, &KeyValue::from_i64(5)).unwrap().len(),
        1
    );
    assert_eq!(
        db.index_lookup(idx, &KeyValue::from_i64(499))
            .unwrap()
            .len(),
        1
    );
    let far = db.index_lookup(idx, &KeyValue::from_i64(999));
    assert!(matches!(far, Err(Error::IndexNotReadable(_))));

    // Maintenance keeps the readable prefix exact.
    let tx = db.begin();
    let rid = db.insert_record(tx, T, &rec(-5, 0)).unwrap(); // below everything
    db.commit(tx).unwrap();
    assert_eq!(
        db.index_lookup(idx, &KeyValue::from_i64(-5)).unwrap(),
        vec![rid]
    );

    // Finish the build after a restart; everything becomes readable.
    db.simulate_crash();
    db.restart().unwrap();
    mohan_oib::build::resume_build(&db, idx).unwrap();
    assert_eq!(
        db.index_lookup(idx, &KeyValue::from_i64(999))
            .unwrap()
            .len(),
        1
    );
    verify_index(&db, idx).unwrap();
}

#[test]
fn gradual_reads_disabled_by_default() {
    let db = Db::new(EngineConfig::small());
    db.create_table(T);
    seed(&db, 200);
    db.failpoints.arm_after("nsf.insert.key", 100);
    let err = build_index(&db, T, spec("g2", false), BuildAlgorithm::Nsf).unwrap_err();
    assert!(err.is_crash());
    let idx = db.indexes_of(T).last().unwrap().def.id;
    assert!(matches!(
        db.index_lookup(idx, &KeyValue::from_i64(1)),
        Err(Error::IndexNotReadable(_))
    ));
}

// ===================================================================
// §6.2 primary-index storage model
// ===================================================================

fn db_with_primary(n: i64) -> (Arc<Db>, Vec<Rid>, mohan_common::IndexId) {
    let db = Db::new(EngineConfig {
        lock_timeout_ms: 5_000,
        ..EngineConfig::small()
    });
    db.create_table(T);
    let rids = seed(&db, n);
    let primary = build_index(&db, T, spec("pk", true), BuildAlgorithm::Offline).unwrap();
    (db, rids, primary)
}

#[test]
fn primary_model_build_on_quiet_table() {
    let (db, _, primary) = db_with_primary(400);
    let idx = build_secondary_via_primary(
        &db,
        primary,
        IndexSpec {
            name: "sec".into(),
            key_cols: vec![1],
            unique: false,
        },
    )
    .unwrap();
    verify_index(&db, idx).unwrap();
    verify_index(&db, primary).unwrap();
}

#[test]
fn primary_model_build_under_insert_delete_churn() {
    let (db, rids, primary) = db_with_primary(400);
    let stop = Arc::new(AtomicBool::new(false));
    let db2 = Arc::clone(&db);
    let stop2 = Arc::clone(&stop);
    let churn = std::thread::spawn(move || {
        let mut k = 700_000i64;
        while !stop2.load(Ordering::Relaxed) {
            let tx = db2.begin();
            k += 1;
            // pk stays immutable: inserts of fresh keys + deletes only.
            let ok = db2.insert_record(tx, T, &rec(k, k % 37)).is_ok()
                && db2.delete_record(tx, T, rids[(k % 300) as usize]).is_ok();
            if ok {
                let _ = db2.commit(tx);
            } else {
                let _ = db2.rollback(tx);
            }
        }
    });
    std::thread::sleep(Duration::from_millis(20));
    let idx = build_secondary_via_primary(
        &db,
        primary,
        IndexSpec {
            name: "sec".into(),
            key_cols: vec![1],
            unique: false,
        },
    )
    .unwrap();
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
    verify_index(&db, idx).unwrap();
    verify_index(&db, primary).unwrap();
}

#[test]
fn primary_model_requires_complete_unique_primary() {
    let db = Db::new(EngineConfig::small());
    db.create_table(T);
    seed(&db, 50);
    // Nonunique index is not a valid clustering primary.
    let nonunique = build_index(&db, T, spec("nu", false), BuildAlgorithm::Offline).unwrap();
    let err = build_secondary_via_primary(
        &db,
        nonunique,
        IndexSpec {
            name: "x".into(),
            key_cols: vec![1],
            unique: false,
        },
    )
    .unwrap_err();
    assert!(matches!(err, Error::Corruption(_)));
    // The failed attempt must not leave a descriptor behind.
    assert_eq!(db.indexes_of(T).len(), 1);
}

#[test]
fn primary_model_unique_secondary_detects_duplicates() {
    let (db, _, primary) = db_with_primary(50);
    // payload column (col 1) is all 1s from `seed` — duplicates.
    let err = build_secondary_via_primary(
        &db,
        primary,
        IndexSpec {
            name: "dup".into(),
            key_cols: vec![1],
            unique: true,
        },
    )
    .unwrap_err();
    assert!(matches!(err, Error::UniqueViolation { .. }));
    assert_eq!(db.indexes_of(T).len(), 1);
}
