//! Engine-level tests: DML, strict 2PL, rollback with CLRs, crash
//! recovery, and Figure-1/Figure-2 index maintenance on completed
//! indexes.

use mohan_common::{EngineConfig, KeyValue, Rid, TableId};
use mohan_oib::build::{build_index, IndexSpec};
use mohan_oib::schema::{BuildAlgorithm, Record};
use mohan_oib::verify::verify_index;
use mohan_oib::Db;
use std::sync::Arc;

const T: TableId = TableId(1);

fn db() -> Arc<Db> {
    let db = Db::new(EngineConfig::small());
    db.create_table(T);
    db
}

fn rec(k: i64, v: i64) -> Record {
    Record::new(vec![k, v])
}

fn spec(name: &str, unique: bool) -> IndexSpec {
    IndexSpec {
        name: name.into(),
        key_cols: vec![0],
        unique,
    }
}

/// Populate the table with keys `0..n`, committed.
fn seed(db: &Arc<Db>, n: i64) -> Vec<Rid> {
    let tx = db.begin();
    let rids: Vec<Rid> = (0..n)
        .map(|k| db.insert_record(tx, T, &rec(k, k * 10)).unwrap())
        .collect();
    db.commit(tx).unwrap();
    rids
}

#[test]
fn insert_commit_read() {
    let db = db();
    let tx = db.begin();
    let rid = db.insert_record(tx, T, &rec(5, 50)).unwrap();
    db.commit(tx).unwrap();
    assert_eq!(db.read_record(T, rid).unwrap(), rec(5, 50));
}

#[test]
fn rollback_removes_inserted_record() {
    let db = db();
    let tx = db.begin();
    let rid = db.insert_record(tx, T, &rec(1, 1)).unwrap();
    db.rollback(tx).unwrap();
    assert!(db.read_record(T, rid).is_err());
}

#[test]
fn rollback_restores_deleted_and_updated_records() {
    let db = db();
    let rids = seed(&db, 3);
    let tx = db.begin();
    db.delete_record(tx, T, rids[0]).unwrap();
    db.update_record(tx, T, rids[1], &rec(1, 999)).unwrap();
    db.rollback(tx).unwrap();
    assert_eq!(db.read_record(T, rids[0]).unwrap(), rec(0, 0));
    assert_eq!(db.read_record(T, rids[1]).unwrap(), rec(1, 10));
}

#[test]
fn two_phase_locking_blocks_concurrent_writers() {
    let db = db();
    let rids = seed(&db, 1);
    let t1 = db.begin();
    db.update_record(t1, T, rids[0], &rec(0, 111)).unwrap();
    // A second transaction times out on the record lock.
    let t2 = db.begin();
    let err = db.update_record(t2, T, rids[0], &rec(0, 222)).unwrap_err();
    assert!(matches!(err, mohan_common::Error::LockTimeout { .. }));
    db.rollback(t2).unwrap();
    db.commit(t1).unwrap();
    assert_eq!(db.read_record(T, rids[0]).unwrap(), rec(0, 111));
}

#[test]
fn committed_work_survives_crash() {
    let db = db();
    let rids = seed(&db, 10);
    db.simulate_crash();
    db.restart().unwrap();
    for (k, rid) in rids.iter().enumerate() {
        assert_eq!(
            db.read_record(T, *rid).unwrap(),
            rec(k as i64, k as i64 * 10)
        );
    }
}

#[test]
fn uncommitted_work_is_rolled_back_at_restart() {
    let db = db();
    let rids = seed(&db, 3);
    let tx = db.begin();
    let extra = db.insert_record(tx, T, &rec(99, 99)).unwrap();
    db.delete_record(tx, T, rids[0]).unwrap();
    // Make the loser's work durable (forced pages + flushed log), so
    // restart must actively undo it rather than just lose it.
    db.checkpoint().unwrap();
    db.simulate_crash();
    let stats = db.restart().unwrap();
    assert_eq!(stats.losers, 1);
    assert!(db.read_record(T, extra).is_err());
    assert_eq!(db.read_record(T, rids[0]).unwrap(), rec(0, 0));
}

#[test]
fn restart_is_idempotent_across_repeated_crashes() {
    let db = db();
    let rids = seed(&db, 5);
    let tx = db.begin();
    db.delete_record(tx, T, rids[2]).unwrap();
    db.simulate_crash();
    db.restart().unwrap();
    db.simulate_crash();
    db.restart().unwrap();
    assert_eq!(db.read_record(T, rids[2]).unwrap(), rec(2, 20));
    assert_eq!(db.table_scan(T).unwrap().len(), 5);
}

#[test]
fn completed_index_is_maintained_and_queryable() {
    let db = db();
    seed(&db, 50);
    let idx = build_index(&db, T, spec("by_k", false), BuildAlgorithm::Offline).unwrap();
    verify_index(&db, idx).unwrap();

    // Maintenance after completion.
    let tx = db.begin();
    let rid = db.insert_record(tx, T, &rec(500, 1)).unwrap();
    db.commit(tx).unwrap();
    assert_eq!(
        db.index_lookup(idx, &KeyValue::from_i64(500)).unwrap(),
        vec![rid]
    );

    let tx = db.begin();
    db.delete_record(tx, T, rid).unwrap();
    db.commit(tx).unwrap();
    assert!(db
        .index_lookup(idx, &KeyValue::from_i64(500))
        .unwrap()
        .is_empty());
    verify_index(&db, idx).unwrap();
}

#[test]
fn index_maintenance_rolls_back_with_the_transaction() {
    let db = db();
    let rids = seed(&db, 20);
    let idx = build_index(&db, T, spec("by_k", false), BuildAlgorithm::Offline).unwrap();

    let tx = db.begin();
    db.insert_record(tx, T, &rec(777, 0)).unwrap();
    db.delete_record(tx, T, rids[3]).unwrap();
    db.update_record(tx, T, rids[4], &rec(888, 0)).unwrap();
    db.rollback(tx).unwrap();

    assert!(db
        .index_lookup(idx, &KeyValue::from_i64(777))
        .unwrap()
        .is_empty());
    assert_eq!(
        db.index_lookup(idx, &KeyValue::from_i64(3)).unwrap(),
        vec![rids[3]]
    );
    assert_eq!(
        db.index_lookup(idx, &KeyValue::from_i64(4)).unwrap(),
        vec![rids[4]]
    );
    assert!(db
        .index_lookup(idx, &KeyValue::from_i64(888))
        .unwrap()
        .is_empty());
    verify_index(&db, idx).unwrap();
}

#[test]
fn index_survives_crash_with_committed_and_loser_transactions() {
    let db = db();
    let rids = seed(&db, 30);
    let idx = build_index(&db, T, spec("by_k", false), BuildAlgorithm::Offline).unwrap();
    db.checkpoint().unwrap();

    // Committed changes after the checkpoint.
    let tx = db.begin();
    let new_rid = db.insert_record(tx, T, &rec(1000, 0)).unwrap();
    db.delete_record(tx, T, rids[0]).unwrap();
    db.commit(tx).unwrap();
    // Loser.
    let tx2 = db.begin();
    db.insert_record(tx2, T, &rec(2000, 0)).unwrap();
    db.delete_record(tx2, T, rids[1]).unwrap();

    db.simulate_crash();
    db.restart().unwrap();

    assert_eq!(
        db.index_lookup(idx, &KeyValue::from_i64(1000)).unwrap(),
        vec![new_rid]
    );
    assert!(db
        .index_lookup(idx, &KeyValue::from_i64(0))
        .unwrap()
        .is_empty());
    assert!(db
        .index_lookup(idx, &KeyValue::from_i64(2000))
        .unwrap()
        .is_empty());
    assert_eq!(
        db.index_lookup(idx, &KeyValue::from_i64(1)).unwrap(),
        vec![rids[1]]
    );
    verify_index(&db, idx).unwrap();
}

#[test]
fn unique_index_rejects_duplicate_key_values() {
    let db = db();
    seed(&db, 10);
    let idx = build_index(&db, T, spec("uk", true), BuildAlgorithm::Offline).unwrap();

    let tx = db.begin();
    let err = db.insert_record(tx, T, &rec(5, 123)).unwrap_err();
    assert!(matches!(err, mohan_common::Error::UniqueViolation { .. }));
    db.rollback(tx).unwrap();
    verify_index(&db, idx).unwrap();
}

#[test]
fn unique_index_allows_reusing_key_after_committed_delete() {
    let db = db();
    let rids = seed(&db, 10);
    let idx = build_index(&db, T, spec("uk", true), BuildAlgorithm::Offline).unwrap();

    let tx = db.begin();
    db.delete_record(tx, T, rids[5]).unwrap();
    db.commit(tx).unwrap();

    let tx = db.begin();
    let rid = db.insert_record(tx, T, &rec(5, 42)).unwrap();
    db.commit(tx).unwrap();
    assert_eq!(
        db.index_lookup(idx, &KeyValue::from_i64(5)).unwrap(),
        vec![rid]
    );
    verify_index(&db, idx).unwrap();
}

#[test]
fn unique_insert_waits_for_inflight_deleter() {
    let db = Db::new(EngineConfig {
        lock_timeout_ms: 3_000,
        ..EngineConfig::small()
    });
    db.create_table(T);
    let tx0 = db.begin();
    let victim = db.insert_record(tx0, T, &rec(7, 0)).unwrap();
    db.commit(tx0).unwrap();
    let idx = build_index(&db, T, spec("uk", true), BuildAlgorithm::Offline).unwrap();

    // Deleter holds the record lock; an inserter of key 7 must block
    // until the deleter commits, then succeed.
    let deleter = db.begin();
    db.delete_record(deleter, T, victim).unwrap();

    let db2 = Arc::clone(&db);
    let inserter = std::thread::spawn(move || {
        let tx = db2.begin();
        let rid = db2.insert_record(tx, T, &rec(7, 1)).unwrap();
        db2.commit(tx).unwrap();
        rid
    });
    std::thread::sleep(std::time::Duration::from_millis(50));
    db.commit(deleter).unwrap();
    let rid = inserter.join().unwrap();
    assert_eq!(
        db.index_lookup(idx, &KeyValue::from_i64(7)).unwrap(),
        vec![rid]
    );
    verify_index(&db, idx).unwrap();
}

#[test]
fn checkpoint_bounds_lost_work() {
    let db = db();
    seed(&db, 20);
    db.checkpoint().unwrap();
    let before = db.table_scan(T).unwrap().len();
    db.simulate_crash();
    db.restart().unwrap();
    assert_eq!(db.table_scan(T).unwrap().len(), before);
}

#[test]
fn multi_column_keys_work_end_to_end() {
    let db = db();
    let tx = db.begin();
    for k in 0..20 {
        db.insert_record(tx, T, &rec(k % 5, k)).unwrap();
    }
    db.commit(tx).unwrap();
    let idx = build_index(
        &db,
        T,
        IndexSpec {
            name: "composite".into(),
            key_cols: vec![0, 1],
            unique: true,
        },
        BuildAlgorithm::Offline,
    )
    .unwrap();
    verify_index(&db, idx).unwrap();
    let hits = db.index_lookup(idx, &KeyValue::from_i64s(&[2, 7])).unwrap();
    assert_eq!(hits.len(), 1);
}

#[test]
fn reads_of_building_index_are_refused() {
    let db = db();
    seed(&db, 5);
    // Start an SF build but inject a crash immediately so the index
    // stays in the building state.
    db.failpoints.arm("build.scan.record");
    let err = build_index(&db, T, spec("b", false), BuildAlgorithm::Sf).unwrap_err();
    assert!(err.is_crash());
    let id = db.indexes_of(T)[0].def.id;
    let lookup = db.index_lookup(id, &KeyValue::from_i64(0));
    assert!(matches!(
        lookup,
        Err(mohan_common::Error::IndexNotReadable(_))
    ));
}
