//! Parallel prefix-compressed bulk build: determinism against the
//! serial build, crash/restart mid-parallel-scan and mid-merge with
//! resume from the per-worker checkpoints, compression accounting,
//! and the `BuildOptions` argument validation.

use mohan_btree::scan::for_each_leaf;
use mohan_common::{EngineConfig, Error, IndexId, Rid, TableId};
use mohan_oib::build::{build_indexes_with, resume_build, BuildOptions, IndexSpec};
use mohan_oib::runtime::IndexState;
use mohan_oib::schema::{BuildAlgorithm, Record};
use mohan_oib::verify::verify_index;
use mohan_oib::Db;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const T: TableId = TableId(1);

fn db() -> Arc<Db> {
    let db = Db::new(EngineConfig {
        lock_timeout_ms: 5_000,
        ..EngineConfig::small()
    });
    db.create_table(T);
    db
}

fn rec(k: i64, v: i64) -> Record {
    Record::new(vec![k, v])
}

fn spec(name: &str) -> IndexSpec {
    IndexSpec {
        name: name.into(),
        key_cols: vec![0],
        unique: false,
    }
}

fn seed(db: &Arc<Db>, n: i64) -> Vec<Rid> {
    let tx = db.begin();
    let rids = (0..n)
        // Key order deliberately not insertion order, so the sort works.
        .map(|k| db.insert_record(tx, T, &rec((k * 7919) % n, k)).unwrap())
        .collect();
    db.commit(tx).unwrap();
    rids
}

/// Every live (key, rid) entry of the index tree, in leaf order.
fn tree_entries(db: &Arc<Db>, id: IndexId) -> Vec<(Vec<u8>, Rid)> {
    let idx = db.index(id).unwrap();
    let mut out = Vec::new();
    for_each_leaf(&idx.tree, |_page, node| {
        for le in node.leaf_entries() {
            if !le.pseudo_deleted {
                out.push((le.entry.key.as_bytes().to_vec(), le.entry.rid));
            }
        }
    })
    .unwrap();
    out
}

#[test]
fn parallel_compressed_build_is_entry_identical_to_serial() {
    let db = db();
    seed(&db, 600);
    let serial = build_indexes_with(
        &db,
        T,
        &[spec("serial")],
        BuildAlgorithm::Sf,
        &BuildOptions::default(),
    )
    .unwrap()[0];
    let parallel = build_indexes_with(
        &db,
        T,
        &[spec("parallel")],
        BuildAlgorithm::Sf,
        &BuildOptions::new().workers(4).compress(true),
    )
    .unwrap()[0];
    verify_index(&db, serial).unwrap();
    verify_index(&db, parallel).unwrap();
    let a = tree_entries(&db, serial);
    let b = tree_entries(&db, parallel);
    assert!(!a.is_empty());
    assert_eq!(a, b, "parallel+compressed build diverged from serial");
}

#[test]
fn parallel_build_with_concurrent_updates_is_correct() {
    for algorithm in [BuildAlgorithm::Nsf, BuildAlgorithm::Sf] {
        let db = db();
        let rids = seed(&db, 400);
        let stop = Arc::new(AtomicBool::new(false));
        let db2 = Arc::clone(&db);
        let stop2 = Arc::clone(&stop);
        let churn = std::thread::spawn(move || {
            let mut k = 900_000i64;
            let mut i = 0usize;
            while !stop2.load(Ordering::Relaxed) {
                let tx = db2.begin();
                k += 1;
                i += 1;
                let _ = db2.insert_record(tx, T, &rec(k, 0));
                if i.is_multiple_of(4) {
                    let _ = db2.delete_record(tx, T, rids[i % rids.len()]);
                }
                if i.is_multiple_of(3) {
                    let _ = db2.rollback(tx);
                } else {
                    let _ = db2.commit(tx);
                }
            }
        });
        let id = build_indexes_with(
            &db,
            T,
            &[spec("churny")],
            algorithm,
            &BuildOptions::new().workers(3).compress(true),
        )
        .unwrap()[0];
        stop.store(true, Ordering::Relaxed);
        churn.join().unwrap();
        assert_eq!(db.index(id).unwrap().state(), IndexState::Complete);
        verify_index(&db, id).unwrap();
    }
}

/// Crash a parallel build at `site` after `skip` hits, restart, resume
/// (the stored options re-parallelize the resume), verify.
fn parallel_crash_resume_cycle(
    db: &Arc<Db>,
    opts: &BuildOptions,
    algorithm: BuildAlgorithm,
    site: &'static str,
    skip: u64,
) {
    db.failpoints.arm_after(site, skip);
    let err = build_indexes_with(db, T, &[spec("crashy")], algorithm, opts).unwrap_err();
    assert!(err.is_crash(), "expected crash at {site}, got {err}");
    db.simulate_crash();
    db.restart().unwrap();
    let id = db.indexes_of(T).last().unwrap().def.id;
    resume_build(db, id).unwrap();
    assert_eq!(db.index(id).unwrap().state(), IndexState::Complete);
    verify_index(db, id).unwrap();
}

#[test]
fn parallel_crash_during_worker_run_formation_resumes() {
    let db = db();
    seed(&db, 500);
    // Mid-record, before any checkpoint for some workers: the resume
    // restarts those partitions from their floors.
    parallel_crash_resume_cycle(
        &db,
        &BuildOptions::new().workers(4),
        BuildAlgorithm::Sf,
        "build.scan.record",
        90,
    );
}

#[test]
fn parallel_crash_at_worker_checkpoint_resumes() {
    let db = db();
    seed(&db, 500);
    // Right after a per-worker checkpoint persisted: the resume keeps
    // that partition's runs and repositions after its scan_pos.
    parallel_crash_resume_cycle(
        &db,
        &BuildOptions::new().workers(4).compress(true),
        BuildAlgorithm::Sf,
        "build.scan",
        1,
    );
}

#[test]
fn parallel_nsf_crash_resumes() {
    let db = db();
    seed(&db, 400);
    parallel_crash_resume_cycle(
        &db,
        &BuildOptions::new().workers(2),
        BuildAlgorithm::Nsf,
        "build.scan",
        0,
    );
}

#[test]
fn parallel_compressed_crash_during_merge_resumes() {
    let db = db();
    seed(&db, 500);
    // The small config's 16-key workspace spills dozens of compressed
    // runs; the 4-way reduce checkpoints (and crashes) mid-merge.
    parallel_crash_resume_cycle(
        &db,
        &BuildOptions::new().workers(4).compress(true),
        BuildAlgorithm::Sf,
        "build.reduce",
        1,
    );
}

#[test]
fn parallel_repeated_crashes_across_phases_converge() {
    let db = db();
    seed(&db, 500);
    let opts = BuildOptions::new().workers(3).compress(true);
    db.failpoints.arm_after("build.scan", 1);
    let err = build_indexes_with(&db, T, &[spec("multi")], BuildAlgorithm::Sf, &opts).unwrap_err();
    assert!(err.is_crash());
    let id = db.indexes_of(T).last().unwrap().def.id;

    // Crash again in the (parallel, resumed) scan, then in the load.
    db.simulate_crash();
    db.restart().unwrap();
    db.failpoints.arm("build.scan.record");
    let err = resume_build(&db, id).unwrap_err();
    assert!(err.is_crash());
    db.simulate_crash();
    db.restart().unwrap();
    db.failpoints.arm("build.load");
    let err = resume_build(&db, id).unwrap_err();
    assert!(err.is_crash());
    db.simulate_crash();
    db.restart().unwrap();
    resume_build(&db, id).unwrap();
    verify_index(&db, id).unwrap();
}

#[test]
fn multi_index_parallel_single_scan_builds_all() {
    let db = db();
    seed(&db, 400);
    let ids = build_indexes_with(
        &db,
        T,
        &[
            spec("by_k"),
            IndexSpec {
                name: "by_v".into(),
                key_cols: vec![1],
                unique: false,
            },
        ],
        BuildAlgorithm::Sf,
        &BuildOptions::new().workers(4).compress(true),
    )
    .unwrap();
    assert_eq!(ids.len(), 2);
    for id in ids {
        verify_index(&db, id).unwrap();
    }
}

#[test]
fn compressed_runs_shrink_spilled_bytes() {
    let db = db();
    seed(&db, 600);
    let id = build_indexes_with(
        &db,
        T,
        &[spec("squeezed")],
        BuildAlgorithm::Sf,
        &BuildOptions::new().workers(2).compress(true),
    )
    .unwrap()[0];
    verify_index(&db, id).unwrap();
    let idx = db.index(id).unwrap();
    let guard = idx.sort_store.lock();
    let rs = guard.as_ref().expect("run store exists");
    let (raw, stored) = (rs.raw_bytes.get(), rs.stored_bytes.get());
    assert!(raw > 0, "no spilled bytes accounted");
    assert!(
        stored < raw,
        "prefix compression did not shrink spilled runs: raw={raw} stored={stored}"
    );
}

#[test]
fn worker_gauge_reports_effective_parallelism() {
    let db = db();
    seed(&db, 400);
    build_indexes_with(
        &db,
        T,
        &[spec("gauged")],
        BuildAlgorithm::Sf,
        &BuildOptions::new().workers(4),
    )
    .unwrap();
    assert_eq!(db.build_sort_workers.get(), 4);
}

#[test]
fn invalid_build_arguments_are_statement_errors() {
    let db = db();
    seed(&db, 10);
    let err =
        build_indexes_with(&db, T, &[], BuildAlgorithm::Sf, &BuildOptions::default()).unwrap_err();
    assert!(matches!(err, Error::InvalidArg(_)), "{err}");
    let err = build_indexes_with(
        &db,
        T,
        &[spec("z")],
        BuildAlgorithm::Sf,
        &BuildOptions {
            parallel_workers: 0,
            ..BuildOptions::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, Error::InvalidArg(_)), "{err}");
    // Nothing half-registered after a refused statement.
    assert!(db.indexes_of(T).is_empty());
}

#[test]
fn parallel_offline_build_matches_table() {
    let db = db();
    seed(&db, 300);
    let id = build_indexes_with(
        &db,
        T,
        &[spec("off")],
        BuildAlgorithm::Offline,
        &BuildOptions::new().workers(4).compress(true),
    )
    .unwrap()[0];
    verify_index(&db, id).unwrap();
}
