//! Crash/resume tests: kill the index builder at every phase (scan,
//! merge, NSF insert, SF load, SF drain), run restart recovery, resume
//! the build, and prove the finished index is exactly right — the
//! paper's §2.2.3 / §3.2.4 / §5 restartability machinery end to end.

use mohan_common::{EngineConfig, Error, Rid, TableId};
use mohan_oib::build::{build_index, resume_build, IndexSpec};
use mohan_oib::runtime::IndexState;
use mohan_oib::schema::{BuildAlgorithm, Record};
use mohan_oib::verify::verify_index;
use mohan_oib::Db;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const T: TableId = TableId(1);

fn db() -> Arc<Db> {
    let db = Db::new(EngineConfig {
        lock_timeout_ms: 5_000,
        ..EngineConfig::small()
    });
    db.create_table(T);
    db
}

fn rec(k: i64, v: i64) -> Record {
    Record::new(vec![k, v])
}

fn spec(unique: bool) -> IndexSpec {
    IndexSpec {
        name: "crashy".into(),
        key_cols: vec![0],
        unique,
    }
}

fn seed(db: &Arc<Db>, n: i64) -> Vec<Rid> {
    let tx = db.begin();
    let rids = (0..n)
        .map(|k| db.insert_record(tx, T, &rec(k, 1)).unwrap())
        .collect();
    db.commit(tx).unwrap();
    rids
}

/// Crash the build at `site` after `skip` hits, restart, resume
/// (possibly several times if resuming re-hits armed sites), verify.
fn crash_resume_cycle(db: &Arc<Db>, algorithm: BuildAlgorithm, site: &'static str, skip: u64) {
    db.failpoints.arm_after(site, skip);
    let err = build_index(db, T, spec(false), algorithm).unwrap_err();
    assert!(err.is_crash(), "expected crash, got {err}");
    db.simulate_crash();
    db.restart().unwrap();
    let id = db.indexes_of(T).last().unwrap().def.id;
    resume_build(db, id).unwrap();
    let idx = db.index(id).unwrap();
    assert_eq!(idx.state(), IndexState::Complete);
    verify_index(db, id).unwrap();
}

#[test]
fn nsf_crash_during_scan_resumes() {
    let db = db();
    seed(&db, 300);
    crash_resume_cycle(&db, BuildAlgorithm::Nsf, "build.scan", 1);
}

#[test]
fn sf_crash_during_scan_resumes() {
    let db = db();
    seed(&db, 300);
    crash_resume_cycle(&db, BuildAlgorithm::Sf, "build.scan", 1);
}

#[test]
fn crash_before_any_checkpoint_restarts_from_scratch() {
    let db = db();
    seed(&db, 100);
    crash_resume_cycle(&db, BuildAlgorithm::Sf, "build.scan.record", 5);
}

#[test]
fn nsf_crash_during_insert_phase_resumes() {
    let db = db();
    seed(&db, 300);
    crash_resume_cycle(&db, BuildAlgorithm::Nsf, "build.insert", 1);
}

#[test]
fn nsf_crash_mid_key_between_checkpoints_resumes() {
    let db = db();
    seed(&db, 300);
    crash_resume_cycle(&db, BuildAlgorithm::Nsf, "nsf.insert.key", 150);
}

#[test]
fn sf_crash_during_bulk_load_resumes() {
    let db = db();
    seed(&db, 300);
    crash_resume_cycle(&db, BuildAlgorithm::Sf, "build.load", 1);
}

#[test]
fn sf_crash_mid_load_key_resumes() {
    let db = db();
    seed(&db, 300);
    crash_resume_cycle(&db, BuildAlgorithm::Sf, "sf.load.key", 200);
}

#[test]
fn sf_crash_during_drain_resumes() {
    let db = db();
    let rids = seed(&db, 300);
    // Deterministic side-file population: crash mid-scan first. After
    // restart the conservative cursor makes *every* update visible, so
    // committed updates before the resume land in the side-file.
    db.failpoints.arm("build.scan");
    let err = build_index(&db, T, spec(false), BuildAlgorithm::Sf).unwrap_err();
    assert!(err.is_crash());
    db.simulate_crash();
    db.restart().unwrap();
    let id = db.indexes_of(T).last().unwrap().def.id;

    let tx = db.begin();
    for k in 0..40 {
        db.insert_record(tx, T, &rec(700_000 + k, 2)).unwrap();
        db.delete_record(tx, T, rids[(k * 5) as usize]).unwrap();
    }
    db.commit(tx).unwrap();
    assert!(db.index(id).unwrap().side_file.len() >= 80);

    // Now crash in the drain itself, twice (mid-op and at the
    // checkpoint), resuming each time.
    db.failpoints.arm_after("sf.drain.op", 10);
    let err = resume_build(&db, id).unwrap_err();
    assert!(err.is_crash());
    db.simulate_crash();
    db.restart().unwrap();
    db.failpoints.arm("build.drain");
    let err = resume_build(&db, id).unwrap_err();
    assert!(err.is_crash());
    db.simulate_crash();
    db.restart().unwrap();
    resume_build(&db, id).unwrap();
    verify_index(&db, id).unwrap();
}

#[test]
fn repeated_crashes_across_phases_still_converge() {
    let db = db();
    seed(&db, 400);
    // First crash in the scan.
    db.failpoints.arm_after("build.scan", 0);
    let err = build_index(&db, T, spec(false), BuildAlgorithm::Sf).unwrap_err();
    assert!(err.is_crash());
    let id = db.indexes_of(T).last().unwrap().def.id;

    // Second crash in the load.
    db.simulate_crash();
    db.restart().unwrap();
    db.failpoints.arm("build.load");
    let err = resume_build(&db, id).unwrap_err();
    assert!(err.is_crash());

    // Third crash in the drain.
    db.simulate_crash();
    db.restart().unwrap();
    db.failpoints.arm("sf.drain.op");
    match resume_build(&db, id) {
        Err(e) => {
            assert!(e.is_crash());
            db.simulate_crash();
            db.restart().unwrap();
            resume_build(&db, id).unwrap();
        }
        Ok(()) => {
            // Empty side-file: the drain-op site never fired. Done.
            db.failpoints.clear();
        }
    }
    verify_index(&db, id).unwrap();
}

#[test]
fn crash_with_concurrent_updates_then_resume_is_exact() {
    // The full gauntlet: churn + crash mid-build + loser transactions
    // at the crash + resume + verify. Run for both algorithms.
    for algorithm in [BuildAlgorithm::Nsf, BuildAlgorithm::Sf] {
        let db = db();
        seed(&db, 300);
        let stop = Arc::new(AtomicBool::new(false));
        let db2 = Arc::clone(&db);
        let stop2 = Arc::clone(&stop);
        let churn = std::thread::spawn(move || {
            let mut k = 500_000i64;
            while !stop2.load(Ordering::Relaxed) {
                let tx = db2.begin();
                k += 1;
                let ok = db2.insert_record(tx, T, &rec(k, 0)).is_ok();
                if ok && k % 3 == 0 {
                    let _ = db2.rollback(tx);
                } else {
                    let _ = db2.commit(tx);
                }
            }
        });
        // Crash somewhere in the middle of the pipeline.
        let site = match algorithm {
            BuildAlgorithm::Nsf => "nsf.insert.key",
            _ => "sf.load.key",
        };
        db.failpoints.arm_after(site, 100);
        let err = build_index(&db, T, spec(false), algorithm).unwrap_err();
        assert!(err.is_crash(), "{algorithm:?}");
        stop.store(true, Ordering::Relaxed);
        churn.join().unwrap();

        db.simulate_crash();
        db.restart().unwrap();
        let id = db.indexes_of(T).last().unwrap().def.id;
        resume_build(&db, id).unwrap();
        verify_index(&db, id).unwrap();
    }
}

#[test]
fn unique_build_crash_resume_detects_violation_after_restart() {
    let db = db();
    seed(&db, 100);
    // Create a duplicate pair that the resumed build must detect.
    let tx = db.begin();
    db.insert_record(tx, T, &rec(42, 7)).unwrap(); // key 42 duplicates seed
    db.commit(tx).unwrap();

    db.failpoints.arm("build.scan");
    let err = build_index(&db, T, spec(true), BuildAlgorithm::Sf).unwrap_err();
    assert!(err.is_crash());
    db.simulate_crash();
    db.restart().unwrap();
    let id = db.indexes_of(T).last().unwrap().def.id;
    let err = resume_build(&db, id).unwrap_err();
    assert!(matches!(err, Error::UniqueViolation { .. }));
    // The cancelled build leaves no descriptor.
    assert!(db.index(id).is_err());
}

#[test]
fn checkpoint_interval_bounds_rescan_work() {
    // Quantitative restartability: with frequent checkpoints, the
    // resumed scan re-reads only the tail of the table.
    let db = Db::new(EngineConfig {
        sort_checkpoint_every_keys: 50,
        ..EngineConfig::small()
    });
    db.create_table(T);
    seed(&db, 500);

    // Crash after the 8th checkpoint (~400 records in).
    db.failpoints.arm_after("build.scan", 7);
    let err = build_index(&db, T, spec(false), BuildAlgorithm::Sf).unwrap_err();
    assert!(err.is_crash());
    db.simulate_crash();
    db.restart().unwrap();

    let table = db.table(T).unwrap();
    let scanned_before_resume = table.stats.scan_pages.get();
    let id = db.indexes_of(T).last().unwrap().def.id;
    resume_build(&db, id).unwrap();
    let rescanned = table.stats.scan_pages.get() - scanned_before_resume;
    let total_pages = table.num_pages() as u64;
    assert!(
        rescanned < total_pages / 2,
        "resume rescanned {rescanned} of {total_pages} pages — checkpoints not honoured"
    );
    verify_index(&db, id).unwrap();
}

#[test]
fn loser_ib_transaction_is_undone_at_restart() {
    // Crash the NSF insert phase between IB checkpoints with the log
    // fully flushed (a busy system's log would be): the IB's
    // uncommitted bulk inserts are durable, so restart must actively
    // undo them (IndexBulkRemove CLRs), and the resume re-inserts the
    // tail.
    let db = Db::new(EngineConfig {
        ib_checkpoint_every_keys: 100,
        lock_timeout_ms: 5_000,
        ..EngineConfig::small()
    });
    db.create_table(T);
    seed(&db, 300);
    db.failpoints.arm_after("nsf.insert.key", 150);
    let err = build_index(&db, T, spec(false), BuildAlgorithm::Nsf).unwrap_err();
    assert!(err.is_crash());
    db.wal.flush_all();
    db.simulate_crash();
    let stats = db.restart().unwrap();
    assert!(stats.losers >= 1, "the in-flight IB transaction must lose");
    let id = db.indexes_of(T).last().unwrap().def.id;
    resume_build(&db, id).unwrap();
    verify_index(&db, id).unwrap();
}

#[test]
fn restart_redo_is_bounded_by_the_last_checkpoint() {
    // Regression: recovery used to scan the whole log from LSN 1 on
    // every restart, so redo work grew with total history instead of
    // with what happened since the last checkpoint.
    let db = db();

    // A long committed history, then a checkpoint that forces every
    // dirty page (so none of this needs redoing again)…
    for batch in 0..20 {
        let tx = db.begin();
        for k in 0..100 {
            db.insert_record(tx, T, &rec(batch * 100 + k, 1)).unwrap();
        }
        db.commit(tx).unwrap();
    }
    db.wal.flush_all();
    let pre_checkpoint = db.wal.flushed_lsn();
    db.checkpoint().unwrap();

    // …then a small post-checkpoint tail.
    let tx = db.begin();
    for k in 0..10 {
        db.insert_record(tx, T, &rec(1_000_000 + k, 1)).unwrap();
    }
    db.commit(tx).unwrap();
    db.wal.flush_all();

    db.simulate_crash();
    let stats = db.restart().unwrap();

    // Redo started at the checkpoint's bound, not LSN 1, and the work
    // done is O(post-checkpoint records) — far below the >2000-record
    // pre-checkpoint history.
    assert!(
        stats.redo_start >= pre_checkpoint,
        "redo started at {} — before the checkpoint horizon at {}",
        stats.redo_start.0,
        pre_checkpoint.0
    );
    assert!(
        stats.redone <= 50,
        "{} records redone — restart scales with total log length",
        stats.redone
    );

    // Nothing was lost to the shortcut.
    assert_eq!(db.table_scan(T).unwrap().len(), 2_010);
}
