//! Offline stand-in for the subset of `parking_lot` this workspace
//! uses, implemented over `std::sync` primitives.
//!
//! The build environment has no access to crates.io, so the workspace
//! replaces external dependencies with in-tree shims (see the
//! `[workspace.dependencies]` paths in the root `Cargo.toml`). This
//! crate keeps the `parking_lot` *API* — non-poisoning guards, `lock()`
//! returning the guard directly, `Condvar::wait_until`, and the
//! `arc_lock`-style owned guards — so the rest of the codebase reads
//! exactly like it would against the real crate. Poisoned std locks
//! are recovered with `PoisonError::into_inner`, matching
//! parking_lot's "no poisoning" semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// A non-poisoning mutual-exclusion lock.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]. The inner `Option` is only ever `None`
/// transiently inside [`Condvar::wait_until`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Did the wait end because the timeout elapsed?
    #[must_use]
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard taken during condvar wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult(true);
        }
        let g = guard.guard.take().expect("guard taken during condvar wait");
        let (g, res) = match self.inner.wait_timeout(g, deadline - now) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.guard = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Marker type standing in for `parking_lot::RawRwLock` in guard type
/// parameters.
#[derive(Debug)]
pub struct RawRwLock(());

/// A non-poisoning readers/writer lock.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Share-mode guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-mode guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a readers/writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire in share mode, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire in exclusive mode, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire in share mode without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { guard: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                guard: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire in exclusive mode without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { guard: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                guard: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Owned (`Arc`-holding) guards, mirroring parking_lot's `arc_lock`
/// feature.
pub mod lock_api {
    use super::RwLock;
    use std::marker::PhantomData;
    use std::mem::ManuallyDrop;
    use std::ops::{Deref, DerefMut};
    use std::sync::{Arc, PoisonError};

    /// Owned share-mode guard: keeps the lock's `Arc` alive for the
    /// guard's lifetime, so it is storable without borrows.
    pub struct ArcRwLockReadGuard<R, T: 'static> {
        // Dropped before `lock` (declaration order), which keeps the
        // lifetime-extended std guard sound: the Arc outlives it.
        guard: ManuallyDrop<std::sync::RwLockReadGuard<'static, T>>,
        lock: ManuallyDrop<Arc<RwLock<T>>>,
        _raw: PhantomData<R>,
    }

    /// Owned exclusive-mode guard.
    pub struct ArcRwLockWriteGuard<R, T: 'static> {
        guard: ManuallyDrop<std::sync::RwLockWriteGuard<'static, T>>,
        lock: ManuallyDrop<Arc<RwLock<T>>>,
        _raw: PhantomData<R>,
    }

    impl<R, T> ArcRwLockReadGuard<R, T> {
        /// Acquire `lock` in share mode, taking ownership of the `Arc`.
        pub fn lock(lock: Arc<RwLock<T>>) -> Self {
            let guard = lock.inner.read().unwrap_or_else(PoisonError::into_inner);
            // SAFETY: the guard borrows the RwLock inside `lock`; we
            // extend the lifetime to 'static but hold the Arc alongside
            // and drop the guard first (see Drop).
            let guard: std::sync::RwLockReadGuard<'static, T> =
                unsafe { std::mem::transmute(guard) };
            ArcRwLockReadGuard {
                guard: ManuallyDrop::new(guard),
                lock: ManuallyDrop::new(lock),
                _raw: PhantomData,
            }
        }
    }

    impl<R, T> ArcRwLockWriteGuard<R, T> {
        /// Acquire `lock` in exclusive mode, taking ownership of the
        /// `Arc`.
        pub fn lock(lock: Arc<RwLock<T>>) -> Self {
            let guard = lock.inner.write().unwrap_or_else(PoisonError::into_inner);
            // SAFETY: as for the read guard above.
            let guard: std::sync::RwLockWriteGuard<'static, T> =
                unsafe { std::mem::transmute(guard) };
            ArcRwLockWriteGuard {
                guard: ManuallyDrop::new(guard),
                lock: ManuallyDrop::new(lock),
                _raw: PhantomData,
            }
        }
    }

    impl<R, T> Deref for ArcRwLockReadGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.guard
        }
    }

    impl<R, T> Deref for ArcRwLockWriteGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.guard
        }
    }

    impl<R, T> DerefMut for ArcRwLockWriteGuard<R, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.guard
        }
    }

    impl<R, T> Drop for ArcRwLockReadGuard<R, T> {
        fn drop(&mut self) {
            // SAFETY: dropped exactly once, guard strictly before Arc.
            unsafe {
                ManuallyDrop::drop(&mut self.guard);
                ManuallyDrop::drop(&mut self.lock);
            }
        }
    }

    impl<R, T> Drop for ArcRwLockWriteGuard<R, T> {
        fn drop(&mut self) {
            // SAFETY: dropped exactly once, guard strictly before Arc.
            unsafe {
                ManuallyDrop::drop(&mut self.guard);
                ManuallyDrop::drop(&mut self.lock);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_modes() {
        let l = RwLock::new(0u32);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
            assert!(l.try_write().is_none());
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            *done = true;
            drop(done);
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
            assert!(!r.timed_out(), "notify never arrived");
        }
        h.join().unwrap();
    }

    #[test]
    fn arc_guards_are_owned() {
        let lock = Arc::new(RwLock::new(5u64));
        let g = lock_api::ArcRwLockReadGuard::<RawRwLock, _>::lock(Arc::clone(&lock));
        assert_eq!(*g, 5);
        drop(g);
        let mut w = lock_api::ArcRwLockWriteGuard::<RawRwLock, _>::lock(Arc::clone(&lock));
        *w = 6;
        drop(w);
        assert_eq!(*lock.read(), 6);
    }
}
