//! Heap tables: records on slotted data pages.
//!
//! The execution model of §1.1 shapes this API. Record operations take
//! the data page's X latch, modify the record, invoke a caller-supplied
//! logging closure *while still latched* (Figure 1: "Modify target
//! record, log action ... and Update Page_LSN"), stamp the returned
//! LSN into the page, and unlatch. Index maintenance happens *after*
//! the latch is released — the engine composes that, which is exactly
//! what creates the paper's race conditions between transactions and
//! the index builder.
//!
//! The scan side ([`HeapTable::scan_from`]) latches each page in share
//! mode, extracts records in RID order, and accounts simulated
//! sequential-prefetch I/O batches (§2.2.2).

#![warn(missing_docs)]

use mohan_common::stats::{Counter, ShardDist};
use mohan_common::{Error, Lsn, PageId, Result, Rid, TableId};
use mohan_storage::{PageCache, SlottedPage};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of free-space-map shards per table (power of two).
pub const FSM_SHARDS: usize = 8;

/// Event counters for one table.
#[derive(Debug)]
pub struct HeapStats {
    /// Records inserted.
    pub inserts: Counter,
    /// Records deleted.
    pub deletes: Counter,
    /// Records updated.
    pub updates: Counter,
    /// Pages visited by scans.
    pub scan_pages: Counter,
    /// Simulated prefetch I/O batches issued by scans.
    pub io_batches: Counter,
    /// Free-page candidates taken from each FSM shard (shows whether
    /// concurrent inserters spread over the shards or pile up on one).
    pub fsm_shard_hits: ShardDist,
}

impl Default for HeapStats {
    fn default() -> Self {
        HeapStats {
            inserts: Counter::new(),
            deletes: Counter::new(),
            updates: Counter::new(),
            scan_pages: Counter::new(),
            io_batches: Counter::new(),
            fsm_shard_hits: ShardDist::new(FSM_SHARDS),
        }
    }
}

/// A sharded free-space map: pages believed to have room, partitioned
/// by page-id hash so concurrent inserters don't serialize on one
/// list. A shard lock is only ever held for a push/pop — never across
/// a page latch — so the old whole-insert serialization is gone.
struct FreeSpaceMap {
    shards: Vec<Mutex<Vec<PageId>>>,
    /// Round-robin probe cursor: concurrent inserters start their
    /// probe at different shards instead of all hammering shard 0.
    cursor: AtomicUsize,
}

impl FreeSpaceMap {
    fn new() -> FreeSpaceMap {
        FreeSpaceMap {
            shards: (0..FSM_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    fn shard_of(page: PageId) -> usize {
        (u64::from(page.0).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 61) as usize & (FSM_SHARDS - 1)
    }

    /// Where the next probe should start.
    fn preferred_shard(&self) -> usize {
        self.cursor.fetch_add(1, Ordering::Relaxed) & (FSM_SHARDS - 1)
    }

    /// Record `page` as having free space (idempotent).
    fn note_free(&self, page: PageId) {
        let mut shard = self.shards[Self::shard_of(page)].lock();
        if !shard.contains(&page) {
            shard.push(page);
        }
    }

    /// Take a candidate page out of the map (most recently freed
    /// first within a shard), probing all shards starting at `start`.
    /// The caller either re-registers the page via `note_free` or
    /// lets a full page stay dropped. Returns the shard it came from.
    fn take_candidate(&self, start: usize) -> Option<(PageId, usize)> {
        for i in 0..FSM_SHARDS {
            let s = (start + i) & (FSM_SHARDS - 1);
            if let Some(p) = self.shards[s].lock().pop() {
                return Some((p, s));
            }
        }
        None
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

/// A heap table.
pub struct HeapTable {
    /// Table identity.
    pub id: TableId,
    /// Backing pages (crash-aware).
    pub cache: PageCache<SlottedPage>,
    page_size: usize,
    prefetch: usize,
    /// Pages believed to have free space, sharded by page-id hash.
    fsm: FreeSpaceMap,
    /// Event counters.
    pub stats: HeapStats,
}

impl HeapTable {
    /// Create an empty table.
    #[must_use]
    pub fn new(id: TableId, page_size: usize, prefetch: usize) -> HeapTable {
        HeapTable {
            id,
            cache: PageCache::new(mohan_common::FileId(id.0)),
            page_size,
            prefetch: prefetch.max(1),
            fsm: FreeSpaceMap::new(),
            stats: HeapStats::default(),
        }
    }

    /// Number of data pages.
    #[must_use]
    pub fn num_pages(&self) -> u32 {
        self.cache.num_pages()
    }

    /// Insert a record. `log` runs under the page X latch with the
    /// assigned RID and returns the LSN to stamp on the page.
    pub fn insert_with(&self, data: &[u8], log: impl FnOnce(Rid) -> Lsn) -> Result<Rid> {
        if data.len() + 8 > self.page_size / 2 {
            return Err(Error::Corruption(format!(
                "record of {} bytes too large for {}-byte pages",
                data.len(),
                self.page_size
            )));
        }
        // Pick a page: a recently freed candidate from the sharded
        // FSM first, else the last page, else a new one. Taking a
        // candidate *removes* it from the map, so no FSM lock is ever
        // held across the page latch and two inserters never chase
        // the same candidate; a page that still has room is
        // re-registered after the latch is dropped.
        let mut candidates: Vec<PageId> = Vec::with_capacity(2);
        if let Some((p, shard)) = self.fsm.take_candidate(self.fsm.preferred_shard()) {
            self.stats.fsm_shard_hits.bump(shard);
            candidates.push(p);
        }
        let n = self.cache.num_pages();
        if n > 0 {
            let last = PageId(n - 1);
            if !candidates.contains(&last) {
                candidates.push(last);
            }
        }
        for page in candidates {
            // Candidates are heuristics, not guarantees: the last-page
            // candidate can be mid-allocation (cursor published before
            // the frame) or a crash-lost hole. Skip and fall through.
            let Ok(frame) = self.cache.frame(page) else {
                continue;
            };
            let mut g = frame.latch.exclusive();
            if g.payload.fits(data.len()) {
                let slot = g.payload.insert(data)?;
                let rid = Rid { page, slot };
                let lsn = log(rid);
                g.lsn = lsn;
                let still_free = g.payload.fits(64);
                drop(g);
                if still_free {
                    self.fsm.note_free(page);
                }
                self.stats.inserts.bump();
                return Ok(rid);
            }
            // Full: the candidate stays out of the map.
        }
        // Fresh page. A new frame is visible to every other inserter
        // (as their last-page candidate) the moment it is allocated,
        // so by the time this thread holds the latch the page may
        // already be full — those inserts were served, ours was not.
        // Allocate again rather than surface a spurious `PageFull`.
        loop {
            let frame = self.cache.allocate(SlottedPage::new(self.page_size));
            let page = frame.id;
            let mut g = frame.latch.exclusive();
            if !g.payload.fits(data.len()) {
                continue;
            }
            let slot = g.payload.insert(data)?;
            let rid = Rid { page, slot };
            let lsn = log(rid);
            g.lsn = lsn;
            let still_free = g.payload.fits(64);
            drop(g);
            if still_free {
                self.fsm.note_free(page);
            }
            self.stats.inserts.bump();
            return Ok(rid);
        }
    }

    /// Delete a record, returning its before-image. `log` runs under
    /// the X latch with the old bytes.
    pub fn delete_with(&self, rid: Rid, log: impl FnOnce(&[u8]) -> Lsn) -> Result<Vec<u8>> {
        let frame = self.cache.frame(rid.page)?;
        let mut g = frame.latch.exclusive();
        let old = g.payload.delete(rid.slot)?;
        let lsn = log(&old);
        g.lsn = lsn;
        drop(g);
        // The slot stays *reserved* until the deleter commits
        // ([`HeapTable::release_slot`]); only then does the page
        // rejoin the free list.
        self.stats.deletes.bump();
        Ok(old)
    }

    /// Release a slot reserved by a (now committed) delete, making it
    /// reusable.
    pub fn release_slot(&self, rid: Rid) -> Result<()> {
        let frame = self.cache.frame(rid.page)?;
        let mut g = frame.latch.exclusive();
        g.payload.free_slot(rid.slot);
        drop(g);
        self.fsm.note_free(rid.page);
        Ok(())
    }

    /// Post-recovery sweep: every still-reserved slot belonged to a
    /// committed deleter (losers were rolled back, restoring their
    /// records), so free them all.
    pub fn sweep_reserved(&self) -> Result<u64> {
        let mut freed = 0;
        for pnum in 0..self.cache.num_pages() {
            let page = PageId(pnum);
            let Ok(frame) = self.cache.frame(page) else {
                continue;
            };
            let mut g = frame.latch.exclusive();
            for slot in g.payload.reserved_slots() {
                g.payload.free_slot(slot);
                freed += 1;
            }
        }
        Ok(freed)
    }

    /// Update a record in place, returning its before-image.
    pub fn update_with(
        &self,
        rid: Rid,
        new: &[u8],
        log: impl FnOnce(&[u8]) -> Lsn,
    ) -> Result<Vec<u8>> {
        let frame = self.cache.frame(rid.page)?;
        let mut g = frame.latch.exclusive();
        let old = g.payload.update(rid.slot, new)?;
        let lsn = log(&old);
        g.lsn = lsn;
        self.stats.updates.bump();
        Ok(old)
    }

    /// Read one record (S latch).
    pub fn read(&self, rid: Rid) -> Result<Vec<u8>> {
        let frame = self.cache.frame(rid.page)?;
        let g = frame.latch.share();
        g.payload
            .get(rid.slot)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| Error::NotFound(format!("record {rid}")))
    }

    /// Does the record exist (committed or not — physical presence)?
    pub fn exists(&self, rid: Rid) -> bool {
        self.cache
            .frame(rid.page)
            .map(|f| f.latch.share().payload.get(rid.slot).is_some())
            .unwrap_or(false)
    }

    /// Scan records in RID order, visiting pages up to and including
    /// `last_page`. `from = None` scans from the beginning;
    /// `Some(rid)` resumes strictly *after* `rid` (IB restart). Each
    /// page is S-latched while `f` runs on its records; `f` returns
    /// `false` to stop early. Returns the RID of the last record
    /// visited.
    pub fn scan_from(
        &self,
        from: Option<Rid>,
        last_page: PageId,
        f: impl FnMut(Rid, &[u8]) -> Result<bool>,
    ) -> Result<Option<Rid>> {
        self.scan_pages(from, last_page, f, |_| {})
    }

    /// [`HeapTable::scan_from`] with a per-page hook: `page_done`
    /// runs after the last record of each page *while the page's S
    /// latch is still held*. The SF index builder needs the hook to
    /// advance Current-RID past the whole page before any updater can
    /// latch the page again — an insert that reuses the page's free
    /// space after the scan has left must compare below the cursor
    /// and go to the side-file, or its key would be lost.
    pub fn scan_pages(
        &self,
        from: Option<Rid>,
        last_page: PageId,
        mut f: impl FnMut(Rid, &[u8]) -> Result<bool>,
        mut page_done: impl FnMut(PageId),
    ) -> Result<Option<Rid>> {
        let mut last_seen = None;
        let mut pages_in_batch = 0usize;
        let first_page = from.map_or(PageId(0), |r| r.page);
        for pnum in first_page.0..=last_page.0.min(self.cache.num_pages().saturating_sub(1)) {
            let page = PageId(pnum);
            if pages_in_batch == 0 {
                self.stats.io_batches.bump();
            }
            pages_in_batch = (pages_in_batch + 1) % self.prefetch;
            self.stats.scan_pages.bump();
            let frame = match self.cache.frame(page) {
                Ok(fr) => fr,
                Err(Error::NotFound(_)) => {
                    // Hole (crash-lost page): there is no frame to
                    // latch, and none will reappear — allocation only
                    // ever extends the file — so the hook runs
                    // latchless.
                    page_done(page);
                    continue;
                }
                Err(e) => return Err(e),
            };
            let g = frame.latch.share();
            for (slot, data) in g.payload.records() {
                let rid = Rid { page, slot };
                if from.is_some_and(|f| rid <= f) {
                    continue;
                }
                last_seen = Some(rid);
                if !f(rid, data)? {
                    return Ok(last_seen);
                }
            }
            page_done(page);
        }
        Ok(last_seen)
    }

    /// Count live records (test/verification helper).
    pub fn count(&self) -> Result<u64> {
        let mut n = 0u64;
        let last = PageId(self.cache.num_pages().saturating_sub(1));
        self.scan_from(None, last, |_, _| {
            n += 1;
            Ok(true)
        })?;
        Ok(n)
    }

    // ----- recovery primitives --------------------------------------

    fn ensure(
        &self,
        page: PageId,
    ) -> Result<std::sync::Arc<mohan_storage::cache::Frame<SlottedPage>>> {
        self.cache
            .ensure_with(page, || SlottedPage::new(self.page_size))
    }

    /// Redo an insert if the page has not seen `lsn` yet.
    pub fn redo_insert(&self, rid: Rid, data: &[u8], lsn: Lsn) -> Result<()> {
        let frame = self.ensure(rid.page)?;
        let mut g = frame.latch.exclusive();
        if g.lsn >= lsn {
            return Ok(());
        }
        g.payload.insert_at(rid.slot, data)?;
        g.lsn = lsn;
        Ok(())
    }

    /// Redo a delete if the page has not seen `lsn` yet.
    pub fn redo_delete(&self, rid: Rid, lsn: Lsn) -> Result<()> {
        let frame = self.ensure(rid.page)?;
        let mut g = frame.latch.exclusive();
        if g.lsn >= lsn {
            return Ok(());
        }
        g.payload.delete(rid.slot)?;
        g.lsn = lsn;
        Ok(())
    }

    /// Redo an update if the page has not seen `lsn` yet.
    pub fn redo_update(&self, rid: Rid, new: &[u8], lsn: Lsn) -> Result<()> {
        let frame = self.ensure(rid.page)?;
        let mut g = frame.latch.exclusive();
        if g.lsn >= lsn {
            return Ok(());
        }
        g.payload.update(rid.slot, new)?;
        g.lsn = lsn;
        Ok(())
    }

    /// Undo helpers: apply the inverse unconditionally (repeat-history
    /// redo guarantees the forward state). The `log` closure runs
    /// *under the page X latch* — Figure 2 computes the current count
    /// of visible indexes while the target page is latched — and
    /// returns the CLR's LSN to stamp on the page.
    pub fn undo_insert(&self, rid: Rid, log: impl FnOnce() -> Lsn) -> Result<Vec<u8>> {
        let frame = self.cache.frame(rid.page)?;
        let mut g = frame.latch.exclusive();
        let old = g.payload.delete(rid.slot)?;
        // Unlike a forward delete, a rolled-back insert leaves no one
        // holding a stale reference to the RID: free the slot at once
        // (the paper's example has T2 reuse T1's RID immediately after
        // T1's rollback).
        g.payload.free_slot(rid.slot);
        g.lsn = log();
        drop(g);
        self.fsm.note_free(rid.page);
        self.stats.deletes.bump();
        Ok(old)
    }

    /// Undo of a delete restores the exact record at its original RID.
    pub fn undo_delete(&self, rid: Rid, old: &[u8], log: impl FnOnce() -> Lsn) -> Result<()> {
        let frame = self.ensure(rid.page)?;
        let mut g = frame.latch.exclusive();
        g.payload.insert_at(rid.slot, old)?;
        g.lsn = log();
        Ok(())
    }

    /// Undo of an update restores the before-image.
    pub fn undo_update(&self, rid: Rid, old: &[u8], log: impl FnOnce() -> Lsn) -> Result<()> {
        let frame = self.ensure(rid.page)?;
        let mut g = frame.latch.exclusive();
        g.payload.update(rid.slot, old)?;
        g.lsn = log();
        Ok(())
    }

    /// Simulated crash (volatile pages vanish).
    pub fn crash(&self) {
        self.cache.crash();
        self.fsm.clear();
    }
}

impl std::fmt::Debug for HeapTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapTable")
            .field("id", &self.id)
            .field("pages", &self.num_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> HeapTable {
        HeapTable::new(TableId(1), 256, 4)
    }

    fn no_log(_: Rid) -> Lsn {
        Lsn::NULL
    }

    #[test]
    fn insert_read_roundtrip_across_pages() {
        let t = table();
        let mut rids = Vec::new();
        for i in 0..100u8 {
            rids.push(t.insert_with(&[i; 40], no_log).unwrap());
        }
        assert!(t.num_pages() > 1);
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(t.read(*rid).unwrap(), vec![i as u8; 40]);
        }
    }

    #[test]
    fn log_closure_sees_rid_and_stamps_lsn() {
        let t = table();
        let mut seen = None;
        let rid = t
            .insert_with(b"x", |r| {
                seen = Some(r);
                Lsn(42)
            })
            .unwrap();
        assert_eq!(seen, Some(rid));
        let frame = t.cache.frame(rid.page).unwrap();
        assert_eq!(frame.latch.share().lsn, Lsn(42));
    }

    #[test]
    fn delete_reserves_slot_until_released() {
        let t = table();
        let rid = t.insert_with(&[7; 50], no_log).unwrap();
        let old = t.delete_with(rid, |_| Lsn::NULL).unwrap();
        assert_eq!(old, vec![7; 50]);
        assert!(!t.exists(rid));
        // Not reusable until the deleter commits.
        let rid2 = t.insert_with(&[8; 50], no_log).unwrap();
        assert_ne!(rid2, rid);
        t.release_slot(rid).unwrap();
        let rid3 = t.insert_with(&[9; 50], no_log).unwrap();
        assert_eq!(rid3, rid);
    }

    #[test]
    fn sweep_frees_all_reserved_slots() {
        let t = table();
        let a = t.insert_with(&[1; 10], no_log).unwrap();
        let b = t.insert_with(&[2; 10], no_log).unwrap();
        t.delete_with(a, |_| Lsn::NULL).unwrap();
        t.delete_with(b, |_| Lsn::NULL).unwrap();
        assert_eq!(t.sweep_reserved().unwrap(), 2);
        let c = t.insert_with(&[3; 10], no_log).unwrap();
        assert!(c == a || c == b);
    }

    #[test]
    fn update_in_place() {
        let t = table();
        let rid = t.insert_with(b"before", no_log).unwrap();
        let old = t.update_with(rid, b"after!", |_| Lsn(5)).unwrap();
        assert_eq!(old, b"before");
        assert_eq!(t.read(rid).unwrap(), b"after!");
    }

    #[test]
    fn scan_visits_rid_order_and_resumes() {
        let t = table();
        let mut rids = Vec::new();
        for i in 0..60u8 {
            rids.push(t.insert_with(&[i; 20], no_log).unwrap());
        }
        let last_page = PageId(t.num_pages() - 1);
        let mut seen = Vec::new();
        t.scan_from(None, last_page, |rid, data| {
            seen.push((rid, data[0]));
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen.len(), 60);
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));

        // Resume after the 30th record: sees exactly the rest.
        let resume_after = seen[29].0;
        let mut rest = Vec::new();
        t.scan_from(Some(resume_after), last_page, |rid, _| {
            rest.push(rid);
            Ok(true)
        })
        .unwrap();
        assert_eq!(rest, seen[30..].iter().map(|(r, _)| *r).collect::<Vec<_>>());
    }

    #[test]
    fn scan_pages_hook_fires_after_each_pages_records() {
        let t = table();
        for i in 0..60u8 {
            t.insert_with(&[i; 20], no_log).unwrap();
        }
        let pages = t.num_pages();
        assert!(pages >= 2, "need a multi-page table");
        #[derive(Debug, PartialEq)]
        enum Ev {
            Rec(Rid),
            Done(PageId),
        }
        let events = std::cell::RefCell::new(Vec::new());
        t.scan_pages(
            None,
            PageId(pages - 1),
            |rid, _| {
                events.borrow_mut().push(Ev::Rec(rid));
                Ok(true)
            },
            |page| events.borrow_mut().push(Ev::Done(page)),
        )
        .unwrap();
        let events = events.into_inner();
        // Every page is closed out exactly once, and only after its
        // last record and before the next page's first.
        let mut current = None;
        let mut done = Vec::new();
        for ev in &events {
            match ev {
                Ev::Rec(rid) => {
                    assert!(!done.contains(&rid.page), "record after page_done");
                    current = Some(rid.page);
                }
                Ev::Done(p) => {
                    assert_eq!(Some(*p), current, "hook out of order");
                    done.push(*p);
                }
            }
        }
        assert_eq!(done.len(), pages as usize);
    }

    #[test]
    fn scan_stops_early_and_reports_position() {
        let t = table();
        for i in 0..20u8 {
            t.insert_with(&[i], no_log).unwrap();
        }
        let mut n = 0;
        let last = t
            .scan_from(None, PageId(t.num_pages() - 1), |_, _| {
                n += 1;
                Ok(n < 5)
            })
            .unwrap();
        assert_eq!(n, 5);
        assert!(last.is_some());
    }

    #[test]
    fn scan_respects_last_page_bound() {
        let t = table();
        for i in 0..100u8 {
            t.insert_with(&[i; 40], no_log).unwrap();
        }
        assert!(t.num_pages() >= 3);
        let mut pages = std::collections::HashSet::new();
        t.scan_from(None, PageId(1), |rid, _| {
            pages.insert(rid.page);
            Ok(true)
        })
        .unwrap();
        assert!(pages.iter().all(|p| p.0 <= 1));
    }

    #[test]
    fn io_batches_accounted() {
        let t = table();
        for i in 0..200u8 {
            t.insert_with(&[i; 40], no_log).unwrap();
        }
        let pages = t.num_pages() as u64;
        t.scan_from(None, PageId((pages - 1) as u32), |_, _| Ok(true))
            .unwrap();
        let batches = t.stats.io_batches.get();
        assert!(
            batches >= pages / 4 && batches <= pages / 4 + 2,
            "batches={batches} pages={pages}"
        );
    }

    #[test]
    fn redo_is_idempotent_by_page_lsn() {
        let t = table();
        t.redo_insert(Rid::new(0, 0), b"abc", Lsn(5)).unwrap();
        // Replay of the same record is a no-op.
        t.redo_insert(Rid::new(0, 0), b"abc", Lsn(5)).unwrap();
        assert_eq!(t.read(Rid::new(0, 0)).unwrap(), b"abc");
        t.redo_delete(Rid::new(0, 0), Lsn(6)).unwrap();
        t.redo_delete(Rid::new(0, 0), Lsn(6)).unwrap();
        assert!(!t.exists(Rid::new(0, 0)));
    }

    #[test]
    fn redo_recreates_crash_lost_pages() {
        let t = table();
        let rid = t.insert_with(b"gone", no_log).unwrap();
        t.crash(); // page never forced
        assert_eq!(t.num_pages(), 0);
        t.redo_insert(rid, b"gone", Lsn(3)).unwrap();
        assert_eq!(t.read(rid).unwrap(), b"gone");
    }

    #[test]
    fn undo_delete_restores_original_rid() {
        let t = table();
        let rid = t.insert_with(b"keep-me", no_log).unwrap();
        let old = t.delete_with(rid, |_| Lsn(2)).unwrap();
        t.undo_delete(rid, &old, || Lsn(3)).unwrap();
        assert_eq!(t.read(rid).unwrap(), b"keep-me");
        let frame = t.cache.frame(rid.page).unwrap();
        assert_eq!(frame.latch.share().lsn, Lsn(3));
    }

    #[test]
    fn oversized_record_rejected() {
        let t = table();
        assert!(t.insert_with(&[0u8; 300], no_log).is_err());
    }

    #[test]
    fn concurrent_inserters_never_lose_or_duplicate_rids() {
        let t = std::sync::Arc::new(HeapTable::new(TableId(1), 256, 4));
        let handles: Vec<_> = (0..8u8)
            .map(|w| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    (0..50u8)
                        .map(|i| t.insert_with(&[w, i], no_log).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut rids: Vec<Rid> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        rids.sort();
        rids.dedup();
        assert_eq!(rids.len(), 400, "duplicate RID handed out under contention");
        assert_eq!(t.count().unwrap(), 400);
        assert_eq!(t.stats.inserts.get(), 400);
    }

    #[test]
    fn forced_pages_survive_crash_with_contents() {
        let t = table();
        let rid = t.insert_with(b"durable", |_| Lsn(1)).unwrap();
        t.cache.force(rid.page, Lsn(1)).unwrap();
        t.crash();
        assert_eq!(t.read(rid).unwrap(), b"durable");
    }
}
