//! Blocking client for the engine's wire protocol.
//!
//! [`Client`] wraps one `TcpStream` and speaks strict
//! request/response: every call writes one frame and reads frames
//! until the exchange's terminal response ([`Client::create_index`] is
//! the only multi-frame exchange — it consumes the
//! [`Response::Progress`] stream, handing each frame to a callback).
//! [`Pool`] adds connection reuse for closed-loop drivers: checkout a
//! connection, run statements, and the RAII guard returns it on drop.
//!
//! Like everything in the workspace, the transport is `std::net` — the
//! container has no crates.io access, and a blocking client is exactly
//! what a closed-loop workload driver wants anyway (one in-flight
//! request per connection models one user).

#![warn(missing_docs)]

use mohan_common::{IndexId, KeyValue, Rid, TableId, TxId};
use mohan_wire::frame::{read_frame, write_frame};
use mohan_wire::message::{
    proto_version, BuildAlgo, BuildOptionsWire, BuildPhase, HistogramSummaryWire, IndexSpecWire,
    Request, Response, Role,
};
use parking_lot::Mutex;
use std::io::{self, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

// Re-exported so callers can match on `ClientError::Server { code }`
// (e.g. a follower telling a cut-loose apart from a generic stream
// error) without depending on the wire crate themselves.
pub use mohan_wire::message::ErrorCode;

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure; the connection is unusable afterwards.
    Io(io::Error),
    /// The server answered with a structured error.
    Server {
        /// Error class.
        code: ErrorCode,
        /// Server-side detail text.
        message: String,
    },
    /// Admission control rejected the request; retry after backoff.
    Busy,
    /// The peer violated the protocol (undecodable frame, wrong
    /// response kind, mid-exchange close). Connection unusable.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            ClientError::Busy => write!(f, "server busy (admission control)"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// True for failures that leave the connection itself healthy (the
    /// server answered; the *request* failed). Io/Protocol failures
    /// mean the stream can no longer be trusted for framing.
    #[must_use]
    pub fn connection_reusable(&self) -> bool {
        matches!(self, ClientError::Server { .. } | ClientError::Busy)
    }
}

/// Alias for client call results.
pub type ClientResult<T> = Result<T, ClientError>;

/// One decoded [`Response::Metrics`] frame: every counter/gauge and
/// every histogram summary the server knows, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// `(name, value)` counters and gauges, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` histogram extracts, sorted by name.
    pub hists: Vec<(String, HistogramSummaryWire)>,
}

impl MetricsReport {
    /// Value of the counter or gauge `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Summary of the histogram `name`, if present.
    #[must_use]
    pub fn hist(&self, name: &str) -> Option<&HistogramSummaryWire> {
        self.hists
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.hists[i].1)
    }
}

/// Decoded [`Response::Welcome`]: the server's half of the version
/// handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Welcome {
    /// Server's packed protocol version (`major << 16 | minor`).
    pub proto_version: u32,
    /// The server's current role (a follower refuses writes).
    pub role: Role,
    /// The server's flushed WAL LSN at handshake time.
    pub flushed_lsn: u64,
}

/// Decoded [`Response::Promoted`]: outcome of a follower promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Promoted {
    /// Last LSN in the promoted engine's log.
    pub last_lsn: u64,
    /// In-flight transactions rolled back by the promotion restart.
    pub losers_undone: u64,
}

/// One blocking connection to the server.
pub struct Client {
    stream: TcpStream,
    /// When set, every request ships inside a trace envelope carrying
    /// this id, and the server threads it through everything the
    /// request causes — down to replica apply on a follower.
    trace_id: Option<u64>,
}

impl Client {
    /// Connect to `addr` (e.g. `"127.0.0.1:7878"`).
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            trace_id: None,
        })
    }

    /// Bound how long a single response read may block. `None`
    /// restores indefinite blocking.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> ClientResult<()> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Attach a trace id to every subsequent request on this
    /// connection (`None` stops attaching). The server adopts the id
    /// as the request's causal trace — sampled or not by its
    /// configured rate — so a client can later fetch the whole span
    /// tree with [`Client::trace_dump`]. A zero id is treated as
    /// unset server-side (the server generates its own).
    pub fn set_trace_id(&mut self, trace_id: Option<u64>) {
        self.trace_id = trace_id;
    }

    fn send(&mut self, req: &Request) -> ClientResult<()> {
        let payload = match self.trace_id {
            Some(id) => mohan_wire::message::encode_traced(id, req),
            None => req.encode(),
        };
        let mut w = BufWriter::new(&mut self.stream);
        write_frame(&mut w, &payload)?;
        w.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> ClientResult<Response> {
        match read_frame(&mut self.stream)? {
            None => Err(ClientError::Protocol("server closed mid-exchange".into())),
            Some(payload) => Response::decode(&payload)
                .ok_or_else(|| ClientError::Protocol("undecodable response frame".into())),
        }
    }

    /// One request, one response — the raw exchange. `Err`/`Busy`
    /// responses are *returned*, not converted to errors; the typed
    /// wrappers below do the conversion.
    pub fn call(&mut self, req: &Request) -> ClientResult<Response> {
        self.send(req)?;
        self.recv()
    }

    fn expect(&mut self, req: &Request) -> ClientResult<Response> {
        match self.call(req)? {
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            Response::Busy => Err(ClientError::Busy),
            other => Ok(other),
        }
    }

    fn protocol<T>(what: &str, got: &Response) -> ClientResult<T> {
        Err(ClientError::Protocol(format!(
            "expected {what}, got {got:?}"
        )))
    }

    // ----- typed calls ------------------------------------------------

    /// Version/role handshake. Sends this library's protocol version
    /// and the caller's role; the server answers with its own version,
    /// its current role (primary or replication follower) and its
    /// flushed LSN, or rejects the connection with
    /// [`ErrorCode::UnsupportedProto`] on a major-version mismatch.
    ///
    /// Optional: servers keep answering un-handshaked requests, so old
    /// clients work unchanged. New deployments should call this first
    /// to learn whether they are talking to a follower.
    pub fn hello(&mut self, role: Role) -> ClientResult<Welcome> {
        match self.expect(&Request::Hello {
            proto_version: proto_version(),
            role,
        })? {
            Response::Welcome {
                proto_version,
                role,
                flushed_lsn,
            } => Ok(Welcome {
                proto_version,
                role,
                flushed_lsn,
            }),
            other => Self::protocol("Welcome", &other),
        }
    }

    /// Ask a follower server to promote itself to primary. Blocks
    /// until the promotion (tail restart + undo of in-flight
    /// transactions) finishes; afterwards the server accepts writes.
    /// Fails on a server that is already a primary or has no promotion
    /// hook configured.
    pub fn promote(&mut self) -> ClientResult<Promoted> {
        match self.expect(&Request::Promote)? {
            Response::Promoted {
                last_lsn,
                losers_undone,
            } => Ok(Promoted {
                last_lsn,
                losers_undone,
            }),
            other => Self::protocol("Promoted", &other),
        }
    }

    /// Liveness / RTT probe.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.expect(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Self::protocol("Pong", &other),
        }
    }

    /// Open a transaction on this connection.
    pub fn begin(&mut self) -> ClientResult<TxId> {
        match self.expect(&Request::Begin)? {
            Response::TxBegun { tx } => Ok(TxId(tx)),
            other => Self::protocol("TxBegun", &other),
        }
    }

    /// Commit the open transaction.
    pub fn commit(&mut self) -> ClientResult<()> {
        match self.expect(&Request::Commit)? {
            Response::Committed => Ok(()),
            other => Self::protocol("Committed", &other),
        }
    }

    /// Roll back the open transaction.
    pub fn rollback(&mut self) -> ClientResult<()> {
        match self.expect(&Request::Rollback)? {
            Response::RolledBack => Ok(()),
            other => Self::protocol("RolledBack", &other),
        }
    }

    /// Insert a record (auto-commits when no transaction is open).
    pub fn insert(&mut self, table: TableId, cols: Vec<i64>) -> ClientResult<Rid> {
        match self.expect(&Request::Insert {
            table: table.0,
            cols,
        })? {
            Response::Inserted { rid } => Ok(Rid::unpack(rid)),
            other => Self::protocol("Inserted", &other),
        }
    }

    /// Replace the record at `rid`.
    pub fn update(&mut self, table: TableId, rid: Rid, cols: Vec<i64>) -> ClientResult<()> {
        match self.expect(&Request::Update {
            table: table.0,
            rid: rid.pack(),
            cols,
        })? {
            Response::Updated => Ok(()),
            other => Self::protocol("Updated", &other),
        }
    }

    /// Delete the record at `rid`.
    pub fn delete(&mut self, table: TableId, rid: Rid) -> ClientResult<()> {
        match self.expect(&Request::Delete {
            table: table.0,
            rid: rid.pack(),
        })? {
            Response::Deleted => Ok(()),
            other => Self::protocol("Deleted", &other),
        }
    }

    /// Read the record at `rid`.
    pub fn read(&mut self, table: TableId, rid: Rid) -> ClientResult<Vec<i64>> {
        match self.expect(&Request::Read {
            table: table.0,
            rid: rid.pack(),
        })? {
            Response::Record { cols } => Ok(cols),
            other => Self::protocol("Record", &other),
        }
    }

    /// Exact-match probe of an index.
    pub fn lookup(&mut self, index: IndexId, key: &KeyValue) -> ClientResult<Vec<Rid>> {
        match self.expect(&Request::Lookup {
            index: index.0,
            key: key.as_bytes().to_vec(),
        })? {
            Response::Rids { rids } => Ok(rids.into_iter().map(Rid::unpack).collect()),
            other => Self::protocol("Rids", &other),
        }
    }

    /// Snapshot of the server's counters.
    pub fn stats(&mut self) -> ClientResult<Vec<(String, u64)>> {
        match self.expect(&Request::Stats)? {
            Response::Stats { counters } => Ok(counters),
            other => Self::protocol("Stats", &other),
        }
    }

    /// Dump the server's span trace ring as JSON lines (one completed
    /// span per line, newest last). `trace_id` restricts the dump to
    /// one trace (0 = all traces); `since_seq` skips events below
    /// that ring sequence number (0 = from the oldest retained) —
    /// resume tailing from the last `seq` seen.
    pub fn trace_dump(&mut self, trace_id: u64, since_seq: u64) -> ClientResult<String> {
        match self.expect(&Request::TraceDump {
            trace_id,
            since_seq,
        })? {
            Response::TraceDump { jsonl } => Ok(jsonl),
            other => Self::protocol("TraceDump", &other),
        }
    }

    /// One full metrics snapshot: engine + server counters/gauges and
    /// histogram summaries, both lists sorted by name.
    pub fn metrics(&mut self) -> ClientResult<MetricsReport> {
        match self.expect(&Request::Metrics)? {
            Response::Metrics { counters, hists } => Ok(MetricsReport { counters, hists }),
            other => Self::protocol("Metrics", &other),
        }
    }

    /// Subscribe to a periodic metrics stream. The server emits one
    /// [`MetricsReport`] per `interval_ms` (clamped server-side) until
    /// this connection closes; `on_frame` returning `false` ends the
    /// stream by disconnecting, which is the protocol's way to
    /// unsubscribe — hence the method consumes the client.
    pub fn observe_stats(
        mut self,
        interval_ms: u32,
        mut on_frame: impl FnMut(MetricsReport) -> bool,
    ) -> ClientResult<()> {
        self.send(&Request::ObserveStats { interval_ms })?;
        loop {
            match self.recv()? {
                Response::Metrics { counters, hists } => {
                    if !on_frame(MetricsReport { counters, hists }) {
                        return Ok(()); // drop disconnects
                    }
                }
                Response::Err { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                Response::Busy => return Err(ClientError::Busy),
                other => return Self::protocol("Metrics", &other),
            }
        }
    }

    /// Subscribe to the primary's WAL stream starting at `from_lsn`
    /// (1-based; `applied + 1` on reconnect). The server ships batched
    /// frames covering only the *flushed* prefix of its log; empty
    /// frames are heartbeats carrying the advancing flushed LSN.
    /// `on_frame` receives the primary's flushed LSN, the decoded
    /// records, and the frame's trace tags (`(lsn, trace_id)` pairs
    /// naming which records were appended under a sampled trace —
    /// usually empty); returning `false` ends the stream by
    /// disconnecting (the protocol's way to unsubscribe — hence the
    /// method consumes the client).
    pub fn subscribe_wal(
        mut self,
        from_lsn: u64,
        mut on_frame: impl FnMut(u64, Vec<mohan_wal::LogRecord>, Vec<(u64, u64)>) -> bool,
    ) -> ClientResult<()> {
        self.send(&Request::SubscribeWal { from_lsn })?;
        loop {
            match self.recv()? {
                Response::WalFrame {
                    flushed,
                    count,
                    records,
                    traces,
                } => {
                    let Some(records) = mohan_wal::decode_records(&records, count as usize) else {
                        return Err(ClientError::Protocol("undecodable WAL records".into()));
                    };
                    if !on_frame(flushed, records, traces) {
                        return Ok(()); // drop disconnects
                    }
                }
                Response::Err { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                Response::Busy => return Err(ClientError::Busy),
                other => return Self::protocol("WalFrame", &other),
            }
        }
    }

    /// Build indexes online, streaming progress to `on_progress` until
    /// the terminal `IndexCreated` (or error) frame arrives.
    ///
    /// The exchange blocks this connection for the whole build — run it
    /// on its own connection if DML must continue concurrently (that
    /// separation is the point of the experiment).
    pub fn create_index(
        &mut self,
        table: TableId,
        algo: BuildAlgo,
        specs: Vec<IndexSpecWire>,
        on_progress: impl FnMut(IndexId, BuildPhase, u64),
    ) -> ClientResult<Vec<IndexId>> {
        self.send(&Request::CreateIndex {
            table: table.0,
            algo,
            specs,
        })?;
        self.follow_build(on_progress)
    }

    /// [`Client::create_index`] with build tuning options (worker
    /// count, run compression, drain policy, checkpoint interval),
    /// carried by the minor-3 `CreateIndexV2` request. Same exchange
    /// and connection-occupancy semantics.
    pub fn create_index_with(
        &mut self,
        table: TableId,
        algo: BuildAlgo,
        specs: Vec<IndexSpecWire>,
        options: BuildOptionsWire,
        on_progress: impl FnMut(IndexId, BuildPhase, u64),
    ) -> ClientResult<Vec<IndexId>> {
        self.send(&Request::CreateIndexV2 {
            table: table.0,
            algo,
            specs,
            options,
        })?;
        self.follow_build(on_progress)
    }

    fn follow_build(
        &mut self,
        mut on_progress: impl FnMut(IndexId, BuildPhase, u64),
    ) -> ClientResult<Vec<IndexId>> {
        loop {
            match self.recv()? {
                Response::Progress {
                    index,
                    phase,
                    detail,
                } => on_progress(IndexId(index), phase, detail),
                Response::IndexCreated { ids } => {
                    return Ok(ids.into_iter().map(IndexId).collect())
                }
                Response::Err { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                Response::Busy => return Err(ClientError::Busy),
                other => return Self::protocol("Progress|IndexCreated", &other),
            }
        }
    }
}

/// The shared read surface: the same driver/oracle code runs over a
/// wire client, an in-process session, or a follower reader (see
/// [`mohan_common::ReadApi`]).
impl mohan_common::ReadApi for Client {
    type Err = ClientError;

    fn read(&mut self, table: TableId, rid: Rid) -> ClientResult<Vec<i64>> {
        Client::read(self, table, rid)
    }

    fn lookup(&mut self, index: IndexId, key: &KeyValue) -> ClientResult<Vec<Rid>> {
        Client::lookup(self, index, key)
    }
}

/// A small connection pool: checkout with [`Pool::get`], drop the
/// guard to return the connection. Connections that died (transport
/// or protocol error) should be taken out of circulation with
/// [`PooledClient::discard`].
pub struct Pool {
    addr: String,
    idle: Mutex<Vec<Client>>,
    max_idle: usize,
}

impl Pool {
    /// Pool connecting to `addr`, keeping at most `max_idle` idle
    /// connections (more may exist checked-out at once).
    #[must_use]
    pub fn new(addr: &str, max_idle: usize) -> Arc<Pool> {
        Arc::new(Pool {
            addr: addr.to_owned(),
            idle: Mutex::new(Vec::new()),
            max_idle,
        })
    }

    /// Checkout an idle connection or open a fresh one.
    pub fn get(self: &Arc<Pool>) -> ClientResult<PooledClient> {
        let client = match self.idle.lock().pop() {
            Some(c) => c,
            None => Client::connect(&self.addr)?,
        };
        Ok(PooledClient {
            pool: Arc::clone(self),
            client: Some(client),
        })
    }

    /// Idle connections currently pooled.
    #[must_use]
    pub fn idle_count(&self) -> usize {
        self.idle.lock().len()
    }

    fn put_back(&self, client: Client) {
        let mut idle = self.idle.lock();
        if idle.len() < self.max_idle {
            idle.push(client);
        } // else: drop, closing the socket
    }
}

/// RAII checkout from a [`Pool`]; derefs to [`Client`].
pub struct PooledClient {
    pool: Arc<Pool>,
    client: Option<Client>,
}

impl PooledClient {
    /// Close this connection instead of returning it to the pool. Call
    /// after an error where
    /// [`connection_reusable`](ClientError::connection_reusable) is
    /// false, or after leaving a transaction open deliberately.
    pub fn discard(mut self) {
        self.client = None;
    }
}

impl std::ops::Deref for PooledClient {
    type Target = Client;
    fn deref(&self) -> &Client {
        self.client.as_ref().expect("client present until drop")
    }
}

impl std::ops::DerefMut for PooledClient {
    fn deref_mut(&mut self) -> &mut Client {
        self.client.as_mut().expect("client present until drop")
    }
}

impl Drop for PooledClient {
    fn drop(&mut self) {
        if let Some(client) = self.client.take() {
            self.pool.put_back(client);
        }
    }
}
