//! Live terminal view of a running server's metrics.
//!
//! ```text
//! oib-top [--addr HOST:PORT] [--interval MS] [--frames N] [--once]
//! ```
//!
//! Subscribes to the server's `ObserveStats` stream and redraws a
//! table of histogram summaries and counters once per frame; `--once`
//! does a single `Metrics` request and prints the same table without
//! clearing the screen (useful in scripts). `--frames N` stops after
//! `N` frames (0 = forever), disconnecting to end the subscription.

use mohan_client::{Client, MetricsReport};

struct Options {
    addr: String,
    interval_ms: u32,
    frames: u64,
    once: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        addr: "127.0.0.1:7878".into(),
        interval_ms: 500,
        frames: 0,
        once: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr"),
            "--interval" => {
                opts.interval_ms = value("--interval").parse().expect("--interval MS");
            }
            "--frames" => opts.frames = value("--frames").parse().expect("--frames N"),
            "--once" => opts.once = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: oib-top [--addr HOST:PORT] [--interval MS] [--frames N] [--once]"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Ratio as a percentage, empty-safe.
fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64 * 100.0
    }
}

fn render(report: &MetricsReport, frame: u64, clear: bool) {
    let mut out = String::new();
    if clear {
        out.push_str("\x1b[2J\x1b[H"); // clear screen, cursor home
    }
    let hit = report.counter("cache.hit").unwrap_or(0);
    let miss = report.counter("cache.miss").unwrap_or(0);
    out.push_str(&format!(
        "oib-top  frame {frame}   cache hit {:.1}%   drain lag {}   active txs {}   inflight {}   wakeups {}",
        pct(hit, hit + miss),
        report.counter("build.drain_lag").unwrap_or(0),
        report.counter("engine.active_txs").unwrap_or(0),
        report.counter("server.inflight").unwrap_or(0),
        // Cumulative shard wakeups: grows ~2000/s per shard under the
        // threaded backend, stays near-flat on an idle reactor.
        report.counter("server.wakeups").unwrap_or(0),
    ));
    out.push_str(&format!(
        "   lock waits {} ({} timeouts)",
        report.counter("lock.waits").unwrap_or(0),
        report.counter("lock.timeouts").unwrap_or(0),
    ));
    // Only a replication follower registers repl.* gauges; on a
    // primary the header stays unchanged.
    if let Some(lag) = report.counter("repl.lag_lsn") {
        out.push_str(&format!(
            "   repl lag {lag} lsn (queue {})",
            report.counter("repl.queue_depth").unwrap_or(0),
        ));
    }
    out.push('\n');
    // A primary with WAL subscribers shows the broadcast fan-out ring:
    // live subscriber count, ring occupancy, shared scan/encode totals,
    // and how many lagging streams were cut loose.
    if let Some(subs) = report.counter("repl.fanout.subscribers") {
        out.push_str(&format!(
            "fanout   subs {subs}   ring {} chunks / {} KiB   scans {}   encodes {}   evicted {}   cut loose {}\n",
            report.counter("repl.fanout.ring_chunks").unwrap_or(0),
            report.counter("repl.fanout.ring_bytes").unwrap_or(0) / 1024,
            report.counter("repl.fanout.scans").unwrap_or(0),
            report.counter("repl.fanout.encodes").unwrap_or(0),
            report.counter("repl.fanout.evicted").unwrap_or(0),
            report.counter("repl.fanout.cut_loose").unwrap_or(0),
        ));
    }
    out.push_str(&format!(
        "{:<28} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
        "histogram (µs)", "count", "p50", "p90", "p99", "max"
    ));
    for (name, h) in &report.hists {
        out.push_str(&format!(
            "{:<28} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
            name, h.count, h.p50, h.p90, h.p99, h.max
        ));
    }
    out.push_str("counters:\n");
    let mut row = 0usize;
    for (name, v) in &report.counters {
        out.push_str(&format!("  {:<32} {:>12}", name, v));
        row += 1;
        if row.is_multiple_of(2) {
            out.push('\n');
        }
    }
    if !row.is_multiple_of(2) {
        out.push('\n');
    }
    print!("{out}");
    use std::io::Write;
    let _ = std::io::stdout().flush();
}

fn main() {
    let opts = parse_args();
    let mut client = Client::connect(&opts.addr).unwrap_or_else(|e| {
        eprintln!("connect {}: {e}", opts.addr);
        std::process::exit(1);
    });

    if opts.once {
        match client.metrics() {
            Ok(report) => render(&report, 0, false),
            Err(e) => {
                eprintln!("metrics: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let max_frames = opts.frames;
    let mut seen = 0u64;
    let result = client.observe_stats(opts.interval_ms, |report| {
        seen += 1;
        render(&report, seen, true);
        max_frames == 0 || seen < max_frames
    });
    if let Err(e) = result {
        eprintln!("stream ended: {e}");
        std::process::exit(1);
    }
}
