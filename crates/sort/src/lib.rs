//! Restartable external sort (paper §5).
//!
//! Sorting the extracted keys is the longest-running phase of a large
//! index build, so the paper makes *both* phases of the sort
//! restartable:
//!
//! * **Sort phase** (§5.1, [`run_formation`]) — keys stream through a
//!   tournament-tree replacement selector into sorted runs.
//!   Periodically the workspace is drained, the runs are forced, and a
//!   checkpoint records the run inventory, the data-scan position fed
//!   so far, and the highest key written to the still-open last run.
//!   Restart truncates the last run, discards younger runs, and
//!   resumes the scan — appending to the same run when the first new
//!   key is no smaller than the checkpointed high key.
//! * **Merge phase** (§5.2, [`merge`]) — a loser tree merges N runs.
//!   Because each leaf is fed by exactly one input stream, counting
//!   the keys consumed per stream pinpoints the merge position; a
//!   checkpoint records that counter vector plus the output length, and
//!   restart repositions every cursor exactly, losing no key and
//!   emitting none twice.
//!
//! [`external`] composes the two into a full sorter with multi-pass
//! merging under a fan-in limit, plus a single resumable driver.
//! [`run_store`] is the crash-aware stable storage for runs.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod external;
pub mod item;
pub mod loser_tree;
pub mod merge;
pub mod run_formation;
pub mod run_store;

pub use checkpoint::{MergeCheckpoint, RunMeta, SortCheckpoint};
pub use external::{ExternalSort, MergePassCheckpoint, SortPhase};
pub use item::SortItem;
pub use loser_tree::LoserTree;
pub use merge::{Merge, RunCursor};
pub use run_formation::RunFormation;
pub use run_store::RunStore;
