//! The external-sort orchestrator: run formation, restartable
//! multi-pass merging under a fan-in limit, and a pipelined final
//! merge.
//!
//! Intermediate merge passes write whole runs and are restartable at
//! item granularity via [`MergePassCheckpoint`] (the §5.2 machinery:
//! output truncation + counter repositioning). The *final* merge is
//! not materialized — the paper pipelines it into index-key insertion
//! (§2.2.2: "the final merge phase of sort can be performed as keys
//! are being inserted into the index") — so the index builder owns its
//! checkpoint (it stores the final [`Merge`]'s counters next to its
//! own progress record).

use crate::checkpoint::MergeCheckpoint;
use crate::item::SortItem;
use crate::merge::Merge;
use crate::run_formation::RunFormation;
use crate::run_store::RunStore;
use mohan_common::{Error, Result};
use std::sync::Arc;

/// Where a resumable sort job currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortPhase {
    /// Feeding input / forming runs (§5.1).
    Forming,
    /// Reducing runs below the fan-in limit (§5.2).
    Merging,
    /// Final streams ready for the pipelined merge.
    Done,
}

/// Durable position of the run-reduction phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergePassCheckpoint {
    /// Runs awaiting merging, in order (excludes the in-flight step's
    /// inputs).
    pub remaining: Vec<u64>,
    /// In-progress step: `(output run, merge position)`.
    pub inflight: Option<(u64, MergeCheckpoint)>,
}

impl MergePassCheckpoint {
    /// Serialize for the stable blob store.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.remaining.len() as u64).to_be_bytes());
        for &r in &self.remaining {
            out.extend_from_slice(&r.to_be_bytes());
        }
        match &self.inflight {
            None => out.push(0),
            Some((output, cp)) => {
                out.push(1);
                out.extend_from_slice(&output.to_be_bytes());
                out.extend_from_slice(&cp.encode());
            }
        }
        out
    }

    /// Deserialize; `None` on corrupt input.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Option<MergePassCheckpoint> {
        let mut pos = 0;
        let rd = |buf: &[u8], pos: &mut usize| -> Option<u64> {
            if buf.len() < *pos + 8 {
                return None;
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[*pos..*pos + 8]);
            *pos += 8;
            Some(u64::from_be_bytes(b))
        };
        let n = rd(buf, &mut pos)? as usize;
        let mut remaining = Vec::with_capacity(n);
        for _ in 0..n {
            remaining.push(rd(buf, &mut pos)?);
        }
        let inflight = match *buf.get(pos)? {
            0 => None,
            1 => {
                pos += 1;
                let output = rd(buf, &mut pos)?;
                let cp = MergeCheckpoint::decode(&buf[pos..])?;
                Some((output, cp))
            }
            _ => return None,
        };
        Some(MergePassCheckpoint {
            remaining,
            inflight,
        })
    }
}

/// Configuration + store handle for one external sort.
pub struct ExternalSort<T: SortItem> {
    /// Stable run storage.
    pub store: Arc<RunStore<T>>,
    /// Replacement-selection workspace size.
    pub workspace: usize,
    /// Maximum runs merged in one pass.
    pub fan_in: usize,
    /// Items between checkpoints during run reduction.
    pub checkpoint_every: usize,
}

impl<T: SortItem> ExternalSort<T> {
    /// New sorter with its own run store.
    #[must_use]
    pub fn new(workspace: usize, fan_in: usize, checkpoint_every: usize) -> ExternalSort<T> {
        assert!(fan_in >= 2);
        ExternalSort {
            store: Arc::new(RunStore::new()),
            workspace,
            fan_in,
            checkpoint_every: checkpoint_every.max(1),
        }
    }

    /// Begin (or continue, via [`RunFormation::resume`]) run formation.
    #[must_use]
    pub fn run_formation(&self) -> RunFormation<T> {
        RunFormation::new(Arc::clone(&self.store), self.workspace)
    }

    /// Merge one step's inputs into `output`, starting from `merge`,
    /// persisting progress every `checkpoint_every` items.
    fn finish_step(
        &self,
        remaining: &[u64],
        output: u64,
        mut merge: Merge<T>,
        persist: &mut dyn FnMut(&MergePassCheckpoint) -> Result<()>,
    ) -> Result<Vec<u64>> {
        let inputs = merge.checkpoint().inputs;
        let mut since_cp = 0usize;
        let mut batch: Vec<T> = Vec::with_capacity(self.checkpoint_every.min(1024));
        while let Some(item) = merge.next() {
            batch.push(item);
            since_cp += 1;
            if since_cp >= self.checkpoint_every {
                self.store.append(output, &batch)?;
                batch.clear();
                self.store.force_run(output)?;
                persist(&MergePassCheckpoint {
                    remaining: remaining.to_vec(),
                    inflight: Some((output, merge.checkpoint())),
                })?;
                since_cp = 0;
            }
        }
        self.store.append(output, &batch)?;
        self.store.force_run(output)?;
        // Completion checkpoint *before* deleting inputs, so a crash in
        // between only leaves garbage runs (cleaned on resume), never a
        // dangling reference.
        let mut new_remaining = remaining.to_vec();
        new_remaining.push(output);
        persist(&MergePassCheckpoint {
            remaining: new_remaining.clone(),
            inflight: None,
        })?;
        for r in inputs {
            self.store.delete(r);
        }
        Ok(new_remaining)
    }

    /// Reduce `runs` until at most `fan_in` remain, persisting progress
    /// through `persist` (which typically writes to the stable blob
    /// area — and in crash tests returns an injected error to kill the
    /// job at an exact point).
    pub fn reduce_runs(
        &self,
        mut runs: Vec<u64>,
        persist: &mut dyn FnMut(&MergePassCheckpoint) -> Result<()>,
    ) -> Result<Vec<u64>> {
        while runs.len() > self.fan_in {
            let inputs: Vec<u64> = runs.drain(..self.fan_in).collect();
            let output = self.store.create_run();
            let merge = Merge::new(&self.store, inputs);
            runs = self.finish_step(&runs, output, merge, persist)?;
        }
        Ok(runs)
    }

    /// Resume run reduction after a crash.
    pub fn resume_reduce(
        &self,
        cp: &MergePassCheckpoint,
        persist: &mut dyn FnMut(&MergePassCheckpoint) -> Result<()>,
    ) -> Result<Vec<u64>> {
        // Drop runs the checkpoint does not know about (outputs of
        // steps that never reached their completion checkpoint, or
        // inputs already merged but not yet deleted).
        let mut known = cp.remaining.clone();
        if let Some((output, ref m)) = cp.inflight {
            known.push(output);
            known.extend(&m.inputs);
        }
        for id in self.store.run_ids() {
            if !known.contains(&id) {
                self.store.delete(id);
            }
        }
        let mut runs = cp.remaining.clone();
        if let Some((output, ref m)) = cp.inflight {
            self.store.truncate(output, m.emitted)?;
            let merge = Merge::resume(&self.store, m)?;
            runs = self.finish_step(&cp.remaining, output, merge, persist)?;
        }
        self.reduce_runs(runs, persist)
    }

    /// Open the pipelined final merge over the surviving streams.
    pub fn final_merge(&self, runs: Vec<u64>) -> Result<Merge<T>> {
        if runs.len() > self.fan_in {
            return Err(Error::Corruption(format!(
                "{} final streams exceed fan-in {}",
                runs.len(),
                self.fan_in
            )));
        }
        Ok(Merge::new(&self.store, runs))
    }

    /// Convenience: fully sort an iterator in one call (no crash
    /// simulation). Used by tests, examples and the offline baseline.
    pub fn sort_all(&self, items: impl IntoIterator<Item = T>) -> Result<Vec<T>> {
        let mut rf = self.run_formation();
        for (i, item) in items.into_iter().enumerate() {
            rf.push(item, i as u64 + 1)?;
        }
        let runs = rf.finish()?;
        let runs = self.reduce_runs(runs, &mut |_| Ok(()))?;
        Ok(self.final_merge(runs)?.collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mohan_common::Error;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_input(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(-10_000..10_000)).collect()
    }

    #[test]
    fn sort_all_sorts() {
        let xs = random_input(5000, 1);
        let sorter: ExternalSort<i64> = ExternalSort::new(64, 4, 128);
        let got = sorter.sort_all(xs.clone()).unwrap();
        let mut expected = xs;
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn multipass_merge_respects_fan_in() {
        let xs = random_input(2000, 2);
        let sorter: ExternalSort<i64> = ExternalSort::new(8, 2, 64);
        let mut rf = sorter.run_formation();
        for (i, &v) in xs.iter().enumerate() {
            rf.push(v, i as u64 + 1).unwrap();
        }
        let runs = rf.finish().unwrap();
        assert!(runs.len() > 2, "need many runs for a multipass test");
        let finals = sorter.reduce_runs(runs, &mut |_| Ok(())).unwrap();
        assert!(finals.len() <= 2);
        let got: Vec<i64> = sorter.final_merge(finals).unwrap().collect();
        let mut expected = xs;
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let cp = MergePassCheckpoint {
            remaining: vec![4, 9],
            inflight: Some((
                17,
                MergeCheckpoint {
                    inputs: vec![1, 2],
                    counters: vec![3, 0],
                    emitted: 3,
                },
            )),
        };
        assert_eq!(MergePassCheckpoint::decode(&cp.encode()), Some(cp));
        let done = MergePassCheckpoint {
            remaining: vec![],
            inflight: None,
        };
        assert_eq!(MergePassCheckpoint::decode(&done.encode()), Some(done));
    }

    /// Crash the reduction at every persisted checkpoint in turn and
    /// prove resume always produces the same fully sorted output.
    #[test]
    fn reduce_survives_crash_at_every_checkpoint() {
        let xs = random_input(1200, 3);
        let mut expected = xs.clone();
        expected.sort_unstable();

        for crash_at in 0..20 {
            let sorter: ExternalSort<i64> = ExternalSort::new(8, 2, 100);
            let mut rf = sorter.run_formation();
            for (i, &v) in xs.iter().enumerate() {
                rf.push(v, i as u64 + 1).unwrap();
            }
            let runs = rf.finish().unwrap();

            let mut saved: Option<MergePassCheckpoint> = None;
            let mut count = 0;
            let result = sorter.reduce_runs(runs.clone(), &mut |cp| {
                saved = Some(cp.clone());
                count += 1;
                if count == crash_at + 1 {
                    Err(Error::InjectedCrash("sort.reduce"))
                } else {
                    Ok(())
                }
            });

            let finals = match result {
                Ok(f) => f,
                Err(e) => {
                    assert!(e.is_crash());
                    sorter.store.crash();
                    let cp = saved.expect("crash implies a persisted checkpoint");
                    sorter.resume_reduce(&cp, &mut |_| Ok(())).unwrap()
                }
            };
            let got: Vec<i64> = sorter.final_merge(finals).unwrap().collect();
            assert_eq!(got, expected, "crash_at={crash_at}");
        }
    }

    #[test]
    fn resume_cleans_garbage_runs() {
        let sorter: ExternalSort<i64> = ExternalSort::new(1, 2, 10);
        // Workspace of one on descending input: one run per item, so
        // fan-in 2 forces several steps.
        let mut rf = sorter.run_formation();
        for (i, v) in [9i64, 8, 7, 3, 2, 1].iter().enumerate() {
            rf.push(*v, i as u64 + 1).unwrap();
        }
        let runs = rf.finish().unwrap();
        assert!(runs.len() > 2);
        // Crash immediately at the first persist.
        let mut saved = None;
        let err = sorter
            .reduce_runs(runs, &mut |cp| {
                saved = Some(cp.clone());
                Err(Error::InjectedCrash("x"))
            })
            .unwrap_err();
        assert!(err.is_crash());
        sorter.store.crash();
        let finals = sorter
            .resume_reduce(&saved.unwrap(), &mut |_| Ok(()))
            .unwrap();
        let got: Vec<i64> = sorter.final_merge(finals).unwrap().collect();
        assert_eq!(got, vec![1, 2, 3, 7, 8, 9]);
        // Only the runs the final checkpoint knows about remain.
        assert!(sorter.store.run_ids().len() <= 2);
    }

    #[test]
    fn final_merge_rejects_too_many_streams() {
        let sorter: ExternalSort<i64> = ExternalSort::new(4, 2, 10);
        let runs: Vec<u64> = (0..3).map(|_| sorter.store.create_run()).collect();
        assert!(sorter.final_merge(runs).is_err());
    }

    #[test]
    fn sort_all_handles_empty_and_single() {
        let sorter: ExternalSort<i64> = ExternalSort::new(4, 2, 10);
        assert_eq!(
            sorter.sort_all(Vec::<i64>::new()).unwrap(),
            Vec::<i64>::new()
        );
        let sorter2: ExternalSort<i64> = ExternalSort::new(4, 2, 10);
        assert_eq!(sorter2.sort_all(vec![42i64]).unwrap(), vec![42]);
    }
}
