//! A tournament (loser) tree over N input iterators.
//!
//! The paper assumes a tournament tree sort \[Knut73\]. The property
//! §5.2 exploits — "a particular leaf node of the tree is always fed
//! from the same input stream ... as we produce an output from the
//! root of the tree, we know exactly which input stream that value
//! came from" — is exactly what [`LoserTree::pop`] returns: the winner
//! *and its source index*.
//!
//! Ties break by source index, making merges stable across runs
//! created in order (earlier run wins), which §3.2.5 needs when the
//! side-file is sorted "without modifying the relative positions of
//! the identical keys".

/// Sentinel marking an empty tree slot during construction.
const NOBODY: usize = usize::MAX;

/// Loser tree over `k` iterators.
pub struct LoserTree<T: Ord, I: Iterator<Item = T>> {
    sources: Vec<I>,
    heads: Vec<Option<T>>,
    /// `tree[0]` is the overall winner; `tree[1..k]` hold losers.
    tree: Vec<usize>,
}

impl<T: Ord, I: Iterator<Item = T>> LoserTree<T, I> {
    /// Build a tree over `sources` (each already positioned at its
    /// first item).
    pub fn new(mut sources: Vec<I>) -> LoserTree<T, I> {
        let k = sources.len();
        let heads: Vec<Option<T>> = sources.iter_mut().map(Iterator::next).collect();
        let mut lt = LoserTree {
            sources,
            heads,
            tree: vec![NOBODY; k.max(1)],
        };
        if k > 1 {
            let winner = lt.build(1);
            lt.tree[0] = winner;
        } else if k == 1 {
            lt.tree[0] = 0;
        }
        lt
    }

    /// Recursively play the initial tournament for the subtree rooted
    /// at internal node `t`, storing losers and returning the winner.
    /// Child indices ≥ `k` denote leaves (source `index - k`).
    fn build(&mut self, t: usize) -> usize {
        let k = self.sources.len();
        let child = |c: usize, lt: &mut Self| -> usize {
            if c >= k {
                c - k
            } else {
                lt.build(c)
            }
        };
        let a = child(2 * t, self);
        let b = child(2 * t + 1, self);
        if self.beats(a, b) {
            self.tree[t] = b;
            a
        } else {
            self.tree[t] = a;
            b
        }
    }

    /// Does source `a` beat source `b`? Exhausted sources lose to
    /// everything; ties break toward the smaller source index.
    fn beats(&self, a: usize, b: usize) -> bool {
        if a == NOBODY {
            return false;
        }
        if b == NOBODY {
            return true;
        }
        match (&self.heads[a], &self.heads[b]) {
            (Some(x), Some(y)) => (x, a) < (y, b),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Replay matches from leaf `s` to the root.
    fn adjust(&mut self, s: usize) {
        let k = self.sources.len();
        let mut winner = s;
        let mut t = (s + k) / 2;
        while t > 0 {
            if self.beats(self.tree[t], winner) {
                std::mem::swap(&mut winner, &mut self.tree[t]);
            }
            t /= 2;
        }
        self.tree[0] = winner;
    }

    /// Pop the smallest item, returning `(item, source_index)`.
    pub fn pop(&mut self) -> Option<(T, usize)> {
        if self.sources.is_empty() {
            return None;
        }
        let w = self.tree[0];
        if w == NOBODY {
            return None;
        }
        let item = self.heads[w].take()?;
        self.heads[w] = self.sources[w].next();
        if self.sources.len() > 1 {
            self.adjust(w);
        }
        Some((item, w))
    }

    /// Peek at the current winner without consuming it.
    #[must_use]
    pub fn peek(&self) -> Option<&T> {
        if self.sources.is_empty() {
            return None;
        }
        let w = self.tree[0];
        if w == NOBODY {
            return None;
        }
        self.heads[w].as_ref()
    }

    /// Number of input sources.
    #[must_use]
    pub fn fan_in(&self) -> usize {
        self.sources.len()
    }
}

impl<T: Ord, I: Iterator<Item = T>> Iterator for LoserTree<T, I> {
    type Item = (T, usize);
    fn next(&mut self) -> Option<(T, usize)> {
        self.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn merge_all(inputs: Vec<Vec<i64>>) -> Vec<(i64, usize)> {
        LoserTree::new(inputs.into_iter().map(Vec::into_iter).collect()).collect()
    }

    #[test]
    fn merges_three_runs() {
        let out = merge_all(vec![vec![1, 4, 7], vec![2, 5, 8], vec![3, 6, 9]]);
        let vals: Vec<i64> = out.iter().map(|(v, _)| *v).collect();
        assert_eq!(vals, (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn reports_source_of_each_output() {
        let out = merge_all(vec![vec![1, 3], vec![2, 4]]);
        assert_eq!(out, vec![(1, 0), (2, 1), (3, 0), (4, 1)]);
    }

    #[test]
    fn handles_empty_and_unequal_runs() {
        let out = merge_all(vec![vec![], vec![5], vec![1, 2, 3, 4]]);
        let vals: Vec<i64> = out.iter().map(|(v, _)| *v).collect();
        assert_eq!(vals, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn single_source_passthrough() {
        let out = merge_all(vec![vec![3, 1, 2]]); // order preserved, not sorted
        let vals: Vec<i64> = out.iter().map(|(v, _)| *v).collect();
        assert_eq!(vals, vec![3, 1, 2]);
    }

    #[test]
    fn zero_sources_is_empty() {
        let out = merge_all(vec![]);
        assert!(out.is_empty());
    }

    #[test]
    fn ties_break_toward_earlier_source() {
        let out = merge_all(vec![vec![5, 5], vec![5]]);
        assert_eq!(out, vec![(5, 0), (5, 0), (5, 1)]);
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut lt = LoserTree::new(vec![vec![2i64, 9].into_iter(), vec![1i64, 3].into_iter()]);
        assert_eq!(lt.peek(), Some(&1));
        assert_eq!(lt.pop(), Some((1, 1)));
        assert_eq!(lt.peek(), Some(&2));
    }

    proptest! {
        #[test]
        fn prop_merge_equals_sort(mut inputs in prop::collection::vec(
            prop::collection::vec(any::<i64>(), 0..50), 0..8)) {
            for v in &mut inputs {
                v.sort_unstable();
            }
            let mut expected: Vec<i64> = inputs.iter().flatten().copied().collect();
            expected.sort_unstable();
            let got: Vec<i64> = merge_all(inputs).into_iter().map(|(v, _)| v).collect();
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn prop_source_attribution_consistent(mut inputs in prop::collection::vec(
            prop::collection::vec(any::<i64>(), 0..30), 1..6)) {
            for v in &mut inputs {
                v.sort_unstable();
            }
            let mut counters = vec![0usize; inputs.len()];
            let expected_counts: Vec<usize> = inputs.iter().map(Vec::len).collect();
            for (_, src) in merge_all(inputs) {
                counters[src] += 1;
            }
            prop_assert_eq!(counters, expected_counts);
        }
    }
}
