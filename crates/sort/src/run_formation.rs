//! Sort phase: replacement selection with checkpoints (§5.1).
//!
//! Keys stream in as the IB scans data pages; a bounded workspace
//! (the tournament tree's leaves) emits them to sorted runs. Because
//! replacement selection outputs a key only when it is no smaller than
//! the last key output, runs average twice the workspace size — unless
//! checkpoints drain the workspace, which is precisely the trade-off
//! experiment E7 measures.

use crate::checkpoint::{RunMeta, SortCheckpoint};
use crate::item::SortItem;
use crate::run_store::RunStore;
use mohan_common::Result;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Streaming run builder.
pub struct RunFormation<T: SortItem> {
    store: Arc<RunStore<T>>,
    /// `(run_sequence, item)` min-heap: items tagged for the next run
    /// sort after every item of the current run.
    workspace: BinaryHeap<Reverse<(u64, T)>>,
    capacity: usize,
    /// Runs produced so far, in order; the last may still be open.
    runs: Vec<u64>,
    /// Sequence number of the run currently being written.
    cur_seq: u64,
    /// Highest key written to the open run.
    last_out: Option<T>,
    /// Caller-defined position of the last item pushed.
    scan_pos: u64,
}

impl<T: SortItem> RunFormation<T> {
    /// Start forming runs with a workspace of `capacity` items.
    #[must_use]
    pub fn new(store: Arc<RunStore<T>>, capacity: usize) -> RunFormation<T> {
        assert!(capacity >= 1);
        RunFormation {
            store,
            workspace: BinaryHeap::with_capacity(capacity + 1),
            capacity,
            runs: Vec::new(),
            cur_seq: 0,
            last_out: None,
            scan_pos: 0,
        }
    }

    /// Resume from a checkpoint: discard runs unknown to it, truncate
    /// every known run to its checkpointed length, and reopen the last
    /// run. The caller must re-feed input from just after
    /// [`SortCheckpoint::scan_pos`].
    pub fn resume(
        store: Arc<RunStore<T>>,
        capacity: usize,
        cp: &SortCheckpoint<T>,
    ) -> Result<RunFormation<T>> {
        Self::resume_keeping(store, capacity, cp, &[])
    }

    /// [`RunFormation::resume`] for a store shared by several sorters
    /// (the parallel scan: one run store, one `RunFormation` per
    /// worker). Runs in `preserve` belong to sibling checkpoints and
    /// survive the unknown-run cleanup; everything else this
    /// checkpoint does not know is deleted as usual.
    pub fn resume_keeping(
        store: Arc<RunStore<T>>,
        capacity: usize,
        cp: &SortCheckpoint<T>,
        preserve: &[u64],
    ) -> Result<RunFormation<T>> {
        let known: Vec<u64> = cp.runs.iter().map(|r| r.id).collect();
        for id in store.run_ids() {
            if !known.contains(&id) && !preserve.contains(&id) {
                store.delete(id);
            }
        }
        for meta in &cp.runs {
            store.truncate(meta.id, meta.len)?;
        }
        Ok(RunFormation {
            store,
            workspace: BinaryHeap::with_capacity(capacity + 1),
            capacity,
            runs: known,
            cur_seq: 0,
            last_out: cp.last_run_high.clone(),
            scan_pos: cp.scan_pos,
        })
    }

    fn open_run_id(&mut self) -> Result<u64> {
        if let Some(&last) = self.runs.last() {
            Ok(last)
        } else {
            let id = self.store.create_run();
            self.runs.push(id);
            Ok(id)
        }
    }

    /// Emit the workspace minimum to the proper run.
    fn emit_min(&mut self) -> Result<()> {
        let Some(Reverse((seq, item))) = self.workspace.pop() else {
            return Ok(());
        };
        if seq > self.cur_seq || self.runs.is_empty() {
            // Current run is exhausted (or none yet): open a new one.
            if !self.runs.is_empty() {
                let id = self.store.create_run();
                self.runs.push(id);
            }
            self.cur_seq = seq;
            self.last_out = None;
        }
        let run = self.open_run_id()?;
        self.store.append(run, std::slice::from_ref(&item))?;
        self.last_out = Some(item);
        Ok(())
    }

    /// Feed one item; `pos` is the caller's monotone scan position
    /// (e.g. the packed RID of the record the key came from).
    pub fn push(&mut self, item: T, pos: u64) -> Result<()> {
        debug_assert!(pos >= self.scan_pos, "scan positions must be monotone");
        self.scan_pos = pos;
        if self.workspace.len() >= self.capacity {
            self.emit_min()?;
        }
        let seq = match &self.last_out {
            Some(lo) if item < *lo => self.cur_seq + 1,
            _ => self.cur_seq,
        };
        self.workspace.push(Reverse((seq, item)));
        Ok(())
    }

    /// Take a checkpoint: drain the workspace ("wait for the
    /// tournament tree to output all the keys that have so far been
    /// extracted"), force every run, and return the metadata the
    /// caller must record on stable storage.
    pub fn checkpoint(&mut self) -> Result<SortCheckpoint<T>> {
        while !self.workspace.is_empty() {
            self.emit_min()?;
        }
        for &id in &self.runs {
            self.store.force_run(id)?;
        }
        let mut metas = Vec::with_capacity(self.runs.len());
        for &id in &self.runs {
            metas.push(RunMeta {
                id,
                len: self.store.len(id)?,
            });
        }
        Ok(SortCheckpoint {
            runs: metas,
            scan_pos: self.scan_pos,
            last_run_high: self.last_out.clone(),
        })
    }

    /// Finish the sort phase: drain, force, and return the run ids in
    /// creation order.
    pub fn finish(mut self) -> Result<Vec<u64>> {
        while !self.workspace.is_empty() {
            self.emit_min()?;
        }
        for &id in &self.runs {
            self.store.force_run(id)?;
        }
        Ok(self.runs)
    }

    /// Runs produced so far (the last may be open).
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Last scan position pushed.
    #[must_use]
    pub fn scan_pos(&self) -> u64 {
        self.scan_pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn collect_runs(store: &RunStore<i64>, runs: &[u64]) -> Vec<Vec<i64>> {
        runs.iter()
            .map(|&r| store.read(r, 0, usize::MAX).unwrap())
            .collect()
    }

    #[test]
    fn sorted_input_yields_single_run() {
        let store = Arc::new(RunStore::new());
        let mut rf = RunFormation::new(Arc::clone(&store), 4);
        for (i, v) in (0..100i64).enumerate() {
            rf.push(v, i as u64 + 1).unwrap();
        }
        let runs = rf.finish().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(collect_runs(&store, &runs)[0], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn reverse_input_yields_runs_of_workspace_size() {
        let store = Arc::new(RunStore::new());
        let mut rf = RunFormation::new(Arc::clone(&store), 4);
        for (i, v) in (0..16i64).rev().enumerate() {
            rf.push(v, i as u64 + 1).unwrap();
        }
        let runs = rf.finish().unwrap();
        assert_eq!(runs.len(), 4);
        for run in collect_runs(&store, &runs) {
            assert_eq!(run.len(), 4);
            assert!(run.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn random_input_runs_are_sorted_and_complete() {
        let mut rng = StdRng::seed_from_u64(7);
        let input: Vec<i64> = (0..500).map(|_| rng.random_range(-1000..1000)).collect();
        let store = Arc::new(RunStore::new());
        let mut rf = RunFormation::new(Arc::clone(&store), 16);
        for (i, &v) in input.iter().enumerate() {
            rf.push(v, i as u64 + 1).unwrap();
        }
        let runs = rf.finish().unwrap();
        let mut all: Vec<i64> = Vec::new();
        for run in collect_runs(&store, &runs) {
            assert!(run.windows(2).all(|w| w[0] <= w[1]), "run not sorted");
            all.extend(run);
        }
        let mut expected = input;
        expected.sort_unstable();
        all.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn replacement_selection_doubles_run_length() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 4000usize;
        let ws = 64usize;
        let input: Vec<i64> = (0..n)
            .map(|_| rng.random_range(i64::MIN..i64::MAX))
            .collect();
        let store = Arc::new(RunStore::new());
        let mut rf = RunFormation::new(Arc::clone(&store), ws);
        for (i, &v) in input.iter().enumerate() {
            rf.push(v, i as u64 + 1).unwrap();
        }
        let runs = rf.finish().unwrap();
        let avg = n as f64 / runs.len() as f64;
        // Knuth: expected run length ≈ 2 × workspace for random input.
        assert!(avg > 1.5 * ws as f64, "avg run length {avg} too small");
    }

    #[test]
    fn checkpoint_and_resume_lose_nothing() {
        let mut rng = StdRng::seed_from_u64(3);
        let input: Vec<i64> = (0..300).map(|_| rng.random_range(-500..500)).collect();
        let store = Arc::new(RunStore::new());
        let mut rf = RunFormation::new(Arc::clone(&store), 8);
        // Feed the first 200, checkpoint, feed 50 more (lost), crash.
        for (i, &v) in input.iter().take(200).enumerate() {
            rf.push(v, i as u64 + 1).unwrap();
        }
        let cp = rf.checkpoint().unwrap();
        assert_eq!(cp.scan_pos, 200);
        for (i, &v) in input.iter().enumerate().skip(200).take(50) {
            rf.push(v, i as u64 + 1).unwrap();
        }
        drop(rf);
        store.crash();

        // Restart: resume and re-feed from scan_pos.
        let mut rf = RunFormation::resume(Arc::clone(&store), 8, &cp).unwrap();
        for (i, &v) in input.iter().enumerate().skip(cp.scan_pos as usize) {
            rf.push(v, i as u64 + 1).unwrap();
        }
        let runs = rf.finish().unwrap();
        let mut all: Vec<i64> = Vec::new();
        for run in collect_runs(&store, &runs) {
            assert!(run.windows(2).all(|w| w[0] <= w[1]));
            all.extend(run);
        }
        all.sort_unstable();
        let mut expected = input;
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn resume_appends_to_open_run_when_keys_continue_ascending() {
        let store = Arc::new(RunStore::new());
        let mut rf = RunFormation::new(Arc::clone(&store), 4);
        for (i, v) in (0..50i64).enumerate() {
            rf.push(v, i as u64 + 1).unwrap();
        }
        let cp = rf.checkpoint().unwrap();
        drop(rf);
        store.crash();
        let mut rf = RunFormation::resume(Arc::clone(&store), 4, &cp).unwrap();
        for (i, v) in (50..100i64).enumerate() {
            rf.push(v, cp.scan_pos + i as u64 + 1).unwrap();
        }
        let runs = rf.finish().unwrap();
        // Ascending keys after restart continue the same stream.
        assert_eq!(runs.len(), 1);
        assert_eq!(collect_runs(&store, &runs)[0], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn resume_opens_new_run_when_keys_regress() {
        let store = Arc::new(RunStore::new());
        let mut rf = RunFormation::new(Arc::clone(&store), 4);
        for (i, v) in (100..150i64).enumerate() {
            rf.push(v, i as u64 + 1).unwrap();
        }
        let cp = rf.checkpoint().unwrap();
        drop(rf);
        store.crash();
        let mut rf = RunFormation::resume(Arc::clone(&store), 4, &cp).unwrap();
        for (i, v) in (0..20i64).enumerate() {
            rf.push(v, cp.scan_pos + i as u64 + 1).unwrap();
        }
        let runs = rf.finish().unwrap();
        assert_eq!(runs.len(), 2, "a smaller key must open a new stream");
    }

    #[test]
    fn resume_keeping_preserves_sibling_runs() {
        // Two workers share one store; worker A resumes without
        // destroying worker B's checkpointed runs.
        let store: Arc<RunStore<i64>> = Arc::new(RunStore::new());
        let mut a = RunFormation::new(Arc::clone(&store), 2);
        let mut b = RunFormation::new(Arc::clone(&store), 2);
        for (i, v) in [5i64, 1, 4].iter().enumerate() {
            a.push(*v, i as u64 + 1).unwrap();
        }
        for (i, v) in [9i64, 2, 8].iter().enumerate() {
            b.push(*v, i as u64 + 1).unwrap();
        }
        let cp_a = a.checkpoint().unwrap();
        let cp_b = b.checkpoint().unwrap();
        let b_runs: Vec<u64> = cp_b.runs.iter().map(|r| r.id).collect();
        // A ghost run neither checkpoint knows about must still vanish.
        let ghost = store.create_run();
        store.append(ghost, &[99]).unwrap();
        store.force_run(ghost).unwrap();
        drop((a, b));
        store.crash();
        let _a = RunFormation::resume_keeping(Arc::clone(&store), 2, &cp_a, &b_runs).unwrap();
        for id in &b_runs {
            assert!(store.read(*id, 0, 1).is_ok(), "sibling run {id} deleted");
        }
        assert!(store.read(ghost, 0, 1).is_err(), "ghost run survived");
    }

    #[test]
    fn resume_discards_unknown_runs() {
        let store: Arc<RunStore<i64>> = Arc::new(RunStore::new());
        let mut rf = RunFormation::new(Arc::clone(&store), 2);
        for (i, v) in [5i64, 1, 4, 2, 3].iter().enumerate() {
            rf.push(*v, i as u64 + 1).unwrap();
        }
        let cp = rf.checkpoint().unwrap();
        // A run created after the checkpoint must vanish on resume.
        let ghost = store.create_run();
        store.append(ghost, &[99]).unwrap();
        store.force_run(ghost).unwrap();
        store.crash();
        let rf = RunFormation::resume(Arc::clone(&store), 2, &cp).unwrap();
        assert!(!rf.runs.contains(&ghost));
        assert!(store.read(ghost, 0, 1).is_err());
    }
}
