//! Crash-aware stable storage for sorted runs.
//!
//! A run is an append-only sequence of items. Appends are volatile
//! until [`RunStore::force_run`]; a simulated crash truncates every run
//! back to its forced prefix and the restart logic (driven by the
//! checkpoint metadata) then discards runs the checkpoint never knew
//! about.
//!
//! A store can be created in **prefix-compressed** mode
//! ([`RunStore::new_compressed`]): run bytes are held as blocks of
//! encoded items where every item after a block's first stores only
//! `(shared-prefix-length, suffix)` against its predecessor's
//! encoding. Sorted runs share long key prefixes, so this is the
//! classic compressed-key-sort layout — items are decoded only when a
//! merge cursor (or the leaf loader at the end of the pipeline) reads
//! them back. The item-granular API (`append`/`read`/`truncate`/
//! `force_run`) is identical in both modes, so the §5 checkpoint
//! machinery never sees the difference.

use crate::item::SortItem;
use mohan_common::stats::Counter;
use mohan_common::{Error, Result};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Items per compression block: the first is stored in full, the rest
/// as prefix-truncated deltas. Small enough that point reads decode a
/// bounded prefix, large enough to amortize the full first item.
const BLOCK_ITEMS: usize = 16;

/// One prefix-compressed block of up to [`BLOCK_ITEMS`] items.
struct Block {
    /// `[u16 len][first-item bytes]` then per delta
    /// `[u16 shared][u16 suffix_len][suffix bytes]`.
    bytes: Vec<u8>,
    /// Items encoded in `bytes`.
    items: usize,
}

fn push_u16(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u16).to_be_bytes());
}

fn read_u16(buf: &[u8], pos: &mut usize) -> Option<usize> {
    let b: [u8; 2] = buf.get(*pos..*pos + 2)?.try_into().ok()?;
    *pos += 2;
    Some(u16::from_be_bytes(b) as usize)
}

/// Prefix-compressed item storage for one run.
struct CompressedRun {
    blocks: Vec<Block>,
    len: usize,
    /// Encoding of the last item appended, the delta base for the next.
    last_enc: Vec<u8>,
}

impl CompressedRun {
    fn new() -> CompressedRun {
        CompressedRun {
            blocks: Vec::new(),
            len: 0,
            last_enc: Vec::new(),
        }
    }

    /// Append one encoded item, returning the bytes actually stored.
    fn push_enc(&mut self, enc: &[u8]) -> usize {
        let stored = if self.len.is_multiple_of(BLOCK_ITEMS) {
            let mut bytes = Vec::with_capacity(2 + enc.len());
            push_u16(&mut bytes, enc.len());
            bytes.extend_from_slice(enc);
            let n = bytes.len();
            self.blocks.push(Block { bytes, items: 1 });
            n
        } else {
            let shared = self
                .last_enc
                .iter()
                .zip(enc)
                .take_while(|(a, b)| a == b)
                .count()
                .min(u16::MAX as usize);
            let block = self.blocks.last_mut().expect("open block");
            let before = block.bytes.len();
            push_u16(&mut block.bytes, shared);
            push_u16(&mut block.bytes, enc.len() - shared);
            block.bytes.extend_from_slice(&enc[shared..]);
            block.items += 1;
            block.bytes.len() - before
        };
        self.last_enc.clear();
        self.last_enc.extend_from_slice(enc);
        self.len += 1;
        stored
    }

    /// Decode `count` items starting at item `offset` (clamped).
    fn read<T: SortItem>(&self, offset: usize, count: usize) -> Result<Vec<T>> {
        let corrupt = || Error::Corruption("compressed run block truncated".into());
        let mut out = Vec::new();
        if offset >= self.len || count == 0 {
            return Ok(out);
        }
        let first_block = offset / BLOCK_ITEMS;
        let mut item_idx = first_block * BLOCK_ITEMS;
        let mut prev: Vec<u8> = Vec::new();
        'blocks: for block in &self.blocks[first_block..] {
            let mut pos = 0;
            for i in 0..block.items {
                if i == 0 {
                    let n = read_u16(&block.bytes, &mut pos).ok_or_else(corrupt)?;
                    let full = block.bytes.get(pos..pos + n).ok_or_else(corrupt)?;
                    pos += n;
                    prev.clear();
                    prev.extend_from_slice(full);
                } else {
                    let shared = read_u16(&block.bytes, &mut pos).ok_or_else(corrupt)?;
                    let slen = read_u16(&block.bytes, &mut pos).ok_or_else(corrupt)?;
                    let suffix = block.bytes.get(pos..pos + slen).ok_or_else(corrupt)?;
                    pos += slen;
                    if shared > prev.len() {
                        return Err(corrupt());
                    }
                    prev.truncate(shared);
                    prev.extend_from_slice(suffix);
                }
                if item_idx >= offset {
                    let mut p = 0;
                    out.push(T::decode_item(&prev, &mut p).ok_or_else(corrupt)?);
                    if out.len() == count {
                        break 'blocks;
                    }
                }
                item_idx += 1;
            }
        }
        Ok(out)
    }
}

/// Item storage for one run: plain or prefix-compressed.
enum RunData<T> {
    Raw(Vec<T>),
    Compressed(CompressedRun),
}

struct Run<T> {
    data: RunData<T>,
    durable: usize,
}

impl<T: SortItem> Run<T> {
    fn len(&self) -> usize {
        match &self.data {
            RunData::Raw(v) => v.len(),
            RunData::Compressed(c) => c.len,
        }
    }
}

/// Stable storage for the runs of one sort.
pub struct RunStore<T: SortItem> {
    runs: Mutex<HashMap<u64, Run<T>>>,
    next_id: Mutex<u64>,
    compress: bool,
    /// Items appended (volume statistic).
    pub appended: Counter,
    /// Items made durable by forces.
    pub forced: Counter,
    /// Bytes the appended items would occupy uncompressed (full
    /// [`SortItem::encode_item`] size), cumulative.
    pub raw_bytes: Counter,
    /// Bytes actually stored for appended items (equals `raw_bytes`
    /// plus per-item framing for an uncompressed store), cumulative.
    pub stored_bytes: Counter,
}

impl<T: SortItem> Default for RunStore<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: SortItem> RunStore<T> {
    /// Empty store holding runs uncompressed.
    #[must_use]
    pub fn new() -> RunStore<T> {
        Self::with_compression(false)
    }

    /// Empty store holding runs in the prefix-compressed block format.
    #[must_use]
    pub fn new_compressed() -> RunStore<T> {
        Self::with_compression(true)
    }

    /// Empty store with an explicit compression mode.
    #[must_use]
    pub fn with_compression(compress: bool) -> RunStore<T> {
        RunStore {
            runs: Mutex::new(HashMap::new()),
            next_id: Mutex::new(0),
            compress,
            appended: Counter::new(),
            forced: Counter::new(),
            raw_bytes: Counter::new(),
            stored_bytes: Counter::new(),
        }
    }

    /// Does this store hold runs prefix-compressed?
    #[must_use]
    pub fn compressed(&self) -> bool {
        self.compress
    }

    /// Create a new, empty run and return its id.
    pub fn create_run(&self) -> u64 {
        let mut id = self.next_id.lock();
        let run_id = *id;
        *id += 1;
        let data = if self.compress {
            RunData::Compressed(CompressedRun::new())
        } else {
            RunData::Raw(Vec::new())
        };
        self.runs.lock().insert(run_id, Run { data, durable: 0 });
        run_id
    }

    /// Append items to a run (volatile).
    pub fn append(&self, run: u64, items: &[T]) -> Result<()> {
        let mut runs = self.runs.lock();
        let r = runs
            .get_mut(&run)
            .ok_or_else(|| Error::NotFound(format!("run {run}")))?;
        let mut scratch = Vec::new();
        let mut raw = 0u64;
        let mut stored = 0u64;
        match &mut r.data {
            RunData::Raw(v) => {
                for item in items {
                    scratch.clear();
                    item.encode_item(&mut scratch);
                    raw += scratch.len() as u64;
                }
                stored = raw;
                v.extend_from_slice(items);
            }
            RunData::Compressed(c) => {
                for item in items {
                    scratch.clear();
                    item.encode_item(&mut scratch);
                    raw += scratch.len() as u64;
                    stored += c.push_enc(&scratch) as u64;
                }
            }
        }
        self.appended.add(items.len() as u64);
        self.raw_bytes.add(raw);
        self.stored_bytes.add(stored);
        Ok(())
    }

    /// Force a run: its current length becomes durable.
    pub fn force_run(&self, run: u64) -> Result<()> {
        let mut runs = self.runs.lock();
        let r = runs
            .get_mut(&run)
            .ok_or_else(|| Error::NotFound(format!("run {run}")))?;
        self.forced.add((r.len() - r.durable) as u64);
        r.durable = r.len();
        Ok(())
    }

    /// Current (volatile) length of a run.
    pub fn len(&self, run: u64) -> Result<u64> {
        let runs = self.runs.lock();
        let r = runs
            .get(&run)
            .ok_or_else(|| Error::NotFound(format!("run {run}")))?;
        Ok(r.len() as u64)
    }

    /// True if the store has no runs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.lock().is_empty()
    }

    /// Read `count` items starting at `offset` (for merge cursors and
    /// verification).
    pub fn read(&self, run: u64, offset: u64, count: usize) -> Result<Vec<T>> {
        let runs = self.runs.lock();
        let r = runs
            .get(&run)
            .ok_or_else(|| Error::NotFound(format!("run {run}")))?;
        match &r.data {
            RunData::Raw(v) => {
                let start = (offset as usize).min(v.len());
                let end = start.saturating_add(count).min(v.len());
                Ok(v[start..end].to_vec())
            }
            RunData::Compressed(c) => c.read((offset as usize).min(c.len), count),
        }
    }

    /// Truncate a run to `len` items (restart repositioning, §5.1-5.2).
    /// The durable mark is clamped too.
    pub fn truncate(&self, run: u64, len: u64) -> Result<()> {
        let mut runs = self.runs.lock();
        let r = runs
            .get_mut(&run)
            .ok_or_else(|| Error::NotFound(format!("run {run}")))?;
        let len = len as usize;
        match &mut r.data {
            RunData::Raw(v) => v.truncate(len),
            RunData::Compressed(c) => {
                if len < c.len {
                    // Truncation only happens on restart repositioning:
                    // decode the kept prefix and rebuild the blocks.
                    // Byte counters stay cumulative (they count writes,
                    // not occupancy), matching `appended`/`forced`.
                    let kept: Vec<T> = c.read(0, len)?;
                    let mut fresh = CompressedRun::new();
                    let mut scratch = Vec::new();
                    for item in &kept {
                        scratch.clear();
                        item.encode_item(&mut scratch);
                        fresh.push_enc(&scratch);
                    }
                    *c = fresh;
                }
            }
        }
        r.durable = r.durable.min(len);
        Ok(())
    }

    /// Delete a run (post-merge cleanup, or discarding runs younger
    /// than the checkpoint).
    pub fn delete(&self, run: u64) {
        self.runs.lock().remove(&run);
    }

    /// All current run ids (unordered).
    #[must_use]
    pub fn run_ids(&self) -> Vec<u64> {
        self.runs.lock().keys().copied().collect()
    }

    /// Simulated crash: every run reverts to its forced prefix. Run
    /// *existence* survives (creation metadata rides along with the
    /// first force; empty unforced runs simply come back empty, and the
    /// restart logic deletes unknown ones).
    pub fn crash(&self) {
        let ids = self.run_ids();
        for id in ids {
            let durable = {
                let runs = self.runs.lock();
                runs.get(&id).map(|r| r.durable)
            };
            if let Some(d) = durable {
                let _ = self.truncate(id, d as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::entry;
    use mohan_common::IndexEntry;

    #[test]
    fn append_read_roundtrip() {
        let s: RunStore<i64> = RunStore::new();
        let r = s.create_run();
        s.append(r, &[1, 2, 3]).unwrap();
        assert_eq!(s.read(r, 1, 10).unwrap(), vec![2, 3]);
        assert_eq!(s.len(r).unwrap(), 3);
    }

    #[test]
    fn crash_reverts_to_forced_prefix() {
        let s: RunStore<i64> = RunStore::new();
        let r = s.create_run();
        s.append(r, &[1, 2]).unwrap();
        s.force_run(r).unwrap();
        s.append(r, &[3, 4]).unwrap();
        s.crash();
        assert_eq!(s.read(r, 0, 10).unwrap(), vec![1, 2]);
    }

    #[test]
    fn truncate_clamps_durable() {
        let s: RunStore<i64> = RunStore::new();
        let r = s.create_run();
        s.append(r, &[1, 2, 3]).unwrap();
        s.force_run(r).unwrap();
        s.truncate(r, 1).unwrap();
        s.append(r, &[9]).unwrap();
        s.crash(); // durable was clamped to 1, the 9 was never forced
        assert_eq!(s.read(r, 0, 10).unwrap(), vec![1]);
    }

    #[test]
    fn ids_are_unique_and_delete_works() {
        let s: RunStore<i64> = RunStore::new();
        let a = s.create_run();
        let b = s.create_run();
        assert_ne!(a, b);
        s.delete(a);
        assert!(s.read(a, 0, 1).is_err());
        assert!(s.read(b, 0, 1).is_ok());
    }

    #[test]
    fn counters_track_volume() {
        let s: RunStore<i64> = RunStore::new();
        let r = s.create_run();
        s.append(r, &[1, 2, 3]).unwrap();
        s.force_run(r).unwrap();
        s.append(r, &[4]).unwrap();
        s.force_run(r).unwrap();
        assert_eq!(s.appended.get(), 4);
        assert_eq!(s.forced.get(), 4);
        assert_eq!(s.raw_bytes.get(), 32); // four 8-byte encodings
        assert_eq!(s.stored_bytes.get(), 32);
    }

    /// The compressed store must be observationally identical to the
    /// raw one through the whole item-level API.
    #[test]
    fn compressed_matches_raw_through_api() {
        let raw: RunStore<IndexEntry> = RunStore::new();
        let comp: RunStore<IndexEntry> = RunStore::new_compressed();
        assert!(!raw.compressed());
        assert!(comp.compressed());
        let items: Vec<IndexEntry> = (0..200).map(|i| entry(1000 + i / 3, i as u32, 0)).collect();
        for s in [&raw, &comp] {
            let r = s.create_run();
            // Append in uneven chunks to cross block boundaries.
            for chunk in items.chunks(7) {
                s.append(r, chunk).unwrap();
            }
            assert_eq!(s.len(r).unwrap(), items.len() as u64);
            assert_eq!(s.read(r, 0, usize::MAX).unwrap(), items);
            // Offset reads inside and across blocks.
            assert_eq!(s.read(r, 5, 3).unwrap(), items[5..8].to_vec());
            assert_eq!(s.read(r, 15, 20).unwrap(), items[15..35].to_vec());
            assert_eq!(s.read(r, 199, 10).unwrap(), items[199..].to_vec());
            assert!(s.read(r, 500, 10).unwrap().is_empty());
        }
    }

    #[test]
    fn compressed_runs_shrink_sorted_entries() {
        let raw: RunStore<IndexEntry> = RunStore::new();
        let comp: RunStore<IndexEntry> = RunStore::new_compressed();
        // Sorted entries with a long shared key prefix — the bulk-build
        // case the compressed format exists for.
        let items: Vec<IndexEntry> = (0..1000).map(|i| entry(5_000_000 + i, 1, 0)).collect();
        for s in [&raw, &comp] {
            let r = s.create_run();
            s.append(r, &items).unwrap();
            assert_eq!(s.read(r, 0, usize::MAX).unwrap(), items);
        }
        assert_eq!(raw.raw_bytes.get(), comp.raw_bytes.get());
        assert!(
            comp.stored_bytes.get() < raw.stored_bytes.get() * 3 / 4,
            "compression should shrink sorted entries: {} vs {}",
            comp.stored_bytes.get(),
            raw.stored_bytes.get()
        );
    }

    #[test]
    fn compressed_truncate_and_crash_reposition_exactly() {
        let s: RunStore<IndexEntry> = RunStore::new_compressed();
        let items: Vec<IndexEntry> = (0..100).map(|i| entry(i, i as u32, 0)).collect();
        let r = s.create_run();
        s.append(r, &items[..50]).unwrap();
        s.force_run(r).unwrap();
        s.append(r, &items[50..]).unwrap();
        s.crash();
        assert_eq!(s.read(r, 0, usize::MAX).unwrap(), items[..50].to_vec());
        // Mid-block truncation, then appends continue compressed.
        s.truncate(r, 21).unwrap();
        s.append(r, &items[21..30]).unwrap();
        assert_eq!(s.read(r, 0, usize::MAX).unwrap(), items[..30].to_vec());
    }
}
