//! Crash-aware stable storage for sorted runs.
//!
//! A run is an append-only sequence of items. Appends are volatile
//! until [`RunStore::force_run`]; a simulated crash truncates every run
//! back to its forced prefix and the restart logic (driven by the
//! checkpoint metadata) then discards runs the checkpoint never knew
//! about.

use crate::item::SortItem;
use mohan_common::stats::Counter;
use mohan_common::{Error, Result};
use parking_lot::Mutex;
use std::collections::HashMap;

struct Run<T> {
    items: Vec<T>,
    durable: usize,
}

/// Stable storage for the runs of one sort.
pub struct RunStore<T: SortItem> {
    runs: Mutex<HashMap<u64, Run<T>>>,
    next_id: Mutex<u64>,
    /// Items appended (volume statistic).
    pub appended: Counter,
    /// Items made durable by forces.
    pub forced: Counter,
}

impl<T: SortItem> Default for RunStore<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: SortItem> RunStore<T> {
    /// Empty store.
    #[must_use]
    pub fn new() -> RunStore<T> {
        RunStore {
            runs: Mutex::new(HashMap::new()),
            next_id: Mutex::new(0),
            appended: Counter::new(),
            forced: Counter::new(),
        }
    }

    /// Create a new, empty run and return its id.
    pub fn create_run(&self) -> u64 {
        let mut id = self.next_id.lock();
        let run_id = *id;
        *id += 1;
        self.runs.lock().insert(
            run_id,
            Run {
                items: Vec::new(),
                durable: 0,
            },
        );
        run_id
    }

    /// Append items to a run (volatile).
    pub fn append(&self, run: u64, items: &[T]) -> Result<()> {
        let mut runs = self.runs.lock();
        let r = runs
            .get_mut(&run)
            .ok_or_else(|| Error::NotFound(format!("run {run}")))?;
        r.items.extend_from_slice(items);
        self.appended.add(items.len() as u64);
        Ok(())
    }

    /// Force a run: its current length becomes durable.
    pub fn force_run(&self, run: u64) -> Result<()> {
        let mut runs = self.runs.lock();
        let r = runs
            .get_mut(&run)
            .ok_or_else(|| Error::NotFound(format!("run {run}")))?;
        self.forced.add((r.items.len() - r.durable) as u64);
        r.durable = r.items.len();
        Ok(())
    }

    /// Current (volatile) length of a run.
    pub fn len(&self, run: u64) -> Result<u64> {
        let runs = self.runs.lock();
        let r = runs
            .get(&run)
            .ok_or_else(|| Error::NotFound(format!("run {run}")))?;
        Ok(r.items.len() as u64)
    }

    /// True if the store has no runs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.lock().is_empty()
    }

    /// Read `count` items starting at `offset` (for merge cursors and
    /// verification).
    pub fn read(&self, run: u64, offset: u64, count: usize) -> Result<Vec<T>> {
        let runs = self.runs.lock();
        let r = runs
            .get(&run)
            .ok_or_else(|| Error::NotFound(format!("run {run}")))?;
        let start = (offset as usize).min(r.items.len());
        let end = start.saturating_add(count).min(r.items.len());
        Ok(r.items[start..end].to_vec())
    }

    /// Truncate a run to `len` items (restart repositioning, §5.1-5.2).
    /// The durable mark is clamped too.
    pub fn truncate(&self, run: u64, len: u64) -> Result<()> {
        let mut runs = self.runs.lock();
        let r = runs
            .get_mut(&run)
            .ok_or_else(|| Error::NotFound(format!("run {run}")))?;
        r.items.truncate(len as usize);
        r.durable = r.durable.min(len as usize);
        Ok(())
    }

    /// Delete a run (post-merge cleanup, or discarding runs younger
    /// than the checkpoint).
    pub fn delete(&self, run: u64) {
        self.runs.lock().remove(&run);
    }

    /// All current run ids (unordered).
    #[must_use]
    pub fn run_ids(&self) -> Vec<u64> {
        self.runs.lock().keys().copied().collect()
    }

    /// Simulated crash: every run reverts to its forced prefix. Run
    /// *existence* survives (creation metadata rides along with the
    /// first force; empty unforced runs simply come back empty, and the
    /// restart logic deletes unknown ones).
    pub fn crash(&self) {
        let mut runs = self.runs.lock();
        for r in runs.values_mut() {
            r.items.truncate(r.durable);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_read_roundtrip() {
        let s: RunStore<i64> = RunStore::new();
        let r = s.create_run();
        s.append(r, &[1, 2, 3]).unwrap();
        assert_eq!(s.read(r, 1, 10).unwrap(), vec![2, 3]);
        assert_eq!(s.len(r).unwrap(), 3);
    }

    #[test]
    fn crash_reverts_to_forced_prefix() {
        let s: RunStore<i64> = RunStore::new();
        let r = s.create_run();
        s.append(r, &[1, 2]).unwrap();
        s.force_run(r).unwrap();
        s.append(r, &[3, 4]).unwrap();
        s.crash();
        assert_eq!(s.read(r, 0, 10).unwrap(), vec![1, 2]);
    }

    #[test]
    fn truncate_clamps_durable() {
        let s: RunStore<i64> = RunStore::new();
        let r = s.create_run();
        s.append(r, &[1, 2, 3]).unwrap();
        s.force_run(r).unwrap();
        s.truncate(r, 1).unwrap();
        s.append(r, &[9]).unwrap();
        s.crash(); // durable was clamped to 1, the 9 was never forced
        assert_eq!(s.read(r, 0, 10).unwrap(), vec![1]);
    }

    #[test]
    fn ids_are_unique_and_delete_works() {
        let s: RunStore<i64> = RunStore::new();
        let a = s.create_run();
        let b = s.create_run();
        assert_ne!(a, b);
        s.delete(a);
        assert!(s.read(a, 0, 1).is_err());
        assert!(s.read(b, 0, 1).is_ok());
    }

    #[test]
    fn counters_track_volume() {
        let s: RunStore<i64> = RunStore::new();
        let r = s.create_run();
        s.append(r, &[1, 2, 3]).unwrap();
        s.force_run(r).unwrap();
        s.append(r, &[4]).unwrap();
        s.force_run(r).unwrap();
        assert_eq!(s.appended.get(), 4);
        assert_eq!(s.forced.get(), 4);
    }
}
