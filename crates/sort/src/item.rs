//! The item trait sortable by this crate.

use mohan_common::{IndexEntry, KeyValue, Rid};

/// An ordered, encodable sort item. The codec is used only for
/// checkpoint metadata (the "highest key output" recorded on stable
/// storage, §5.1), not for the runs themselves.
pub trait SortItem: Ord + Clone + Send + 'static {
    /// Serialize into `out`.
    fn encode_item(&self, out: &mut Vec<u8>);
    /// Deserialize from `buf` at `pos`, advancing it. `None` on
    /// truncated input.
    fn decode_item(buf: &[u8], pos: &mut usize) -> Option<Self>;
}

impl SortItem for IndexEntry {
    fn encode_item(&self, out: &mut Vec<u8>) {
        self.encode(out);
    }
    fn decode_item(buf: &[u8], pos: &mut usize) -> Option<Self> {
        IndexEntry::decode(buf, pos)
    }
}

impl SortItem for i64 {
    fn encode_item(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
    fn decode_item(buf: &[u8], pos: &mut usize) -> Option<Self> {
        if buf.len() < *pos + 8 {
            return None;
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&buf[*pos..*pos + 8]);
        *pos += 8;
        Some(i64::from_be_bytes(b))
    }
}

/// Convenience constructor used by tests and benches.
#[must_use]
pub fn entry(key: i64, page: u32, slot: u16) -> IndexEntry {
    IndexEntry::new(KeyValue::from_i64(key), Rid::new(page, slot))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_roundtrip() {
        let mut buf = Vec::new();
        42i64.encode_item(&mut buf);
        (-7i64).encode_item(&mut buf);
        let mut pos = 0;
        assert_eq!(i64::decode_item(&buf, &mut pos), Some(42));
        assert_eq!(i64::decode_item(&buf, &mut pos), Some(-7));
        assert_eq!(i64::decode_item(&buf, &mut pos), None);
    }

    #[test]
    fn entry_roundtrip() {
        let e = entry(5, 1, 2);
        let mut buf = Vec::new();
        e.encode_item(&mut buf);
        let mut pos = 0;
        assert_eq!(IndexEntry::decode_item(&buf, &mut pos), Some(e));
    }
}
