//! Checkpoint metadata for the two sort phases, with a byte codec so
//! the engine can store it in the stable blob area.

use crate::item::SortItem;

/// Description of one run known to a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Run id in the [`crate::run_store::RunStore`].
    pub id: u64,
    /// Length in items at checkpoint time.
    pub len: u64,
}

/// Sort-phase checkpoint (§5.1): "we checkpoint the information
/// relating to the already output sorted streams and the position of
/// the IB data scan up to which keys have already been extracted and
/// sorted. For the last sorted stream ... we also record the value of
/// the highest key that was output."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortCheckpoint<T: SortItem> {
    /// Runs that existed (and their lengths) at the checkpoint, in
    /// creation order; the last one is still open for appends.
    pub runs: Vec<RunMeta>,
    /// Caller-defined scan position: every input item with position
    /// ≤ this has been absorbed into the checkpointed runs.
    pub scan_pos: u64,
    /// Highest key written to the last (open) run, if any.
    pub last_run_high: Option<T>,
}

/// Merge-phase checkpoint (§5.2): the per-input-stream counter vector
/// plus the output position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeCheckpoint {
    /// Input run ids in leaf order.
    pub inputs: Vec<u64>,
    /// Items consumed from each input so far.
    pub counters: Vec<u64>,
    /// Items emitted (= output-file end position).
    pub emitted: u64,
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    if buf.len() < *pos + 8 {
        return None;
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[*pos..*pos + 8]);
    *pos += 8;
    Some(u64::from_be_bytes(b))
}

impl<T: SortItem> SortCheckpoint<T> {
    /// Serialize for the stable blob store.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_u64(&mut out, self.runs.len() as u64);
        for r in &self.runs {
            push_u64(&mut out, r.id);
            push_u64(&mut out, r.len);
        }
        push_u64(&mut out, self.scan_pos);
        match &self.last_run_high {
            Some(k) => {
                out.push(1);
                k.encode_item(&mut out);
            }
            None => out.push(0),
        }
        out
    }

    /// Deserialize; `None` on corrupt input.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Option<SortCheckpoint<T>> {
        let mut pos = 0;
        let n = read_u64(buf, &mut pos)? as usize;
        let mut runs = Vec::with_capacity(n);
        for _ in 0..n {
            let id = read_u64(buf, &mut pos)?;
            let len = read_u64(buf, &mut pos)?;
            runs.push(RunMeta { id, len });
        }
        let scan_pos = read_u64(buf, &mut pos)?;
        let last_run_high = match *buf.get(pos)? {
            0 => None,
            1 => {
                pos += 1;
                Some(T::decode_item(buf, &mut pos)?)
            }
            _ => return None,
        };
        Some(SortCheckpoint {
            runs,
            scan_pos,
            last_run_high,
        })
    }
}

impl MergeCheckpoint {
    /// Serialize for the stable blob store.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_u64(&mut out, self.inputs.len() as u64);
        for &i in &self.inputs {
            push_u64(&mut out, i);
        }
        for &c in &self.counters {
            push_u64(&mut out, c);
        }
        push_u64(&mut out, self.emitted);
        out
    }

    /// Deserialize; `None` on corrupt input.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Option<MergeCheckpoint> {
        let mut pos = 0;
        let n = read_u64(buf, &mut pos)? as usize;
        let mut inputs = Vec::with_capacity(n);
        for _ in 0..n {
            inputs.push(read_u64(buf, &mut pos)?);
        }
        let mut counters = Vec::with_capacity(n);
        for _ in 0..n {
            counters.push(read_u64(buf, &mut pos)?);
        }
        let emitted = read_u64(buf, &mut pos)?;
        Some(MergeCheckpoint {
            inputs,
            counters,
            emitted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_checkpoint_roundtrip() {
        let cp = SortCheckpoint::<i64> {
            runs: vec![RunMeta { id: 0, len: 100 }, RunMeta { id: 1, len: 42 }],
            scan_pos: 777,
            last_run_high: Some(-5),
        };
        assert_eq!(SortCheckpoint::decode(&cp.encode()), Some(cp));
    }

    #[test]
    fn sort_checkpoint_none_high() {
        let cp = SortCheckpoint::<i64> {
            runs: vec![],
            scan_pos: 0,
            last_run_high: None,
        };
        assert_eq!(SortCheckpoint::decode(&cp.encode()), Some(cp));
    }

    #[test]
    fn merge_checkpoint_roundtrip() {
        let cp = MergeCheckpoint {
            inputs: vec![3, 1, 4],
            counters: vec![10, 0, 7],
            emitted: 17,
        };
        assert_eq!(MergeCheckpoint::decode(&cp.encode()), Some(cp));
    }

    #[test]
    fn decode_rejects_truncation() {
        let cp = MergeCheckpoint {
            inputs: vec![1],
            counters: vec![5],
            emitted: 5,
        };
        let bytes = cp.encode();
        for cut in 0..bytes.len() {
            assert_eq!(MergeCheckpoint::decode(&bytes[..cut]), None);
        }
    }
}
