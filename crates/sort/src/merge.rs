//! Merge phase: loser-tree merge with exact repositioning (§5.2).
//!
//! Every output is attributed to the input stream it came from, a
//! per-stream counter vector records the merge position, and
//! [`Merge::resume`] repositions the cursors so that "no key is left
//! out from the merge and no key is output more than once".

use crate::checkpoint::MergeCheckpoint;
use crate::item::SortItem;
use crate::loser_tree::LoserTree;
use crate::run_store::RunStore;
use mohan_common::{Error, Result};
use std::collections::VecDeque;
use std::sync::Arc;

/// How many items a cursor reads per batch (models a buffered input
/// stream; each refill is one simulated read I/O).
const CURSOR_BATCH: usize = 256;

/// A buffered read cursor over one run.
pub struct RunCursor<T: SortItem> {
    store: Arc<RunStore<T>>,
    run: u64,
    pos: u64,
    buf: VecDeque<T>,
}

impl<T: SortItem> RunCursor<T> {
    /// Open a cursor at item position `pos`.
    #[must_use]
    pub fn new(store: Arc<RunStore<T>>, run: u64, pos: u64) -> RunCursor<T> {
        RunCursor {
            store,
            run,
            pos,
            buf: VecDeque::new(),
        }
    }
}

impl<T: SortItem> Iterator for RunCursor<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        if self.buf.is_empty() {
            let batch = self.store.read(self.run, self.pos, CURSOR_BATCH).ok()?;
            self.pos += batch.len() as u64;
            self.buf.extend(batch);
        }
        self.buf.pop_front()
    }
}

/// A restartable N-way merge.
pub struct Merge<T: SortItem> {
    tree: LoserTree<T, RunCursor<T>>,
    inputs: Vec<u64>,
    counters: Vec<u64>,
    emitted: u64,
}

impl<T: SortItem> Merge<T> {
    /// Start merging `inputs` (run ids) from their beginnings.
    #[must_use]
    pub fn new(store: &Arc<RunStore<T>>, inputs: Vec<u64>) -> Merge<T> {
        let cursors = inputs
            .iter()
            .map(|&r| RunCursor::new(Arc::clone(store), r, 0))
            .collect();
        let counters = vec![0; inputs.len()];
        Merge {
            tree: LoserTree::new(cursors),
            inputs,
            counters,
            emitted: 0,
        }
    }

    /// Resume a merge from a checkpoint: "reposition the input files to
    /// the positions indicated by the counters' values" (§5.2). The
    /// caller is responsible for truncating any output it was writing
    /// back to `cp.emitted` items.
    pub fn resume(store: &Arc<RunStore<T>>, cp: &MergeCheckpoint) -> Result<Merge<T>> {
        if cp.inputs.len() != cp.counters.len() {
            return Err(Error::Corruption("merge checkpoint arity mismatch".into()));
        }
        let cursors = cp
            .inputs
            .iter()
            .zip(&cp.counters)
            .map(|(&r, &c)| RunCursor::new(Arc::clone(store), r, c))
            .collect();
        Ok(Merge {
            tree: LoserTree::new(cursors),
            inputs: cp.inputs.clone(),
            counters: cp.counters.clone(),
            emitted: cp.emitted,
        })
    }

    /// The current merge position, suitable for stable storage.
    #[must_use]
    pub fn checkpoint(&self) -> MergeCheckpoint {
        MergeCheckpoint {
            inputs: self.inputs.clone(),
            counters: self.counters.clone(),
            emitted: self.emitted,
        }
    }

    /// Items emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Peek at the next item without consuming it.
    #[must_use]
    pub fn peek(&self) -> Option<&T> {
        self.tree.peek()
    }
}

impl<T: SortItem> Iterator for Merge<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        let (item, src) = self.tree.pop()?;
        self.counters[src] += 1;
        self.emitted += 1;
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn store_with_runs(runs: &[Vec<i64>]) -> (Arc<RunStore<i64>>, Vec<u64>) {
        let store = Arc::new(RunStore::new());
        let ids: Vec<u64> = runs
            .iter()
            .map(|r| {
                let id = store.create_run();
                store.append(id, r).unwrap();
                store.force_run(id).unwrap();
                id
            })
            .collect();
        (store, ids)
    }

    #[test]
    fn merges_to_sorted_output() {
        let (store, ids) = store_with_runs(&[vec![1, 5, 9], vec![2, 6], vec![3, 4, 7, 8]]);
        let out: Vec<i64> = Merge::new(&store, ids).collect();
        assert_eq!(out, (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn counters_track_consumption() {
        let (store, ids) = store_with_runs(&[vec![1, 3], vec![2]]);
        let mut m = Merge::new(&store, ids);
        assert_eq!(m.next(), Some(1));
        assert_eq!(m.next(), Some(2));
        let cp = m.checkpoint();
        assert_eq!(cp.counters, vec![1, 1]);
        assert_eq!(cp.emitted, 2);
    }

    #[test]
    fn resume_repositions_exactly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut runs: Vec<Vec<i64>> = (0..5)
            .map(|_| {
                let mut v: Vec<i64> = (0..100).map(|_| rng.random_range(-1000..1000)).collect();
                v.sort_unstable();
                v
            })
            .collect();
        let mut expected: Vec<i64> = runs.iter().flatten().copied().collect();
        expected.sort_unstable();

        let (store, ids) = store_with_runs(&runs);
        runs.clear();

        // Merge 180 items, checkpoint, merge 60 more that will be
        // "lost", crash, resume, merge the rest.
        let mut m = Merge::new(&store, ids);
        let mut out: Vec<i64> = Vec::new();
        for _ in 0..180 {
            out.push(m.next().unwrap());
        }
        let cp = m.checkpoint();
        for _ in 0..60 {
            m.next().unwrap(); // lost output
        }
        drop(m);
        store.crash();
        // The caller truncates its output back to cp.emitted: `out`
        // already has exactly that many items.
        assert_eq!(out.len() as u64, cp.emitted);

        let m = Merge::resume(&store, &cp).unwrap();
        out.extend(m);
        assert_eq!(out, expected, "no key lost, none duplicated");
    }

    #[test]
    fn resume_at_zero_equals_fresh_merge() {
        let (store, ids) = store_with_runs(&[vec![1, 4], vec![2, 3]]);
        let cp = MergeCheckpoint {
            inputs: ids.clone(),
            counters: vec![0, 0],
            emitted: 0,
        };
        let out: Vec<i64> = Merge::resume(&store, &cp).unwrap().collect();
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn resume_rejects_malformed_checkpoint() {
        let (store, _) = store_with_runs(&[vec![1i64]]);
        let cp = MergeCheckpoint {
            inputs: vec![0],
            counters: vec![],
            emitted: 0,
        };
        assert!(Merge::<i64>::resume(&store, &cp).is_err());
    }

    #[test]
    fn duplicate_keys_preserve_run_order() {
        // Identical keys must come out in input-run order (stability
        // for §3.2.5 side-file application).
        let (store, ids) = store_with_runs(&[vec![5, 5], vec![5], vec![5, 5, 5]]);
        let mut m = Merge::new(&store, ids);
        let mut sources = Vec::new();
        while let Some(_) = m.next() {
            // reconstruct attribution from counters delta
            sources.push(m.checkpoint().counters.clone());
        }
        // After all pops, counters equal run lengths.
        assert_eq!(m.checkpoint().counters, vec![2, 1, 3]);
        // First two outputs from run 0, then run 1, then run 2.
        assert_eq!(sources[1], vec![2, 0, 0]);
        assert_eq!(sources[2], vec![2, 1, 0]);
    }
}
