//! Decode-once WAL fan-out: a bounded ring of pre-encoded chunks.
//!
//! The per-subscriber pump used to run one [`LogManager::scan_range`]
//! and one [`crate::encode_records`] per `SubscribeWal` connection per
//! tick, so a primary slowed down linearly with every attached read
//! replica. [`WalBroadcast`] amortizes that: each newly flushed WAL
//! suffix is scanned, encoded, and trace-tagged **once** into a chunk,
//! and every subscriber tails the ring at its own cursor, fanning out
//! the same pre-encoded bytes.
//!
//! The ring is bounded by bytes. When it overflows, the oldest chunks
//! are evicted and the retained window advances; a subscriber whose
//! cursor falls behind the window is *cut loose* by the server with a
//! structured error and falls back to the replica's reconnect
//! catch-up path. Subscribers that start behind the window (e.g. a
//! fresh replica subscribing from LSN 1) are served by bounded private
//! scans until their cursor reaches a retained chunk boundary — only
//! subscribers that were *inside* the window and fell out get cut.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use mohan_common::Lsn;
use parking_lot::Mutex;

use crate::codec::encode_records;
use crate::log::LogManager;
use crate::record::LogRecord;

/// Per-chunk record-count cap: one ring chunk never holds more
/// records than one `scan_range` batch.
pub const CHUNK_MAX_RECORDS: usize = 1024;

/// Per-chunk byte cap (approximate encoded size). Enforced *before*
/// pushing a record, so a chunk only exceeds it when a single record
/// does — and that record travels alone in its own chunk (and its own
/// wire frame), instead of overshooting a full batch past the wire
/// frame limit.
pub const CHUNK_MAX_BYTES: usize = 1 << 20;

/// Per-record fixed overhead added to `payload.encoded_size()` when
/// accounting chunk bytes (tag + LSN + prev + tx, rounded up).
const REC_OVERHEAD: usize = 32;

/// One pre-encoded run of contiguous flushed records.
///
/// `records` is the [`crate::encode_records`] blob — exactly what a
/// `WalFrame` carries on the wire — and `traces` the sparse trace
/// attributions for `first_lsn..=last_lsn`. Both are computed once
/// when the chunk is cut, no matter how many subscribers consume it.
#[derive(Debug)]
pub struct WalChunk {
    /// LSN of the first record in the chunk.
    pub first_lsn: u64,
    /// LSN of the last record in the chunk (inclusive; contiguous).
    pub last_lsn: u64,
    /// Durable mark when the chunk was cut (`>= last_lsn`). Slightly
    /// stale by the time a lagging subscriber reads the chunk, which
    /// is safe: it still promises every carried record is durable.
    pub flushed: u64,
    /// Number of records in `records`.
    pub count: u32,
    /// Back-to-back encoded records ([`crate::decode_records`] form).
    pub records: Vec<u8>,
    /// Sparse `(lsn, trace_id)` attributions for the chunk's range.
    pub traces: Vec<(u64, u64)>,
    /// Consumer-owned cache slot. The server stores the fully framed
    /// wire bytes here on first send so N subscribers share one frame
    /// encode; the WAL layer never looks inside.
    pub wire_cache: OnceLock<Vec<u8>>,
}

/// What a subscriber cursor sees when it tails the ring.
#[derive(Debug)]
pub enum Tail {
    /// Nothing new: the cursor is at (or past) the ring's head.
    CaughtUp,
    /// The cursor is inside the retained window but not on a chunk
    /// boundary (or in the not-yet-chunked gap below the head): serve
    /// `cursor..=through` with a private bounded scan, after which the
    /// cursor lands on a chunk boundary.
    CatchUp {
        /// Inclusive upper LSN of the private scan.
        through: u64,
    },
    /// The cursor has fallen behind the retained window — the suffix
    /// starting at the cursor has been evicted. A subscriber that was
    /// previously inside the window gets cut loose; one that never
    /// was is served by private scans up to `retained_from - 1`.
    Behind {
        /// Oldest retained chunk boundary (the window start).
        retained_from: u64,
    },
    /// Pre-encoded chunks starting exactly at the cursor.
    Chunks(Vec<Arc<WalChunk>>),
}

struct Ring {
    chunks: VecDeque<Arc<WalChunk>>,
    /// Sum of `records.len()` over retained chunks.
    bytes: usize,
    /// First LSN not yet chunked (ring head; `flushed + 1` once full).
    next_lsn: u64,
}

/// Shared fan-out state: the chunk ring plus the counters that prove
/// the amortization (scans/encodes per flushed batch stay O(1) no
/// matter how many subscribers tail it).
pub struct WalBroadcast {
    ring: Mutex<Ring>,
    /// Lock-free mirror of `ring.next_lsn` so the idle fast path
    /// (nothing newly flushed) costs one atomic load and zero scans.
    head_hint: AtomicU64,
    max_bytes: usize,
    scans: AtomicU64,
    encodes: AtomicU64,
    encoded_bytes: AtomicU64,
    chunks_evicted: AtomicU64,
    cut_loose: AtomicU64,
    subscribers: AtomicU64,
}

impl WalBroadcast {
    /// New ring starting at `start_lsn` (normally `flushed + 1` at
    /// server start; earlier records are served by catch-up scans),
    /// retaining at most `max_bytes` of encoded chunk bytes.
    #[must_use]
    pub fn new(start_lsn: u64, max_bytes: usize) -> WalBroadcast {
        WalBroadcast {
            ring: Mutex::new(Ring {
                chunks: VecDeque::new(),
                bytes: 0,
                next_lsn: start_lsn.max(1),
            }),
            head_hint: AtomicU64::new(start_lsn.max(1)),
            max_bytes: max_bytes.max(CHUNK_MAX_BYTES),
            scans: AtomicU64::new(0),
            encodes: AtomicU64::new(0),
            encoded_bytes: AtomicU64::new(0),
            chunks_evicted: AtomicU64::new(0),
            cut_loose: AtomicU64::new(0),
            subscribers: AtomicU64::new(0),
        }
    }

    /// Pull every newly flushed record into the ring, cutting chunks.
    /// Returns whether any chunk was cut.
    ///
    /// Idle fast path: when nothing flushed since the last fill this
    /// is one atomic load — N idle subscribers cost zero scans. The
    /// ring lock is only tried, never waited on: if another pump is
    /// already filling, this one reads whatever it leaves behind.
    pub fn fill(&self, log: &LogManager) -> bool {
        let flushed = log.flushed_lsn().0;
        if flushed < self.head_hint.load(Ordering::Acquire) {
            return false;
        }
        let Some(mut ring) = self.ring.try_lock() else {
            return false;
        };
        let mut progressed = false;
        while ring.next_lsn <= flushed {
            self.scans.fetch_add(1, Ordering::Relaxed);
            let recs = log.scan_range(Lsn(ring.next_lsn - 1), CHUNK_MAX_RECORDS);
            let mut pending: Vec<Arc<LogRecord>> = Vec::new();
            let mut pending_bytes = 0usize;
            for rec in recs {
                if rec.lsn.0 > flushed {
                    break;
                }
                let size = rec.payload.encoded_size() + REC_OVERHEAD;
                // Cap *before* push: an oversized record only ever
                // starts a fresh chunk, which then holds it alone.
                if !pending.is_empty() && pending_bytes + size > CHUNK_MAX_BYTES {
                    self.cut(&mut ring, &mut pending, flushed, log);
                    pending_bytes = 0;
                }
                pending_bytes += size;
                pending.push(rec);
            }
            if pending.is_empty() {
                break;
            }
            self.cut(&mut ring, &mut pending, flushed, log);
            progressed = true;
        }
        self.head_hint.store(ring.next_lsn, Ordering::Release);
        progressed
    }

    /// Cut `pending` into a chunk: encode once, trace-tag once, push,
    /// and evict from the front past the byte budget.
    fn cut(
        &self,
        ring: &mut Ring,
        pending: &mut Vec<Arc<LogRecord>>,
        flushed: u64,
        log: &LogManager,
    ) {
        let first = pending.first().expect("cut of empty batch").lsn.0;
        let last = pending.last().expect("cut of empty batch").lsn.0;
        let records = encode_records(pending.iter().map(|r| &**r));
        self.encodes.fetch_add(1, Ordering::Relaxed);
        self.encoded_bytes
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        let chunk = Arc::new(WalChunk {
            first_lsn: first,
            last_lsn: last,
            flushed,
            count: pending.len() as u32,
            records,
            traces: log.trace_tags_for(first, last),
            wire_cache: OnceLock::new(),
        });
        ring.bytes += chunk.records.len();
        ring.chunks.push_back(chunk);
        ring.next_lsn = last + 1;
        pending.clear();
        // Always keep the newest chunk so live tails never starve.
        while ring.bytes > self.max_bytes && ring.chunks.len() > 1 {
            let old = ring.chunks.pop_front().expect("len > 1");
            ring.bytes -= old.records.len();
            self.chunks_evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// What `cursor` (next wanted LSN) sees: pre-encoded chunks when
    /// it sits on a retained boundary, a bounded private-scan target
    /// when inside the window but unaligned, [`Tail::Behind`] when the
    /// window has moved past it, or [`Tail::CaughtUp`].
    #[must_use]
    pub fn tail_from(&self, cursor: u64, max_chunks: usize) -> Tail {
        let ring = self.ring.lock();
        if cursor >= ring.next_lsn {
            return Tail::CaughtUp;
        }
        let Some(front) = ring.chunks.front() else {
            // Nothing retained yet: everything below the head is
            // scan-only territory.
            return Tail::Behind {
                retained_from: ring.next_lsn,
            };
        };
        if cursor < front.first_lsn {
            return Tail::Behind {
                retained_from: front.first_lsn,
            };
        }
        let idx = ring.chunks.partition_point(|c| c.first_lsn < cursor);
        match ring.chunks.get(idx) {
            Some(c) if c.first_lsn == cursor => Tail::Chunks(
                ring.chunks
                    .iter()
                    .skip(idx)
                    .take(max_chunks.max(1))
                    .cloned()
                    .collect(),
            ),
            Some(c) => Tail::CatchUp {
                through: c.first_lsn - 1,
            },
            // Mid-way through the newest chunk: scan to its end, then
            // the cursor is at the head.
            None => Tail::CatchUp {
                through: ring.next_lsn - 1,
            },
        }
    }

    /// Oldest retained chunk boundary (== ring head when empty).
    #[must_use]
    pub fn window_start(&self) -> u64 {
        let ring = self.ring.lock();
        ring.chunks.front().map_or(ring.next_lsn, |c| c.first_lsn)
    }

    /// First LSN not yet chunked.
    #[must_use]
    pub fn head_lsn(&self) -> u64 {
        self.head_hint.load(Ordering::Acquire)
    }

    /// Retained chunk count.
    #[must_use]
    pub fn ring_chunks(&self) -> u64 {
        self.ring.lock().chunks.len() as u64
    }

    /// Retained encoded bytes.
    #[must_use]
    pub fn ring_bytes(&self) -> u64 {
        self.ring.lock().bytes as u64
    }

    /// Cumulative `scan_range` calls made filling the ring.
    #[must_use]
    pub fn scans(&self) -> u64 {
        self.scans.load(Ordering::Relaxed)
    }

    /// Cumulative chunk encodes (one per cut chunk).
    #[must_use]
    pub fn encodes(&self) -> u64 {
        self.encodes.load(Ordering::Relaxed)
    }

    /// Cumulative encoded bytes over all cut chunks.
    #[must_use]
    pub fn encoded_bytes(&self) -> u64 {
        self.encoded_bytes.load(Ordering::Relaxed)
    }

    /// Cumulative chunks evicted off the window's tail.
    #[must_use]
    pub fn chunks_evicted(&self) -> u64 {
        self.chunks_evicted.load(Ordering::Relaxed)
    }

    /// Cumulative subscribers cut loose for falling behind the window.
    #[must_use]
    pub fn cut_loose(&self) -> u64 {
        self.cut_loose.load(Ordering::Relaxed)
    }

    /// Record one cut-loose event (called by the serving layer).
    pub fn note_cut_loose(&self) {
        self.cut_loose.fetch_add(1, Ordering::Relaxed);
    }

    /// Current live `SubscribeWal` streams (serving-layer maintained).
    #[must_use]
    pub fn subscribers(&self) -> u64 {
        self.subscribers.load(Ordering::Acquire)
    }

    /// Note a subscriber attach.
    pub fn subscriber_attached(&self) {
        self.subscribers.fetch_add(1, Ordering::AcqRel);
    }

    /// Note a subscriber detach.
    pub fn subscriber_detached(&self) {
        self.subscribers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{LogPayload, RecKind};
    use mohan_common::TxId;

    fn filler(n: usize) -> LogPayload {
        LogPayload::CatalogUpdate {
            bytes: vec![0xAB; n],
        }
    }

    fn append_n(log: &LogManager, n: usize, payload_bytes: usize) {
        for _ in 0..n {
            log.append(TxId(1), Lsn::NULL, RecKind::RedoOnly, filler(payload_bytes));
        }
        log.flush_all();
    }

    #[test]
    fn fill_is_idle_cheap_and_chunks_contiguously() {
        let log = LogManager::new();
        let bc = WalBroadcast::new(log.flushed_lsn().0 + 1, 1 << 22);
        assert!(!bc.fill(&log), "nothing flushed yet");
        assert_eq!(bc.scans(), 0, "idle fill must not scan");

        append_n(&log, 10, 16);
        assert!(bc.fill(&log));
        let scans_after = bc.scans();
        assert!(scans_after >= 1);
        // Idle again: no new flush, no new scans.
        for _ in 0..100 {
            assert!(!bc.fill(&log));
        }
        assert_eq!(bc.scans(), scans_after, "idle fills must cost zero scans");

        // Chunks cover 1..=10 contiguously.
        let Tail::Chunks(chunks) = bc.tail_from(1, 16) else {
            panic!("cursor 1 should sit on the first chunk boundary");
        };
        let mut next = 1;
        let mut total = 0u32;
        for c in &chunks {
            assert_eq!(c.first_lsn, next, "chunks must be contiguous");
            assert!(c.last_lsn >= c.first_lsn);
            assert!(c.flushed >= c.last_lsn);
            let decoded =
                crate::decode_records(&c.records, c.count as usize).expect("chunk blob decodes");
            assert_eq!(decoded.len(), c.count as usize);
            assert_eq!(decoded.first().expect("non-empty").lsn.0, c.first_lsn);
            assert_eq!(decoded.last().expect("non-empty").lsn.0, c.last_lsn);
            next = c.last_lsn + 1;
            total += c.count;
        }
        assert_eq!(total, 10);
        assert!(matches!(bc.tail_from(11, 16), Tail::CaughtUp));
    }

    /// Satellite regression: the old pump checked the byte cap *after*
    /// pushing, so a catalog-snapshot-sized record could ride along
    /// with a full batch and push the frame past the wire limit. Here
    /// an oversized record must travel alone in its own chunk, and
    /// every other chunk must respect the cap.
    #[test]
    fn oversized_catalog_record_travels_alone() {
        let log = LogManager::new();
        let bc = WalBroadcast::new(1, 1 << 26);
        // Half-cap records so the cap math is exercised, then a
        // catalog snapshot bigger than a whole chunk, then more.
        append_n(&log, 3, CHUNK_MAX_BYTES / 2);
        append_n(&log, 1, 2 * CHUNK_MAX_BYTES);
        append_n(&log, 3, CHUNK_MAX_BYTES / 2);
        bc.fill(&log);

        let Tail::Chunks(chunks) = bc.tail_from(1, 64) else {
            panic!("expected chunks");
        };
        let mut covered = 0u32;
        for c in &chunks {
            if c.count > 1 {
                assert!(
                    c.records.len() <= CHUNK_MAX_BYTES + REC_OVERHEAD + 16,
                    "multi-record chunk {} exceeds cap: {} bytes",
                    c.first_lsn,
                    c.records.len()
                );
            }
            if c.records.len() > CHUNK_MAX_BYTES {
                assert_eq!(c.count, 1, "oversized chunk must hold exactly one record");
            }
            covered += c.count;
        }
        assert_eq!(covered, 7, "all records covered");
        let big = chunks
            .iter()
            .find(|c| c.records.len() > CHUNK_MAX_BYTES)
            .expect("oversized chunk present");
        assert_eq!(big.first_lsn, big.last_lsn);
    }

    #[test]
    fn eviction_advances_window_and_behind_cursors_see_it() {
        let log = LogManager::new();
        // Tiny ring: barely over one chunk.
        let bc = WalBroadcast::new(1, CHUNK_MAX_BYTES);
        append_n(&log, 64, CHUNK_MAX_BYTES / 8);
        bc.fill(&log);
        assert!(bc.chunks_evicted() > 0, "tiny ring must evict");
        let start = bc.window_start();
        assert!(start > 1, "window must have advanced past LSN 1");
        match bc.tail_from(1, 16) {
            Tail::Behind { retained_from } => assert_eq!(retained_from, start),
            other => panic!("cursor 1 should be behind the window, got {other:?}"),
        }
        // A cursor on the window start still reads chunks.
        assert!(matches!(bc.tail_from(start, 16), Tail::Chunks(_)));
    }

    #[test]
    fn unaligned_cursor_gets_bounded_catchup_target() {
        let log = LogManager::new();
        let bc = WalBroadcast::new(1, 1 << 26);
        append_n(&log, 20, 16);
        bc.fill(&log);
        // All 20 tiny records land in one chunk (1..=20); a cursor in
        // the middle must be told to scan to the chunk's end.
        match bc.tail_from(5, 16) {
            Tail::CatchUp { through } => assert_eq!(through, 20),
            other => panic!("expected CatchUp, got {other:?}"),
        }
        // After the scan the cursor is at the head.
        assert!(matches!(bc.tail_from(21, 16), Tail::CaughtUp));
    }

    #[test]
    fn fill_ships_only_the_flushed_prefix() {
        let log = LogManager::new();
        let bc = WalBroadcast::new(1, 1 << 22);
        append_n(&log, 5, 16);
        // Three more appended but NOT flushed.
        for _ in 0..3 {
            log.append(TxId(1), Lsn::NULL, RecKind::RedoOnly, filler(16));
        }
        bc.fill(&log);
        assert_eq!(bc.head_lsn(), 6, "ring head stops at flushed + 1");
        let Tail::Chunks(chunks) = bc.tail_from(1, 16) else {
            panic!("expected chunks");
        };
        assert_eq!(chunks.iter().map(|c| u64::from(c.count)).sum::<u64>(), 5);
        log.flush_all();
        bc.fill(&log);
        assert_eq!(bc.head_lsn(), 9);
    }
}
