//! ARIES-style write-ahead logging.
//!
//! The paper assumes WAL recovery as in ARIES \[MHLPS92\] with the
//! refinements of ARIES/IM \[MoLe92\]: a log record can carry *both*
//! undo and redo information, *only redo* (e.g. side-file appends), or
//! *only undo* — the last being the paper's §2.1.1 trick where a
//! transaction logs an insert it never performed (because the index
//! builder already inserted the key) purely so a later rollback will
//! remove that key.
//!
//! Modules:
//! * [`record`] — typed log records and payloads.
//! * [`codec`] — byte encoding of records, for WAL stream replication.
//! * [`broadcast`] — decode-once fan-out: a bounded ring of
//!   pre-encoded chunks shared by every WAL subscriber.
//! * [`log`] — the log manager: append/flush, flushed-prefix crash
//!   semantics, per-transaction `prev_lsn` chains.
//! * [`recovery`] — the analysis / redo / undo driver, generic over a
//!   [`recovery::RecoveryTarget`] implemented by the engine. The same
//!   undo machinery performs normal transaction rollback, including
//!   partial rollbacks, writing compensation log records (CLRs).

#![warn(missing_docs)]

pub mod broadcast;
pub mod codec;
pub mod log;
pub mod record;
pub mod recovery;

pub use broadcast::{Tail, WalBroadcast, WalChunk};
pub use codec::{decode_record, decode_records, encode_record, encode_records};
pub use log::{LogManager, WalStats};
pub use record::{LogPayload, LogRecord, RecKind, SideFileOp};
pub use recovery::{
    checkpoint_redo_start, recover, rollback_tx, AnalysisResult, RecoveryStats, RecoveryTarget,
};
