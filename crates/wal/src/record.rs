//! Typed log records.

use mohan_common::{IndexEntry, IndexId, Lsn, Rid, TableId, TxId};

/// Which halves of the undo/redo information a record carries (§1.1:
//  undo-redo, redo-only and undo-only log records).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecKind {
    /// Normal forward-processing record: redone at restart, undone at
    /// rollback.
    UndoRedo,
    /// Redone at restart, skipped by rollback (e.g. side-file appends,
    /// commit records).
    RedoOnly,
    /// Skipped at restart redo, honoured by rollback. The paper's
    /// §2.1.1 "transaction logs an insert the IB already performed".
    UndoOnly,
    /// Compensation log record written *by* undo; redo-only by
    /// construction and carries the address of the next record to undo
    /// so rollback never undoes the same update twice.
    Clr {
        /// Next record in the transaction's chain still needing undo.
        undo_next: Lsn,
    },
}

/// One logical operation appended to a side-file (§3.1): `<operation,
/// key>` where operation is insert or delete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SideFileOp {
    /// `true` = key insert, `false` = key delete.
    pub insert: bool,
    /// The `<key value, RID>` entry affected.
    pub entry: IndexEntry,
}

impl SideFileOp {
    /// The inverse operation (used when rollback compensates a
    /// side-file entry by appending its opposite, §3.2.3).
    #[must_use]
    pub fn inverse(&self) -> SideFileOp {
        SideFileOp {
            insert: !self.insert,
            entry: self.entry.clone(),
        }
    }

    /// Approximate encoded size in bytes (for log-volume accounting).
    #[must_use]
    pub fn encoded_size(&self) -> usize {
        1 + self.entry.encoded_size()
    }
}

/// The logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogPayload {
    /// Transaction start.
    TxBegin,
    /// Transaction commit (forces the log).
    TxCommit,
    /// Transaction chose to roll back; undo follows.
    TxAbort,
    /// Rollback finished; transaction is gone.
    TxEnd,

    /// Record inserted into a heap data page. `visible_indexes` is the
    /// count of indexes visible to this transaction at the time of the
    /// data-page update — the extra bookkeeping SF requires for
    /// rollback across index-visibility changes (§3.1.2, Figure 2).
    HeapInsert {
        /// Table updated.
        table: TableId,
        /// RID assigned to the record.
        rid: Rid,
        /// Record image (redo information).
        data: Vec<u8>,
        /// Count of indexes visible at update time.
        visible_indexes: u32,
    },
    /// Record deleted from a heap data page; `old` is the before-image
    /// (undo information).
    HeapDelete {
        /// Table updated.
        table: TableId,
        /// RID of the deleted record.
        rid: Rid,
        /// Before-image.
        old: Vec<u8>,
        /// Count of indexes visible at update time.
        visible_indexes: u32,
    },
    /// Record updated in place.
    HeapUpdate {
        /// Table updated.
        table: TableId,
        /// RID of the record.
        rid: Rid,
        /// Before-image.
        old: Vec<u8>,
        /// After-image.
        new: Vec<u8>,
        /// Count of indexes visible at update time.
        visible_indexes: u32,
    },

    /// Key inserted into an index (or, with [`RecKind::UndoOnly`],
    /// *found already inserted by the IB* and merely claimed for undo
    /// purposes, §2.1.1).
    IndexInsert {
        /// Index updated.
        index: IndexId,
        /// Entry inserted.
        entry: IndexEntry,
    },
    /// Existing key marked pseudo-deleted (§2.1.2).
    IndexPseudoDelete {
        /// Index updated.
        index: IndexId,
        /// Entry marked.
        entry: IndexEntry,
    },
    /// Deleter found no key and planted a pseudo-deleted tombstone so
    /// a racing IB insert will be rejected (§2.2.3, delete case 2).
    IndexInsertTombstone {
        /// Index updated.
        index: IndexId,
        /// Tombstone entry.
        entry: IndexEntry,
    },
    /// Pseudo-deleted key put back in the inserted state (an insert
    /// found its exact entry pseudo-deleted, or rollback of a delete).
    IndexReactivate {
        /// Index updated.
        index: IndexId,
        /// Entry reactivated.
        entry: IndexEntry,
    },
    /// Key physically removed (garbage collection of pseudo-deleted
    /// keys, or side-file delete application on a not-yet-readable
    /// index).
    IndexPhysicalDelete {
        /// Index updated.
        index: IndexId,
        /// Entry removed.
        entry: IndexEntry,
        /// Whether the removed entry was pseudo-deleted (undo must
        /// restore the exact state).
        was_pseudo: bool,
    },
    /// The NSF index builder's multi-key insert: one log record for all
    /// keys placed on one leaf ("one log record for multiple keys would
    /// save the pathlength of a log call for each key", §2.3.1).
    IndexBulkInsert {
        /// Index being built.
        index: IndexId,
        /// Entries inserted (all on one leaf).
        entries: Vec<IndexEntry>,
    },

    /// Compensation for an [`LogPayload::IndexBulkInsert`]: the index
    /// builder's uncommitted multi-key insert is removed wholesale
    /// when the IB transaction loses at restart.
    IndexBulkRemove {
        /// Index being built.
        index: IndexId,
        /// Entries removed.
        entries: Vec<IndexEntry>,
    },

    /// Append of `<operation, key>` to the side-file of an index under
    /// SF construction. Redo-only: the side-file is reconstructed from
    /// the log at restart.
    SideFileAppend {
        /// Index being built.
        index: IndexId,
        /// The appended operation.
        op: SideFileOp,
    },

    /// Engine checkpoint marker (all page caches were forced when this
    /// was logged). `redo_start` is the LSN restart redo may begin
    /// *after*: the flushed watermark at checkpoint time, lowered to
    /// cover the first logged append of any still-open side-file
    /// (side-file contents are volatile and rebuilt purely from redo,
    /// so their logged history must stay inside the redo window).
    Checkpoint {
        /// Redo may start with LSN `redo_start + 1`.
        redo_start: Lsn,
    },

    /// Full catalog snapshot (the same bytes `persist_catalog` writes
    /// to the catalog blob). Redo-only, written under TxId(0) whenever
    /// the catalog changes, and a no-op on the primary's own restart —
    /// the blob store is authoritative there. A replica replaying a
    /// shipped log applies it instead: it is how index DDL (register /
    /// state flips / drop) crosses the wire.
    CatalogUpdate {
        /// Encoded catalog (see `Db::persist_catalog`).
        bytes: Vec<u8>,
    },
}

impl LogPayload {
    /// Approximate encoded size in bytes. The simulation keeps records
    /// as structs, but benches report log *volume*, so every payload
    /// knows what it would cost on disk (tag + fields).
    #[must_use]
    pub fn encoded_size(&self) -> usize {
        let body = match self {
            LogPayload::TxBegin
            | LogPayload::TxCommit
            | LogPayload::TxAbort
            | LogPayload::TxEnd => 0,
            LogPayload::HeapInsert { data, .. } => 10 + data.len() + 4,
            LogPayload::HeapDelete { old, .. } => 10 + old.len() + 4,
            LogPayload::HeapUpdate { old, new, .. } => 10 + old.len() + new.len() + 4,
            LogPayload::IndexInsert { entry, .. }
            | LogPayload::IndexPseudoDelete { entry, .. }
            | LogPayload::IndexInsertTombstone { entry, .. }
            | LogPayload::IndexReactivate { entry, .. }
            | LogPayload::IndexPhysicalDelete { entry, .. } => 4 + entry.encoded_size(),
            LogPayload::IndexBulkInsert { entries, .. }
            | LogPayload::IndexBulkRemove { entries, .. } => {
                4 + entries.iter().map(IndexEntry::encoded_size).sum::<usize>()
            }
            LogPayload::SideFileAppend { op, .. } => 4 + op.encoded_size(),
            LogPayload::Checkpoint { .. } => 8,
            LogPayload::CatalogUpdate { bytes } => 4 + bytes.len(),
        };
        // Tag + LSN + prev LSN + tx id.
        body + 1 + 8 + 8 + 8
    }

    /// True for payloads that change an index tree.
    #[must_use]
    pub fn is_index_op(&self) -> bool {
        matches!(
            self,
            LogPayload::IndexInsert { .. }
                | LogPayload::IndexPseudoDelete { .. }
                | LogPayload::IndexInsertTombstone { .. }
                | LogPayload::IndexReactivate { .. }
                | LogPayload::IndexPhysicalDelete { .. }
                | LogPayload::IndexBulkInsert { .. }
                | LogPayload::IndexBulkRemove { .. }
        )
    }
}

/// A sequenced log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// This record's log sequence number.
    pub lsn: Lsn,
    /// Transaction that wrote it (the index builder logs under its own
    /// transaction id).
    pub tx: TxId,
    /// Previous record of the same transaction ([`Lsn::NULL`] for the
    /// first).
    pub prev: Lsn,
    /// Undo/redo shape.
    pub kind: RecKind,
    /// The operation.
    pub payload: LogPayload,
}

impl LogRecord {
    /// Does restart redo re-apply this record?
    #[must_use]
    pub fn is_redoable(&self) -> bool {
        !matches!(self.kind, RecKind::UndoOnly)
    }

    /// Does rollback undo this record?
    #[must_use]
    pub fn is_undoable(&self) -> bool {
        matches!(self.kind, RecKind::UndoRedo | RecKind::UndoOnly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mohan_common::KeyValue;

    fn entry() -> IndexEntry {
        IndexEntry::new(KeyValue::from_i64(1), Rid::new(1, 1))
    }

    #[test]
    fn kinds_partition_redo_undo() {
        let mk = |kind| LogRecord {
            lsn: Lsn(1),
            tx: TxId(1),
            prev: Lsn::NULL,
            kind,
            payload: LogPayload::TxBegin,
        };
        assert!(mk(RecKind::UndoRedo).is_redoable() && mk(RecKind::UndoRedo).is_undoable());
        assert!(mk(RecKind::RedoOnly).is_redoable() && !mk(RecKind::RedoOnly).is_undoable());
        assert!(!mk(RecKind::UndoOnly).is_redoable() && mk(RecKind::UndoOnly).is_undoable());
        let clr = mk(RecKind::Clr { undo_next: Lsn(5) });
        assert!(clr.is_redoable() && !clr.is_undoable());
    }

    #[test]
    fn side_file_op_inverse() {
        let op = SideFileOp {
            insert: true,
            entry: entry(),
        };
        let inv = op.inverse();
        assert!(!inv.insert);
        assert_eq!(inv.entry, op.entry);
        assert_eq!(inv.inverse(), op);
    }

    #[test]
    fn sizes_scale_with_content() {
        let small = LogPayload::IndexInsert {
            index: IndexId(1),
            entry: entry(),
        };
        let bulk = LogPayload::IndexBulkInsert {
            index: IndexId(1),
            entries: vec![entry(); 10],
        };
        assert!(bulk.encoded_size() < 10 * small.encoded_size());
        assert!(bulk.encoded_size() > small.encoded_size());
    }

    #[test]
    fn index_op_classification() {
        assert!(LogPayload::IndexInsert {
            index: IndexId(1),
            entry: entry()
        }
        .is_index_op());
        assert!(!LogPayload::TxBegin.is_index_op());
        assert!(!LogPayload::SideFileAppend {
            index: IndexId(1),
            op: SideFileOp {
                insert: true,
                entry: entry()
            }
        }
        .is_index_op());
    }
}
