//! Analysis / redo / undo: the restart-recovery driver, also used for
//! normal transaction rollback.
//!
//! The driver is generic over a [`RecoveryTarget`] (implemented by the
//! engine crate) so the WAL layer stays free of heap/B-tree knowledge.
//! Redo *repeats history* — every redoable record is offered to the
//! target, which applies it idempotently (heap pages via page-LSN
//! comparison, index operations via logical absolute ops; see
//! `DESIGN.md` §2). Undo walks each loser transaction's `prev_lsn`
//! chain backwards, writing compensation log records (CLRs) whose
//! `undo_next` pointer guarantees no update is undone twice even if
//! recovery itself crashes.

use crate::log::LogManager;
use crate::record::{LogPayload, LogRecord, RecKind};
use mohan_common::{Lsn, Result, TxId};
use std::collections::HashMap;

/// What the engine must provide for redo and undo.
pub trait RecoveryTarget {
    /// Re-apply the effect of `rec` idempotently.
    fn redo(&self, rec: &LogRecord) -> Result<()>;

    /// Undo the effect of `rec` on behalf of its transaction's
    /// rollback: apply the inverse, append a CLR with
    /// `kind = Clr { undo_next }` and `prev = clr_prev`, and return the
    /// CLR's LSN (the transaction's new last LSN).
    fn undo(&self, rec: &LogRecord, clr_prev: Lsn, undo_next: Lsn) -> Result<Lsn>;
}

/// Outcome of the analysis pass.
#[derive(Debug, Default)]
pub struct AnalysisResult {
    /// In-flight ("loser") transactions at the crash, with the LSN of
    /// their newest log record.
    pub losers: HashMap<TxId, Lsn>,
    /// Records scanned.
    pub scanned: u64,
}

/// Records per [`LogManager::scan_range`] batch during analysis and
/// redo, bounding the clone burst a long log would otherwise cause.
const SCAN_BATCH: usize = 4096;

/// Scan the whole log and find loser transactions. Analysis always
/// starts from the log head — a loser's `TxBegin` may predate the last
/// checkpoint — but walks in bounded batches.
#[must_use]
pub fn analyze(log: &LogManager) -> AnalysisResult {
    let mut res = AnalysisResult::default();
    let mut cur = Lsn::NULL;
    loop {
        let batch = log.scan_range(cur, SCAN_BATCH);
        let Some(last) = batch.last() else {
            break;
        };
        cur = last.lsn;
        for rec in &batch {
            res.scanned += 1;
            match rec.payload {
                LogPayload::TxBegin => {
                    res.losers.insert(rec.tx, rec.lsn);
                }
                LogPayload::TxCommit | LogPayload::TxEnd => {
                    res.losers.remove(&rec.tx);
                }
                _ => {
                    if let Some(last) = res.losers.get_mut(&rec.tx) {
                        *last = rec.lsn;
                    }
                }
            }
        }
    }
    res
}

/// Redo start point recorded by the newest [`LogPayload::Checkpoint`]
/// in the log ([`Lsn::NULL`] — the log head — when none exists): redo
/// may begin with the record *after* the returned LSN, because the
/// checkpoint forced every page up to it and its `redo_start` was
/// already lowered to cover any open side-file's logged history.
/// Found by walking backwards from the tail, so the cost is bounded by
/// the post-checkpoint suffix the caller is about to redo anyway.
#[must_use]
pub fn checkpoint_redo_start(log: &LogManager) -> Lsn {
    let mut cur = log.tail_lsn();
    while cur.is_valid() {
        if let Some(rec) = log.get(cur) {
            if let LogPayload::Checkpoint { redo_start } = rec.payload {
                return redo_start;
            }
        }
        cur = Lsn(cur.0 - 1);
    }
    Lsn::NULL
}

/// Undo one transaction's chain from `last` down to (but not past)
/// `upto`; `upto = Lsn::NULL` means a complete rollback. Returns the
/// transaction's new last LSN (tail CLR, or `last` if nothing was
/// undoable).
pub fn rollback_tx<T: RecoveryTarget>(
    log: &LogManager,
    target: &T,
    tx: TxId,
    last: Lsn,
    upto: Lsn,
) -> Result<Lsn> {
    let mut cur = last;
    let mut new_last = last;
    while cur.is_valid() && cur > upto {
        let Some(rec) = log.get(cur) else {
            break;
        };
        debug_assert_eq!(rec.tx, tx, "undo chain crossed transactions");
        match rec.kind {
            RecKind::Clr { undo_next } => {
                cur = undo_next;
            }
            _ if rec.is_undoable() => {
                new_last = target.undo(&rec, new_last, rec.prev)?;
                cur = rec.prev;
            }
            _ => {
                cur = rec.prev;
            }
        }
    }
    Ok(new_last)
}

/// Statistics from a completed restart recovery.
#[derive(Debug, Default)]
pub struct RecoveryStats {
    /// Records seen by the analysis pass.
    pub analyzed: u64,
    /// Records offered to redo.
    pub redone: u64,
    /// Loser transactions rolled back.
    pub losers: u64,
    /// Where redo began (the last checkpoint's `redo_start`, or
    /// [`Lsn::NULL`] when the log had no checkpoint).
    pub redo_start: Lsn,
}

/// Full restart recovery: analysis, redo (repeat history), then a
/// single merged undo pass over all losers in globally descending LSN
/// order (true ARIES order — interleaved losers' inverses apply
/// newest-first), ending each loser with `TxEnd`.
pub fn recover<T: RecoveryTarget>(log: &LogManager, target: &T) -> Result<RecoveryStats> {
    let analysis = analyze(log);
    let redo_start = checkpoint_redo_start(log);
    let mut stats = RecoveryStats {
        analyzed: analysis.scanned,
        redo_start,
        ..RecoveryStats::default()
    };

    // Redo repeats history from the last checkpoint's redo window, not
    // the log head: the checkpoint forced every page, so earlier
    // records can only re-apply as no-ops — skipping them is what
    // keeps restart cost proportional to work since the checkpoint.
    let mut cur = redo_start;
    loop {
        let batch = log.scan_range(cur, SCAN_BATCH);
        let Some(last) = batch.last() else {
            break;
        };
        cur = last.lsn;
        for rec in &batch {
            if rec.is_redoable() {
                target.redo(rec)?;
                stats.redone += 1;
            }
        }
    }

    // Per-loser cursors: (next record to consider, tx's current last
    // LSN for CLR chaining).
    let mut cursors: HashMap<TxId, (Lsn, Lsn)> = analysis
        .losers
        .iter()
        .map(|(&tx, &last)| (tx, (last, last)))
        .collect();
    stats.losers = cursors.len() as u64;
    while let Some((&tx, &(cur, _))) = cursors.iter().max_by_key(|&(_, &(cur, _))| cur) {
        if !cur.is_valid() {
            let (_, last) = cursors.remove(&tx).expect("cursor exists");
            log.append(tx, last, RecKind::RedoOnly, LogPayload::TxEnd);
            continue;
        }
        let Some(rec) = log.get(cur) else {
            cursors.get_mut(&tx).expect("cursor").0 = Lsn::NULL;
            continue;
        };
        let slot = cursors.get_mut(&tx).expect("cursor");
        match rec.kind {
            RecKind::Clr { undo_next } => slot.0 = undo_next,
            _ if rec.is_undoable() => {
                let clr_prev = slot.1;
                // Release the borrow before calling into the target.
                let undo_next = rec.prev;
                let new_last = target.undo(&rec, clr_prev, undo_next)?;
                let slot = cursors.get_mut(&tx).expect("cursor");
                slot.0 = rec.prev;
                slot.1 = new_last;
            }
            _ => slot.0 = rec.prev,
        }
    }
    log.flush_all();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// A toy target: state is a map name -> i64; payload `Checkpoint`
    /// is abused as noise; `HeapInsert`'s data holds (name, delta).
    /// This exercises the *driver* (chain walking, CLR jumps), not the
    /// engine semantics, which live in the engine crate's tests.
    #[derive(Default)]
    struct ToyTarget {
        state: Mutex<HashMap<u8, i64>>,
        log: std::sync::Arc<LogManager>,
    }

    fn delta_payload(name: u8, delta: i64) -> LogPayload {
        LogPayload::HeapInsert {
            table: mohan_common::TableId(0),
            rid: mohan_common::Rid::new(0, 0),
            data: {
                let mut v = vec![name];
                v.extend_from_slice(&delta.to_be_bytes());
                v
            },
            visible_indexes: 0,
        }
    }

    fn parse(data: &[u8]) -> (u8, i64) {
        let mut b = [0u8; 8];
        b.copy_from_slice(&data[1..9]);
        (data[0], i64::from_be_bytes(b))
    }

    impl RecoveryTarget for ToyTarget {
        fn redo(&self, rec: &LogRecord) -> Result<()> {
            if let LogPayload::HeapInsert { data, .. } = &rec.payload {
                let (name, delta) = parse(data);
                *self.state.lock().entry(name).or_insert(0) += delta;
            }
            Ok(())
        }
        fn undo(&self, rec: &LogRecord, clr_prev: Lsn, undo_next: Lsn) -> Result<Lsn> {
            if let LogPayload::HeapInsert { data, .. } = &rec.payload {
                let (name, delta) = parse(data);
                *self.state.lock().entry(name).or_insert(0) -= delta;
                let clr = self.log.append(
                    rec.tx,
                    clr_prev,
                    RecKind::Clr { undo_next },
                    delta_payload(name, -delta),
                );
                return Ok(clr);
            }
            Ok(clr_prev)
        }
    }

    fn setup() -> (std::sync::Arc<LogManager>, ToyTarget) {
        let log = std::sync::Arc::new(LogManager::new());
        let target = ToyTarget {
            state: Mutex::new(HashMap::new()),
            log: std::sync::Arc::clone(&log),
        };
        (log, target)
    }

    #[test]
    fn analysis_finds_losers() {
        let (log, _) = setup();
        let b1 = log.append(TxId(1), Lsn::NULL, RecKind::RedoOnly, LogPayload::TxBegin);
        let _u1 = log.append(TxId(1), b1, RecKind::UndoRedo, delta_payload(b'a', 1));
        let b2 = log.append(TxId(2), Lsn::NULL, RecKind::RedoOnly, LogPayload::TxBegin);
        log.append(TxId(2), b2, RecKind::RedoOnly, LogPayload::TxCommit);
        let a = analyze(&log);
        assert_eq!(a.losers.len(), 1);
        assert_eq!(a.losers[&TxId(1)], Lsn(2));
    }

    #[test]
    fn rollback_applies_inverses_and_writes_clrs() {
        let (log, target) = setup();
        let b = log.append(TxId(1), Lsn::NULL, RecKind::RedoOnly, LogPayload::TxBegin);
        let l1 = log.append(TxId(1), b, RecKind::UndoRedo, delta_payload(b'x', 5));
        let l2 = log.append(TxId(1), l1, RecKind::UndoRedo, delta_payload(b'x', 7));
        // Forward effects:
        target.redo(&log.get(l1).unwrap()).unwrap();
        target.redo(&log.get(l2).unwrap()).unwrap();
        assert_eq!(target.state.lock()[&b'x'], 12);

        let new_last = rollback_tx(&log, &target, TxId(1), l2, Lsn::NULL).unwrap();
        assert_eq!(target.state.lock()[&b'x'], 0);
        let tail = log.get(new_last).unwrap();
        assert!(matches!(tail.kind, RecKind::Clr { .. }));
    }

    #[test]
    fn partial_rollback_stops_at_savepoint() {
        let (log, target) = setup();
        let b = log.append(TxId(1), Lsn::NULL, RecKind::RedoOnly, LogPayload::TxBegin);
        let l1 = log.append(TxId(1), b, RecKind::UndoRedo, delta_payload(b'x', 5));
        let save = l1;
        let l2 = log.append(TxId(1), l1, RecKind::UndoRedo, delta_payload(b'x', 7));
        target.redo(&log.get(l1).unwrap()).unwrap();
        target.redo(&log.get(l2).unwrap()).unwrap();

        rollback_tx(&log, &target, TxId(1), l2, save).unwrap();
        // Only the post-savepoint delta (7) was undone.
        assert_eq!(target.state.lock()[&b'x'], 5);
    }

    #[test]
    fn undo_only_records_are_undone_but_not_redone() {
        let (log, target) = setup();
        let b = log.append(TxId(1), Lsn::NULL, RecKind::RedoOnly, LogPayload::TxBegin);
        let l1 = log.append(TxId(1), b, RecKind::UndoOnly, delta_payload(b'y', 3));
        log.flush_all();
        // Crash without commit. Redo must skip the undo-only record,
        // undo must apply its inverse.
        let _ = l1;
        recover(&log, &target).unwrap();
        assert_eq!(target.state.lock()[&b'y'], -3);
    }

    #[test]
    fn recover_repeats_history_then_rolls_back_losers() {
        let (log, target) = setup();
        // Committed tx 1: +10.
        let b1 = log.append(TxId(1), Lsn::NULL, RecKind::RedoOnly, LogPayload::TxBegin);
        let l1 = log.append(TxId(1), b1, RecKind::UndoRedo, delta_payload(b'z', 10));
        log.append(TxId(1), l1, RecKind::RedoOnly, LogPayload::TxCommit);
        // Loser tx 2: +100.
        let b2 = log.append(TxId(2), Lsn::NULL, RecKind::RedoOnly, LogPayload::TxBegin);
        log.append(TxId(2), b2, RecKind::UndoRedo, delta_payload(b'z', 100));
        log.flush_all();

        let stats = recover(&log, &target).unwrap();
        assert_eq!(target.state.lock()[&b'z'], 10);
        assert_eq!(stats.losers, 1);
        // The loser's chain ends with TxEnd so a second recovery
        // ignores it.
        let a = analyze(&log);
        assert!(a.losers.is_empty());
    }

    #[test]
    fn redo_starts_after_the_last_checkpoint() {
        let (log, target) = setup();
        // Committed tx 1: +5, fully flushed and (by contract of the
        // checkpoint record below) forced to pages.
        let b1 = log.append(TxId(1), Lsn::NULL, RecKind::RedoOnly, LogPayload::TxBegin);
        let l1 = log.append(TxId(1), b1, RecKind::UndoRedo, delta_payload(b'a', 5));
        log.append(TxId(1), l1, RecKind::RedoOnly, LogPayload::TxCommit);
        log.flush_all();
        let redo_start = log.flushed_lsn();
        log.append(
            TxId(0),
            Lsn::NULL,
            RecKind::RedoOnly,
            LogPayload::Checkpoint { redo_start },
        );
        // Committed tx 2 after the checkpoint: +7.
        let b2 = log.append(TxId(2), Lsn::NULL, RecKind::RedoOnly, LogPayload::TxBegin);
        let l2 = log.append(TxId(2), b2, RecKind::UndoRedo, delta_payload(b'a', 7));
        log.append(TxId(2), l2, RecKind::RedoOnly, LogPayload::TxCommit);
        log.flush_all();

        // ToyTarget redo is deliberately not idempotent (it re-adds
        // deltas), so redoing the pre-checkpoint +5 would be visible.
        let stats = recover(&log, &target).unwrap();
        assert_eq!(target.state.lock()[&b'a'], 7);
        assert_eq!(stats.redo_start, redo_start);
        // Redo covered only the checkpoint + tx 2's records.
        assert_eq!(stats.redone, 4);
        // Analysis still walked the full history.
        assert_eq!(stats.analyzed, 7);
        assert_eq!(checkpoint_redo_start(&log), redo_start);
    }

    #[test]
    fn recovery_is_idempotent_after_mid_undo_crash() {
        let (log, target) = setup();
        let b = log.append(TxId(1), Lsn::NULL, RecKind::RedoOnly, LogPayload::TxBegin);
        let l1 = log.append(TxId(1), b, RecKind::UndoRedo, delta_payload(b'w', 1));
        let l2 = log.append(TxId(1), l1, RecKind::UndoRedo, delta_payload(b'w', 2));
        log.flush_all();

        // First recovery on a fresh state replays +1 +2 then undoes
        // both via CLRs.
        recover(&log, &target).unwrap();
        assert_eq!(target.state.lock()[&b'w'], 0);
        let _ = l2;

        // Second recovery on ANOTHER fresh state (as after a crash that
        // lost all volatile data): redo now includes the CLRs, and the
        // TxEnd means no further undo. Net effect must still be zero.
        let target2 = ToyTarget {
            state: Mutex::new(HashMap::new()),
            log: std::sync::Arc::new(LogManager::new()),
        };
        // Reuse the same log but a fresh target whose CLRs would go to
        // a scratch log (none are written since no losers remain).
        recover(&log, &target2).unwrap();
        assert_eq!(target2.state.lock()[&b'w'], 0);
    }
}
