//! Byte codec for [`LogRecord`]s, so records can leave the process.
//!
//! Until replication, the log lived purely in memory and
//! `encoded_size()` was only a volume estimate. `SubscribeWal` ships
//! real bytes: a `WalFrame`'s body is `count` records encoded
//! back-to-back with [`encode_record`]. The encoding is big-endian and
//! self-delimiting; decoding is strict — unknown tags and truncation
//! return `None`, and [`decode_records`] additionally rejects trailing
//! bytes, mirroring the wire crate's malformed-frame discipline.
//!
//! The wire crate deliberately depends only on `mohan-common`, so the
//! frame carries this encoding as an opaque blob; primary (server) and
//! follower (client/replica) both link this module to produce and
//! consume it.

use crate::record::{LogPayload, LogRecord, RecKind, SideFileOp};
use mohan_common::{IndexEntry, IndexId, Lsn, Rid, TableId, TxId};

// Payload tags. Frozen on the wire: append, never renumber.
const P_TX_BEGIN: u8 = 1;
const P_TX_COMMIT: u8 = 2;
const P_TX_ABORT: u8 = 3;
const P_TX_END: u8 = 4;
const P_HEAP_INSERT: u8 = 5;
const P_HEAP_DELETE: u8 = 6;
const P_HEAP_UPDATE: u8 = 7;
const P_INDEX_INSERT: u8 = 8;
const P_INDEX_PSEUDO_DELETE: u8 = 9;
const P_INDEX_INSERT_TOMBSTONE: u8 = 10;
const P_INDEX_REACTIVATE: u8 = 11;
const P_INDEX_PHYSICAL_DELETE: u8 = 12;
const P_INDEX_BULK_INSERT: u8 = 13;
const P_INDEX_BULK_REMOVE: u8 = 14;
const P_SIDE_FILE_APPEND: u8 = 15;
const P_CHECKPOINT: u8 = 16;
const P_CATALOG_UPDATE: u8 = 17;

// Record-kind tags.
const K_UNDO_REDO: u8 = 0;
const K_REDO_ONLY: u8 = 1;
const K_UNDO_ONLY: u8 = 2;
const K_CLR: u8 = 3;

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_entries(out: &mut Vec<u8>, entries: &[IndexEntry]) {
    put_u32(out, entries.len() as u32);
    for e in entries {
        e.encode(out);
    }
}

fn put_op(out: &mut Vec<u8>, op: &SideFileOp) {
    put_u8(out, u8::from(op.insert));
    op.entry.encode(out);
}

fn get_u8(buf: &[u8], pos: &mut usize) -> Option<u8> {
    let v = *buf.get(*pos)?;
    *pos += 1;
    Some(v)
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let b: [u8; 4] = buf.get(*pos..*pos + 4)?.try_into().ok()?;
    *pos += 4;
    Some(u32::from_be_bytes(b))
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let b: [u8; 8] = buf.get(*pos..*pos + 8)?.try_into().ok()?;
    *pos += 8;
    Some(u64::from_be_bytes(b))
}

fn get_bytes(buf: &[u8], pos: &mut usize) -> Option<Vec<u8>> {
    let n = get_u32(buf, pos)? as usize;
    let b = buf.get(*pos..*pos + n)?.to_vec();
    *pos += n;
    Some(b)
}

fn get_entries(buf: &[u8], pos: &mut usize) -> Option<Vec<IndexEntry>> {
    let n = get_u32(buf, pos)? as usize;
    let mut entries = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        entries.push(IndexEntry::decode(buf, pos)?);
    }
    Some(entries)
}

fn get_op(buf: &[u8], pos: &mut usize) -> Option<SideFileOp> {
    let insert = match get_u8(buf, pos)? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let entry = IndexEntry::decode(buf, pos)?;
    Some(SideFileOp { insert, entry })
}

/// Append the encoding of `rec` to `out`.
pub fn encode_record(rec: &LogRecord, out: &mut Vec<u8>) {
    let tag = match &rec.payload {
        LogPayload::TxBegin => P_TX_BEGIN,
        LogPayload::TxCommit => P_TX_COMMIT,
        LogPayload::TxAbort => P_TX_ABORT,
        LogPayload::TxEnd => P_TX_END,
        LogPayload::HeapInsert { .. } => P_HEAP_INSERT,
        LogPayload::HeapDelete { .. } => P_HEAP_DELETE,
        LogPayload::HeapUpdate { .. } => P_HEAP_UPDATE,
        LogPayload::IndexInsert { .. } => P_INDEX_INSERT,
        LogPayload::IndexPseudoDelete { .. } => P_INDEX_PSEUDO_DELETE,
        LogPayload::IndexInsertTombstone { .. } => P_INDEX_INSERT_TOMBSTONE,
        LogPayload::IndexReactivate { .. } => P_INDEX_REACTIVATE,
        LogPayload::IndexPhysicalDelete { .. } => P_INDEX_PHYSICAL_DELETE,
        LogPayload::IndexBulkInsert { .. } => P_INDEX_BULK_INSERT,
        LogPayload::IndexBulkRemove { .. } => P_INDEX_BULK_REMOVE,
        LogPayload::SideFileAppend { .. } => P_SIDE_FILE_APPEND,
        LogPayload::Checkpoint { .. } => P_CHECKPOINT,
        LogPayload::CatalogUpdate { .. } => P_CATALOG_UPDATE,
    };
    put_u8(out, tag);
    put_u64(out, rec.lsn.0);
    put_u64(out, rec.tx.0);
    put_u64(out, rec.prev.0);
    match rec.kind {
        RecKind::UndoRedo => put_u8(out, K_UNDO_REDO),
        RecKind::RedoOnly => put_u8(out, K_REDO_ONLY),
        RecKind::UndoOnly => put_u8(out, K_UNDO_ONLY),
        RecKind::Clr { undo_next } => {
            put_u8(out, K_CLR);
            put_u64(out, undo_next.0);
        }
    }
    match &rec.payload {
        LogPayload::TxBegin | LogPayload::TxCommit | LogPayload::TxAbort | LogPayload::TxEnd => {}
        LogPayload::HeapInsert {
            table,
            rid,
            data,
            visible_indexes,
        } => {
            put_u32(out, table.0);
            put_u64(out, rid.pack());
            put_bytes(out, data);
            put_u32(out, *visible_indexes);
        }
        LogPayload::HeapDelete {
            table,
            rid,
            old,
            visible_indexes,
        } => {
            put_u32(out, table.0);
            put_u64(out, rid.pack());
            put_bytes(out, old);
            put_u32(out, *visible_indexes);
        }
        LogPayload::HeapUpdate {
            table,
            rid,
            old,
            new,
            visible_indexes,
        } => {
            put_u32(out, table.0);
            put_u64(out, rid.pack());
            put_bytes(out, old);
            put_bytes(out, new);
            put_u32(out, *visible_indexes);
        }
        LogPayload::IndexInsert { index, entry }
        | LogPayload::IndexPseudoDelete { index, entry }
        | LogPayload::IndexInsertTombstone { index, entry }
        | LogPayload::IndexReactivate { index, entry } => {
            put_u32(out, index.0);
            entry.encode(out);
        }
        LogPayload::IndexPhysicalDelete {
            index,
            entry,
            was_pseudo,
        } => {
            put_u32(out, index.0);
            entry.encode(out);
            put_u8(out, u8::from(*was_pseudo));
        }
        LogPayload::IndexBulkInsert { index, entries }
        | LogPayload::IndexBulkRemove { index, entries } => {
            put_u32(out, index.0);
            put_entries(out, entries);
        }
        LogPayload::SideFileAppend { index, op } => {
            put_u32(out, index.0);
            put_op(out, op);
        }
        LogPayload::Checkpoint { redo_start } => put_u64(out, redo_start.0),
        LogPayload::CatalogUpdate { bytes } => put_bytes(out, bytes),
    }
}

/// Decode one record from `buf` at `pos`, advancing `pos` past it.
/// `None` means malformed (unknown tag or truncation).
#[must_use]
pub fn decode_record(buf: &[u8], pos: &mut usize) -> Option<LogRecord> {
    let tag = get_u8(buf, pos)?;
    let lsn = Lsn(get_u64(buf, pos)?);
    let tx = TxId(get_u64(buf, pos)?);
    let prev = Lsn(get_u64(buf, pos)?);
    let kind = match get_u8(buf, pos)? {
        K_UNDO_REDO => RecKind::UndoRedo,
        K_REDO_ONLY => RecKind::RedoOnly,
        K_UNDO_ONLY => RecKind::UndoOnly,
        K_CLR => RecKind::Clr {
            undo_next: Lsn(get_u64(buf, pos)?),
        },
        _ => return None,
    };
    let bool_of = |v: u8| match v {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    };
    let payload = match tag {
        P_TX_BEGIN => LogPayload::TxBegin,
        P_TX_COMMIT => LogPayload::TxCommit,
        P_TX_ABORT => LogPayload::TxAbort,
        P_TX_END => LogPayload::TxEnd,
        P_HEAP_INSERT => LogPayload::HeapInsert {
            table: TableId(get_u32(buf, pos)?),
            rid: Rid::unpack(get_u64(buf, pos)?),
            data: get_bytes(buf, pos)?,
            visible_indexes: get_u32(buf, pos)?,
        },
        P_HEAP_DELETE => LogPayload::HeapDelete {
            table: TableId(get_u32(buf, pos)?),
            rid: Rid::unpack(get_u64(buf, pos)?),
            old: get_bytes(buf, pos)?,
            visible_indexes: get_u32(buf, pos)?,
        },
        P_HEAP_UPDATE => LogPayload::HeapUpdate {
            table: TableId(get_u32(buf, pos)?),
            rid: Rid::unpack(get_u64(buf, pos)?),
            old: get_bytes(buf, pos)?,
            new: get_bytes(buf, pos)?,
            visible_indexes: get_u32(buf, pos)?,
        },
        P_INDEX_INSERT => LogPayload::IndexInsert {
            index: IndexId(get_u32(buf, pos)?),
            entry: IndexEntry::decode(buf, pos)?,
        },
        P_INDEX_PSEUDO_DELETE => LogPayload::IndexPseudoDelete {
            index: IndexId(get_u32(buf, pos)?),
            entry: IndexEntry::decode(buf, pos)?,
        },
        P_INDEX_INSERT_TOMBSTONE => LogPayload::IndexInsertTombstone {
            index: IndexId(get_u32(buf, pos)?),
            entry: IndexEntry::decode(buf, pos)?,
        },
        P_INDEX_REACTIVATE => LogPayload::IndexReactivate {
            index: IndexId(get_u32(buf, pos)?),
            entry: IndexEntry::decode(buf, pos)?,
        },
        P_INDEX_PHYSICAL_DELETE => LogPayload::IndexPhysicalDelete {
            index: IndexId(get_u32(buf, pos)?),
            entry: IndexEntry::decode(buf, pos)?,
            was_pseudo: bool_of(get_u8(buf, pos)?)?,
        },
        P_INDEX_BULK_INSERT => LogPayload::IndexBulkInsert {
            index: IndexId(get_u32(buf, pos)?),
            entries: get_entries(buf, pos)?,
        },
        P_INDEX_BULK_REMOVE => LogPayload::IndexBulkRemove {
            index: IndexId(get_u32(buf, pos)?),
            entries: get_entries(buf, pos)?,
        },
        P_SIDE_FILE_APPEND => LogPayload::SideFileAppend {
            index: IndexId(get_u32(buf, pos)?),
            op: get_op(buf, pos)?,
        },
        P_CHECKPOINT => LogPayload::Checkpoint {
            redo_start: Lsn(get_u64(buf, pos)?),
        },
        P_CATALOG_UPDATE => LogPayload::CatalogUpdate {
            bytes: get_bytes(buf, pos)?,
        },
        _ => return None,
    };
    Some(LogRecord {
        lsn,
        tx,
        prev,
        kind,
        payload,
    })
}

/// Encode a batch of records back-to-back (a `WalFrame` body).
#[must_use]
pub fn encode_records<'a, I>(recs: I) -> Vec<u8>
where
    I: IntoIterator<Item = &'a LogRecord>,
{
    let mut out = Vec::new();
    for rec in recs {
        encode_record(rec, &mut out);
    }
    out
}

/// Decode exactly `count` records from a `WalFrame` body. `None` if
/// any record is malformed or bytes are left over afterwards.
#[must_use]
pub fn decode_records(buf: &[u8], count: usize) -> Option<Vec<LogRecord>> {
    let mut pos = 0usize;
    let mut recs = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        recs.push(decode_record(buf, &mut pos)?);
    }
    if pos != buf.len() {
        return None;
    }
    Some(recs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mohan_common::KeyValue;
    use proptest::prelude::*;

    fn entry(key: i64, rid: u64) -> IndexEntry {
        IndexEntry::new(KeyValue::from_i64(key), Rid::unpack(rid & 0x00FF_FFFF_FFFF))
    }

    fn arb_entry() -> impl Strategy<Value = IndexEntry> {
        (any::<i64>(), any::<u64>()).prop_map(|(k, r)| entry(k, r))
    }

    fn arb_payload() -> impl Strategy<Value = LogPayload> {
        prop_oneof![
            1 => Just(LogPayload::TxBegin),
            1 => Just(LogPayload::TxCommit),
            1 => Just(LogPayload::TxAbort),
            1 => Just(LogPayload::TxEnd),
            2 => (any::<u32>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..64), any::<u32>())
                .prop_map(|(t, r, data, vi)| LogPayload::HeapInsert {
                    table: TableId(t),
                    rid: Rid::unpack(r & 0x00FF_FFFF_FFFF),
                    data,
                    visible_indexes: vi,
                }),
            2 => (any::<u32>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..64), any::<u32>())
                .prop_map(|(t, r, old, vi)| LogPayload::HeapDelete {
                    table: TableId(t),
                    rid: Rid::unpack(r & 0x00FF_FFFF_FFFF),
                    old,
                    visible_indexes: vi,
                }),
            2 => (
                any::<u32>(),
                any::<u64>(),
                prop::collection::vec(any::<u8>(), 0..64),
                prop::collection::vec(any::<u8>(), 0..64),
                any::<u32>(),
            )
                .prop_map(|(t, r, old, new, vi)| LogPayload::HeapUpdate {
                    table: TableId(t),
                    rid: Rid::unpack(r & 0x00FF_FFFF_FFFF),
                    old,
                    new,
                    visible_indexes: vi,
                }),
            2 => (any::<u32>(), arb_entry()).prop_map(|(i, e)| LogPayload::IndexInsert {
                index: IndexId(i),
                entry: e,
            }),
            1 => (any::<u32>(), arb_entry()).prop_map(|(i, e)| LogPayload::IndexPseudoDelete {
                index: IndexId(i),
                entry: e,
            }),
            1 => (any::<u32>(), arb_entry()).prop_map(|(i, e)| LogPayload::IndexInsertTombstone {
                index: IndexId(i),
                entry: e,
            }),
            1 => (any::<u32>(), arb_entry()).prop_map(|(i, e)| LogPayload::IndexReactivate {
                index: IndexId(i),
                entry: e,
            }),
            1 => (any::<u32>(), arb_entry(), any::<bool>()).prop_map(|(i, e, p)| {
                LogPayload::IndexPhysicalDelete {
                    index: IndexId(i),
                    entry: e,
                    was_pseudo: p,
                }
            }),
            1 => (any::<u32>(), prop::collection::vec(arb_entry(), 0..8)).prop_map(|(i, es)| {
                LogPayload::IndexBulkInsert {
                    index: IndexId(i),
                    entries: es,
                }
            }),
            1 => (any::<u32>(), prop::collection::vec(arb_entry(), 0..8)).prop_map(|(i, es)| {
                LogPayload::IndexBulkRemove {
                    index: IndexId(i),
                    entries: es,
                }
            }),
            2 => (any::<u32>(), any::<bool>(), arb_entry()).prop_map(|(i, ins, e)| {
                LogPayload::SideFileAppend {
                    index: IndexId(i),
                    op: SideFileOp {
                        insert: ins,
                        entry: e,
                    },
                }
            }),
            1 => any::<u64>().prop_map(|l| LogPayload::Checkpoint {
                redo_start: Lsn(l),
            }),
            1 => prop::collection::vec(any::<u8>(), 0..128)
                .prop_map(|bytes| LogPayload::CatalogUpdate { bytes }),
        ]
    }

    fn arb_kind() -> impl Strategy<Value = RecKind> {
        prop_oneof![
            3 => Just(RecKind::UndoRedo),
            3 => Just(RecKind::RedoOnly),
            1 => Just(RecKind::UndoOnly),
            1 => any::<u64>().prop_map(|l| RecKind::Clr { undo_next: Lsn(l) }),
        ]
    }

    fn arb_record() -> impl Strategy<Value = LogRecord> {
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            arb_kind(),
            arb_payload(),
        )
            .prop_map(|(lsn, tx, prev, kind, payload)| LogRecord {
                lsn: Lsn(lsn),
                tx: TxId(tx),
                prev: Lsn(prev),
                kind,
                payload,
            })
    }

    proptest! {
        #[test]
        fn record_roundtrips(rec in arb_record()) {
            let mut out = Vec::new();
            encode_record(&rec, &mut out);
            let mut pos = 0;
            let back = decode_record(&out, &mut pos).expect("well-formed");
            prop_assert_eq!(pos, out.len());
            prop_assert_eq!(back, rec);
        }

        #[test]
        fn truncation_is_rejected(rec in arb_record(), frac in 0..100usize) {
            let mut out = Vec::new();
            encode_record(&rec, &mut out);
            let cut = out.len() * frac / 100;
            if cut < out.len() {
                // Decoding consumes exactly the bytes encoding wrote,
                // so every strict prefix must fail.
                prop_assert!(decode_record(&out[..cut], &mut 0).is_none());
            }
        }

        #[test]
        fn batches_roundtrip(recs in prop::collection::vec(arb_record(), 0..10)) {
            let blob = encode_records(recs.iter());
            let back = decode_records(&blob, recs.len()).expect("well-formed batch");
            prop_assert_eq!(back, recs);
        }
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_rejected() {
        assert!(decode_record(&[0xEE], &mut 0).is_none());
        assert!(decode_record(&[], &mut 0).is_none());
        let rec = LogRecord {
            lsn: Lsn(1),
            tx: TxId(1),
            prev: Lsn::NULL,
            kind: RecKind::RedoOnly,
            payload: LogPayload::TxBegin,
        };
        let mut blob = encode_records(std::iter::once(&rec));
        blob.push(0);
        assert!(decode_records(&blob, 1).is_none());
        // Count mismatch: more records claimed than present.
        let blob = encode_records(std::iter::once(&rec));
        assert!(decode_records(&blob, 2).is_none());
        assert!(decode_records(&blob, 1).is_some());
    }
}
