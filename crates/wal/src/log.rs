//! The log manager.
//!
//! Appends are cheap (a mutex push); durability happens at
//! [`LogManager::flush_to`] / [`LogManager::flush_all`]. A simulated
//! crash truncates the log back to the flushed prefix, which is what
//! lets tests observe the difference between, say, SF's unlogged bulk
//! load and NSF's logged inserts.

use crate::record::{LogPayload, LogRecord, RecKind};
use mohan_common::stats::Counter;
use mohan_common::{Lsn, TxId};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Log-volume counters, split by origin so benches can reproduce the
/// paper's "IB writes no log records until side-file processing"
/// argument (§4).
#[derive(Debug, Default)]
pub struct WalStats {
    /// Records appended in total.
    pub records: Counter,
    /// Approximate bytes appended in total.
    pub bytes: Counter,
    /// Records appended by index-builder transactions.
    pub ib_records: Counter,
    /// Approximate bytes appended by index-builder transactions.
    pub ib_bytes: Counter,
    /// Flush (force) calls that actually advanced the durable prefix.
    pub flushes: Counter,
}

/// The write-ahead log.
pub struct LogManager {
    records: RwLock<Vec<Arc<LogRecord>>>,
    /// Highest LSN guaranteed durable.
    flushed: AtomicU64,
    /// Transactions registered as index builders (their appends are
    /// counted separately).
    ib_txs: RwLock<Vec<TxId>>,
    /// Volume counters.
    pub stats: WalStats,
}

impl Default for LogManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LogManager {
    /// Empty log.
    #[must_use]
    pub fn new() -> LogManager {
        LogManager {
            records: RwLock::new(Vec::new()),
            flushed: AtomicU64::new(0),
            ib_txs: RwLock::new(Vec::new()),
            stats: WalStats::default(),
        }
    }

    /// Mark `tx` as an index-builder transaction for stats attribution.
    pub fn register_ib_tx(&self, tx: TxId) {
        self.ib_txs.write().push(tx);
    }

    /// Append a record and return its LSN. LSNs are dense and start
    /// at 1 (so [`Lsn::NULL`] never names a record).
    pub fn append(&self, tx: TxId, prev: Lsn, kind: RecKind, payload: LogPayload) -> Lsn {
        let size = payload.encoded_size() as u64;
        let mut recs = self.records.write();
        let lsn = Lsn(recs.len() as u64 + 1);
        recs.push(Arc::new(LogRecord { lsn, tx, prev, kind, payload }));
        drop(recs);
        self.stats.records.bump();
        self.stats.bytes.add(size);
        if self.ib_txs.read().contains(&tx) {
            self.stats.ib_records.bump();
            self.stats.ib_bytes.add(size);
        }
        lsn
    }

    /// Highest LSN appended so far.
    #[must_use]
    pub fn tail_lsn(&self) -> Lsn {
        Lsn(self.records.read().len() as u64)
    }

    /// Highest durable LSN.
    #[must_use]
    pub fn flushed_lsn(&self) -> Lsn {
        Lsn(self.flushed.load(Ordering::Acquire))
    }

    /// Force the log up to and including `lsn` (flush-before-force
    /// WAL rule; no-op if already durable).
    pub fn flush_to(&self, lsn: Lsn) {
        let mut cur = self.flushed.load(Ordering::Acquire);
        while cur < lsn.0 {
            match self
                .flushed
                .compare_exchange(cur, lsn.0, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    self.stats.flushes.bump();
                    return;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Force the whole log.
    pub fn flush_all(&self) {
        self.flush_to(self.tail_lsn());
    }

    /// Fetch a record by LSN (used by undo chains). `None` for the
    /// null LSN or a truncated tail.
    #[must_use]
    pub fn get(&self, lsn: Lsn) -> Option<Arc<LogRecord>> {
        if !lsn.is_valid() {
            return None;
        }
        self.records.read().get(lsn.0 as usize - 1).cloned()
    }

    /// Snapshot of all records in `(from, ..]` LSN order, for redo and
    /// analysis scans.
    #[must_use]
    pub fn scan_from(&self, from: Lsn) -> Vec<Arc<LogRecord>> {
        self.records.read()[from.0 as usize..].to_vec()
    }

    /// Simulated system failure: everything after the flushed prefix
    /// is gone.
    pub fn crash(&self) {
        let flushed = self.flushed.load(Ordering::Acquire) as usize;
        self.records.write().truncate(flushed);
        self.ib_txs.write().clear();
    }
}

impl std::fmt::Debug for LogManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogManager")
            .field("tail", &self.tail_lsn())
            .field("flushed", &self.flushed_lsn())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(log: &LogManager, tx: u64) -> Lsn {
        log.append(TxId(tx), Lsn::NULL, RecKind::RedoOnly, LogPayload::TxBegin)
    }

    #[test]
    fn lsns_are_dense_from_one() {
        let log = LogManager::new();
        assert_eq!(begin(&log, 1), Lsn(1));
        assert_eq!(begin(&log, 2), Lsn(2));
        assert_eq!(log.tail_lsn(), Lsn(2));
    }

    #[test]
    fn crash_truncates_to_flushed_prefix() {
        let log = LogManager::new();
        begin(&log, 1);
        begin(&log, 2);
        log.flush_to(Lsn(1));
        begin(&log, 3);
        log.crash();
        assert_eq!(log.tail_lsn(), Lsn(1));
        assert!(log.get(Lsn(2)).is_none());
        assert_eq!(log.get(Lsn(1)).unwrap().tx, TxId(1));
    }

    #[test]
    fn flush_is_monotone() {
        let log = LogManager::new();
        begin(&log, 1);
        begin(&log, 1);
        log.flush_to(Lsn(2));
        log.flush_to(Lsn(1)); // no-op, must not regress
        assert_eq!(log.flushed_lsn(), Lsn(2));
    }

    #[test]
    fn prev_chain_walk() {
        let log = LogManager::new();
        let l1 = begin(&log, 7);
        let l2 = log.append(TxId(7), l1, RecKind::UndoRedo, LogPayload::Checkpoint);
        let rec = log.get(l2).unwrap();
        assert_eq!(rec.prev, l1);
        assert_eq!(log.get(rec.prev).unwrap().lsn, l1);
    }

    #[test]
    fn ib_attribution() {
        let log = LogManager::new();
        log.register_ib_tx(TxId(99));
        begin(&log, 1);
        begin(&log, 99);
        assert_eq!(log.stats.records.get(), 2);
        assert_eq!(log.stats.ib_records.get(), 1);
        assert!(log.stats.ib_bytes.get() > 0);
    }

    #[test]
    fn scan_from_returns_suffix() {
        let log = LogManager::new();
        for i in 0..5 {
            begin(&log, i);
        }
        let suffix = log.scan_from(Lsn(3));
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].lsn, Lsn(4));
    }

    #[test]
    fn concurrent_appends_get_unique_lsns() {
        let log = Arc::new(LogManager::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| begin(&log, t).0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400);
    }
}
