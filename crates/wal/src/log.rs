//! The log manager.
//!
//! Appends reserve an LSN with a single `fetch_add` and then publish
//! the record into a pre-addressed slot of an exponentially-growing
//! segment directory, so the hot path takes **no lock at all**: one
//! atomic reservation, two atomic loads to translate the LSN to its
//! physical slot, and one write-once slot publish. Durability happens
//! at [`LogManager::flush_to`] / [`LogManager::flush_all`]; concurrent
//! flushers coalesce into one durable-prefix advance (group flush).
//!
//! A simulated crash truncates the log back to the flushed prefix,
//! which is what lets tests observe the difference between, say, SF's
//! unlogged bulk load and NSF's logged inserts. Because slots are
//! write-once (`OnceLock`) and appends never lock the directory, a
//! crash cannot scrub the truncated slots in place; instead it *burns*
//! them: a new epoch remaps the reused logical LSN range onto fresh
//! physical slots and the abandoned ones are reclaimed when the log is
//! dropped. Crash simulation is quiescent by contract — callers join
//! their worker threads before calling [`LogManager::crash`], exactly
//! as a real failure stops all appenders.

use crate::record::{LogPayload, LogRecord, RecKind};
use mohan_common::stats::{Counter, StripedCounter};
use mohan_common::{Lsn, TxId};
use mohan_obs::{Histogram, TraceSink};
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Slots in the first log segment; segment `s` holds
/// `SEGMENT_CAP << s` slots, so the directory is a fixed array of
/// [`MAX_SEGMENTS`] lazily-initialized segments covering ~2^40
/// records without ever relocating one.
const SEGMENT_CAP: usize = 1024;

/// Upper bound on directory entries (capacity `SEGMENT_CAP * (2^31 -
/// 1)` slots — unreachable in practice).
const MAX_SEGMENTS: usize = 31;

/// Pads a hot atomic onto its own cache line so unrelated writers do
/// not false-share it.
#[repr(align(64))]
#[derive(Default)]
struct Pad<T>(T);

impl<T> std::ops::Deref for Pad<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// One run of log slots. A slot is written exactly once by the
/// appender that reserved its LSN; `OnceLock` gives that publish its
/// release/acquire pairing without any per-slot lock. Slots are
/// deliberately *not* padded to cache lines: adjacent publishes share
/// a line, but reservation order makes the sharing sequential (at most
/// one handoff per line quarter), and the dense layout keeps the
/// prefetcher effective for appends and scans alike — measured, the
/// padded variant is ~2x slower single-threaded and no faster at 4
/// threads.
struct Segment {
    slots: Vec<OnceLock<Arc<LogRecord>>>,
}

impl Segment {
    fn new(cap: usize) -> Segment {
        Segment {
            slots: (0..cap).map(|_| OnceLock::new()).collect(),
        }
    }
}

/// Physical slot address of physical index `phys`: segment sizes
/// double, so the segment is found from the high bit of
/// `phys / SEGMENT_CAP + 1` and the offset by subtracting the slots
/// held by all earlier segments.
fn seg_slot(phys: u64) -> (usize, usize) {
    let t = phys / SEGMENT_CAP as u64 + 1;
    let s = (63 - t.leading_zeros()) as usize;
    let off = (phys - SEGMENT_CAP as u64 * ((1u64 << s) - 1)) as usize;
    (s, off)
}

/// Map a logical record index to its physical slot index given the
/// crash-epoch table (pairs of `(logical_start, physical_start)`,
/// sorted by `logical_start`; the rightmost epoch covering `idx`
/// wins).
fn translate(epochs: &[(u64, u64)], idx: u64) -> u64 {
    let i = epochs.partition_point(|e| e.0 <= idx) - 1;
    idx - epochs[i].0 + epochs[i].1
}

/// Log-volume counters, split by origin so benches can reproduce the
/// paper's "IB writes no log records until side-file processing"
/// argument (§4). The two per-append counters are cache-line-striped
/// so they do not become the bottleneck the lock-free append path just
/// removed.
#[derive(Debug, Default)]
pub struct WalStats {
    /// Records appended in total.
    pub records: StripedCounter,
    /// Approximate bytes appended in total.
    pub bytes: StripedCounter,
    /// Records appended by index-builder transactions.
    pub ib_records: Counter,
    /// Approximate bytes appended by index-builder transactions.
    pub ib_bytes: Counter,
    /// Flush (force) calls that actually advanced the durable prefix.
    pub flushes: Counter,
    /// Flush calls whose target became durable via another caller's
    /// group flush (the caller waited instead of forcing again).
    pub group_flush_coalesced: Counter,
    /// Log segments allocated.
    pub segment_allocs: Counter,
    /// Latency of flush calls that reached the slow path (µs) —
    /// both actual forces and coalesced waiters; the fast path
    /// (already durable) records nothing.
    pub flush_us: Arc<Histogram>,
    /// Per actual force: how many LSNs the force made durable in one
    /// go (the group-flush batch size).
    pub coalesce_depth: Arc<Histogram>,
}

/// A registered flush-waker: (registration id, callback).
type FlushWaker = (u64, Box<dyn Fn() + Send + Sync>);

/// The write-ahead log.
pub struct LogManager {
    /// Directory of doubling-size segments, initialized on first
    /// touch. Entries are write-once, so lookups are a single acquire
    /// load — appends and reads never lock the directory.
    segs: [OnceLock<Segment>; MAX_SEGMENTS],
    /// Count of reserved logical LSNs (the next append gets
    /// `next + 1`).
    next: Pad<AtomicU64>,
    /// Contiguous published prefix: every LSN `<= published` has its
    /// record visible. Advanced *lazily* by readers (`tail_lsn`,
    /// `scan_from`) and by the group-flush leader rather than by every
    /// append.
    published: Pad<AtomicU64>,
    /// Current crash epoch, inlined for the append fast path: physical
    /// slot = `idx - epoch_logical + epoch_physical`. Mutated only by
    /// `crash`, which is quiescent by contract.
    epoch_logical: Pad<AtomicU64>,
    epoch_physical: Pad<AtomicU64>,
    /// Full epoch history for readers of pre-crash records.
    epochs: RwLock<Vec<(u64, u64)>>,
    /// Fast-path flag: false until the first `register_ib_tx`, so the
    /// per-append IB attribution check skips the `ib_txs` lock
    /// entirely when no builder is running.
    has_ib: AtomicBool,
    /// Highest LSN guaranteed durable. Invariant: `flushed <=
    /// published` — the durable prefix never contains a hole.
    flushed: Pad<AtomicU64>,
    /// Highest LSN any flusher has asked for; the group-flush leader
    /// forces up to this point on behalf of everyone waiting.
    flush_request: Pad<AtomicU64>,
    /// Transactions registered as index builders (their appends are
    /// counted separately).
    ib_txs: RwLock<Vec<TxId>>,
    /// Callbacks fired after the durable prefix actually advances
    /// (see [`LogManager::register_flush_waker`]).
    flush_wakers: RwLock<Vec<FlushWaker>>,
    /// Fast-path flag mirroring `flush_wakers.is_empty()`, so the
    /// group-flush hot path pays one relaxed load when nobody listens.
    has_flush_wakers: AtomicBool,
    next_flush_waker_id: AtomicU64,
    /// `(lsn, trace_id)` for records appended under a *sampled* trace
    /// context — a bounded drop-oldest side map, deliberately outside
    /// the frozen record codec, that lets the WAL subscription tag
    /// shipped frames with the trace that caused each write. Taken
    /// only when a sampled context is installed, so the lock-free
    /// append fast path is untouched for untraced work.
    trace_tags: Mutex<VecDeque<(u64, u64)>>,
    /// Trace ring for `wal.flush` spans (set once by the engine's
    /// observability registration; absent in bare unit tests).
    trace_sink: OnceLock<Arc<TraceSink>>,
    /// Volume counters.
    pub stats: WalStats,
}

/// Retained [`LogManager::trace_tags_for`] entries; old tags fall off
/// once the tagged records are this far behind the tail (subscribers
/// that lag further already reconnect through catch-up, which does
/// not replay attribution).
const TRACE_TAG_CAP: usize = 4096;

impl Default for LogManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LogManager {
    /// Empty log.
    #[must_use]
    pub fn new() -> LogManager {
        LogManager {
            segs: std::array::from_fn(|_| OnceLock::new()),
            next: Pad(AtomicU64::new(0)),
            published: Pad(AtomicU64::new(0)),
            epoch_logical: Pad(AtomicU64::new(0)),
            epoch_physical: Pad(AtomicU64::new(0)),
            epochs: RwLock::new(vec![(0, 0)]),
            has_ib: AtomicBool::new(false),
            flushed: Pad(AtomicU64::new(0)),
            flush_request: Pad(AtomicU64::new(0)),
            ib_txs: RwLock::new(Vec::new()),
            flush_wakers: RwLock::new(Vec::new()),
            has_flush_wakers: AtomicBool::new(false),
            next_flush_waker_id: AtomicU64::new(0),
            trace_tags: Mutex::new(VecDeque::new()),
            trace_sink: OnceLock::new(),
            stats: WalStats::default(),
        }
    }

    /// Adopt the trace ring `wal.flush` spans record into. Set once at
    /// engine construction; later calls are ignored.
    pub fn set_trace_sink(&self, sink: Arc<TraceSink>) {
        let _ = self.trace_sink.set(sink);
    }

    /// Trace attributions for records in `from ..= to` LSN order:
    /// which sampled trace appended each (tagged) record. Sparse —
    /// untraced records have no entry, and tags older than the
    /// retention window are gone.
    #[must_use]
    pub fn trace_tags_for(&self, from: u64, to: u64) -> Vec<(u64, u64)> {
        self.trace_tags
            .lock()
            .iter()
            .filter(|&&(lsn, _)| lsn >= from && lsn <= to)
            .copied()
            .collect()
    }

    /// Register a callback to run after the durable prefix advances
    /// (event-driven WAL shipping: a server shard with live
    /// `SubscribeWal` streams registers its reactor waker here instead
    /// of polling the flushed LSN). The callback runs on the flushing
    /// thread and must be cheap and non-blocking — a wake, not work.
    /// Returns an id for [`LogManager::unregister_flush_waker`].
    pub fn register_flush_waker(&self, f: Box<dyn Fn() + Send + Sync>) -> u64 {
        let id = self.next_flush_waker_id.fetch_add(1, Ordering::AcqRel);
        let mut wakers = self.flush_wakers.write();
        wakers.push((id, f));
        self.has_flush_wakers.store(true, Ordering::Release);
        id
    }

    /// Remove a callback registered by
    /// [`LogManager::register_flush_waker`]. Unknown ids are a no-op.
    pub fn unregister_flush_waker(&self, id: u64) {
        let mut wakers = self.flush_wakers.write();
        wakers.retain(|(i, _)| *i != id);
        if wakers.is_empty() {
            self.has_flush_wakers.store(false, Ordering::Release);
        }
    }

    fn notify_flush_wakers(&self) {
        if !self.has_flush_wakers.load(Ordering::Acquire) {
            return;
        }
        for (_, f) in self.flush_wakers.read().iter() {
            f();
        }
    }

    /// Mark `tx` as an index-builder transaction for stats attribution.
    pub fn register_ib_tx(&self, tx: TxId) {
        self.ib_txs.write().push(tx);
        self.has_ib.store(true, Ordering::Release);
    }

    /// Segment `s`, allocating it on first touch.
    fn segment(&self, s: usize) -> &Segment {
        assert!(s < MAX_SEGMENTS, "log capacity exceeded");
        self.segs[s].get_or_init(|| {
            self.stats.segment_allocs.bump();
            Segment::new(SEGMENT_CAP << s)
        })
    }

    /// Record at physical slot `phys`, if published.
    fn slot(&self, phys: u64) -> Option<&Arc<LogRecord>> {
        let (s, off) = seg_slot(phys);
        self.segs[s].get().and_then(|seg| seg.slots[off].get())
    }

    /// Advance the contiguous published watermark past every slot that
    /// has been filled in. Any thread may help: each walks the slots
    /// privately and claims its verified extent with one `fetch_max`
    /// (every published value is a verified hole-free prefix, so the
    /// max of two claims still is — no per-slot CAS traffic).
    fn advance_published(&self) {
        let next = self.next.load(Ordering::Acquire);
        let mut p = self.published.load(Ordering::Acquire);
        if p >= next {
            return;
        }
        let epochs = self.epochs.read();
        let start = p;
        while p < next && self.slot(translate(&epochs, p)).is_some() {
            p += 1;
        }
        if p > start {
            self.published.fetch_max(p, Ordering::AcqRel);
        }
    }

    /// Append a record and return its LSN. LSNs are dense and start
    /// at 1 (so [`Lsn::NULL`] never names a record). The LSN is
    /// reserved with one `fetch_add`; the record is then published
    /// into its pre-addressed segment slot without taking any lock.
    pub fn append(&self, tx: TxId, prev: Lsn, kind: RecKind, payload: LogPayload) -> Lsn {
        let size = payload.encoded_size() as u64;
        // Build the record *before* reserving: every instruction
        // between reservation and publish is a hole in the log that
        // flushers must wait out (fatal if this thread is descheduled
        // in that window), so the allocation stays outside it and only
        // the LSN is patched in after.
        let mut rec = Arc::new(LogRecord {
            lsn: Lsn::NULL,
            tx,
            prev,
            kind,
            payload,
        });
        let idx = self.next.fetch_add(1, Ordering::AcqRel);
        let lsn = Lsn(idx + 1);
        Arc::get_mut(&mut rec)
            .expect("record not shared before publish")
            .lsn = lsn;
        let phys = idx - self.epoch_logical.load(Ordering::Acquire)
            + self.epoch_physical.load(Ordering::Acquire);
        let (s, off) = seg_slot(phys);
        let fresh = self.segment(s).slots[off].set(rec).is_ok();
        debug_assert!(fresh, "log slot {phys} double-published");
        self.stats.records.bump();
        self.stats.bytes.add(size);
        if self.has_ib.load(Ordering::Acquire) && self.ib_txs.read().contains(&tx) {
            self.stats.ib_records.bump();
            self.stats.ib_bytes.add(size);
        }
        if let Some(ctx) = mohan_obs::current_ctx() {
            if ctx.sampled {
                let mut tags = self.trace_tags.lock();
                if tags.len() >= TRACE_TAG_CAP {
                    tags.pop_front();
                }
                tags.push_back((lsn.0, ctx.trace_id));
            }
        }
        lsn
    }

    /// Highest LSN appended so far (contiguously published; trails
    /// in-flight appends by design).
    #[must_use]
    pub fn tail_lsn(&self) -> Lsn {
        self.advance_published();
        Lsn(self.published.load(Ordering::Acquire))
    }

    /// Highest durable LSN.
    #[must_use]
    pub fn flushed_lsn(&self) -> Lsn {
        Lsn(self.flushed.load(Ordering::Acquire))
    }

    /// Force the log up to and including `lsn` (flush-before-force
    /// WAL rule; no-op if already durable). Targets beyond the
    /// appended tail are clamped to it: waiting for an LSN nobody has
    /// reserved would spin forever, and once LSNs arrive over the wire
    /// (`SubscribeWal`) a stale or hostile target must not wedge a
    /// worker.
    ///
    /// Concurrent callers coalesce through the durable mark itself:
    /// whoever advances it forces up to the maximum requested LSN
    /// (clamped to the contiguous published prefix), and every caller
    /// whose target turns out to be covered by someone else's advance
    /// returns without forcing, counted in
    /// [`WalStats::group_flush_coalesced`]. Nobody blocks on a leader
    /// — with the force itself being one `fetch_max`, any
    /// waiting-room protocol (mutex + condvar) costs orders of
    /// magnitude more than the work it guards, and parked followers
    /// pay scheduler-quantum wake latencies on an oversubscribed box.
    pub fn flush_to(&self, lsn: Lsn) {
        // Clamp to the reserved tail: LSNs are dense, so LSN `n`
        // exists iff `n <= next`. Anything above can never publish.
        let target = lsn.0.min(self.next.load(Ordering::Acquire));
        if self.flushed.load(Ordering::Acquire) >= target {
            // Already durable — but under a sampled trace the causal
            // fact still matters: this request's records were flushed
            // by somebody else's group. Record the ride so the trace's
            // WAL hop never silently disappears when a concurrent
            // flusher wins the race.
            if mohan_obs::current_ctx().is_some_and(|c| c.sampled) {
                if let Some(sink) = self.trace_sink.get() {
                    sink.span_event("wal.flush", "coalesced", 0, target);
                }
            }
            return;
        }
        let started = std::time::Instant::now();
        self.flush_request.fetch_max(target, Ordering::AcqRel);
        // The durable prefix may not contain a hole, so wait until the
        // published prefix covers our own target — but *only* our own:
        // chasing the max request would turn every flush into a
        // barrier on all in-flight appends (a requester whose target
        // is still beyond the prefix forces its own advance next).
        // Holes below our target are appends a few instructions from
        // completion, unless their thread was descheduled on an
        // oversubscribed box — so bounded spinning degrades to
        // yielding them the core.
        let mut tries = 0u32;
        let goal = loop {
            self.advance_published();
            let p = self.published.load(Ordering::Acquire);
            if p >= target {
                break self
                    .flush_request
                    .load(Ordering::Acquire)
                    .min(p)
                    .max(target);
            }
            tries += 1;
            if tries < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        };
        let prev = self.flushed.fetch_max(goal, Ordering::AcqRel);
        if prev >= target {
            // Another caller's advance covered us in the meantime.
            self.stats.group_flush_coalesced.bump();
        } else {
            self.stats.flushes.bump();
            // Records this force made durable in one go: the group
            // batch another caller's fetch_max would otherwise split.
            self.stats.coalesce_depth.record(goal.saturating_sub(prev));
        }
        if goal > prev {
            // This call advanced the durable prefix (even a caller
            // counted as coalesced above can, when the group target
            // outran its own): listeners get exactly one wake per
            // actual advance.
            self.notify_flush_wakers();
        }
        let took = started.elapsed();
        self.stats.flush_us.record_micros(took);
        // Under a sampled trace, the flush-group wait becomes a span
        // of that trace (label says whether this call forced or rode
        // a coalesced group). Guarded on the context so untraced
        // flushes do not churn the bounded ring.
        if mohan_obs::current_ctx().is_some_and(|c| c.sampled) {
            if let Some(sink) = self.trace_sink.get() {
                let label = if prev >= target { "coalesced" } else { "force" };
                sink.span_event(
                    "wal.flush",
                    label,
                    took.as_micros().min(u128::from(u64::MAX)) as u64,
                    goal,
                );
            }
        }
    }

    /// Force the whole log.
    pub fn flush_all(&self) {
        self.flush_to(self.tail_lsn());
    }

    /// Fetch a record by LSN (used by undo chains). `None` for the
    /// null LSN or a truncated tail.
    #[must_use]
    pub fn get(&self, lsn: Lsn) -> Option<Arc<LogRecord>> {
        if !lsn.is_valid() || lsn.0 > self.next.load(Ordering::Acquire) {
            return None;
        }
        let idx = lsn.0 - 1;
        let phys = translate(&self.epochs.read(), idx);
        self.slot(phys).cloned()
    }

    /// Snapshot of up to `max` records in `(from, ..]` LSN order. The
    /// bounded form is what redo scans and the WAL-subscription
    /// tail-follower use, so catching up over a long log allocates in
    /// batches instead of one burst covering the whole suffix.
    #[must_use]
    pub fn scan_range(&self, from: Lsn, max: usize) -> Vec<Arc<LogRecord>> {
        let tail = self.tail_lsn().0;
        let epochs = self.epochs.read();
        (from.0..tail)
            .take(max)
            .map(|idx| {
                self.slot(translate(&epochs, idx))
                    .cloned()
                    .expect("record below published watermark must be set")
            })
            .collect()
    }

    /// Snapshot of all records in `(from, ..]` LSN order, for redo and
    /// analysis scans. Thin wrapper over [`LogManager::scan_range`].
    #[must_use]
    pub fn scan_from(&self, from: Lsn) -> Vec<Arc<LogRecord>> {
        self.scan_range(from, usize::MAX)
    }

    /// Simulated system failure: everything after the flushed prefix
    /// is gone. The truncated logical LSN range is remapped onto fresh
    /// physical slots (a published `OnceLock` slot cannot be un-set in
    /// place); the abandoned slots stay allocated until the log is
    /// dropped, bounded by the unflushed tail per crash.
    pub fn crash(&self) {
        let mut epochs = self.epochs.write();
        let flushed = self.flushed.load(Ordering::Acquire);
        let next = self.next.load(Ordering::Acquire);
        if next != flushed {
            let last = *epochs.last().expect("epoch table never empty");
            let phys_next = next - last.0 + last.1;
            if last.0 == flushed {
                // Nothing new was flushed since the previous crash:
                // the whole previous epoch burned, replace it.
                *epochs.last_mut().expect("epoch table never empty") = (flushed, phys_next);
            } else {
                epochs.push((flushed, phys_next));
            }
            self.epoch_logical.store(flushed, Ordering::Release);
            self.epoch_physical.store(phys_next, Ordering::Release);
            self.next.store(flushed, Ordering::Release);
            self.published.store(flushed, Ordering::Release);
        }
        self.flush_request.store(flushed, Ordering::Release);
        self.ib_txs.write().clear();
        self.has_ib.store(false, Ordering::Release);
        // Truncated LSNs get reused densely; attribution for the
        // burned tail would name records that no longer exist.
        self.trace_tags.lock().retain(|&(lsn, _)| lsn <= flushed);
    }
}

impl std::fmt::Debug for LogManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogManager")
            .field("tail", &self.tail_lsn())
            .field("flushed", &self.flushed_lsn())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(log: &LogManager, tx: u64) -> Lsn {
        log.append(TxId(tx), Lsn::NULL, RecKind::RedoOnly, LogPayload::TxBegin)
    }

    #[test]
    fn appends_under_sampled_ctx_are_tagged_and_crash_prunes() {
        let log = LogManager::new();
        begin(&log, 1); // untraced → no tag
        let ctx = mohan_obs::TraceCtx {
            trace_id: 0xabcd,
            span_id: 0,
            sampled: true,
        };
        {
            let _g = mohan_obs::install_ctx(ctx);
            begin(&log, 2); // lsn 2, tagged
            begin(&log, 3); // lsn 3, tagged
        }
        {
            let _g = mohan_obs::install_ctx(mohan_obs::TraceCtx {
                sampled: false,
                ..ctx
            });
            begin(&log, 4); // unsampled → no tag
        }
        assert_eq!(log.trace_tags_for(1, 10), vec![(2, 0xabcd), (3, 0xabcd)]);
        assert_eq!(log.trace_tags_for(3, 3), vec![(3, 0xabcd)]);
        assert!(log.trace_tags_for(5, 10).is_empty());
        // Crash with lsn 2 durable: the tag for burned lsn 3 must go.
        log.flush_to(Lsn(2));
        log.crash();
        assert_eq!(log.trace_tags_for(1, 10), vec![(2, 0xabcd)]);
    }

    #[test]
    fn lsns_are_dense_from_one() {
        let log = LogManager::new();
        assert_eq!(begin(&log, 1), Lsn(1));
        assert_eq!(begin(&log, 2), Lsn(2));
        assert_eq!(log.tail_lsn(), Lsn(2));
    }

    #[test]
    fn seg_slot_addresses_doubling_segments() {
        assert_eq!(seg_slot(0), (0, 0));
        assert_eq!(seg_slot(SEGMENT_CAP as u64 - 1), (0, SEGMENT_CAP - 1));
        assert_eq!(seg_slot(SEGMENT_CAP as u64), (1, 0));
        assert_eq!(
            seg_slot(3 * SEGMENT_CAP as u64 - 1),
            (1, 2 * SEGMENT_CAP - 1)
        );
        assert_eq!(seg_slot(3 * SEGMENT_CAP as u64), (2, 0));
        assert_eq!(seg_slot(7 * SEGMENT_CAP as u64), (3, 0));
    }

    #[test]
    fn crash_truncates_to_flushed_prefix() {
        let log = LogManager::new();
        begin(&log, 1);
        begin(&log, 2);
        log.flush_to(Lsn(1));
        begin(&log, 3);
        log.crash();
        assert_eq!(log.tail_lsn(), Lsn(1));
        assert!(log.get(Lsn(2)).is_none());
        assert_eq!(log.get(Lsn(1)).unwrap().tx, TxId(1));
    }

    #[test]
    fn flush_is_monotone() {
        let log = LogManager::new();
        begin(&log, 1);
        begin(&log, 1);
        log.flush_to(Lsn(2));
        log.flush_to(Lsn(1)); // no-op, must not regress
        assert_eq!(log.flushed_lsn(), Lsn(2));
    }

    #[test]
    fn prev_chain_walk() {
        let log = LogManager::new();
        let l1 = begin(&log, 7);
        let l2 = log.append(
            TxId(7),
            l1,
            RecKind::UndoRedo,
            LogPayload::Checkpoint {
                redo_start: Lsn::NULL,
            },
        );
        let rec = log.get(l2).unwrap();
        assert_eq!(rec.prev, l1);
        assert_eq!(log.get(rec.prev).unwrap().lsn, l1);
    }

    #[test]
    fn flush_beyond_tail_clamps_instead_of_hanging() {
        let log = LogManager::new();
        begin(&log, 1);
        begin(&log, 2);
        // An LSN far beyond anything appended must not spin forever;
        // it clamps to the appended tail.
        log.flush_to(Lsn(1_000_000));
        assert_eq!(log.flushed_lsn(), Lsn(2));
        // And on an empty log it is a no-op.
        let empty = LogManager::new();
        empty.flush_to(Lsn(42));
        assert_eq!(empty.flushed_lsn(), Lsn::NULL);
    }

    #[test]
    fn scan_range_bounds_the_batch() {
        let log = LogManager::new();
        for i in 0..10 {
            begin(&log, i);
        }
        let batch = log.scan_range(Lsn(2), 3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].lsn, Lsn(3));
        assert_eq!(batch[2].lsn, Lsn(5));
        // A batch past the tail is empty; a huge max returns the rest.
        assert!(log.scan_range(Lsn(10), 100).is_empty());
        assert_eq!(log.scan_range(Lsn(5), usize::MAX).len(), 5);
    }

    #[test]
    fn ib_attribution() {
        let log = LogManager::new();
        log.register_ib_tx(TxId(99));
        begin(&log, 1);
        begin(&log, 99);
        assert_eq!(log.stats.records.get(), 2);
        assert_eq!(log.stats.ib_records.get(), 1);
        assert!(log.stats.ib_bytes.get() > 0);
    }

    #[test]
    fn scan_from_returns_suffix() {
        let log = LogManager::new();
        for i in 0..5 {
            begin(&log, i);
        }
        let suffix = log.scan_from(Lsn(3));
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].lsn, Lsn(4));
    }

    #[test]
    fn concurrent_appends_get_unique_lsns() {
        let log = Arc::new(LogManager::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| begin(&log, t).0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400);
    }

    #[test]
    fn appends_cross_segment_boundaries() {
        let log = LogManager::new();
        let n = SEGMENT_CAP as u64 + 5;
        for i in 0..n {
            begin(&log, i);
        }
        assert_eq!(log.tail_lsn(), Lsn(n));
        assert!(log.stats.segment_allocs.get() >= 2);
        // Reads across the boundary.
        let boundary = SEGMENT_CAP as u64;
        assert_eq!(log.get(Lsn(boundary)).unwrap().tx, TxId(boundary - 1));
        assert_eq!(log.get(Lsn(boundary + 1)).unwrap().tx, TxId(boundary));
        let suffix = log.scan_from(Lsn(boundary - 1));
        assert_eq!(suffix.len(), 6);
        assert_eq!(suffix[0].lsn, Lsn(boundary));
    }

    #[test]
    fn crash_mid_segment_keeps_earlier_segments() {
        let log = LogManager::new();
        let n = SEGMENT_CAP as u64 + 10;
        for i in 0..n {
            begin(&log, i);
        }
        let cut = SEGMENT_CAP as u64 + 3;
        log.flush_to(Lsn(cut));
        log.crash();
        assert_eq!(log.tail_lsn(), Lsn(cut));
        assert_eq!(log.get(Lsn(cut)).unwrap().tx, TxId(cut - 1));
        assert!(log.get(Lsn(cut + 1)).is_none());
        // New appends reuse the truncated LSN range densely.
        assert_eq!(begin(&log, 77), Lsn(cut + 1));
    }

    #[test]
    fn repeated_crashes_keep_old_records_readable() {
        let log = LogManager::new();
        for i in 0..10 {
            begin(&log, i);
        }
        log.flush_to(Lsn(4));
        log.crash(); // burns LSNs 5..=10
        assert_eq!(begin(&log, 100), Lsn(5));
        begin(&log, 101);
        log.flush_to(Lsn(6));
        begin(&log, 102);
        log.crash(); // burns LSN 7
                     // Records from three different epochs all resolve.
        assert_eq!(log.get(Lsn(3)).unwrap().tx, TxId(2));
        assert_eq!(log.get(Lsn(5)).unwrap().tx, TxId(100));
        assert_eq!(log.get(Lsn(6)).unwrap().tx, TxId(101));
        assert!(log.get(Lsn(7)).is_none());
        assert_eq!(begin(&log, 103), Lsn(7));
        assert_eq!(log.scan_from(Lsn::NULL).len(), 7);
        assert_eq!(log.tail_lsn(), Lsn(7));
    }

    #[test]
    fn crash_with_nothing_flushed_resets_to_empty() {
        let log = LogManager::new();
        begin(&log, 1);
        begin(&log, 2);
        log.crash();
        assert_eq!(log.tail_lsn(), Lsn::NULL);
        assert!(log.get(Lsn(1)).is_none());
        assert_eq!(begin(&log, 3), Lsn(1));
        assert_eq!(log.get(Lsn(1)).unwrap().tx, TxId(3));
    }

    #[test]
    fn single_threaded_flushes_never_coalesce() {
        let log = LogManager::new();
        begin(&log, 1);
        begin(&log, 1);
        log.flush_to(Lsn(1));
        log.flush_to(Lsn(2));
        log.flush_to(Lsn(2));
        assert_eq!(log.stats.flushes.get(), 2);
        assert_eq!(log.stats.group_flush_coalesced.get(), 0);
    }

    #[test]
    fn concurrent_flushes_reach_tail_and_account_every_call() {
        let log = Arc::new(LogManager::new());
        let threads = 8u64;
        let per = 50u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        let lsn = begin(&log, t);
                        log.flush_to(lsn);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let tail = threads * per;
        assert_eq!(log.tail_lsn(), Lsn(tail));
        assert_eq!(log.flushed_lsn(), Lsn(tail));
        // Every flush_to call either advanced the prefix itself, was
        // absorbed into a leader's group flush, or returned early
        // because its target was already durable; never more forces
        // than calls.
        let forces = log.stats.flushes.get();
        let coalesced = log.stats.group_flush_coalesced.get();
        assert!(forces >= 1);
        assert!(forces + coalesced <= threads * per);
    }
}
