//! Criterion bench: record DML throughput with 0..3 maintained
//! indexes (the per-update index-maintenance cost E6 measures during
//! builds, here at steady state).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mohan_bench::workload::{bench_config, seed_table, TABLE};
use mohan_oib::build::{build_indexes, IndexSpec};
use mohan_oib::schema::{BuildAlgorithm, Record};
use mohan_oib::Db;
use std::sync::Arc;

fn setup(indexes: usize) -> Arc<Db> {
    let (db, _) = seed_table(bench_config(), 5_000, 3);
    if indexes > 0 {
        let specs: Vec<IndexSpec> = (0..indexes)
            .map(|i| IndexSpec {
                name: format!("i{i}"),
                key_cols: vec![i % 2],
                unique: false,
            })
            .collect();
        build_indexes(&db, TABLE, &specs, BuildAlgorithm::Sf).expect("build");
    }
    db
}

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_record");
    for indexes in [0usize, 1, 3] {
        let db = setup(indexes);
        let mut k = 50_000_000i64;
        group.bench_with_input(
            BenchmarkId::new("maintained_indexes", indexes),
            &indexes,
            |b, _| {
                b.iter(|| {
                    k += 1;
                    let tx = db.begin();
                    db.insert_record(tx, TABLE, &Record::new(vec![k, 1]))
                        .expect("insert");
                    db.commit(tx).expect("commit");
                });
            },
        );
    }
    group.finish();
}

fn bench_delete_insert_cycle(c: &mut Criterion) {
    let db = setup(1);
    let mut k = 90_000_000i64;
    c.bench_function("delete_insert_cycle_1_index", |b| {
        b.iter(|| {
            k += 1;
            let tx = db.begin();
            let rid = db
                .insert_record(tx, TABLE, &Record::new(vec![k, 1]))
                .expect("insert");
            db.commit(tx).expect("commit");
            let tx = db.begin();
            db.delete_record(tx, TABLE, rid).expect("delete");
            db.commit(tx).expect("commit");
        });
    });
}

criterion_group!(benches, bench_inserts, bench_delete_insert_cycle);
criterion_main!(benches);
