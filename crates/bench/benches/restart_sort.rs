//! Criterion bench for E7's substrate: restartable-sort throughput
//! with and without checkpoint overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mohan_common::{IndexEntry, Rid};
use mohan_sort::{ExternalSort, RunFormation, RunStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn keys(n: u64) -> Vec<IndexEntry> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..n)
        .map(|i| {
            IndexEntry::from_i64(
                rng.random_range(0..10_000_000),
                Rid::new((i / 100) as u32, (i % 100) as u16),
            )
        })
        .collect()
}

fn bench_run_formation(c: &mut Criterion) {
    let input = keys(50_000);
    let mut group = c.benchmark_group("sort_50k_keys");
    group.sample_size(10);
    for interval in [0u64, 2_000, 10_000] {
        let label = if interval == 0 {
            "no checkpoints".into()
        } else {
            format!("cp every {interval}")
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &interval,
            |b, &interval| {
                b.iter(|| {
                    let store: Arc<RunStore<IndexEntry>> = Arc::new(RunStore::new());
                    let mut rf = RunFormation::new(Arc::clone(&store), 1024);
                    for (i, e) in input.iter().enumerate() {
                        rf.push(e.clone(), i as u64 + 1).expect("push");
                        if interval != 0 && (i as u64 + 1).is_multiple_of(interval) {
                            rf.checkpoint().expect("checkpoint");
                        }
                    }
                    rf.finish().expect("finish").len()
                });
            },
        );
    }
    group.finish();
}

fn bench_full_sort(c: &mut Criterion) {
    let input = keys(50_000);
    c.bench_function("external_sort_full_50k", |b| {
        b.iter(|| {
            let ext: ExternalSort<IndexEntry> = ExternalSort::new(1024, 8, 10_000);
            ext.sort_all(input.iter().cloned()).expect("sort").len()
        });
    });
}

criterion_group!(benches, bench_run_formation, bench_full_sort);
criterion_main!(benches);
