//! Criterion bench: round-trip time over the loopback service path —
//! what one client-observed operation costs once framing, admission
//! control, and a worker shard sit between the caller and the engine.
//!
//! `ping` isolates the pure wire + scheduling floor; `insert` and
//! `read` add a full auto-commit statement; `insert_while_sf_builds`
//! is the E16 claim as a latency number: the same DML RTT while an SF
//! build streams progress on another connection.

use criterion::{criterion_group, criterion_main, Criterion};
use mohan_bench::workload::{bench_config, seed_table, TABLE};
use mohan_client::Client;
use mohan_server::{Server, ServerConfig};
use mohan_wire::message::{BuildAlgo, IndexSpecWire};

fn server() -> (Server, String) {
    let (db, _) = seed_table(bench_config(), 5_000, 3);
    let srv = Server::start(db, ServerConfig::default()).expect("bind");
    let addr = srv.addr().to_string();
    (srv, addr)
}

fn bench_ping(c: &mut Criterion) {
    let (srv, addr) = server();
    let mut client = Client::connect(&addr).expect("connect");
    c.bench_function("server_rtt_ping", |b| {
        b.iter(|| client.ping().expect("ping"));
    });
    drop(client);
    srv.drain();
}

fn bench_dml(c: &mut Criterion) {
    let (srv, addr) = server();
    let mut client = Client::connect(&addr).expect("connect");
    let mut k = 50_000_000i64;
    c.bench_function("server_rtt_insert", |b| {
        b.iter(|| {
            k += 1;
            client.insert(TABLE, vec![k, 1]).expect("insert")
        });
    });
    let rid = client.insert(TABLE, vec![k + 1, 1]).expect("insert");
    c.bench_function("server_rtt_read", |b| {
        b.iter(|| client.read(TABLE, rid).expect("read"));
    });
    drop(client);
    srv.drain();
}

fn bench_insert_during_build(c: &mut Criterion) {
    let (srv, addr) = server();
    let mut client = Client::connect(&addr).expect("connect");
    // Run the SF build on its own connection; it holds its admission
    // slot until done, so DML below shares the server with it.
    let addr2 = addr.clone();
    let builder = std::thread::spawn(move || {
        let mut b = Client::connect(&addr2).expect("connect");
        b.create_index(
            TABLE,
            BuildAlgo::Sf,
            vec![IndexSpecWire {
                name: "rtt_sf".into(),
                key_cols: vec![0],
                unique: false,
            }],
            |_, _, _| {},
        )
        .expect("build")
    });
    let mut k = 90_000_000i64;
    c.bench_function("server_rtt_insert_while_sf_builds", |b| {
        b.iter(|| {
            k += 1;
            client.insert(TABLE, vec![k, 1]).expect("insert")
        });
    });
    builder.join().expect("builder thread");
    drop(client);
    srv.drain();
}

criterion_group!(benches, bench_ping, bench_dml, bench_insert_during_build);
criterion_main!(benches);
