//! Criterion bench for E1: index build wall-clock by algorithm
//! (quiet table — deterministic timing; the churned variant lives in
//! the `experiments` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mohan_bench::workload::{bench_config, seed_table, TABLE};
use mohan_oib::build::{build_index, IndexSpec};
use mohan_oib::schema::BuildAlgorithm;

fn bench_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for n in [5_000i64, 20_000] {
        for algo in [
            BuildAlgorithm::Offline,
            BuildAlgorithm::Nsf,
            BuildAlgorithm::Sf,
        ] {
            group.bench_with_input(BenchmarkId::new(format!("{algo:?}"), n), &n, |b, &n| {
                b.iter_batched(
                    || seed_table(bench_config(), n, 1).0,
                    |db| {
                        build_index(
                            &db,
                            TABLE,
                            IndexSpec {
                                name: "b".into(),
                                key_cols: vec![0],
                                unique: false,
                            },
                            algo,
                        )
                        .expect("build")
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
