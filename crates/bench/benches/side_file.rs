//! Criterion bench: side-file append vs direct tree maintenance — the
//! §4 claim that SF's transaction-side cost during the build is an
//! append, not a traversal.

use criterion::{criterion_group, criterion_main, Criterion};
use mohan_btree::{BTree, BTreeConfig, InsertMode};
use mohan_common::{FileId, IndexEntry, Rid};
use mohan_oib::side_file::SideFile;
use mohan_wal::SideFileOp;

fn entry(k: i64) -> IndexEntry {
    IndexEntry::from_i64(k, Rid::new((k / 100) as u32, (k % 100) as u16))
}

fn bench_append_vs_tree(c: &mut Criterion) {
    let sf = SideFile::new();
    let mut k = 0i64;
    c.bench_function("side_file_append", |b| {
        b.iter(|| {
            k += 1;
            sf.append(SideFileOp {
                insert: true,
                entry: entry(k),
            })
        });
    });

    let tree = BTree::create(
        FileId(2),
        BTreeConfig {
            page_size: 2048,
            fill_factor: 0.9,
            unique: false,
            hint_enabled: false,
        },
    );
    // Pre-populate so traversals have realistic depth.
    for k in 0..50_000i64 {
        tree.insert(entry(k * 2), InsertMode::Ib).expect("insert");
    }
    let mut k = 0i64;
    c.bench_function("direct_tree_insert_in_50k", |b| {
        b.iter(|| {
            k += 1;
            tree.insert(entry(k * 2 + 1), InsertMode::Transaction)
                .expect("insert")
        });
    });
}

fn bench_drain_read(c: &mut Criterion) {
    let sf = SideFile::new();
    for k in 0..100_000i64 {
        sf.append(SideFileOp {
            insert: true,
            entry: entry(k),
        });
    }
    c.bench_function("side_file_read_batch_512", |b| {
        let mut pos = 0u64;
        b.iter(|| {
            let batch = sf.read(pos, 512);
            pos = (pos + batch.len() as u64) % 99_000;
            batch.len()
        });
    });
}

criterion_group!(benches, bench_append_vs_tree, bench_drain_read);
criterion_main!(benches);
