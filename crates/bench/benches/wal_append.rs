//! Criterion bench: WAL append scaling — LSN reservation + segment
//! publish vs the old single-`RwLock<Vec<_>>` design, at 1/2/4/8
//! appender threads.
//!
//! Each sample performs the same total number of appends
//! (`TOTAL_APPENDS`) split across the thread count, so the times are
//! directly comparable: a flat line across thread counts means the
//! appenders are not serializing. The `baseline` rows rebuild the old
//! design in-bench (one lock around a `Vec` tail) so the comparison
//! survives the old code's removal.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mohan_common::{Lsn, TxId};
use mohan_wal::record::{LogPayload, LogRecord, RecKind};
use mohan_wal::LogManager;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const TOTAL_APPENDS: usize = 16_384;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The pre-sharding log manager: every append takes one write lock on
/// the whole tail.
struct BaselineLog {
    records: RwLock<Vec<Arc<LogRecord>>>,
    flushed: AtomicU64,
}

impl BaselineLog {
    fn new() -> BaselineLog {
        BaselineLog {
            records: RwLock::new(Vec::new()),
            flushed: AtomicU64::new(0),
        }
    }

    fn append(&self, tx: TxId) -> Lsn {
        let mut recs = self.records.write();
        let lsn = Lsn(recs.len() as u64 + 1);
        recs.push(Arc::new(LogRecord {
            lsn,
            tx,
            prev: Lsn::NULL,
            kind: RecKind::RedoOnly,
            payload: LogPayload::TxBegin,
        }));
        lsn
    }

    fn flush_to(&self, lsn: Lsn) {
        let mut cur = self.flushed.load(Ordering::Acquire);
        while cur < lsn.0 {
            match self
                .flushed
                .compare_exchange(cur, lsn.0, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

fn append_new(log: &LogManager, tx: TxId) -> Lsn {
    log.append(tx, Lsn::NULL, RecKind::RedoOnly, LogPayload::TxBegin)
}

/// Split `TOTAL_APPENDS` across `threads` workers hammering `op`.
fn fan_out<L: Sync>(log: &L, threads: usize, op: impl Fn(&L, u64, usize) + Sync) {
    let per = TOTAL_APPENDS / threads;
    std::thread::scope(|s| {
        for t in 0..threads {
            let op = &op;
            s.spawn(move || {
                for i in 0..per {
                    op(log, t as u64, i);
                }
            });
        }
    });
}

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_append");
    g.sample_size(25);
    for threads in THREADS {
        // Finished logs are parked here so their teardown (hundreds of
        // thousands of Arc drops) stays out of the timed region.
        let mut parked: Vec<Arc<BaselineLog>> = Vec::new();
        g.bench_with_input(
            BenchmarkId::new("baseline", threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || Arc::new(BaselineLog::new()),
                    |log| {
                        fan_out(&*log, threads, |l, t, _| {
                            l.append(TxId(t));
                        });
                        parked.push(log);
                    },
                    BatchSize::LargeInput,
                );
            },
        );
        let mut parked: Vec<Arc<LogManager>> = Vec::new();
        g.bench_with_input(
            BenchmarkId::new("sharded", threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || Arc::new(LogManager::new()),
                    |log| {
                        fan_out(&*log, threads, |l, t, _| {
                            append_new(l, TxId(t));
                        });
                        parked.push(log);
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    g.finish();
}

/// Append + group-commit-style flush every 64 records: the flush path
/// is where concurrent callers coalesce instead of each re-forcing.
fn bench_append_flush(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_append_flush64");
    g.sample_size(25);
    let threads = 4usize;
    {
        let mut parked: Vec<Arc<BaselineLog>> = Vec::new();
        g.bench_with_input(
            BenchmarkId::new("baseline", threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || Arc::new(BaselineLog::new()),
                    |log| {
                        fan_out(&*log, threads, |l, t, i| {
                            let lsn = l.append(TxId(t));
                            if i % 64 == 63 {
                                l.flush_to(lsn);
                            }
                        });
                        parked.push(log);
                    },
                    BatchSize::LargeInput,
                );
            },
        );
        let mut parked: Vec<Arc<LogManager>> = Vec::new();
        let mut coalesced = (0u64, 0u64); // (coalesced, forces)
        g.bench_with_input(
            BenchmarkId::new("sharded", threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || Arc::new(LogManager::new()),
                    |log| {
                        fan_out(&*log, threads, |l, t, i| {
                            let lsn = append_new(l, TxId(t));
                            if i % 64 == 63 {
                                l.flush_to(lsn);
                            }
                        });
                        coalesced.0 += log.stats.group_flush_coalesced.get();
                        coalesced.1 += log.stats.flushes.get();
                        parked.push(log);
                    },
                    BatchSize::LargeInput,
                );
            },
        );
        println!(
            "wal_append_flush64/sharded/{threads}: {} forces, {} coalesced",
            coalesced.1, coalesced.0
        );
    }
    g.finish();
}

criterion_group!(benches, bench_append, bench_append_flush);
criterion_main!(benches);
