//! Criterion bench for E3's substrate: B+-tree insert pathlength —
//! transaction inserts, IB inserts with the remembered path, and the
//! ablated (no-hint) variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mohan_btree::{BTree, BTreeConfig, InsertMode};
use mohan_common::{FileId, IndexEntry, Rid};

fn tree(hint: bool) -> BTree {
    BTree::create(
        FileId(1),
        BTreeConfig {
            page_size: 2048,
            fill_factor: 0.9,
            unique: false,
            hint_enabled: hint,
        },
    )
}

fn entry(k: i64) -> IndexEntry {
    IndexEntry::from_i64(k, Rid::new((k / 100) as u32, (k % 100) as u16))
}

fn bench_inserts(c: &mut Criterion) {
    let n = 10_000i64;
    let mut group = c.benchmark_group("btree_insert_10k_sorted_keys");
    group.sample_size(10);
    for (label, mode, hint) in [
        ("transaction", InsertMode::Transaction, true),
        ("ib_remembered_path", InsertMode::Ib, true),
        ("ib_no_hint", InsertMode::Ib, false),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &n, |b, &n| {
            b.iter_batched(
                || tree(hint),
                |t| {
                    for k in 0..n {
                        t.insert(entry(k), mode).expect("insert");
                    }
                    t
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let t = tree(true);
    for k in 0..50_000i64 {
        t.insert(entry(k), InsertMode::Ib).expect("insert");
    }
    c.bench_function("btree_lookup_exact_in_50k", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7_919) % 50_000;
            t.lookup_exact(&entry(k)).expect("lookup")
        });
    });
}

criterion_group!(benches, bench_inserts, bench_lookup);
criterion_main!(benches);
