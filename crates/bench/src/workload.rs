//! Workload generation and the concurrent-updater (churn) driver used
//! by every experiment.

use mohan_common::stats::Counter;
use mohan_common::{EngineConfig, Rid, TableId};
use mohan_oib::schema::Record;
use mohan_oib::Db;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The table id every experiment uses.
pub const TABLE: TableId = TableId(1);

/// Engine configuration for experiments: realistic page sizes, but
/// checkpoint intervals scaled so laptop-sized tables still exercise
/// multiple checkpoints.
#[must_use]
pub fn bench_config() -> EngineConfig {
    EngineConfig {
        data_page_size: 4096,
        index_page_size: 2048,
        sort_checkpoint_every_keys: 5_000,
        merge_checkpoint_every_keys: 5_000,
        ib_checkpoint_every_keys: 5_000,
        sort_workspace_keys: 1024,
        merge_fan_in: 8,
        lock_timeout_ms: 10_000,
        ..EngineConfig::default()
    }
}

/// Create a [`Db`] with one table seeded with `rows` records
/// (`col0 = 0..rows` as the key, `col1` a payload). Returns the engine
/// and the RIDs.
pub fn seed_table(cfg: EngineConfig, rows: i64, seed: u64) -> (Arc<Db>, Vec<Rid>) {
    let db = Db::new(cfg);
    db.create_table(TABLE);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rids = Vec::with_capacity(rows as usize);
    let mut tx = db.begin();
    for k in 0..rows {
        let payload = rng.random_range(0..1_000_000);
        rids.push(
            db.insert_record(tx, TABLE, &Record::new(vec![k, payload]))
                .expect("seed insert"),
        );
        if k % 5_000 == 4_999 {
            db.commit(tx).expect("seed commit");
            tx = db.begin();
        }
    }
    db.commit(tx).expect("seed commit");
    (db, rids)
}

/// Churn parameters.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Updater threads.
    pub threads: usize,
    /// Target operations per second per thread (`None` = unthrottled).
    pub ops_per_sec: Option<u64>,
    /// Fraction of transactions rolled back.
    pub rollback_fraction: f64,
    /// Insert / delete / update weights.
    pub mix: (u32, u32, u32),
    /// RNG seed base.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            threads: 2,
            ops_per_sec: None,
            rollback_fraction: 0.1,
            mix: (1, 1, 1),
            seed: 42,
        }
    }
}

/// Aggregated churn outcome.
#[derive(Debug, Clone, Default)]
pub struct ChurnStats {
    /// Committed operations.
    pub ops: u64,
    /// Transactions rolled back on purpose.
    pub rollbacks: u64,
    /// Operations that failed (lock timeouts etc.).
    pub errors: u64,
    /// Total operation latency (for mean latency).
    pub total_latency: Duration,
    /// Wall-clock the churn ran.
    pub elapsed: Duration,
}

impl ChurnStats {
    /// Committed operations per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Mean latency per operation.
    #[must_use]
    pub fn mean_latency(&self) -> Duration {
        if self.ops == 0 {
            Duration::ZERO
        } else {
            self.total_latency / (self.ops as u32).max(1)
        }
    }
}

/// A running churn; stop it to collect the stats.
pub struct ChurnHandle {
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<ChurnStats>>,
    started: Instant,
    /// Live committed-op counter, readable while the churn runs (used
    /// to window throughput to exactly a build's duration).
    pub ops_live: Arc<Counter>,
}

impl ChurnHandle {
    /// Signal all updaters and collect their aggregated stats.
    pub fn stop(self) -> ChurnStats {
        self.stop.store(true, Ordering::Relaxed);
        let elapsed = self.started.elapsed();
        let mut agg = ChurnStats {
            elapsed,
            ..ChurnStats::default()
        };
        for h in self.handles {
            let s = h.join().expect("churn thread");
            agg.ops += s.ops;
            agg.rollbacks += s.rollbacks;
            agg.errors += s.errors;
            agg.total_latency += s.total_latency;
        }
        agg
    }
}

/// Launch churn threads over `rids` (each thread owns a disjoint slice
/// of the seeded records plus its own key range for inserts).
pub fn start_churn(db: &Arc<Db>, rids: &[Rid], cfg: ChurnConfig) -> ChurnHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let ops_live = Arc::new(Counter::new());
    let shared: Vec<Arc<Mutex<Vec<Rid>>>> = rids
        .chunks(rids.len().max(1) / cfg.threads.max(1) + 1)
        .map(|c| Arc::new(Mutex::new(c.to_vec())))
        .collect();
    let mut handles = Vec::with_capacity(cfg.threads);
    for t in 0..cfg.threads {
        let db = Arc::clone(db);
        let stop = Arc::clone(&stop);
        let mine = shared
            .get(t)
            .cloned()
            .unwrap_or_else(|| Arc::new(Mutex::new(Vec::new())));
        let cfg = cfg.clone();
        let ops_live = Arc::clone(&ops_live);
        handles.push(std::thread::spawn(move || {
            churn_thread(&db, &stop, &mine, &cfg, t as u64, &ops_live)
        }));
    }
    ChurnHandle {
        stop,
        handles,
        started: Instant::now(),
        ops_live,
    }
}

fn churn_thread(
    db: &Arc<Db>,
    stop: &AtomicBool,
    mine: &Mutex<Vec<Rid>>,
    cfg: &ChurnConfig,
    thread_no: u64,
    ops_live: &Counter,
) -> ChurnStats {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(7919).wrapping_add(thread_no));
    let mut stats = ChurnStats::default();
    let mut next_key = 10_000_000 + (thread_no as i64) * 100_000_000;
    let (wi, wd, wu) = cfg.mix;
    let total_w = wi + wd + wu;
    let pacing = cfg
        .ops_per_sec
        .map(|r| Duration::from_secs_f64(1.0 / r as f64));

    while !stop.load(Ordering::Relaxed) {
        let roll = rng.random_bool(cfg.rollback_fraction);
        let tx = db.begin();
        let started = Instant::now();
        let pick = rng.random_range(0..total_w);
        let mut local = mine.lock();
        let res = if pick < wi || local.is_empty() {
            next_key += 1;
            db.insert_record(tx, TABLE, &Record::new(vec![next_key, 7]))
                .map(|rid| {
                    if !roll {
                        local.push(rid);
                    }
                })
        } else if pick < wi + wd {
            let i = rng.random_range(0..local.len());
            let rid = local[i];
            db.delete_record(tx, TABLE, rid).map(|_| {
                if !roll {
                    local.swap_remove(i);
                }
            })
        } else {
            let rid = local[rng.random_range(0..local.len())];
            next_key += 1;
            db.update_record(tx, TABLE, rid, &Record::new(vec![next_key, 9]))
                .map(|_| ())
        };
        drop(local);
        match res {
            Ok(()) => {
                if roll {
                    let _ = db.rollback(tx);
                    stats.rollbacks += 1;
                } else if db.commit(tx).is_ok() {
                    stats.ops += 1;
                    ops_live.bump();
                    stats.total_latency += started.elapsed();
                }
            }
            Err(_) => {
                let _ = db.rollback(tx);
                stats.errors += 1;
            }
        }
        if let Some(p) = pacing {
            std::thread::sleep(p);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mohan_oib::verify::verify_all;

    #[test]
    fn seed_and_churn_roundtrip() {
        let (db, rids) = seed_table(EngineConfig::small(), 200, 1);
        assert_eq!(rids.len(), 200);
        let churn = start_churn(
            &db,
            &rids,
            ChurnConfig {
                threads: 2,
                ..ChurnConfig::default()
            },
        );
        std::thread::sleep(Duration::from_millis(50));
        let stats = churn.stop();
        assert!(stats.ops > 0);
        assert_eq!(db.active_txs(), 0);
        // No index yet; verify_all trivially passes.
        assert_eq!(verify_all(&db, TABLE).unwrap(), 0);
    }

    #[test]
    fn throttled_churn_is_slower() {
        let (db, rids) = seed_table(EngineConfig::small(), 100, 2);
        let churn = start_churn(
            &db,
            &rids,
            ChurnConfig {
                threads: 1,
                ops_per_sec: Some(100),
                ..ChurnConfig::default()
            },
        );
        std::thread::sleep(Duration::from_millis(200));
        let stats = churn.stop();
        assert!(stats.ops < 60, "throttle failed: {} ops", stats.ops);
    }
}
