//! E14: the §6.2 storage-model extension — building a secondary index
//! by scanning the clustering primary index with a current-*key*
//! cursor.

use crate::report::Table;
use crate::workload::{bench_config, seed_table, start_churn, ChurnConfig, TABLE};
use mohan_oib::build::{build_index, IndexSpec};
use mohan_oib::primary::build_secondary_via_primary;
use mohan_oib::schema::BuildAlgorithm;
use mohan_oib::verify::verify_index;

/// E14: primary-model SF build under churn, verified against the
/// table; compares entry counts and side-file traffic with the
/// RID-based build of the same index.
pub fn e14_primary_model(quick: bool) -> Vec<Table> {
    let n: i64 = if quick { 3_000 } else { 10_000 };
    let mut t = Table::new(
        "E14: SF via the primary index (current-key cursor, §6.2)",
        &["scan cursor", "entries", "side-file appends", "verified"],
    );

    // RID-based reference.
    {
        let (db, rids) = seed_table(bench_config(), n, 140);
        let churn = start_churn(
            &db,
            &rids,
            // Inserts and deletes only: the primary key must stay put.
            ChurnConfig {
                threads: 2,
                mix: (1, 1, 0),
                ..ChurnConfig::default()
            },
        );
        let idx = build_index(
            &db,
            TABLE,
            IndexSpec {
                name: "by_payload".into(),
                key_cols: vec![1],
                unique: false,
            },
            BuildAlgorithm::Sf,
        )
        .expect("build");
        churn.stop();
        verify_index(&db, idx).expect("verify");
        let rt = db.index(idx).expect("idx");
        let entries = mohan_btree::scan::collect_all(&rt.tree, false)
            .expect("scan")
            .len();
        t.row(vec![
            "Current-RID (heap scan)".into(),
            entries.to_string(),
            rt.side_file.appended.get().to_string(),
            "true".into(),
        ]);
    }

    // Key-cursor build over a clustering primary.
    {
        let (db, rids) = seed_table(bench_config(), n, 140);
        let primary = build_index(
            &db,
            TABLE,
            IndexSpec {
                name: "pk".into(),
                key_cols: vec![0],
                unique: true,
            },
            BuildAlgorithm::Offline,
        )
        .expect("primary");
        let churn = start_churn(
            &db,
            &rids,
            ChurnConfig {
                threads: 2,
                mix: (1, 1, 0),
                ..ChurnConfig::default()
            },
        );
        let idx = build_secondary_via_primary(
            &db,
            primary,
            IndexSpec {
                name: "by_payload_pk".into(),
                key_cols: vec![1],
                unique: false,
            },
        )
        .expect("secondary");
        churn.stop();
        verify_index(&db, idx).expect("verify");
        verify_index(&db, primary).expect("primary stays consistent");
        let rt = db.index(idx).expect("idx");
        let entries = mohan_btree::scan::collect_all(&rt.tree, false)
            .expect("scan")
            .len();
        t.row(vec![
            "Current-Key (primary-index scan)".into(),
            entries.to_string(),
            rt.side_file.appended.get().to_string(),
            "true".into(),
        ]);
    }
    t.note(
        "'In the place of Current-RID we would use the current-key as the scan position' (§6.2).",
    );
    vec![t]
}
