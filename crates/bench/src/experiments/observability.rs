//! E17: the observability layer's two claims — the registry's record
//! path is cheap enough to leave on, and one `Metrics` response over
//! the wire answers the operational questions the paper's experiments
//! keep asking (how far behind is the drain? what is the WAL paying?
//! is the cache absorbing the scan?) while an SF build runs live.
//!
//! Part 1 interleaves recording-on and recording-off rounds of the
//! same direct-engine churn (the E1 workload's DML half) and reports
//! the throughput delta; the smoke run asserts it stays inside the
//! budget so CI catches an accidentally hot instrumentation path.
//!
//! Part 2 is the acceptance scenario: loopback server, wire churn, an
//! SF `CreateIndex` streaming progress on its own connection — and a
//! single `Metrics` request from a fourth connection mid-drain, from
//! which the table below is printed.

use crate::report::{f2, ms, pct, Table};
use crate::workload::{bench_config, seed_table, start_churn, ChurnConfig, TABLE};
use mohan_client::{Client, ClientError, MetricsReport};
use mohan_common::Rid;
use mohan_server::{Server, ServerConfig};
use mohan_wire::message::{BuildAlgo, BuildPhase, IndexSpecWire};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Overhead budget the smoke run enforces: with recording enabled the
/// churn must keep at least this fraction of its recording-off
/// throughput. The record path is a handful of relaxed atomics, so
/// the budget is generous — it exists to catch regressions that put a
/// lock or an allocation on the hot path, not to certify a precise
/// percentage.
const MIN_KEPT_FRACTION: f64 = 0.65;

/// One churn round of `window`, returning committed ops.
fn churn_round(rows: i64, seed: u64, window: Duration) -> u64 {
    let (db, rids) = seed_table(bench_config(), rows, seed);
    let churn = start_churn(
        &db,
        &rids,
        ChurnConfig {
            threads: 2,
            ..ChurnConfig::default()
        },
    );
    std::thread::sleep(window);
    churn.stop().ops
}

/// Part 1: throughput with the registry recording vs globally off,
/// interleaved rounds so machine drift hits both arms equally.
fn overhead_table(quick: bool, smoke_assert: bool) -> Table {
    let rows = super::scaled(if quick { 10_000 } else { 30_000 });
    let window = Duration::from_millis(if quick { 200 } else { 600 });
    const ROUNDS: u64 = 3;

    let mut ops_on = 0u64;
    let mut ops_off = 0u64;
    for round in 0..ROUNDS {
        mohan_obs::set_recording(true);
        ops_on += churn_round(rows, 7 + round, window);
        mohan_obs::set_recording(false);
        ops_off += churn_round(rows, 7 + round, window);
    }
    mohan_obs::set_recording(true); // never leave the process muted

    let tp_on = ops_on as f64 / (ROUNDS as f64 * window.as_secs_f64());
    let tp_off = ops_off as f64 / (ROUNDS as f64 * window.as_secs_f64());
    let kept = tp_on / tp_off.max(1e-9);

    let mut t = Table::new(
        "E17a: metrics-registry overhead on the E1 DML workload",
        &["recording", "rounds", "ops/s", "vs recording off"],
    );
    t.row(vec![
        "off".into(),
        ROUNDS.to_string(),
        f2(tp_off),
        "100.0%".into(),
    ]);
    t.row(vec!["on".into(), ROUNDS.to_string(), f2(tp_on), pct(kept)]);
    t.note(format!(
        "Budget: recording-on must keep >= {:.0}% of recording-off throughput.",
        MIN_KEPT_FRACTION * 100.0
    ));
    if smoke_assert {
        assert!(
            kept >= MIN_KEPT_FRACTION,
            "metrics recording overhead over budget: kept {:.1}% < {:.1}% \
             (on {tp_on:.0} ops/s vs off {tp_off:.0} ops/s)",
            kept * 100.0,
            MIN_KEPT_FRACTION * 100.0
        );
    }
    t
}

/// Closed-loop wire DML against `addr` until stopped.
fn wire_churn(
    addr: &str,
    threads: usize,
    rids: &[Rid],
    stop: &Arc<AtomicBool>,
) -> Vec<JoinHandle<u64>> {
    (0..threads)
        .map(|i| {
            let addr = addr.to_owned();
            let stop = Arc::clone(stop);
            let slice: Vec<Rid> = rids
                .iter()
                .copied()
                .skip(i)
                .step_by(threads.max(1))
                .collect();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("wire churn connect");
                let mut key = 10_000_000 * (i as i64 + 1);
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    key += 1;
                    let result = if ops.is_multiple_of(3) && !slice.is_empty() {
                        let rid = slice[ops as usize % slice.len()];
                        c.update(TABLE, rid, vec![key, 2])
                    } else {
                        c.insert(TABLE, vec![key, 0]).map(|_| ())
                    };
                    match result {
                        Ok(()) => ops += 1,
                        Err(ClientError::Busy) => {
                            key -= 1;
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(ClientError::Server { .. }) => {}
                        Err(e) => panic!("wire churn client {i}: {e}"),
                    }
                }
                ops
            })
        })
        .collect()
}

fn hist_row(t: &mut Table, report: &MetricsReport, name: &str) {
    match report.hist(name) {
        Some(h) => t.row(vec![
            name.into(),
            h.p50.to_string(),
            h.p99.to_string(),
            format!("count {}", h.count),
        ]),
        None => t.row(vec![name.into(), "-".into(), "-".into(), "absent".into()]),
    }
}

/// Part 2: one `Metrics` response sampled mid-drain of a live SF
/// build over loopback.
fn live_snapshot_table(quick: bool, smoke_assert: bool) -> Table {
    let n = super::scaled(if quick { 20_000 } else { 60_000 });
    let (db, rids) = seed_table(bench_config(), n, 99);
    let srv = Server::start(
        Arc::clone(&db),
        ServerConfig {
            workers: 4,
            max_inflight: 16,
            // Tight progress polling so the Loading/Draining signal
            // below fires early enough to sample mid-build even on
            // smoke-sized tables.
            progress_interval: Duration::from_millis(2),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = srv.addr().to_string();

    let stop = Arc::new(AtomicBool::new(false));
    let churners = wire_churn(&addr, 3, &rids, &stop);
    std::thread::sleep(Duration::from_millis(50));

    // SF build on its own connection; the first Loading (or Draining)
    // frame signals that the side-file is populated and the build is
    // in its interesting half, so the snapshot lands mid-build.
    let (signal_tx, signal_rx) = mpsc::channel::<()>();
    let addr2 = addr.clone();
    let builder = std::thread::spawn(move || {
        let mut c = Client::connect(&addr2).expect("builder connect");
        loop {
            match c.create_index(
                TABLE,
                BuildAlgo::Sf,
                vec![IndexSpecWire {
                    name: "e17_sf".into(),
                    key_cols: vec![0],
                    unique: false,
                }],
                |_, phase, _| {
                    if phase == BuildPhase::Loading || phase == BuildPhase::Draining {
                        let _ = signal_tx.send(());
                    }
                },
            ) {
                Ok(ids) => return ids,
                Err(ClientError::Busy) => std::thread::sleep(Duration::from_millis(1)),
                Err(e) => panic!("wire SF build: {e}"),
            }
        }
    });

    // One Metrics request from a fresh connection. If the build is too
    // fast to catch (tiny smoke tables), fall back to sampling right
    // after it instead of hanging forever.
    let _ = signal_rx.recv_timeout(Duration::from_secs(30));
    let mut observer = Client::connect(&addr).expect("observer connect");
    let sampled_at = Instant::now();
    let report = loop {
        match observer.metrics() {
            Ok(r) => break r,
            Err(ClientError::Busy) if sampled_at.elapsed() < Duration::from_secs(10) => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("metrics request: {e}"),
        }
    };
    let mid_build = !builder.is_finished();

    let ids = builder.join().expect("builder thread");
    stop.store(true, Ordering::Relaxed);
    let wire_ops: u64 = churners.into_iter().map(|h| h.join().unwrap()).sum();
    let report_after = observer.metrics().expect("post-build metrics");
    srv.drain();

    let mut t = Table::new(
        "E17b: one Metrics response sampled during a live SF build (µs)",
        &["metric", "p50", "p99", "detail"],
    );
    hist_row(&mut t, &report, "wal.flush_us");
    hist_row(&mut t, &report, "server.req_us.Insert");
    hist_row(&mut t, &report, "server.req_us.Update");
    hist_row(&mut t, &report, "server.req_us.CreateIndex");
    let hit = report.counter("cache.hit").unwrap_or(0);
    let miss = report.counter("cache.miss").unwrap_or(0);
    t.row(vec![
        "cache hit rate".into(),
        "-".into(),
        "-".into(),
        format!(
            "{} ({hit} hit / {miss} miss)",
            pct(hit as f64 / (hit + miss).max(1) as f64)
        ),
    ]);
    t.row(vec![
        "build.drain_lag".into(),
        "-".into(),
        "-".into(),
        format!(
            "{} entries behind{}",
            report.counter("build.drain_lag").unwrap_or(0),
            if mid_build {
                " (sampled mid-build)"
            } else {
                " (build already done)"
            }
        ),
    ]);
    t.row(vec![
        "build.side_file_appended".into(),
        "-".into(),
        "-".into(),
        report
            .counter("build.side_file_appended")
            .unwrap_or(0)
            .to_string(),
    ]);
    for phase in ["scan", "reduce", "load", "drain"] {
        hist_row(&mut t, &report_after, &format!("build.phase_us.{phase}"));
    }
    t.note(format!(
        "Built index {:?} while {} wire DML ops committed; snapshot taken {}.",
        ids,
        wire_ops,
        if mid_build {
            "mid-build"
        } else {
            "after the build"
        }
    ));
    t.note(format!(
        "Sample-to-response {} on a connection separate from churn and build.",
        ms(sampled_at.elapsed())
    ));

    if smoke_assert {
        // The acceptance list: every named stat must be present in the
        // single response.
        assert!(
            report.hist("wal.flush_us").is_some(),
            "wal.flush_us missing"
        );
        assert!(
            report.hist("server.req_us.Insert").is_some(),
            "server.req_us.Insert missing"
        );
        assert!(report.counter("cache.hit").is_some(), "cache.hit missing");
        assert!(
            report.counter("build.drain_lag").is_some(),
            "build.drain_lag missing"
        );
        assert!(
            report.counters.windows(2).all(|w| w[0].0 < w[1].0),
            "Metrics counters not sorted"
        );
    }
    t
}

/// E17: registry overhead + the live wire snapshot.
pub fn e17_observability(quick: bool) -> Vec<Table> {
    vec![
        overhead_table(quick, quick),
        live_snapshot_table(quick, quick),
    ]
}
