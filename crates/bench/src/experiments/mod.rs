//! The experiment suite (E1-E23). Each experiment regenerates one of
//! the paper's qualitative claims as a quantitative table; the mapping
//! to paper sections lives in `DESIGN.md` §3 and the expected shapes
//! in `EXPERIMENTS.md`.

pub mod availability;
pub mod build_cost;
pub mod clustering;
pub mod contention;
pub mod observability;
pub mod parallel_build;
pub mod pg_front;
pub mod pseudo;
pub mod replication;
pub mod restart;
pub mod service;
pub mod side_file;
pub mod storage_model;
pub mod tracing;
pub mod unique;

use crate::report::Table;
use std::sync::atomic::{AtomicI64, Ordering};

/// Global workload shrink factor for smoke runs (CI). 1 = no shrink.
static SIZE_DIVISOR: AtomicI64 = AtomicI64::new(1);

/// Shrink every [`scaled`] workload size by `divisor` (floored at 1k
/// rows so experiments still cross checkpoint boundaries). Used by the
/// runner's `--smoke` flag so CI can exercise the full code path of an
/// experiment in seconds.
pub fn set_size_divisor(divisor: i64) {
    SIZE_DIVISOR.store(divisor.max(1), Ordering::Relaxed);
}

/// Apply the smoke divisor to a workload size.
pub(crate) fn scaled(n: i64) -> i64 {
    (n / SIZE_DIVISOR.load(Ordering::Relaxed)).max(1_000)
}

/// Run one experiment by id (`"e1"`..`"e23"`). `quick` shrinks the
/// workloads for CI-speed runs.
pub fn run(id: &str, quick: bool) -> Option<Vec<Table>> {
    Some(match id {
        "e1" => build_cost::e1_build_time(quick),
        "e2" => build_cost::e2_logging(quick),
        "e3" => build_cost::e3_traversals(quick),
        "e4" => clustering::e4_clustering(quick),
        "e5" => availability::e5_availability(quick),
        "e6" => availability::e6_updater_cost(quick),
        "e7" => restart::e7_restartable_sort(quick),
        "e8" => restart::e8_restartable_merge(quick),
        "e9" => restart::e9_ib_restart(quick),
        "e10" => pseudo::e10_pseudo_delete(quick),
        "e11" => side_file::e11_drain(quick),
        "e12" => build_cost::e12_multi_index(quick),
        "e13" => unique::e13_unique_correctness(quick),
        "e14" => storage_model::e14_primary_model(quick),
        "e15" => contention::e15_contention(quick),
        "e16" => service::e16_service(quick),
        "e17" => observability::e17_observability(quick),
        "e18" => replication::e18_replication(quick),
        "e19" => replication::e19_follower_reads(quick),
        "e20" => pg_front::e20_pg_front(quick),
        "e21" => tracing::e21_tracing(quick),
        "e22" => replication::e22_fanout(quick),
        "e23" => parallel_build::e23_parallel_build(quick),
        _ => return None,
    })
}

/// All experiment ids in order.
pub const ALL: [&str; 23] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e23",
];
