//! The experiment suite (E1-E14). Each experiment regenerates one of
//! the paper's qualitative claims as a quantitative table; the mapping
//! to paper sections lives in `DESIGN.md` §3 and the expected shapes
//! in `EXPERIMENTS.md`.

pub mod availability;
pub mod build_cost;
pub mod clustering;
pub mod contention;
pub mod pseudo;
pub mod restart;
pub mod side_file;
pub mod storage_model;
pub mod unique;

use crate::report::Table;

/// Run one experiment by id (`"e1"`..`"e14"`). `quick` shrinks the
/// workloads for CI-speed runs.
pub fn run(id: &str, quick: bool) -> Option<Vec<Table>> {
    Some(match id {
        "e1" => build_cost::e1_build_time(quick),
        "e2" => build_cost::e2_logging(quick),
        "e3" => build_cost::e3_traversals(quick),
        "e4" => clustering::e4_clustering(quick),
        "e5" => availability::e5_availability(quick),
        "e6" => availability::e6_updater_cost(quick),
        "e7" => restart::e7_restartable_sort(quick),
        "e8" => restart::e8_restartable_merge(quick),
        "e9" => restart::e9_ib_restart(quick),
        "e10" => pseudo::e10_pseudo_delete(quick),
        "e11" => side_file::e11_drain(quick),
        "e12" => build_cost::e12_multi_index(quick),
        "e13" => unique::e13_unique_correctness(quick),
        "e14" => storage_model::e14_primary_model(quick),
        "e15" => contention::e15_contention(quick),
        _ => return None,
    })
}

/// All experiment ids in order.
pub const ALL: [&str; 15] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
];
