//! E20: the Postgres front door's toll — the same point DML over the
//! native binary wire vs the pg simple-query protocol, one server,
//! both listeners.
//!
//! The pg path pays text parsing (tokenizer + parser), catalog name
//! resolution, and text-encoded result rows where the native path
//! ships binary frames straight into the session. The claim under
//! test: that toll is a constant per-statement cost — tens of
//! microseconds, not a throughput cliff — so the convenience of stock
//! clients (`psql`) does not compromise the engine's serving path.
//! For point reads the comparison runs through the same complete
//! index on both protocols; note that the native client needs two
//! round trips (`Lookup` + `Read`) where SQL does both server-side in
//! one, which is the one structural advantage the front door has.

use crate::report::{f2, ms, us, Table};
use crate::workload::{bench_config, seed_table, TABLE};
use mohan_client::Client;
use mohan_common::KeyValue;
use mohan_oib::build::IndexSpec;
use mohan_oib::schema::BuildAlgorithm;
use mohan_oib::Session;
use mohan_server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Minimal blocking pg simple-query client, just enough for the
/// closed-loop measurement (startup → `Q` → wait for `ReadyForQuery`).
struct PgClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl PgClient {
    fn connect(addr: &str) -> PgClient {
        let stream = TcpStream::connect(addr).expect("pg connect");
        stream.set_nodelay(true).ok();
        let mut c = PgClient {
            stream,
            buf: vec![0u8; 64 * 1024],
        };
        let mut pkt = Vec::new();
        let params = b"user\0bench\0\0";
        pkt.extend_from_slice(&((8 + params.len()) as u32).to_be_bytes());
        pkt.extend_from_slice(&196_608u32.to_be_bytes());
        pkt.extend_from_slice(params);
        c.stream.write_all(&pkt).expect("pg startup");
        c.read_until_ready();
        c
    }

    /// Read backend messages until `ReadyForQuery`; panic on any
    /// `ErrorResponse` — benchmark statements are all expected to
    /// succeed (admission is sized so `53300` cannot occur).
    fn read_until_ready(&mut self) {
        let mut have = 0usize;
        loop {
            // Scan complete `[type][u32 len][body]` messages in the
            // buffered bytes; refill when a partial one remains.
            let mut at = 0usize;
            while have - at >= 5 {
                let typ = self.buf[at];
                let len = u32::from_be_bytes(self.buf[at + 1..at + 5].try_into().unwrap()) as usize;
                if have - at < 1 + len {
                    break;
                }
                assert!(
                    typ != b'E',
                    "pg error: {}",
                    String::from_utf8_lossy(&self.buf[at + 5..at + 1 + len])
                );
                if typ == b'Z' {
                    return;
                }
                at += 1 + len;
            }
            self.buf.copy_within(at..have, 0);
            have -= at;
            if have == self.buf.len() {
                self.buf.resize(self.buf.len() * 2, 0);
            }
            let n = self.stream.read(&mut self.buf[have..]).expect("pg read");
            assert!(n > 0, "pg server closed mid-reply");
            have += n;
        }
    }

    fn query(&mut self, sql: &str) {
        let len = 4 + sql.len() + 1;
        let mut pkt = Vec::with_capacity(1 + len);
        pkt.push(b'Q');
        pkt.extend_from_slice(&(len as u32).to_be_bytes());
        pkt.extend_from_slice(sql.as_bytes());
        pkt.push(0);
        self.stream.write_all(&pkt).expect("pg query");
        self.read_until_ready();
    }
}

/// Sorted-percentile helper; `lat_us` must be sorted ascending.
fn pctl(lat_us: &[u64], p: usize) -> Duration {
    if lat_us.is_empty() {
        return Duration::ZERO;
    }
    Duration::from_micros(lat_us[(lat_us.len() - 1) * p / 100])
}

/// Run `op` closed-loop on `threads` threads for `window`, returning
/// the sorted per-op latencies (µs). Each thread gets its own
/// connection via `setup` and a disjoint key space via its index.
fn closed_loop<C: Send + 'static>(
    threads: usize,
    window: Duration,
    setup: impl Fn(usize) -> C + Sync,
    op: impl Fn(&mut C, i64) + Send + Sync + 'static,
) -> Vec<u64> {
    let stop = Arc::new(AtomicBool::new(false));
    let op = Arc::new(op);
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let mut conn = setup(i);
            let stop = Arc::clone(&stop);
            let op = Arc::clone(&op);
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(8 << 10);
                let mut k = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    op(&mut conn, k);
                    lat.push(t0.elapsed().as_micros() as u64);
                    k += 1;
                }
                lat
            })
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().expect("closed-loop thread"));
    }
    all.sort_unstable();
    all
}

/// E20: pg-protocol vs native-wire round trips on one server.
pub fn e20_pg_front(quick: bool) -> Vec<Table> {
    let n: i64 = super::scaled(if quick { 20_000 } else { 60_000 });
    const CLIENTS: usize = 4;
    let window = Duration::from_millis(if quick { 300 } else { 1_000 });

    let (db, _rids) = seed_table(bench_config(), n, 93);
    // A complete index on the key column so both protocols' point
    // reads take the same access path.
    let mut session = Session::new(Arc::clone(&db));
    let index = session
        .create_index(
            TABLE,
            IndexSpec {
                name: "e20_k".into(),
                key_cols: vec![0],
                unique: false,
            },
            BuildAlgorithm::Sf,
        )
        .expect("e20 index build");
    drop(session);

    let srv = Server::start(
        Arc::clone(&db),
        ServerConfig {
            workers: 4,
            max_inflight: CLIENTS * 4 + 8,
            pg_bind_addr: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let native_addr = srv.addr().to_string();
    let pg_addr = srv.pg_addr().expect("pg listener").to_string();

    let mut t = Table::new(
        "E20: Postgres front door vs native wire (same server, same engine path)",
        &[
            "protocol",
            "op",
            "window",
            "wire ops/s",
            "p50 RTT",
            "p99 RTT",
            "vs native",
        ],
    );

    let mut rows = Vec::new();
    // INSERT: one statement per round trip on both protocols, with
    // per-protocol disjoint key spaces (seeded keys are 0..n).
    {
        let addr = native_addr.clone();
        let lat = closed_loop(
            CLIENTS,
            window,
            |i| (Client::connect(&addr).expect("native connect"), i),
            move |(c, i), k| {
                let key = 10_000_000 * (*i as i64 + 1) + k;
                c.insert(TABLE, vec![key, 7]).expect("native insert");
            },
        );
        rows.push(("native", "INSERT", lat));
    }
    {
        let addr = pg_addr.clone();
        let lat = closed_loop(
            CLIENTS,
            window,
            |i| (PgClient::connect(&addr), i),
            move |(c, i), k| {
                let key = 20_000_000 * (*i as i64 + 1) + k;
                c.query(&format!("INSERT INTO t1 VALUES ({key}, 7)"));
            },
        );
        rows.push(("pg", "INSERT", lat));
    }
    // Point SELECT through the complete index. The native client
    // needs Lookup + Read (two round trips); SQL does both
    // server-side in one.
    {
        let addr = native_addr.clone();
        let lat = closed_loop(
            CLIENTS,
            window,
            |_| Client::connect(&addr).expect("native connect"),
            move |c, k| {
                let key = KeyValue::from_i64(k % n);
                let rids = c.lookup(index, &key).expect("native lookup");
                for rid in rids {
                    c.read(TABLE, rid).expect("native read");
                }
            },
        );
        rows.push(("native", "SELECT (lookup+read)", lat));
    }
    {
        let addr = pg_addr.clone();
        let lat = closed_loop(
            CLIENTS,
            window,
            |_| PgClient::connect(&addr),
            move |c, k| c.query(&format!("SELECT * FROM t1 WHERE c0 = {}", k % n)),
        );
        rows.push(("pg", "SELECT (point, via index)", lat));
    }
    srv.drain();

    let mut native_tp = f64::NAN;
    for (proto, op, lat) in rows {
        let tp = lat.len() as f64 / window.as_secs_f64();
        if proto == "native" {
            native_tp = tp;
        }
        t.row(vec![
            proto.into(),
            op.into(),
            ms(window),
            f2(tp),
            us(pctl(&lat, 50)),
            us(pctl(&lat, 99)),
            format!("{:.1}%", 100.0 * tp / native_tp),
        ]);
    }
    t.note("pg adds text parse + catalog resolution + text row encoding per statement.");
    t.note("native point reads pay two round trips (Lookup then Read); SQL folds both into one.");
    vec![t]
}
