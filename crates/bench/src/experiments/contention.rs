//! E15: hot-path contention profile of the sharded storage substrate.
//!
//! The paper's algorithms are motivated by *not quiescing updates*:
//! the index builder and N updater transactions hammer the same table
//! at once. That only helps if the storage substrate below them does
//! not serialize everything on a handful of locks. This experiment
//! runs the same churn + online build at increasing thread counts and
//! reports where the contention actually lands: WAL group-flush
//! coalescing, buffer-pool shard hit spread, free-space-map shard
//! spread, and page-latch wait events.

use crate::report::{dist, Table};
use crate::workload::{bench_config, seed_table, start_churn, ChurnConfig, TABLE};
use mohan_oib::build::{build_index, IndexSpec};
use mohan_oib::schema::BuildAlgorithm;
use mohan_oib::verify::verify_index;

/// E15: contention counters under churn + online build.
pub fn e15_contention(quick: bool) -> Vec<Table> {
    let threads: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let rows: i64 = if quick { 10_000 } else { 30_000 };
    let mut t = Table::new(
        "E15: storage hot-path contention (churn + NSF build)",
        &[
            "updaters",
            "wal forces",
            "coalesced",
            "latch waits",
            "cache shard hits (total ×imb [per shard])",
            "fsm shard hits (total ×imb [per shard])",
        ],
    );
    for &n in threads {
        let (db, rids) = seed_table(bench_config(), rows, 15);
        let table = db.table(TABLE).expect("table");
        // Reset counters so the report reflects the contended phase,
        // not the single-threaded seeding.
        db.wal.stats.flushes.reset();
        db.wal.stats.group_flush_coalesced.reset();
        table.cache.latch_stats().wait_events.reset();
        let churn = start_churn(
            &db,
            &rids,
            ChurnConfig {
                threads: n,
                ..ChurnConfig::default()
            },
        );
        std::thread::sleep(std::time::Duration::from_millis(30));
        let idx = build_index(
            &db,
            TABLE,
            IndexSpec {
                name: format!("e15-{n}"),
                key_cols: vec![0],
                unique: false,
            },
            BuildAlgorithm::Nsf,
        )
        .expect("build");
        let stats = churn.stop();
        verify_index(&db, idx).expect("verify");
        assert!(stats.ops > 0, "churn made no progress");
        t.row(vec![
            n.to_string(),
            db.wal.stats.flushes.get().to_string(),
            db.wal.stats.group_flush_coalesced.get().to_string(),
            table.cache.latch_stats().wait_events.get().to_string(),
            dist(&table.cache.stats.shard_hits),
            dist(&table.stats.fsm_shard_hits),
        ]);
    }
    t.note(format!(
        "×imb = hottest shard / even spread (1.00 is perfectly balanced); \
         {} cache shards, {} fsm shards.",
        mohan_storage::cache::PAGE_SHARDS,
        mohan_heap::FSM_SHARDS,
    ));
    t.note("coalesced = flush_to calls satisfied by another caller's group flush.");
    t.note("Each run's index verified entry-for-entry against the table.");
    vec![t]
}
