//! E13: unique indexes under concurrency — "SF and NSF can create
//! correctly both unique and nonunique indexes, without giving
//! spurious unique-key-value-violation error messages" (§6.1).

use crate::report::Table;
use crate::workload::{bench_config, seed_table, start_churn, ChurnConfig, TABLE};
use mohan_common::Error;
use mohan_oib::build::{build_index, IndexSpec};
use mohan_oib::schema::{BuildAlgorithm, Record};
use mohan_oib::verify::verify_index;

fn uspec() -> IndexSpec {
    IndexSpec {
        name: "e13".into(),
        key_cols: vec![0],
        unique: true,
    }
}

/// E13: adversarial unique builds across seeds. Every run with a truly
/// unique key space must succeed (spurious violations = 0); every run
/// with a planted duplicate must fail with exactly a unique violation.
pub fn e13_unique_correctness(quick: bool) -> Vec<Table> {
    let n: i64 = if quick { 2_000 } else { 8_000 };
    let seeds: u64 = if quick { 4 } else { 10 };
    let mut t = Table::new(
        "E13: unique-index build correctness under churn",
        &[
            "algorithm",
            "runs",
            "spurious violations",
            "verified",
            "true dup detected",
        ],
    );
    for algo in [BuildAlgorithm::Nsf, BuildAlgorithm::Sf] {
        let mut spurious = 0u64;
        let mut verified = 0u64;
        for seed in 0..seeds {
            let (db, rids) = seed_table(bench_config(), n, 130 + seed);
            // Churn with delete/insert/update on disjoint key ranges:
            // never creates a real duplicate.
            let churn = start_churn(
                &db,
                &rids,
                ChurnConfig {
                    threads: 2,
                    seed,
                    ..ChurnConfig::default()
                },
            );
            match build_index(&db, TABLE, uspec(), algo) {
                Ok(idx) => {
                    churn.stop();
                    verify_index(&db, idx).expect("verify");
                    verified += 1;
                }
                Err(Error::UniqueViolation { .. }) => {
                    churn.stop();
                    spurious += 1;
                }
                Err(e) => {
                    churn.stop();
                    panic!("unexpected build error: {e}");
                }
            }
        }
        // True-duplicate detection.
        let detected = {
            let (db, _) = seed_table(bench_config(), n, 777);
            let tx = db.begin();
            db.insert_record(tx, TABLE, &Record::new(vec![5, 0]))
                .expect("dup"); // key 5 duplicates the seed
            db.commit(tx).expect("commit");
            matches!(
                build_index(&db, TABLE, uspec(), algo),
                Err(Error::UniqueViolation { .. })
            )
        };
        t.row(vec![
            format!("{algo:?}"),
            seeds.to_string(),
            spurious.to_string(),
            verified.to_string(),
            detected.to_string(),
        ]);
        assert_eq!(spurious, 0, "{algo:?} raised a spurious unique violation");
        assert!(detected, "{algo:?} missed a genuine duplicate");
    }
    t.note(
        "Arbitration waits on the record locks and re-verifies against the data pages (§2.2.3).",
    );
    vec![t]
}
