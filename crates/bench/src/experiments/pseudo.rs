//! E10: pseudo-deleted-key garbage and its cleanup (§2.2.4). "Pseudo-
//! deleted keys can cause unnecessary page splits and cause more pages
//! to be allocated for the index than are actually required."

use crate::report::{pct, Table};
use crate::workload::{bench_config, seed_table, TABLE};
use mohan_btree::scan::clustering;
use mohan_oib::build::{build_index, IndexSpec};
use mohan_oib::gc::garbage_collect;
use mohan_oib::schema::BuildAlgorithm;
use mohan_oib::verify::verify_index;

/// E10: index bloat vs delete rate, and what one GC pass reclaims.
pub fn e10_pseudo_delete(quick: bool) -> Vec<Table> {
    let n: i64 = if quick { 4_000 } else { 15_000 };
    let fractions: &[f64] = if quick { &[0.1, 0.5] } else { &[0.1, 0.3, 0.5] };
    let mut t = Table::new(
        "E10: pseudo-deleted keys — bloat and GC reclamation",
        &[
            "deleted",
            "entries",
            "tombstones",
            "occupancy",
            "GC removed",
            "GC skipped",
            "live after",
        ],
    );
    for &frac in fractions {
        let (db, rids) = seed_table(bench_config(), n, 10);
        let idx = build_index(
            &db,
            TABLE,
            IndexSpec {
                name: "e10".into(),
                key_cols: vec![0],
                unique: false,
            },
            BuildAlgorithm::Nsf,
        )
        .expect("build");
        // Commit a batch of deletes: each leaves a tombstone.
        let victims = ((n as f64) * frac) as usize;
        let tx = db.begin();
        for rid in rids.iter().take(victims) {
            db.delete_record(tx, TABLE, *rid).expect("delete");
        }
        db.commit(tx).expect("commit");
        // Keep one delete uncommitted so GC must skip it.
        let inflight = db.begin();
        db.delete_record(inflight, TABLE, rids[victims])
            .expect("delete");

        let rt = db.index(idx).expect("idx");
        let before = clustering(&rt.tree).expect("clustering");
        let gc = garbage_collect(&db, idx).expect("gc");
        db.rollback(inflight).expect("rollback");
        verify_index(&db, idx).expect("verify");
        let after = clustering(&rt.tree).expect("clustering");
        t.row(vec![
            pct(frac),
            before.entries.to_string(),
            before.pseudo_entries.to_string(),
            pct(before.avg_occupancy),
            gc.removed.to_string(),
            gc.skipped.to_string(),
            (after.entries - after.pseudo_entries).to_string(),
        ]);
        assert_eq!(
            gc.removed as usize, victims,
            "GC must reclaim every committed tombstone"
        );
        assert_eq!(gc.skipped, 1, "GC must skip the in-flight delete");
    }
    t.note("A key deleted while its deleter is uncommitted is skipped (conditional instant lock).");
    t.note(
        "SF trees gain tombstones only from post-build deletes; NSF also from build-time races.",
    );
    vec![t]
}
