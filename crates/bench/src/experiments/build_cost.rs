//! E1 (build time), E2 (logging volume), E3 (tree traversals),
//! E12 (multi-index single scan) — the §4 cost comparison.

use crate::report::{f2, ms, Table};
use crate::workload::{bench_config, seed_table, start_churn, ChurnConfig, TABLE};
use mohan_oib::build::{build_index, build_indexes, IndexSpec};
use mohan_oib::schema::BuildAlgorithm;
use mohan_oib::verify::verify_index;
use std::time::Instant;

const ALGOS: [BuildAlgorithm; 3] = [
    BuildAlgorithm::Offline,
    BuildAlgorithm::Nsf,
    BuildAlgorithm::Sf,
];

fn spec(name: &str) -> IndexSpec {
    IndexSpec {
        name: name.into(),
        key_cols: vec![0],
        unique: false,
    }
}

/// E1: wall-clock build time, offline vs NSF vs SF, with concurrent
/// updaters hammering the table. The paper's qualitative claim (§4):
/// SF builds most efficiently (bottom-up, unlogged); NSF pays logging
/// and tree-sharing overhead; offline is fast but blocks all updates.
pub fn e1_build_time(quick: bool) -> Vec<Table> {
    let sizes: Vec<i64> = if quick {
        [10_000, 30_000].map(super::scaled).into()
    } else {
        [30_000, 100_000].map(super::scaled).into()
    };
    let mut t = Table::new(
        "E1: build time under concurrent updates",
        &[
            "rows",
            "algorithm",
            "build",
            "updater ops/s",
            "updater errors",
        ],
    );
    for &n in &sizes {
        for algo in ALGOS {
            let (db, rids) = seed_table(bench_config(), n, 11);
            let churn = start_churn(
                &db,
                &rids,
                ChurnConfig {
                    threads: 2,
                    ..ChurnConfig::default()
                },
            );
            // Let the churn reach steady state before the build.
            std::thread::sleep(std::time::Duration::from_millis(50));
            let ops0 = churn.ops_live.get();
            let started = Instant::now();
            let idx = build_index(&db, TABLE, spec("e1"), algo).expect("build");
            let build = started.elapsed();
            let ops_during = churn.ops_live.get() - ops0;
            let stats = churn.stop();
            verify_index(&db, idx).expect("verify");
            t.row(vec![
                n.to_string(),
                format!("{algo:?}"),
                ms(build),
                f2(ops_during as f64 / build.as_secs_f64().max(1e-9)),
                stats.errors.to_string(),
            ]);
        }
    }
    t.note("Churn is unthrottled: ops/s here mostly reflects CPU competition.");
    t.note("E5 isolates the *blocking* story with throttled updaters.");
    t.note("All indexes verified entry-for-entry against the table after the run.");
    vec![t]
}

/// E2: log volume by origin. §4: "No log records are written by [SF's]
/// IB for inserting keys until side-file processing begins. In NSF,
/// log records are written for all key inserts by IB" (amortized by
/// multi-key records).
pub fn e2_logging(quick: bool) -> Vec<Table> {
    let n: i64 = if quick { 10_000 } else { 40_000 };
    let mut t = Table::new(
        "E2: log volume by origin (n rows, throttled churn)",
        &[
            "algorithm",
            "IB log recs",
            "IB log KB",
            "IB recs/key",
            "txn log recs",
            "total KB",
        ],
    );
    for algo in ALGOS {
        let (db, rids) = seed_table(bench_config(), n, 22);
        let churn = start_churn(
            &db,
            &rids,
            ChurnConfig {
                threads: 2,
                ops_per_sec: Some(2_000),
                ..ChurnConfig::default()
            },
        );
        std::thread::sleep(std::time::Duration::from_millis(30));
        let recs0 = db.wal.stats.records.get();
        let bytes0 = db.wal.stats.bytes.get();
        let ib0 = db.wal.stats.ib_records.get();
        let ibb0 = db.wal.stats.ib_bytes.get();
        let idx = build_index(&db, TABLE, spec("e2"), algo).expect("build");
        let ib_recs = db.wal.stats.ib_records.get() - ib0;
        let ib_kb = (db.wal.stats.ib_bytes.get() - ibb0) as f64 / 1024.0;
        let total_recs = db.wal.stats.records.get() - recs0;
        let total_kb = (db.wal.stats.bytes.get() - bytes0) as f64 / 1024.0;
        let stats = churn.stop();
        let _ = stats;
        verify_index(&db, idx).expect("verify");
        t.row(vec![
            format!("{algo:?}"),
            ib_recs.to_string(),
            f2(ib_kb),
            f2(ib_recs as f64 / n as f64),
            (total_recs - ib_recs).to_string(),
            f2(total_kb),
        ]);
    }
    t.note("SF's IB logs only drain entries; NSF logs one multi-key record per batch.");
    vec![t]
}

/// E3: root-to-leaf traversals during the build. §2.3.1/§4: SF needs
/// none until the side-file; NSF avoids most via the remembered path
/// (ablation row shows the path disabled).
pub fn e3_traversals(quick: bool) -> Vec<Table> {
    let n: i64 = if quick { 5_000 } else { 20_000 };
    let mut t = Table::new(
        "E3: index-tree traversals per build (quiet table)",
        &["variant", "traversals", "hint hits", "traversals/key"],
    );
    let mut variants: Vec<(&str, BuildAlgorithm, bool)> = vec![
        ("NSF (remembered path)", BuildAlgorithm::Nsf, true),
        ("NSF (no hint, ablation)", BuildAlgorithm::Nsf, false),
        ("SF (bottom-up)", BuildAlgorithm::Sf, true),
        ("Offline (bottom-up)", BuildAlgorithm::Offline, true),
    ];
    for (label, algo, hint) in variants.drain(..) {
        let mut cfg = bench_config();
        cfg.ib_remembered_path = hint;
        let (db, _) = seed_table(cfg, n, 33);
        let idx = build_index(&db, TABLE, spec("e3"), algo).expect("build");
        let rt = db.index(idx).expect("index");
        let traversals = rt.tree.stats.traversals.get();
        let hits = rt.tree.stats.remembered_hits.get();
        t.row(vec![
            label.to_string(),
            traversals.to_string(),
            hits.to_string(),
            f2(traversals as f64 / n as f64),
        ]);
    }
    t.note("Bottom-up builds append to the rightmost leaf: no traversals until drain.");
    vec![t]
}

/// E12: multiple indexes in one data scan (§6.2) — data pages read for
/// k separate builds vs one combined build.
pub fn e12_multi_index(quick: bool) -> Vec<Table> {
    let n: i64 = if quick { 5_000 } else { 20_000 };
    let mut t = Table::new(
        "E12: one scan for k indexes (§6.2)",
        &["k", "strategy", "data pages read", "pages/index"],
    );
    for k in [1usize, 2, 4] {
        let specs: Vec<IndexSpec> = (0..k)
            .map(|i| IndexSpec {
                name: format!("m{i}"),
                key_cols: vec![i % 2],
                unique: false,
            })
            .collect();
        // Separate builds.
        {
            let (db, _) = seed_table(bench_config(), n, 44);
            let before = db.table(TABLE).unwrap().stats.scan_pages.get();
            for s in &specs {
                build_index(&db, TABLE, s.clone(), BuildAlgorithm::Sf).expect("build");
            }
            let pages = db.table(TABLE).unwrap().stats.scan_pages.get() - before;
            t.row(vec![
                k.to_string(),
                "k separate scans".into(),
                pages.to_string(),
                f2(pages as f64 / k as f64),
            ]);
        }
        // One combined scan.
        {
            let (db, _) = seed_table(bench_config(), n, 44);
            let before = db.table(TABLE).unwrap().stats.scan_pages.get();
            build_indexes(&db, TABLE, &specs, BuildAlgorithm::Sf).expect("build");
            let pages = db.table(TABLE).unwrap().stats.scan_pages.get() - before;
            t.row(vec![
                k.to_string(),
                "single shared scan".into(),
                pages.to_string(),
                f2(pages as f64 / k as f64),
            ]);
        }
    }
    t.note("The shared scan reads the table once regardless of k.");
    vec![t]
}
