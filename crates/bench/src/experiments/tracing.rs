//! E21: what causal tracing costs on the request path. Every server
//! request installs a trace context and opens a request span; under a
//! sampled trace the WAL append also tags records for cross-process
//! propagation. This experiment reproduces exactly that per-request
//! wrapping around the E1 DML workload and interleaves three arms:
//!
//! * **off** — trace recording disabled (`set_recording(false)`): the
//!   span guards and context installs still run, the ring never sees
//!   an event. The floor.
//! * **unsampled** — recording on, head-based sampling set to keep one
//!   trace in a million: contexts are minted and checked, but span
//!   commits and WAL tags short-circuit on the sampled bit. The
//!   steady-state production arm when sampling is dialled down.
//! * **sampled** — sampling keeps every trace (the default): every op
//!   records its request span and tags its WAL records.
//!
//! The smoke run asserts the *sampled* arm stays inside the same
//! generous noise budget E17 applies to the metrics registry — the
//! tracing path is a thread-local install, one ring push, and one
//! bounded-deque tag per op, so regressions that add a lock or an
//! allocation show up long before the budget does.

use crate::report::{f2, pct, Table};
use crate::workload::{bench_config, seed_table, TABLE};
use mohan_oib::schema::Record;
use mohan_oib::Db;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Same budget as E17's registry arm: sampled tracing must keep at
/// least this fraction of the recording-off throughput.
const MIN_KEPT_FRACTION: f64 = 0.65;

const ARMS: [&str; 3] = ["off", "unsampled", "sampled"];

/// Configure the global tracing state for one arm.
fn arm_enter(arm: &str) {
    match arm {
        "off" => {
            mohan_obs::set_recording(false);
            mohan_obs::set_trace_sampling(1);
        }
        "unsampled" => {
            mohan_obs::set_recording(true);
            mohan_obs::set_trace_sampling(1_000_000);
        }
        "sampled" => {
            mohan_obs::set_recording(true);
            mohan_obs::set_trace_sampling(1);
        }
        other => unreachable!("unknown arm {other}"),
    }
}

/// One churn round: two threads of auto-commit inserts, each op
/// wrapped the way `mohan-server` wraps a request — fresh trace
/// context installed, a request span opened and committed around the
/// engine call.
fn traced_round(rows: i64, seed: u64, window: Duration) -> u64 {
    let (db, _rids) = seed_table(bench_config(), rows, seed);
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..2)
        .map(|w| {
            let db: Arc<Db> = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut key = 10_000_000 * (i64::from(w) + 1);
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let _scope = mohan_obs::install_ctx(mohan_obs::ctx_for(0));
                    let span = db.obs.trace().span("wire.recv", "Insert");
                    let tx = db.begin();
                    db.insert_record(tx, TABLE, &Record(vec![key, 0]))
                        .expect("churn insert");
                    db.commit(tx).expect("churn commit");
                    span.commit();
                    key += 1;
                    ops += 1;
                }
                ops
            })
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Release);
    workers.into_iter().map(|h| h.join().unwrap()).sum()
}

/// E21: per-request tracing overhead, three interleaved arms.
pub fn e21_tracing(quick: bool) -> Vec<Table> {
    let rows = super::scaled(if quick { 10_000 } else { 30_000 });
    let window = Duration::from_millis(if quick { 200 } else { 600 });
    const ROUNDS: u64 = 3;

    let mut ops = [0u64; ARMS.len()];
    for round in 0..ROUNDS {
        // Interleave arms within each round so machine drift lands on
        // all three equally.
        for (i, arm) in ARMS.iter().enumerate() {
            arm_enter(arm);
            ops[i] += traced_round(rows, 21 + round, window);
        }
    }
    // Restore the defaults whatever arm ran last.
    mohan_obs::set_recording(true);
    mohan_obs::set_trace_sampling(1);

    let tp = |o: u64| o as f64 / (ROUNDS as f64 * window.as_secs_f64());
    let tp_off = tp(ops[0]);

    let mut t = Table::new(
        "E21: causal-tracing overhead on the request path",
        &["arm", "rounds", "ops/s", "vs recording off"],
    );
    for (i, arm) in ARMS.iter().enumerate() {
        let tp_arm = tp(ops[i]);
        t.row(vec![
            (*arm).into(),
            ROUNDS.to_string(),
            f2(tp_arm),
            pct(tp_arm / tp_off.max(1e-9)),
        ]);
    }
    t.note(
        "Each op installs a trace context and commits a request span, \
         mirroring the server's per-request wrapping; 'sampled' also \
         tags every WAL record for replica propagation.",
    );
    t.note(format!(
        "Budget: the sampled arm must keep >= {:.0}% of the \
         recording-off throughput (same noise budget as E17).",
        MIN_KEPT_FRACTION * 100.0
    ));
    if quick {
        let kept = tp(ops[2]) / tp_off.max(1e-9);
        assert!(
            kept >= MIN_KEPT_FRACTION,
            "sampled tracing overhead over budget: kept {:.1}% < {:.1}% \
             (sampled {:.0} ops/s vs off {tp_off:.0} ops/s)",
            kept * 100.0,
            MIN_KEPT_FRACTION * 100.0,
            tp(ops[2]),
        );
    }
    vec![t]
}
