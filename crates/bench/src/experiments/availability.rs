//! E5 (availability / quiesce) and E6 (per-update interference) — the
//! reason the paper exists: "disallowing updates while building an
//! index may become unacceptable" (§1).

use crate::report::{f2, ms, us, Table};
use crate::workload::{bench_config, seed_table, start_churn, ChurnConfig, TABLE};
use mohan_oib::build::{build_index, IndexSpec};
use mohan_oib::schema::BuildAlgorithm;
use mohan_oib::verify::verify_index;
use std::time::{Duration, Instant};

fn spec(name: &str) -> IndexSpec {
    IndexSpec {
        name: name.into(),
        key_cols: vec![0],
        unique: false,
    }
}

/// E5: updater throughput while a build runs. Offline quiesces the
/// table (throughput collapses to ~0), NSF pauses only for descriptor
/// creation, SF never pauses (§2.2.1, §3.2.1, §4).
pub fn e5_availability(quick: bool) -> Vec<Table> {
    let n: i64 = if quick { 50_000 } else { 150_000 };
    // Throttled churn: with CPU headroom, the only throughput loss
    // left to observe is *blocking* — which is the paper's point.
    let churn_cfg = || ChurnConfig {
        threads: 3,
        ops_per_sec: Some(1_000),
        ..ChurnConfig::default()
    };
    let mut t = Table::new(
        "E5: update availability during the build window",
        &[
            "scenario",
            "window",
            "updater ops/s",
            "errors",
            "ops vs baseline",
        ],
    );
    // Baseline: churn with no build, for the same wall-clock as the
    // slowest build below (measured on the fly).
    let baseline_tp;
    {
        let (db, rids) = seed_table(bench_config(), n, 66);
        let churn = start_churn(&db, &rids, churn_cfg());
        std::thread::sleep(Duration::from_millis(if quick { 300 } else { 800 }));
        let stats = churn.stop();
        baseline_tp = stats.throughput();
        t.row(vec![
            "no build (baseline)".into(),
            ms(stats.elapsed),
            f2(baseline_tp),
            stats.errors.to_string(),
            "100.0%".into(),
        ]);
    }
    for algo in [
        BuildAlgorithm::Offline,
        BuildAlgorithm::Nsf,
        BuildAlgorithm::Sf,
    ] {
        let (db, rids) = seed_table(bench_config(), n, 66);
        let churn = start_churn(&db, &rids, churn_cfg());
        std::thread::sleep(Duration::from_millis(50));
        let ops0 = churn.ops_live.get();
        let started = Instant::now();
        let idx = build_index(&db, TABLE, spec("e5"), algo).expect("build");
        let window = started.elapsed();
        let ops_during = churn.ops_live.get() - ops0;
        let stats = churn.stop();
        verify_index(&db, idx).expect("verify");
        let tp = ops_during as f64 / window.as_secs_f64().max(1e-9);
        t.row(vec![
            format!("{algo:?} build"),
            ms(window),
            f2(tp),
            stats.errors.to_string(),
            format!("{:.1}%", 100.0 * tp / baseline_tp.max(1e-9)),
        ]);
    }
    t.note("Offline: updaters block on the table S lock for the whole window.");
    t.note("NSF: only the descriptor-create quiesce; SF: no quiesce at any point.");
    vec![t]
}

/// E6: what one update costs while the build runs. §4: under SF,
/// transactions append cheap side-file entries; under NSF they do full
/// index maintenance in the shared tree.
pub fn e6_updater_cost(quick: bool) -> Vec<Table> {
    let n: i64 = if quick { 20_000 } else { 60_000 };
    let mut t = Table::new(
        "E6: per-update work while the build is in flight",
        &[
            "algorithm",
            "mean latency",
            "txn log recs/op",
            "side-file appends",
            "lock calls/op",
        ],
    );
    for algo in [BuildAlgorithm::Nsf, BuildAlgorithm::Sf] {
        let (db, rids) = seed_table(bench_config(), n, 77);
        let recs0 = db.wal.stats.records.get();
        let ib0 = db.wal.stats.ib_records.get();
        let locks0 = db.locks.stats.calls.get();
        let churn = start_churn(
            &db,
            &rids,
            ChurnConfig {
                threads: 2,
                ..ChurnConfig::default()
            },
        );
        std::thread::sleep(Duration::from_millis(30));
        let idx = build_index(&db, TABLE, spec("e6"), algo).expect("build");
        let stats = churn.stop();
        verify_index(&db, idx).expect("verify");
        let txn_recs = (db.wal.stats.records.get() - recs0) - (db.wal.stats.ib_records.get() - ib0);
        let locks = db.locks.stats.calls.get() - locks0;
        let appends = db.index(idx).expect("idx").side_file.appended.get();
        t.row(vec![
            format!("{algo:?}"),
            us(stats.mean_latency()),
            f2(txn_recs as f64 / stats.ops.max(1) as f64),
            appends.to_string(),
            f2(locks as f64 / stats.ops.max(1) as f64),
        ]);
    }
    t.note("SF's appends replace direct tree maintenance while the scan is behind the record.");
    vec![t]
}
