//! E23 (parallel prefix-compressed bulk build): wall-clock speedup of
//! the partitioned scan-and-sort at 1/2/4 workers, the spilled-run
//! compression ratio, and the §6.2 two-index build riding one
//! partitioned scan.

use crate::report::{f2, ms, Table};
use crate::workload::{bench_config, seed_table, TABLE};
use mohan_oib::build::{build_indexes_with, BuildOptions, IndexSpec};
use mohan_oib::schema::BuildAlgorithm;
use mohan_oib::verify::verify_index;
use std::time::{Duration, Instant};

fn spec(name: &str) -> IndexSpec {
    IndexSpec {
        name: name.into(),
        key_cols: vec![0],
        unique: false,
    }
}

/// Build `specs` on a freshly seeded table, returning the build time
/// and the run store's (raw, stored) spill accounting.
fn one_build(n: i64, specs: &[IndexSpec], opts: &BuildOptions) -> (Duration, u64, u64) {
    let (db, _) = seed_table(bench_config(), n, 2323);
    let started = Instant::now();
    let ids = build_indexes_with(&db, TABLE, specs, BuildAlgorithm::Sf, opts).expect("build");
    let took = started.elapsed();
    let (mut raw, mut stored) = (0u64, 0u64);
    for id in ids {
        verify_index(&db, id).expect("verify");
        let idx = db.index(id).expect("index");
        let guard = idx.sort_store.lock();
        if let Some(rs) = guard.as_ref() {
            raw += rs.raw_bytes.get();
            stored += rs.stored_bytes.get();
        }
        drop(guard);
    }
    (took, raw, stored)
}

/// E23: the parallel prefix-compressed build. The serial uncompressed
/// build is the baseline; worker counts 1/2/4 partition the same scan
/// (speedup should be monotone), and `compress_runs` shrinks every
/// spilled byte count at no worker count's expense.
pub fn e23_parallel_build(quick: bool) -> Vec<Table> {
    let n: i64 = if quick {
        super::scaled(40_000)
    } else {
        super::scaled(300_000)
    };
    let mut t = Table::new(
        "E23: parallel prefix-compressed bulk build (quiet table)",
        &[
            "rows",
            "workers",
            "compress",
            "build",
            "speedup",
            "run KB raw",
            "run KB stored",
            "ratio",
        ],
    );
    let (base, base_raw, base_stored) = one_build(n, &[spec("e23")], &BuildOptions::default());
    let mut row = |workers: usize, compress: bool, took: Duration, raw: u64, stored: u64| {
        t.row(vec![
            n.to_string(),
            workers.to_string(),
            if compress { "on" } else { "off" }.into(),
            ms(took),
            f2(base.as_secs_f64() / took.as_secs_f64().max(1e-9)),
            f2(raw as f64 / 1024.0),
            f2(stored as f64 / 1024.0),
            if raw == 0 {
                "-".into()
            } else {
                f2(stored as f64 / raw as f64)
            },
        ]);
    };
    row(1, false, base, base_raw, base_stored);
    for workers in [1usize, 2, 4] {
        let opts = BuildOptions::new().workers(workers).compress(true);
        let (took, raw, stored) = one_build(n, &[spec("e23")], &opts);
        row(workers, true, took, raw, stored);
    }
    t.note("Baseline: serial, uncompressed. Speedup is baseline/run.");
    t.note("Run formation, spill and merge all happen on the worker partitions.");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    t.note(format!(
        "Host exposes {cores} core(s); scan-partition speedup needs cores >= workers, \
         so single-core hosts show only the compression win."
    ));

    // §6.2 under parallelism: two indexes share the partitioned scan.
    let mut t2 = Table::new(
        "E23b: two indexes on one partitioned scan (§6.2 x parallel)",
        &["strategy", "build", "speedup"],
    );
    let two = [spec("e23_k"), {
        let mut s = spec("e23_v");
        s.key_cols = vec![1];
        s
    }];
    let (serial2, _, _) = one_build(n, &two, &BuildOptions::default());
    let (par2, _, _) = one_build(n, &two, &BuildOptions::new().workers(4).compress(true));
    t2.row(vec!["2 indexes, serial".into(), ms(serial2), f2(1.0)]);
    t2.row(vec![
        "2 indexes, 4 workers + compression".into(),
        ms(par2),
        f2(serial2.as_secs_f64() / par2.as_secs_f64().max(1e-9)),
    ]);
    t2.note("Both indexes verified entry-for-entry after every run.");
    vec![t, t2]
}
