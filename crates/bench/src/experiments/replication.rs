//! E18: follower lag while the primary serves closed-loop DML — with
//! and without an online SF build running beside it.
//!
//! The follower tails the primary's flushed log over the wire and
//! replays it through the recovery redo path (`mohan_replica`). The
//! question E18 answers: does the replication stream keep up with a
//! loaded primary, and how much does an index build — whose catalog
//! snapshots and side-file appends ride the same stream — widen the
//! lag window? Lag is sampled in LSNs (the primary's flushed tail
//! minus the follower's applied position) while the load runs, and
//! the catch-up time after the load stops measures the drain of
//! whatever backlog built up.

use super::service::start_wire_churn;
use crate::report::{f2, ms, Table};
use crate::workload::{bench_config, seed_table, TABLE};
use mohan_client::{Client, ClientError};
use mohan_common::EngineConfig;
use mohan_oib::verify::verify_index;
use mohan_oib::Db;
use mohan_replica::Replica;
use mohan_server::{Server, ServerConfig};
use mohan_wire::message::{BuildAlgo, IndexSpecWire};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// E18: replication lag under load, loopback primary → follower.
pub fn e18_replication(quick: bool) -> Vec<Table> {
    let n: i64 = super::scaled(if quick { 20_000 } else { 60_000 });
    const CLIENTS: usize = 4;
    let sample_every = Duration::from_millis(10);

    let (db, rids) = seed_table(bench_config(), n, 99);
    let srv = Server::start(
        Arc::clone(&db),
        ServerConfig {
            workers: 4,
            max_inflight: 16,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = srv.addr().to_string();

    let follower = Db::new(EngineConfig {
        replica: true,
        ..bench_config()
    });
    follower.create_table(TABLE);
    let replica = Replica::new(Arc::clone(&follower), &addr);
    let apply = replica.spawn();

    // Let the follower swallow the seed history before measuring, so
    // the first window starts from lag 0 rather than a cold backlog.
    db.wal.flush_all();
    assert!(
        replica.wait_caught_up(db.wal.flushed_lsn(), Duration::from_secs(60)),
        "follower never absorbed the seed history"
    );

    let mut t = Table::new(
        "E18: follower lag (LSNs) under closed-loop wire DML, with and without an SF build",
        &[
            "scenario",
            "window",
            "wire ops/s",
            "lag mean",
            "lag p99",
            "lag max",
            "catch-up",
        ],
    );

    let mut built = None;
    for build in [false, true] {
        let churn = start_wire_churn(&addr, CLIENTS, &rids);
        std::thread::sleep(Duration::from_millis(50));

        // Sample lag while the window runs; the build scenario's
        // window is the build itself, the baseline's is fixed time.
        let mut samples: Vec<u64> = Vec::new();
        let started = Instant::now();
        if build {
            let done = Arc::new(AtomicBool::new(false));
            let done2 = Arc::clone(&done);
            let addr2 = addr.clone();
            let builder = std::thread::spawn(move || {
                let mut c = Client::connect(&addr2).expect("builder connect");
                let ids = loop {
                    match c.create_index(
                        TABLE,
                        BuildAlgo::Sf,
                        vec![IndexSpecWire {
                            name: "e18_sf".into(),
                            key_cols: vec![0],
                            unique: false,
                        }],
                        |_, _, _| {},
                    ) {
                        Ok(ids) => break ids,
                        Err(ClientError::Busy) => std::thread::sleep(Duration::from_millis(1)),
                        Err(e) => panic!("wire build: {e}"),
                    }
                };
                done2.store(true, Ordering::Release);
                ids
            });
            while !done.load(Ordering::Acquire) {
                samples.push(replica.lag());
                std::thread::sleep(sample_every);
            }
            built = Some(builder.join().expect("builder thread")[0]);
        } else {
            let window = Duration::from_millis(if quick { 300 } else { 800 });
            while started.elapsed() < window {
                samples.push(replica.lag());
                std::thread::sleep(sample_every);
            }
        }
        let window = started.elapsed();
        let stats = churn.stop();

        // Catch-up: how long the follower needs to drain the backlog
        // once the primary goes quiet.
        db.wal.flush_all();
        let t0 = Instant::now();
        assert!(
            replica.wait_caught_up(db.wal.flushed_lsn(), Duration::from_secs(60)),
            "follower never caught up after the window"
        );
        let catch_up = t0.elapsed();

        samples.sort_unstable();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len().max(1) as f64;
        let p99 = samples[(samples.len().saturating_sub(1)) * 99 / 100];
        let max = samples.last().copied().unwrap_or(0);
        t.row(vec![
            if build {
                "DML + SF build over the wire".into()
            } else {
                "DML only".into()
            },
            ms(window),
            f2(stats.ops as f64 / stats.elapsed.as_secs_f64().max(1e-9)),
            f2(mean),
            p99.to_string(),
            max.to_string(),
            ms(catch_up),
        ]);
        let _ = stats.errors;
    }

    // The replicated build is structurally sound on the follower too.
    let built = built.expect("build scenario ran");
    verify_index(&follower, built).expect("follower index verifies");

    replica.stop();
    srv.drain();
    apply.join().expect("replica apply thread");

    t.note("Lag sampled every 10ms: primary flushed LSN minus follower applied LSN.");
    t.note("Catch-up is the backlog drain time after churn stops (flushed prefix fully applied).");
    t.note(format!(
        "Follower reconnects: {}; the stream survived the whole run if 0.",
        replica.reconnects()
    ));
    vec![t]
}
