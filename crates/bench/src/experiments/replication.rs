//! E18: follower lag while the primary serves closed-loop DML — with
//! and without an online SF build running beside it.
//!
//! The follower tails the primary's flushed log over the wire and
//! replays it through the recovery redo path (`mohan_replica`). The
//! question E18 answers: does the replication stream keep up with a
//! loaded primary, and how much does an index build — whose catalog
//! snapshots and side-file appends ride the same stream — widen the
//! lag window? Lag is sampled in LSNs (the primary's flushed tail
//! minus the follower's applied position) while the load runs, and
//! the catch-up time after the load stops measures the drain of
//! whatever backlog built up.
//!
//! E19 turns the follower from a passive tail into a read replica:
//! bounded-staleness reads are served from the follower — over the
//! wire and in-process, through the same [`ReadApi`] driver — while
//! the primary churns, and the run ends by killing the primary and
//! timing the promotion (client-visible write downtime).

use super::service::start_wire_churn;
use crate::report::{f2, ms, us, Table};
use crate::workload::{bench_config, seed_table, TABLE};
use mohan_client::{Client, ClientError, ErrorCode};
use mohan_common::{EngineConfig, Lsn, ReadApi, Rid, TxId};
use mohan_oib::schema::Record;
use mohan_oib::verify::verify_index;
use mohan_oib::Db;
use mohan_replica::{FollowerReader, Replica};
use mohan_server::{PromoteHook, Promotion, Server, ServerConfig};
use mohan_wal::{LogPayload, RecKind};
use mohan_wire::message::{BuildAlgo, IndexSpecWire, Request, Response, Role};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// E18: replication lag under load, loopback primary → follower.
pub fn e18_replication(quick: bool) -> Vec<Table> {
    let n: i64 = super::scaled(if quick { 20_000 } else { 60_000 });
    const CLIENTS: usize = 4;
    let sample_every = Duration::from_millis(10);

    let (db, rids) = seed_table(bench_config(), n, 99);
    let srv = Server::start(
        Arc::clone(&db),
        ServerConfig {
            workers: 4,
            max_inflight: 16,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = srv.addr().to_string();

    let follower = Db::new(EngineConfig {
        replica: true,
        ..bench_config()
    });
    follower.create_table(TABLE);
    let replica = Replica::new(Arc::clone(&follower), &addr);
    let apply = replica.spawn();

    // Let the follower swallow the seed history before measuring, so
    // the first window starts from lag 0 rather than a cold backlog.
    db.wal.flush_all();
    assert!(
        replica.wait_caught_up(db.wal.flushed_lsn(), Duration::from_secs(60)),
        "follower never absorbed the seed history"
    );

    let mut t = Table::new(
        "E18: follower lag (LSNs) under closed-loop wire DML, with and without an SF build",
        &[
            "scenario",
            "window",
            "wire ops/s",
            "lag mean",
            "lag p99",
            "lag max",
            "catch-up",
        ],
    );

    let mut built = None;
    for build in [false, true] {
        let churn = start_wire_churn(&addr, CLIENTS, &rids);
        std::thread::sleep(Duration::from_millis(50));

        // Sample lag while the window runs; the build scenario's
        // window is the build itself, the baseline's is fixed time.
        let mut samples: Vec<u64> = Vec::new();
        let started = Instant::now();
        if build {
            let done = Arc::new(AtomicBool::new(false));
            let done2 = Arc::clone(&done);
            let addr2 = addr.clone();
            let builder = std::thread::spawn(move || {
                let mut c = Client::connect(&addr2).expect("builder connect");
                let ids = loop {
                    match c.create_index(
                        TABLE,
                        BuildAlgo::Sf,
                        vec![IndexSpecWire {
                            name: "e18_sf".into(),
                            key_cols: vec![0],
                            unique: false,
                        }],
                        |_, _, _| {},
                    ) {
                        Ok(ids) => break ids,
                        Err(ClientError::Busy) => std::thread::sleep(Duration::from_millis(1)),
                        Err(e) => panic!("wire build: {e}"),
                    }
                };
                done2.store(true, Ordering::Release);
                ids
            });
            while !done.load(Ordering::Acquire) {
                samples.push(replica.lag());
                std::thread::sleep(sample_every);
            }
            built = Some(builder.join().expect("builder thread")[0]);
        } else {
            let window = Duration::from_millis(if quick { 300 } else { 800 });
            while started.elapsed() < window {
                samples.push(replica.lag());
                std::thread::sleep(sample_every);
            }
        }
        let window = started.elapsed();
        let stats = churn.stop();

        // Catch-up: how long the follower needs to drain the backlog
        // once the primary goes quiet.
        db.wal.flush_all();
        let t0 = Instant::now();
        assert!(
            replica.wait_caught_up(db.wal.flushed_lsn(), Duration::from_secs(60)),
            "follower never caught up after the window"
        );
        let catch_up = t0.elapsed();

        samples.sort_unstable();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len().max(1) as f64;
        let p99 = samples[(samples.len().saturating_sub(1)) * 99 / 100];
        let max = samples.last().copied().unwrap_or(0);
        t.row(vec![
            if build {
                "DML + SF build over the wire".into()
            } else {
                "DML only".into()
            },
            ms(window),
            f2(stats.ops as f64 / stats.elapsed.as_secs_f64().max(1e-9)),
            f2(mean),
            p99.to_string(),
            max.to_string(),
            ms(catch_up),
        ]);
        let _ = stats.errors;
    }

    // The replicated build is structurally sound on the follower too.
    let built = built.expect("build scenario ran");
    verify_index(&follower, built).expect("follower index verifies");

    replica.stop();
    srv.drain();
    apply.join().expect("replica apply thread");

    t.note("Lag sampled every 10ms: primary flushed LSN minus follower applied LSN.");
    t.note("Catch-up is the backlog drain time after churn stops (flushed prefix fully applied).");
    t.note(format!(
        "Follower reconnects: {}; the stream survived the whole run if 0.",
        replica.reconnects()
    ));
    vec![t]
}

/// Closed-loop reads against any [`ReadApi`] surface — the same driver
/// measures the wire client, the in-process follower reader, and (as a
/// baseline) an in-process session. Errors (stale rejections, mostly)
/// are counted, backed off, and retried; only successful reads
/// contribute latency samples.
fn read_driver<R: ReadApi>(
    api: &mut R,
    rids: &[Rid],
    stop: &AtomicBool,
) -> (u64, u64, Vec<Duration>) {
    let mut ok = 0u64;
    let mut errs = 0u64;
    let mut lats = Vec::new();
    let mut i = 0usize;
    while !stop.load(Ordering::Relaxed) {
        let rid = rids[i % rids.len()];
        i = i.wrapping_add(17); // coprime stride ≈ uniform coverage
        let t0 = Instant::now();
        match api.read(TABLE, rid) {
            Ok(_) => {
                lats.push(t0.elapsed());
                ok += 1;
            }
            Err(_) => {
                errs += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
    (ok, errs, lats)
}

fn pctl(sorted: &[Duration], p: usize) -> Duration {
    if sorted.is_empty() {
        Duration::ZERO
    } else {
        sorted[(sorted.len() - 1) * p / 100]
    }
}

/// E19: follower reads under a staleness bound, then promotion after
/// the primary dies — loopback primary → follower, reads over the
/// wire and in-process through the shared [`ReadApi`] driver.
pub fn e19_follower_reads(quick: bool) -> Vec<Table> {
    let n: i64 = super::scaled(if quick { 20_000 } else { 60_000 });
    const DML_CLIENTS: usize = 4;
    const WIRE_READERS: usize = 2;
    /// Reads are refused once the follower trails the primary by more
    /// than this many LSNs; rejections show up in the table, not as
    /// harness failures.
    const MAX_LAG_LSN: u64 = 5_000;
    let window = Duration::from_millis(if quick { 300 } else { 800 });

    let (db, rids) = seed_table(bench_config(), n, 99);
    let psrv = Server::start(
        Arc::clone(&db),
        ServerConfig {
            workers: 4,
            max_inflight: 16,
            ..ServerConfig::default()
        },
    )
    .expect("bind primary");
    let paddr = psrv.addr().to_string();

    let follower = Db::new(EngineConfig {
        replica: true,
        ..bench_config()
    });
    follower.create_table(TABLE);
    let replica = Replica::new(Arc::clone(&follower), &paddr);
    let apply = replica.spawn();
    db.wal.flush_all();
    assert!(
        replica.wait_caught_up(db.wal.flushed_lsn(), Duration::from_secs(60)),
        "follower never absorbed the seed history"
    );

    // The follower's own wire endpoint: staleness-gated reads, writes
    // bounced toward the primary, promotion wired to the replica.
    let hook_replica = Arc::clone(&replica);
    let fsrv = Server::start(
        Arc::clone(&follower),
        ServerConfig {
            workers: 4,
            max_inflight: 16,
            max_lag_lsn: MAX_LAG_LSN,
            leader_hint: paddr.clone(),
            promote_hook: Some(PromoteHook::new(move || {
                hook_replica.promote().map(|r| Promotion {
                    last_lsn: r.last_lsn.0,
                    losers_undone: r.losers_undone,
                })
            })),
            ..ServerConfig::default()
        },
    )
    .expect("bind follower");
    let faddr = fsrv.addr().to_string();

    // Phase 1: primary churn + follower reads, all surfaces at once.
    let churn = start_wire_churn(&paddr, DML_CLIENTS, &rids);
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..WIRE_READERS)
        .map(|_| {
            let faddr = faddr.clone();
            let rids = rids.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = Client::connect(&faddr).expect("reader connect");
                assert_eq!(
                    c.hello(Role::Client).expect("handshake").role,
                    Role::Replica
                );
                read_driver(&mut c, &rids, &stop)
            })
        })
        .collect();
    let inproc = {
        let rids = rids.clone();
        let stop = Arc::clone(&stop);
        let mut reader = FollowerReader::new(Arc::clone(&replica), MAX_LAG_LSN);
        std::thread::spawn(move || read_driver(&mut reader, &rids, &stop))
    };

    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let dml = churn.stop();
    let wire: Vec<_> = readers
        .into_iter()
        .map(|h| h.join().expect("wire reader"))
        .collect();
    let (ip_ok, ip_errs, mut ip_lats) = inproc.join().expect("in-process reader");

    let mut t = Table::new(
        "E19: follower read throughput/latency under primary churn (bounded staleness)",
        &[
            "read surface",
            "reads",
            "reads/s",
            "p50",
            "p99",
            "rejected stale",
        ],
    );
    let secs = window.as_secs_f64();
    let wire_ok: u64 = wire.iter().map(|(ok, _, _)| ok).sum();
    let wire_errs: u64 = wire.iter().map(|(_, e, _)| e).sum();
    let mut wire_lats: Vec<Duration> = wire.into_iter().flat_map(|(_, _, l)| l).collect();
    wire_lats.sort_unstable();
    ip_lats.sort_unstable();
    t.row(vec![
        format!("wire client ×{WIRE_READERS} (loopback)"),
        wire_ok.to_string(),
        f2(wire_ok as f64 / secs),
        us(pctl(&wire_lats, 50)),
        us(pctl(&wire_lats, 99)),
        wire_errs.to_string(),
    ]);
    t.row(vec![
        "in-process FollowerReader".into(),
        ip_ok.to_string(),
        f2(ip_ok as f64 / secs),
        us(pctl(&ip_lats, 50)),
        us(pctl(&ip_lats, 99)),
        ip_errs.to_string(),
    ]);
    t.note(format!(
        "Primary DML beside the reads: {} committed wire ops ({}/s); staleness budget {MAX_LAG_LSN} LSNs.",
        dml.ops,
        f2(dml.ops as f64 / dml.elapsed.as_secs_f64().max(1e-9)),
    ));
    t.note(format!(
        "Follower counters: repl.reads_served={}, repl.reads_rejected_stale={}.",
        follower.obs.counter("repl.reads_served").get(),
        follower.obs.counter("repl.reads_rejected_stale").get(),
    ));

    // Phase 2: the failover. Converge, kill the primary, promote over
    // the wire, and time the client-visible write gap.
    db.wal.flush_all();
    assert!(
        replica.wait_caught_up(db.wal.flushed_lsn(), Duration::from_secs(60)),
        "follower never converged before failover"
    );
    psrv.drain();
    db.simulate_crash();

    let mut t2 = Table::new(
        "E19: promotion after primary crash (client-visible downtime)",
        &["step", "value"],
    );
    let mut c = Client::connect(&faddr).expect("promoter connect");
    let t0 = Instant::now();
    let promoted = c.promote().expect("wire promotion");
    let promote_call = t0.elapsed();
    // Downtime as a writer experiences it: from initiating failover to
    // the first acknowledged write on the new primary.
    let rid = c
        .insert(TABLE, vec![77_000_001, 1])
        .expect("first post-promotion write");
    let downtime = t0.elapsed();
    assert_eq!(
        c.read(TABLE, rid).expect("read back"),
        vec![77_000_001, 1],
        "post-promotion write not visible"
    );
    assert_eq!(
        c.hello(Role::Client).expect("handshake").role,
        Role::Primary
    );

    t2.row(vec!["promote call (wire)".into(), ms(promote_call)]);
    t2.row(vec!["downtime to first acked write".into(), ms(downtime)]);
    t2.row(vec![
        "in-flight txs undone".into(),
        promoted.losers_undone.to_string(),
    ]);
    t2.row(vec![
        "log tail at takeover".into(),
        promoted.last_lsn.to_string(),
    ]);
    t2.note("Downtime excludes failure detection: the clock starts at the Promote request.");

    fsrv.drain();
    apply.join().expect("replica apply thread");
    vec![t, t2]
}

/// One named counter out of a `Request::Stats` round trip — how E22
/// reads the primary's fan-out counters without touching internals.
fn stat(c: &mut Client, key: &str) -> u64 {
    match c.call(&Request::Stats).expect("stats round trip") {
        Response::Stats { counters } => counters
            .iter()
            .find(|(k, _)| k == key)
            .map_or(0, |(_, v)| *v),
        other => panic!("expected Stats, got {other:?}"),
    }
}

/// E22: shared broadcast-pump fan-out — the primary's WAL-suffix scan
/// and encode work must be O(1) per flushed batch no matter how many
/// subscribers tail the stream, idle subscribers must cost zero
/// scans, and a stalled subscriber must be cut loose and converge
/// after reconnecting with nothing lost. All three claims are counter
/// verified (`repl.fanout.*`), not timed.
pub fn e22_fanout(quick: bool) -> Vec<Table> {
    let batches: i64 = if quick { 20 } else { 60 };
    let rows_per_batch: i64 = if quick { 200 } else { 400 };

    let mut t = Table::new(
        "E22: primary-side scan/encode cost per flushed batch vs subscriber count",
        &[
            "subscribers",
            "flushed batches",
            "suffix scans",
            "encode passes",
            "scans/batch",
            "records/sub",
            "delivered total",
            "wall",
        ],
    );

    for &subs in &[1usize, 4, 16] {
        let (db, _rids) = seed_table(bench_config(), super::scaled(5_000), 99);
        let srv = Server::start(
            Arc::clone(&db),
            ServerConfig {
                workers: 4,
                max_inflight: 64,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let addr = srv.addr().to_string();
        db.wal.flush_all();
        let start_lsn = db.wal.flushed_lsn().0;

        let stop = Arc::new(AtomicBool::new(false));
        let delivered = Arc::new(AtomicU64::new(0));
        let tails: Vec<_> = (0..subs)
            .map(|_| {
                let c = Client::connect(&addr).expect("subscriber connect");
                let stop = Arc::clone(&stop);
                let delivered = Arc::clone(&delivered);
                std::thread::spawn(move || {
                    let _ = c.subscribe_wal(start_lsn + 1, move |_flushed, records, _traces| {
                        delivered.fetch_add(records.len() as u64, Ordering::Relaxed);
                        !stop.load(Ordering::Relaxed)
                    });
                })
            })
            .collect();
        let mut statsc = Client::connect(&addr).expect("stats connect");
        while stat(&mut statsc, "repl.fanout.subscribers") < subs as u64 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let scans0 = stat(&mut statsc, "repl.fanout.scans");
        let encodes0 = stat(&mut statsc, "repl.fanout.encodes");

        let t0 = Instant::now();
        for b in 0..batches {
            let tx = db.begin();
            for i in 0..rows_per_batch {
                db.insert_record(
                    tx,
                    TABLE,
                    &Record(vec![9_000_000 + b * rows_per_batch + i, 0]),
                )
                .expect("insert");
            }
            db.commit(tx).expect("commit");
            db.wal.flush_all();
        }
        let wrote = db.wal.flushed_lsn().0 - start_lsn;
        let want = subs as u64 * wrote;
        let deadline = Instant::now() + Duration::from_secs(60);
        while delivered.load(Ordering::Relaxed) < want && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let wall = t0.elapsed();
        let scans = stat(&mut statsc, "repl.fanout.scans") - scans0;
        let encodes = stat(&mut statsc, "repl.fanout.encodes") - encodes0;
        stop.store(true, Ordering::Relaxed);
        for h in tails {
            h.join().expect("subscriber thread");
        }
        let got = delivered.load(Ordering::Relaxed);
        assert_eq!(got, want, "subscribers missed records ({subs} subs)");

        t.row(vec![
            subs.to_string(),
            batches.to_string(),
            scans.to_string(),
            encodes.to_string(),
            f2(scans as f64 / batches as f64),
            wrote.to_string(),
            got.to_string(),
            ms(wall),
        ]);
        srv.drain();
    }
    t.note("Suffix scans / encode passes are the shared ring's counters: every flushed batch is scanned and encoded once for ALL subscribers (scans/batch ~constant from 1 to 16).");
    t.note("delivered total = subscribers x records: decode-once fan-out, with zero records lost.");

    // Idle leg: subscribers attached, nothing flushing. The flush-waker
    // gate plus the ring's head hint must make this window free —
    // zero scans, zero encodes.
    let mut t2 = Table::new(
        "E22: idle window with 16 attached subscribers",
        &["window", "suffix scans", "encode passes", "shard wakeups"],
    );
    {
        let (db, _rids) = seed_table(bench_config(), super::scaled(5_000), 99);
        let srv = Server::start(
            Arc::clone(&db),
            ServerConfig {
                workers: 4,
                max_inflight: 64,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let addr = srv.addr().to_string();
        db.wal.flush_all();
        let from = db.wal.flushed_lsn().0 + 1;
        let stop = Arc::new(AtomicBool::new(false));
        let tails: Vec<_> = (0..16)
            .map(|_| {
                let c = Client::connect(&addr).expect("subscriber connect");
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let _ = c.subscribe_wal(from, move |_, _, _| !stop.load(Ordering::Relaxed));
                })
            })
            .collect();
        let mut statsc = Client::connect(&addr).expect("stats connect");
        while stat(&mut statsc, "repl.fanout.subscribers") < 16 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let scans0 = stat(&mut statsc, "repl.fanout.scans");
        let encodes0 = stat(&mut statsc, "repl.fanout.encodes");
        let wakeups0 = stat(&mut statsc, "server.wakeups");
        let window = Duration::from_millis(if quick { 400 } else { 1000 });
        std::thread::sleep(window);
        let scans = stat(&mut statsc, "repl.fanout.scans") - scans0;
        let encodes = stat(&mut statsc, "repl.fanout.encodes") - encodes0;
        let wakeups = stat(&mut statsc, "server.wakeups") - wakeups0;
        assert_eq!(scans, 0, "idle subscribers caused WAL-suffix scans");
        assert_eq!(encodes, 0, "idle subscribers caused encode passes");
        stop.store(true, Ordering::Relaxed);
        for h in tails {
            h.join().expect("subscriber thread");
        }
        t2.row(vec![
            ms(window),
            scans.to_string(),
            encodes.to_string(),
            wakeups.to_string(),
        ]);
        srv.drain();
    }
    t2.note("No flushes in the window: the flush-waker gate and the ring's head hint leave nothing to scan; heartbeats are timer-driven and touch no WAL state.");

    // Cut-loose leg: one subscriber stalls while the log churns whole
    // ring windows past it; the primary cuts it loose with the
    // structured error, it resubscribes from its exact cursor, and the
    // bounded catch-up scans walk it back — contiguity-checked, so a
    // single lost or repeated LSN fails the experiment.
    let mut t3 = Table::new(
        "E22: slow-follower cut-loose and reconnect catch-up (zero loss)",
        &["cut loose", "records", "catch-up scans", "lost"],
    );
    {
        let (db, _rids) = seed_table(bench_config(), super::scaled(2_000), 99);
        let srv = Server::start(
            Arc::clone(&db),
            ServerConfig {
                workers: 2,
                max_inflight: 16,
                write_timeout: Duration::from_secs(60),
                fanout_ring_bytes: 1 << 20,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let addr = srv.addr().to_string();
        db.wal.flush_all();
        let start = db.wal.flushed_lsn().0;
        let resume = Arc::new(AtomicBool::new(false));
        let tail = Arc::new(AtomicU64::new(0));

        let sub = {
            let addr = addr.clone();
            let resume = Arc::clone(&resume);
            let tail = Arc::clone(&tail);
            std::thread::spawn(move || {
                let mut next = start + 1;
                let mut cuts = 0u64;
                let mut stalled_once = false;
                loop {
                    let c = Client::connect(&addr).expect("subscriber reconnect");
                    let res = c.subscribe_wal(next, |_flushed, records, _traces| {
                        if !stalled_once {
                            stalled_once = true;
                            let deadline = Instant::now() + Duration::from_secs(30);
                            while !resume.load(Ordering::Acquire) && Instant::now() < deadline {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                        }
                        for rec in &records {
                            assert_eq!(rec.lsn.0, next, "gap or replay after cut-loose");
                            next += 1;
                        }
                        let t = tail.load(Ordering::Acquire);
                        t == 0 || next <= t
                    });
                    match res {
                        Ok(()) => break,
                        Err(ClientError::Server {
                            code: ErrorCode::SubscriptionLagged { .. },
                            ..
                        }) => cuts += 1,
                        Err(e) => panic!("subscriber stream failed: {e}"),
                    }
                }
                (next, cuts)
            })
        };

        // Churn ring windows past the stalled cursor until the cut
        // lands, then a little more churn for the catch-up to cover.
        let mut statsc = Client::connect(&addr).expect("stats connect");
        let mut cut = 0u64;
        for _ in 0..64 {
            for _ in 0..16 {
                db.wal.append(
                    TxId(999_999),
                    Lsn::NULL,
                    RecKind::RedoOnly,
                    LogPayload::CatalogUpdate {
                        bytes: vec![0xAB; 64 << 10],
                    },
                );
            }
            db.wal.flush_all();
            cut = stat(&mut statsc, "repl.fanout.cut_loose");
            if cut >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(cut >= 1, "stalled subscriber was never cut loose");
        let scans0 = stat(&mut statsc, "repl.fanout.scans");
        resume.store(true, Ordering::Release);
        for i in 0..256i64 {
            db.wal.append(
                TxId(999_999),
                Lsn::NULL,
                RecKind::RedoOnly,
                LogPayload::CatalogUpdate {
                    bytes: vec![i as u8; 1 << 10],
                },
            );
        }
        db.wal.flush_all();
        tail.store(db.wal.flushed_lsn().0, Ordering::Release);

        let (next, cuts) = sub.join().expect("subscriber thread");
        let catch_up_scans = stat(&mut statsc, "repl.fanout.scans") - scans0;
        let total = db.wal.flushed_lsn().0 - start;
        assert_eq!(next, tail.load(Ordering::Acquire) + 1, "records lost");
        t3.row(vec![
            cuts.to_string(),
            total.to_string(),
            catch_up_scans.to_string(),
            (tail.load(Ordering::Acquire) + 1 - next).to_string(),
        ]);
        srv.drain();
    }
    t3.note("The reconnecting cursor re-enters via bounded private scans until it reaches the ring; the contiguity assert makes 'zero committed records lost' a hard check.");

    vec![t, t2, t3]
}
