//! E11: side-file growth and drain behaviour (§3.2.5), including the
//! sorted-apply optimization ablation.

use crate::report::{f2, ms, Table};
use crate::workload::{bench_config, seed_table, start_churn, ChurnConfig, TABLE};
use mohan_oib::build::{build_index, IndexSpec};
use mohan_oib::schema::BuildAlgorithm;
use mohan_oib::verify::verify_index;
use std::time::Instant;

/// E11: appended entries, peak backlog and total build time vs churn
/// intensity, for sorted vs sequential drain application.
pub fn e11_drain(quick: bool) -> Vec<Table> {
    let n: i64 = if quick { 4_000 } else { 15_000 };
    let threads: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let mut t = Table::new(
        "E11: SF side-file growth and drain (§3.2.5)",
        &[
            "updaters",
            "drain order",
            "appended",
            "peak backlog",
            "build",
            "traversals",
        ],
    );
    for &upd in threads {
        for sorted in [true, false] {
            let mut cfg = bench_config();
            cfg.side_file_sorted_apply = sorted;
            let (db, rids) = seed_table(cfg, n, 110);
            let churn = start_churn(
                &db,
                &rids,
                ChurnConfig {
                    threads: upd,
                    ..ChurnConfig::default()
                },
            );
            // Let updaters ramp before the scan starts so the
            // side-file actually sees traffic.
            std::thread::sleep(std::time::Duration::from_millis(40));
            let started = Instant::now();
            let idx = build_index(
                &db,
                TABLE,
                IndexSpec {
                    name: "e11".into(),
                    key_cols: vec![0],
                    unique: false,
                },
                BuildAlgorithm::Sf,
            )
            .expect("build");
            let wall = started.elapsed();
            churn.stop();
            verify_index(&db, idx).expect("verify");
            let rt = db.index(idx).expect("idx");
            t.row(vec![
                upd.to_string(),
                if sorted { "sorted" } else { "sequential" }.into(),
                rt.side_file.appended.get().to_string(),
                rt.side_file.max_backlog.get().to_string(),
                ms(wall),
                rt.tree.stats.traversals.get().to_string(),
            ]);
        }
    }
    t.note("Sorting the backlog preserves the relative order of identical keys (stable sort).");
    t.note("Catch-up appends landing during the drain are processed sequentially.");

    // Append-cost micro-measure: how cheap is the side-file path while
    // the index is invisible vs direct maintenance after completion?
    let mut t2 = Table::new(
        "E11b: side-file append vs direct maintenance (log records per update)",
        &["phase", "txn log recs/op"],
    );
    let (db, rids) = seed_table(bench_config(), n.min(5_000), 111);
    // During build: ops recorded per committed op.
    let churn = start_churn(
        &db,
        &rids,
        ChurnConfig {
            threads: 1,
            ops_per_sec: Some(300),
            ..ChurnConfig::default()
        },
    );
    let recs0 = db.wal.stats.records.get();
    let ib0 = db.wal.stats.ib_records.get();
    let idx = build_index(
        &db,
        TABLE,
        IndexSpec {
            name: "e11b".into(),
            key_cols: vec![0],
            unique: false,
        },
        BuildAlgorithm::Sf,
    )
    .expect("build");
    let during_recs = (db.wal.stats.records.get() - recs0) - (db.wal.stats.ib_records.get() - ib0);
    let during = churn.stop();
    t2.row(vec![
        "during SF build (side-file appends)".into(),
        f2(during_recs as f64 / during.ops.max(1) as f64),
    ]);
    // After build: direct maintenance.
    let churn = start_churn(
        &db,
        &rids,
        ChurnConfig {
            threads: 1,
            ops_per_sec: Some(300),
            ..ChurnConfig::default()
        },
    );
    let recs1 = db.wal.stats.records.get();
    std::thread::sleep(std::time::Duration::from_millis(if quick {
        150
    } else {
        400
    }));
    let after = churn.stop();
    let after_recs = db.wal.stats.records.get() - recs1;
    t2.row(vec![
        "after build (direct index maintenance)".into(),
        f2(after_recs as f64 / after.ops.max(1) as f64),
    ]);
    verify_index(&db, idx).expect("verify");
    vec![t, t2]
}
