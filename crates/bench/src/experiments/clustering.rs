//! E4: clustering quality — the deviation from perfect clustering the
//! paper explicitly says "need[s] to be quantified for both
//! algorithms" (§4).

use crate::report::{f2, pct, Table};
use crate::workload::{bench_config, seed_table, start_churn, ChurnConfig, TABLE};
use mohan_btree::scan::clustering;
use mohan_btree::PrefetchStrategy;
use mohan_common::KeyValue;
use mohan_oib::build::{build_index, IndexSpec};
use mohan_oib::schema::BuildAlgorithm;
use mohan_oib::verify::verify_index;
use rand::SeedableRng;

/// E4: clustering ratio (fraction of physically ascending leaf
/// transitions) and occupancy vs concurrent-update intensity.
pub fn e4_clustering(quick: bool) -> Vec<Table> {
    let n: i64 = if quick { 4_000 } else { 15_000 };
    let threads: &[usize] = if quick { &[0, 2] } else { &[0, 1, 2, 4] };
    let mut t = Table::new(
        "E4: leaf-level clustering vs concurrent update intensity",
        &[
            "updaters",
            "algorithm",
            "clustering",
            "occupancy",
            "leaves",
            "entries",
        ],
    );
    for &upd in threads {
        for algo in [
            BuildAlgorithm::Offline,
            BuildAlgorithm::Nsf,
            BuildAlgorithm::Sf,
        ] {
            if algo == BuildAlgorithm::Offline && upd > 0 {
                continue; // offline quiesces: updater intensity is moot
            }
            let (db, rids) = seed_table(bench_config(), n, 55);
            let churn = (upd > 0).then(|| {
                start_churn(
                    &db,
                    &rids,
                    ChurnConfig {
                        threads: upd,
                        ..ChurnConfig::default()
                    },
                )
            });
            let idx = build_index(
                &db,
                TABLE,
                IndexSpec {
                    name: "e4".into(),
                    key_cols: vec![0],
                    unique: false,
                },
                algo,
            )
            .expect("build");
            if let Some(c) = churn {
                c.stop();
            }
            verify_index(&db, idx).expect("verify");
            let rt = db.index(idx).expect("index");
            let c = clustering(&rt.tree).expect("clustering");
            t.row(vec![
                upd.to_string(),
                format!("{algo:?}"),
                pct(c.clustering_ratio()),
                pct(c.avg_occupancy),
                c.leaves.to_string(),
                c.entries.to_string(),
            ]);
        }
    }
    t.note("SF's bottom-up load stays near 100%; deviations come only from the drain.");
    t.note("NSF degrades with update intensity: transaction splits interleave page allocation.");

    // Ablation: NSF's specialized split vs what a naive half-split
    // would do is visible through the ib_splits / splits counters.
    let mut abl = Table::new(
        "E4b: NSF split behaviour (2 updaters)",
        &["metric", "value"],
    );
    let (db, rids) = seed_table(bench_config(), n, 56);
    let churn = start_churn(
        &db,
        &rids,
        ChurnConfig {
            threads: 2,
            ..ChurnConfig::default()
        },
    );
    let idx = build_index(
        &db,
        TABLE,
        IndexSpec {
            name: "e4b".into(),
            key_cols: vec![0],
            unique: false,
        },
        BuildAlgorithm::Nsf,
    )
    .expect("build");
    churn.stop();
    let rt = db.index(idx).expect("index");
    abl.row(vec![
        "IB specialized splits (move-higher-only)".into(),
        rt.tree.stats.ib_splits.get().to_string(),
    ]);
    abl.row(vec![
        "normal half splits (transactions)".into(),
        rt.tree.stats.splits.get().to_string(),
    ]);
    abl.row(vec![
        "final clustering".into(),
        f2(clustering(&rt.tree).expect("clustering").clustering_ratio()),
    ]);
    abl.note("§2.3.1: the specialized split 'tries to mimic what happens in a bottom-up build'.");

    // E4c: what clustering buys — range-scan leaf I/O under sequential
    // prefetch [TeGu84] vs parent-guided prefetch [CHHIM91], on a
    // tree deliberately de-clustered by transaction-style inserts vs a
    // bottom-up one.
    let mut io = Table::new(
        "E4c: full-range scan I/O batches by prefetch strategy (§2.3.1)",
        &[
            "tree built by",
            "leaves",
            "sequential prefetch",
            "parent-guided",
            "ratio",
        ],
    );
    for (label, algo, txn_style) in [
        ("SF bottom-up", BuildAlgorithm::Sf, false),
        ("NSF under churn", BuildAlgorithm::Nsf, false),
        ("transaction inserts only", BuildAlgorithm::Offline, true),
    ] {
        let idx;
        let db;
        if txn_style {
            // The counterfactual: the tree grows purely by random-order
            // transaction inserts (no bulk build at all).
            db = seed_table(bench_config(), 0, 57).0;
            idx = build_index(
                &db,
                TABLE,
                IndexSpec {
                    name: "io".into(),
                    key_cols: vec![0],
                    unique: false,
                },
                BuildAlgorithm::Offline,
            )
            .expect("build");
            use rand::seq::SliceRandom;
            let mut keys: Vec<i64> = (0..n).collect();
            keys.shuffle(&mut rand::rngs::StdRng::seed_from_u64(57));
            let mut tx = db.begin();
            for (i, k) in keys.into_iter().enumerate() {
                db.insert_record(tx, TABLE, &mohan_oib::schema::Record::new(vec![k, 0]))
                    .expect("insert");
                if i % 500 == 499 {
                    db.commit(tx).expect("commit");
                    tx = db.begin();
                }
            }
            db.commit(tx).expect("commit");
        } else {
            let (d, rids) = seed_table(bench_config(), n, 57);
            db = d;
            let churn = start_churn(
                &db,
                &rids,
                ChurnConfig {
                    threads: 2,
                    ..ChurnConfig::default()
                },
            );
            idx = build_index(
                &db,
                TABLE,
                IndexSpec {
                    name: "io".into(),
                    key_cols: vec![0],
                    unique: false,
                },
                algo,
            )
            .expect("build");
            churn.stop();
        }
        let lo = KeyValue::from_i64(i64::MIN);
        let hi = KeyValue::from_i64(i64::MAX);
        let (_, seq) = db
            .index_range_lookup(idx, &lo, &hi, PrefetchStrategy::PhysicalSequence)
            .expect("scan");
        let (_, par) = db
            .index_range_lookup(idx, &lo, &hi, PrefetchStrategy::ParentGuided)
            .expect("scan");
        io.row(vec![
            label.to_string(),
            seq.leaves.to_string(),
            seq.io_batches.to_string(),
            par.io_batches.to_string(),
            f2(seq.io_batches as f64 / par.io_batches.max(1) as f64),
        ]);
    }
    io.note("Parent-guided prefetch 'compensates for NSF's inability to build bottom-up'.");
    vec![t, abl, io]
}
