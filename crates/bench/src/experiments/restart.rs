//! E7 (restartable sort), E8 (restartable merge), E9 (IB restart) —
//! §5 and the checkpointing of §2.2.3 / §3.2.4, quantified as
//! work-lost-at-crash vs checkpoint interval.

use crate::report::{f2, ms, Table};
use crate::workload::{bench_config, seed_table, TABLE};
use mohan_common::{IndexEntry, Rid};
use mohan_oib::build::{build_index, resume_build, IndexSpec};
use mohan_oib::progress::{self, BuildProgress};
use mohan_oib::schema::BuildAlgorithm;
use mohan_oib::verify::verify_index;
use mohan_sort::{Merge, MergeCheckpoint, RunFormation, RunStore, SortCheckpoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

fn entry(k: i64, i: u64) -> IndexEntry {
    IndexEntry::from_i64(k, Rid::new((i / 100) as u32, (i % 100) as u16))
}

/// E7: sort-phase checkpointing (§5.1). Feed N keys, crash at 60%,
/// resume: keys re-fed = work lost, bounded by the checkpoint
/// interval. Also shows the checkpoint *cost*: draining the tournament
/// workspace shortens runs.
pub fn e7_restartable_sort(quick: bool) -> Vec<Table> {
    let n: u64 = if quick { 20_000 } else { 100_000 };
    let intervals: &[u64] = if quick {
        &[1_000, 5_000]
    } else {
        &[1_000, 5_000, 20_000]
    };
    let mut t = Table::new(
        "E7: sort-phase checkpoints — lost work vs interval (crash at 60%)",
        &[
            "interval",
            "checkpoints",
            "keys re-fed",
            "lost %",
            "runs (crash path)",
            "runs (no crash)",
        ],
    );
    let mut rng = StdRng::seed_from_u64(7);
    let keys: Vec<i64> = (0..n).map(|_| rng.random_range(0..10_000_000)).collect();
    // Position the crash point off every checkpoint boundary so the
    // interval/loss trade-off is visible (a crash exactly on a shared
    // boundary would show equal loss for every interval).
    let crash_at = (n * 58 / 100 + 321) as usize;
    for &interval in intervals {
        // Baseline without crash/checkpoints.
        let baseline_runs = {
            let store: Arc<RunStore<IndexEntry>> = Arc::new(RunStore::new());
            let mut rf = RunFormation::new(Arc::clone(&store), 1024);
            for (i, &k) in keys.iter().enumerate() {
                rf.push(entry(k, i as u64), i as u64 + 1).expect("push");
            }
            rf.finish().expect("finish").len()
        };
        // Crash path.
        let store: Arc<RunStore<IndexEntry>> = Arc::new(RunStore::new());
        let mut rf = RunFormation::new(Arc::clone(&store), 1024);
        let mut cp: Option<SortCheckpoint<IndexEntry>> = None;
        let mut checkpoints = 0u64;
        for (i, &k) in keys.iter().take(crash_at).enumerate() {
            rf.push(entry(k, i as u64), i as u64 + 1).expect("push");
            if (i as u64 + 1).is_multiple_of(interval) {
                cp = Some(rf.checkpoint().expect("checkpoint"));
                checkpoints += 1;
            }
        }
        drop(rf);
        store.crash();
        let cp = cp.expect("at least one checkpoint");
        let refed = crash_at as u64 - cp.scan_pos;
        let mut rf = RunFormation::resume(Arc::clone(&store), 1024, &cp).expect("resume");
        for (i, &k) in keys.iter().enumerate().skip(cp.scan_pos as usize) {
            rf.push(entry(k, i as u64), i as u64 + 1).expect("push");
        }
        let runs = rf.finish().expect("finish");
        // Completeness check: all keys present across runs.
        let total: u64 = runs.iter().map(|&r| store.len(r).expect("len")).sum();
        assert_eq!(total, n, "sort lost keys");
        t.row(vec![
            interval.to_string(),
            checkpoints.to_string(),
            refed.to_string(),
            f2(100.0 * refed as f64 / crash_at as f64),
            runs.len().to_string(),
            baseline_runs.to_string(),
        ]);
    }
    t.note("Lost work ≤ one checkpoint interval; smaller intervals cost more, shorter runs.");
    vec![t]
}

/// E8: merge-phase checkpointing (§5.2). Merge R runs, crash at 60% of
/// the output, reposition by the counter vector: re-emitted keys are
/// bounded by the interval, and the output is byte-exact.
pub fn e8_restartable_merge(quick: bool) -> Vec<Table> {
    let n: u64 = if quick { 20_000 } else { 100_000 };
    let runs_count = 8usize;
    let intervals: &[u64] = if quick {
        &[1_000, 5_000]
    } else {
        &[1_000, 5_000, 20_000]
    };
    let mut t = Table::new(
        "E8: merge-phase checkpoints — lost work vs interval (crash at 60%)",
        &["interval", "re-emitted keys", "lost %", "output exact"],
    );
    let mut rng = StdRng::seed_from_u64(8);
    let mut expected: Vec<IndexEntry> = Vec::with_capacity(n as usize);
    let store: Arc<RunStore<IndexEntry>> = Arc::new(RunStore::new());
    let mut run_ids = Vec::new();
    for _ in 0..runs_count {
        let mut items: Vec<IndexEntry> = (0..n / runs_count as u64)
            .map(|i| entry(rng.random_range(0..10_000_000), i))
            .collect();
        items.sort();
        expected.extend(items.iter().cloned());
        let id = store.create_run();
        store.append(id, &items).expect("append");
        store.force_run(id).expect("force");
        run_ids.push(id);
    }
    expected.sort();
    let crash_at = expected.len() * 58 / 100 + 321;

    for &interval in intervals {
        let mut merge = Merge::new(&store, run_ids.clone());
        let mut out: Vec<IndexEntry> = Vec::with_capacity(expected.len());
        let mut cp: Option<MergeCheckpoint> = None;
        while out.len() < crash_at {
            out.push(merge.next().expect("key"));
            if (out.len() as u64).is_multiple_of(interval) {
                cp = Some(merge.checkpoint());
            }
        }
        drop(merge);
        store.crash();
        let cp = cp.expect("one checkpoint");
        // The output file is truncated back to the checkpoint.
        out.truncate(cp.emitted as usize);
        let re_emitted = crash_at as u64 - cp.emitted;
        let merge = Merge::resume(&store, &cp).expect("resume");
        out.extend(merge);
        let exact = out == expected;
        t.row(vec![
            interval.to_string(),
            re_emitted.to_string(),
            f2(100.0 * re_emitted as f64 / crash_at as f64),
            exact.to_string(),
        ]);
        assert!(exact, "merge output diverged");
    }
    t.note("'No key is left out from the merge and no key is output more than once' (§5.2).");
    vec![t]
}

/// E9: whole-build restart — crash the IB mid-insert (NSF) or mid-load
/// (SF), restart, resume; lost work is bounded by the IB checkpoint
/// interval (§2.2.3, §3.2.4).
pub fn e9_ib_restart(quick: bool) -> Vec<Table> {
    let n: i64 = if quick { 5_000 } else { 20_000 };
    let intervals: &[usize] = if quick {
        &[500, 2_000]
    } else {
        &[1_000, 4_000, 16_000]
    };
    let mut t = Table::new(
        "E9: IB restart — keys redone after a crash at 50% of the key-insert phase",
        &[
            "algorithm",
            "cp interval",
            "keys at checkpoint",
            "keys redone",
            "resume time",
        ],
    );
    for algo in [BuildAlgorithm::Nsf, BuildAlgorithm::Sf] {
        for &interval in intervals {
            let mut cfg = bench_config();
            cfg.ib_checkpoint_every_keys = interval;
            let (db, _) = seed_table(cfg, n, 99);
            let site = match algo {
                BuildAlgorithm::Nsf => "nsf.insert.key",
                _ => "sf.load.key",
            };
            db.failpoints.arm_after(site, (n / 2) as u64);
            let err = build_index(
                &db,
                TABLE,
                IndexSpec {
                    name: "e9".into(),
                    key_cols: vec![0],
                    unique: false,
                },
                algo,
            )
            .expect_err("armed crash");
            assert!(err.is_crash());
            db.simulate_crash();
            db.restart().expect("restart");
            let id = db.indexes_of(TABLE).last().expect("idx").def.id;
            let at_checkpoint = match progress::load(&db, id).expect("progress") {
                Some(BuildProgress::Inserting { inserted, .. }) => inserted,
                Some(BuildProgress::Loading { bulk, .. }) => bulk.count,
                _ => 0,
            };
            let redone = (n as u64 / 2).saturating_sub(at_checkpoint);
            let started = Instant::now();
            resume_build(&db, id).expect("resume");
            let resume_time = started.elapsed();
            verify_index(&db, id).expect("verify");
            t.row(vec![
                format!("{algo:?}"),
                interval.to_string(),
                at_checkpoint.to_string(),
                redone.to_string(),
                ms(resume_time),
            ]);
        }
    }
    t.note(
        "Redone keys ≤ one checkpoint interval; re-insertions are rejected as duplicates (NSF).",
    );
    vec![t]
}
