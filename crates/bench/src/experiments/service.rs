//! E16: the §4 availability comparison *as clients experience it* —
//! closed-loop DML over real loopback TCP connections while
//! `CREATE INDEX` runs over the wire, for all three algorithms.
//!
//! E5 measures the same claim in-process; here every operation pays
//! the full service path (framing, admission control, a worker shard,
//! the session) and the build's progress arrives as streamed
//! `BuildProgress` frames on a separate connection — the paper's
//! promise restated end-to-end: under SF the *service* keeps
//! answering, under offline it stalls for the whole build window.

use crate::report::{f2, ms, us, Table};
use crate::workload::{bench_config, seed_table, TABLE};
use mohan_client::{Client, ClientError};
use mohan_common::stats::Counter;
use mohan_common::Rid;
use mohan_oib::verify::verify_index;
use mohan_server::{Server, ServerConfig};
use mohan_wire::message::{BuildAlgo, IndexSpecWire};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Closed-loop wire clients: each thread owns one connection and keeps
/// exactly one request in flight (one simulated user). Shared with E18
/// (replication), which runs the same load with a follower attached.
pub(crate) struct WireChurn {
    stop: Arc<AtomicBool>,
    pub(crate) ops_live: Arc<Counter>,
    pub(crate) busy_live: Arc<Counter>,
    handles: Vec<JoinHandle<(u64, u64, Duration)>>,
    started: Instant,
}

pub(crate) struct WireChurnStats {
    pub(crate) ops: u64,
    pub(crate) errors: u64,
    pub(crate) elapsed: Duration,
    total_latency: Duration,
}

impl WireChurnStats {
    pub(crate) fn mean_latency(&self) -> Duration {
        if self.ops == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.ops as u32
        }
    }
}

impl WireChurn {
    pub(crate) fn stop(self) -> WireChurnStats {
        self.stop.store(true, Ordering::Relaxed);
        let elapsed = self.started.elapsed();
        let mut ops = 0;
        let mut errors = 0;
        let mut total_latency = Duration::ZERO;
        for h in self.handles {
            let (n, e, lat) = h.join().expect("wire churn thread");
            ops += n;
            errors += e;
            total_latency += lat;
        }
        WireChurnStats {
            ops,
            errors,
            elapsed,
            total_latency,
        }
    }
}

pub(crate) fn start_wire_churn(addr: &str, threads: usize, seeded_rids: &[Rid]) -> WireChurn {
    let stop = Arc::new(AtomicBool::new(false));
    let ops_live = Arc::new(Counter::default());
    let busy_live = Arc::new(Counter::default());
    let handles = (0..threads)
        .map(|i| {
            let addr = addr.to_owned();
            let stop = Arc::clone(&stop);
            let ops_live = Arc::clone(&ops_live);
            let busy_live = Arc::clone(&busy_live);
            // Each client updates a disjoint slice of the seeded rows
            // and inserts into a disjoint key space, so wire latency —
            // not lock conflicts — is what gets measured.
            let slice: Vec<Rid> = seeded_rids
                .iter()
                .copied()
                .skip(i)
                .step_by(threads.max(1))
                .collect();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("wire churn connect");
                let mut key = 10_000_000 * (i as i64 + 1);
                let mut ops = 0u64;
                let mut errors = 0u64;
                let mut lat = Duration::ZERO;
                while !stop.load(Ordering::Relaxed) {
                    key += 1;
                    let t0 = Instant::now();
                    let result = if ops.is_multiple_of(3) && !slice.is_empty() {
                        let rid = slice[ops as usize % slice.len()];
                        c.update(TABLE, rid, vec![key, 2])
                    } else {
                        c.insert(TABLE, vec![key, 0]).map(|_| ())
                    };
                    match result {
                        Ok(()) => {
                            lat += t0.elapsed();
                            ops += 1;
                            ops_live.bump();
                        }
                        Err(ClientError::Busy) => {
                            busy_live.bump();
                            key -= 1;
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        // Lock timeouts during the offline quiesce are
                        // a measurement, not a harness failure.
                        Err(ClientError::Server { .. }) => errors += 1,
                        Err(e) => panic!("wire churn client {i}: {e}"),
                    }
                }
                (ops, errors, lat)
            })
        })
        .collect();
    WireChurn {
        stop,
        ops_live,
        busy_live,
        handles,
        started: Instant::now(),
    }
}

/// E16: client-observed throughput/latency over loopback while the
/// index builds over the wire.
pub fn e16_service(quick: bool) -> Vec<Table> {
    let n: i64 = super::scaled(if quick { 30_000 } else { 100_000 });
    const CLIENTS: usize = 4;
    let server_cfg = || ServerConfig {
        workers: 4,
        max_inflight: 16,
        ..ServerConfig::default()
    };
    let mut t = Table::new(
        "E16: service availability over loopback TCP during online builds",
        &[
            "scenario",
            "window",
            "wire ops/s",
            "mean RTT",
            "busy/err",
            "progress frames",
            "ops vs baseline",
        ],
    );

    // Baseline: wire churn with no build running.
    let baseline_tp;
    {
        let (db, rids) = seed_table(bench_config(), n, 88);
        let srv = Server::start(Arc::clone(&db), server_cfg()).expect("bind");
        let churn = start_wire_churn(&srv.addr().to_string(), CLIENTS, &rids);
        std::thread::sleep(Duration::from_millis(if quick { 300 } else { 800 }));
        let busy = churn.busy_live.get();
        let stats = churn.stop();
        srv.drain();
        baseline_tp = stats.ops as f64 / stats.elapsed.as_secs_f64().max(1e-9);
        t.row(vec![
            "no build (baseline)".into(),
            ms(stats.elapsed),
            f2(baseline_tp),
            us(stats.mean_latency()),
            format!("{busy}/{}", stats.errors),
            "-".into(),
            "100.0%".into(),
        ]);
    }

    for algo in [BuildAlgo::Offline, BuildAlgo::Nsf, BuildAlgo::Sf] {
        let (db, rids) = seed_table(bench_config(), n, 88);
        let srv = Server::start(Arc::clone(&db), server_cfg()).expect("bind");
        let addr = srv.addr().to_string();
        let churn = start_wire_churn(&addr, CLIENTS, &rids);
        std::thread::sleep(Duration::from_millis(50));

        let ops0 = churn.ops_live.get();
        let started = Instant::now();
        let mut builder = Client::connect(&addr).expect("builder connect");
        let mut frames = 0u64;
        let ids = loop {
            // The build itself can be refused at the admission cap
            // while churn saturates the server — that *is* the
            // backpressure contract; retry like any client would.
            match builder.create_index(
                TABLE,
                algo,
                vec![IndexSpecWire {
                    name: format!("e16_{algo:?}"),
                    key_cols: vec![0],
                    unique: false,
                }],
                |_, _, _| frames += 1,
            ) {
                Ok(ids) => break ids,
                Err(ClientError::Busy) => std::thread::sleep(Duration::from_millis(1)),
                Err(e) => panic!("wire build ({algo:?}): {e}"),
            }
        };
        let window = started.elapsed();
        let ops_during = churn.ops_live.get() - ops0;
        let busy = churn.busy_live.get();
        let stats = churn.stop();
        srv.drain();
        verify_index(&db, ids[0]).expect("verify");

        let tp = ops_during as f64 / window.as_secs_f64().max(1e-9);
        t.row(vec![
            format!("{algo:?} build over the wire"),
            ms(window),
            f2(tp),
            us(stats.mean_latency()),
            format!("{busy}/{}", stats.errors),
            frames.to_string(),
            format!("{:.1}%", 100.0 * tp / baseline_tp.max(1e-9)),
        ]);
    }
    t.note("Each op pays framing + admission + a worker shard + the session (vs E5 in-process).");
    t.note("Offline stalls the service for the window; NSF/SF keep answering while frames stream.");
    vec![t, idle_sweep(quick)]
}

/// Sorted-percentile helper; `lat` must be sorted ascending.
fn p99(lat: &[u64]) -> Duration {
    if lat.is_empty() {
        return Duration::ZERO;
    }
    Duration::from_micros(lat[(lat.len() - 1) * 99 / 100])
}

/// E16b: the idle-connection sweep — the reactor's reason to exist.
/// A wall of parked connections sits alongside a small set of
/// closed-loop readers for a fixed window, once per io backend. The
/// sleep-poll loop pays ~2 000 wakeups per shard per second just to
/// discover that nothing happened, so its wakeup rate is a function of
/// ticks; a readiness backend's wakeups track delivered events, so the
/// parked wall is free. The active path must not pay for the savings:
/// p99 RTT under epoll should be no worse than under threaded (which
/// adds up to 500µs of sleep-poll discovery latency per request).
fn idle_sweep(quick: bool) -> Table {
    use mohan_common::IoBackendChoice;
    let (idle_n, active_n) = if quick { (128, 8) } else { (1_000, 100) };
    let window = Duration::from_millis(if quick { 400 } else { 1_500 });
    let mut t = Table::new(
        "E16b: idle-connection sweep (wakeups vs events, per io backend)",
        &[
            "backend",
            "idle",
            "active",
            "wire ops/s",
            "p99 RTT",
            "wakeups/s",
            "ops/wakeup",
        ],
    );
    for choice in [
        IoBackendChoice::ThreadedSleep,
        IoBackendChoice::Poll,
        IoBackendChoice::Epoll,
    ] {
        let (db, rids) = seed_table(bench_config(), 5_000, 91);
        let cfg = ServerConfig {
            workers: 4,
            max_connections: idle_n + active_n + 8,
            max_inflight: active_n * 2 + 8,
            io_backend: choice,
            ..ServerConfig::default()
        };
        let srv = match Server::start(Arc::clone(&db), cfg) {
            Ok(s) => s,
            // `Epoll` is a hard request; on hosts without it the row
            // records the absence instead of silently vanishing.
            Err(_) => {
                t.row(vec![
                    choice.name().into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "unavailable".into(),
                    "-".into(),
                ]);
                continue;
            }
        };
        let addr = srv.addr().to_string();
        let mut parked = Vec::with_capacity(idle_n);
        for _ in 0..idle_n {
            let mut c = Client::connect(&addr).expect("idle connect");
            c.ping().expect("idle ping");
            parked.push(c);
        }
        let go = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<JoinHandle<Vec<u64>>> = (0..active_n)
            .map(|i| {
                let addr = addr.clone();
                let go = Arc::clone(&go);
                let stop = Arc::clone(&stop);
                let rid = rids[i % rids.len()];
                std::thread::spawn(move || {
                    let mut c = Client::connect(&addr).expect("active connect");
                    let mut lat_us = Vec::with_capacity(4 << 10);
                    // Ops before `go` are warmup; only the measured
                    // window's latencies are recorded.
                    while !stop.load(Ordering::Relaxed) {
                        let t0 = Instant::now();
                        match c.read(TABLE, rid) {
                            Ok(_) => {
                                if go.load(Ordering::Relaxed) {
                                    lat_us.push(t0.elapsed().as_micros() as u64);
                                }
                            }
                            Err(ClientError::Busy) => {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => panic!("active reader {i} ({}): {e}", choice.name()),
                        }
                    }
                    lat_us
                })
            })
            .collect();

        // Let connects and admission settle, then measure one window.
        std::thread::sleep(Duration::from_millis(100));
        let wake0 = srv.stats().wakeups.get();
        go.store(true, Ordering::Relaxed);
        std::thread::sleep(window);
        let woke = srv.stats().wakeups.get() - wake0;
        stop.store(true, Ordering::Relaxed);
        let mut lat: Vec<u64> = Vec::new();
        for h in readers {
            lat.extend(h.join().expect("active reader"));
        }
        drop(parked);
        srv.drain();

        lat.sort_unstable();
        let ops = lat.len() as f64;
        let secs = window.as_secs_f64();
        t.row(vec![
            choice.name().into(),
            idle_n.to_string(),
            active_n.to_string(),
            f2(ops / secs),
            us(p99(&lat)),
            f2(woke as f64 / secs),
            f2(ops / woke.max(1) as f64),
        ]);
    }
    t.note(
        "threaded wakes every shard ~2 000x/s regardless of load; reactor wakeups track events.",
    );
    t.note("ops/wakeup near or above 1 means dispatch is event-driven; parked connections cost 0.");
    t
}
