//! Fixed-width table rendering for experiment output.

/// One experiment's result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id + title, e.g. "E1: build time".
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-text notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Render to a string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + widths.len() * 2));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 2 decimals.
#[must_use]
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a ratio as a percentage.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Format a millisecond duration.
#[must_use]
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.1}ms", d.as_secs_f64() * 1e3)
}

/// Format a microsecond duration.
#[must_use]
pub fn us(d: std::time::Duration) -> String {
    format!("{:.0}µs", d.as_secs_f64() * 1e6)
}

/// Render a per-shard distribution compactly: total, hottest shard's
/// multiple of an even spread, and a sparkline-ish bucket list.
#[must_use]
pub fn dist(d: &mohan_common::stats::ShardDist) -> String {
    let snap = d.snapshot();
    let total = d.total();
    if total == 0 {
        return "0 (idle)".to_string();
    }
    let cells: Vec<String> = snap.iter().map(ToString::to_string).collect();
    format!("{total} ×{:.2} [{}]", d.imbalance(), cells.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0: demo", &["algo", "value"]);
        t.row(vec!["offline".into(), "1".into()]);
        t.row(vec!["sf".into(), "12345".into()]);
        t.note("shape only");
        let s = t.render();
        assert!(s.contains("E0: demo"));
        assert!(s.contains("offline"));
        assert!(s.contains("note: shape only"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
