//! Benchmark harness: workload generation, churn driving, table
//! reporting, and the experiment suite that regenerates every
//! comparison the paper makes (see `DESIGN.md` §3 and
//! `EXPERIMENTS.md`).

pub mod experiments;
pub mod report;
pub mod workload;

pub use report::Table;
pub use workload::{seed_table, start_churn, ChurnConfig, ChurnHandle, ChurnStats};
