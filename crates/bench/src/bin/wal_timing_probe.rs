//! Noise-robust A/B probe for WAL append scaling.
//!
//! The Criterion shim's wall-clock sampling is at the mercy of a
//! noisy container (this box has 2 vCPUs and heavy neighbor
//! interference), so this probe takes the standard defensive
//! measurements: baseline and sharded rounds are interleaved pairwise
//! (drift hits both arms equally) and the best-of-N per-op time is
//! reported (the minimum is the least-contaminated observation of a
//! deterministic CPU-bound loop).
//!
//! The baseline arm is a faithful replica of the pre-sharding
//! `LogManager`: one `RwLock<Vec<_>>` write per append (record built
//! inside the lock), shared `Counter` bumps, and an `ib_txs` read
//! lock on every append.

use mohan_common::{Lsn, TxId};
use mohan_wal::record::{LogPayload, LogRecord, RecKind};
use mohan_wal::LogManager;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct BaselineLog {
    records: RwLock<Vec<Arc<LogRecord>>>,
    flushed: AtomicU64,
    ib_txs: RwLock<Vec<TxId>>,
    records2: mohan_common::stats::Counter,
    bytes2: mohan_common::stats::Counter,
}

impl BaselineLog {
    fn new() -> Self {
        Self {
            records: RwLock::new(Vec::new()),
            flushed: AtomicU64::new(0),
            ib_txs: RwLock::new(Vec::new()),
            records2: mohan_common::stats::Counter::new(),
            bytes2: mohan_common::stats::Counter::new(),
        }
    }

    fn append(&self, tx: TxId) -> Lsn {
        let payload = LogPayload::TxBegin;
        let size = payload.encoded_size() as u64;
        let mut recs = self.records.write();
        let lsn = Lsn(recs.len() as u64 + 1);
        recs.push(Arc::new(LogRecord {
            lsn,
            tx,
            prev: Lsn::NULL,
            kind: RecKind::RedoOnly,
            payload,
        }));
        drop(recs);
        self.records2.bump();
        self.bytes2.add(size);
        if self.ib_txs.read().contains(&tx) {
            unreachable!("no IB tx registered in this probe");
        }
        lsn
    }

    fn flush_to(&self, lsn: Lsn) {
        let mut cur = self.flushed.load(Ordering::Acquire);
        while cur < lsn.0 {
            match self
                .flushed
                .compare_exchange(cur, lsn.0, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(a) => cur = a,
            }
        }
    }
}

/// One timed round: `threads` workers each run `per` ops against a
/// fresh log; returns ns/op. Teardown (Arc drops) is untimed.
fn round<L: Sync>(log: L, threads: usize, per: usize, op: impl Fn(&L, u64, usize) + Sync) -> u64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let op = &op;
            let log = &log;
            s.spawn(move || {
                for i in 0..per {
                    op(log, t as u64, i);
                }
            });
        }
    });
    t0.elapsed().as_nanos() as u64 / (threads * per) as u64
}

/// Summary of one arm's rounds: (min, median) ns/op.
fn summarize(mut xs: Vec<u64>) -> (u64, u64) {
    xs.sort_unstable();
    (xs[0], xs[xs.len() / 2])
}

/// Interleaved A/B comparison over `rounds` rounds. Returns
/// `((min, median), (min, median))` for baseline and sharded. The
/// median is the headline estimator (as in Criterion); the min shows
/// each arm's uncontaminated floor. For the baseline the two diverge
/// wildly — the lock's collapse under contention is itself bimodal.
fn compare(
    threads: usize,
    per: usize,
    rounds: usize,
    base_op: impl Fn(&BaselineLog, u64, usize) + Sync,
    shard_op: impl Fn(&LogManager, u64, usize) + Sync,
) -> ((u64, u64), (u64, u64)) {
    let (mut b, mut s) = (Vec::new(), Vec::new());
    for _ in 0..rounds {
        b.push(round(BaselineLog::new(), threads, per, &base_op));
        s.push(round(LogManager::new(), threads, per, &shard_op));
    }
    (summarize(b), summarize(s))
}

fn report(name: &str, threads: usize, b: (u64, u64), s: (u64, u64)) {
    println!(
        "{name} {threads}t: baseline {}/{} ns/op, sharded {}/{} ns/op (min/median), \
         median speedup {:.2}x",
        b.0,
        b.1,
        s.0,
        s.1,
        b.1 as f64 / s.1 as f64
    );
}

fn main() {
    let per = 50_000;
    let rounds = 11;
    for threads in [1usize, 2, 4, 8] {
        let (b, s) = compare(
            threads,
            per / threads.min(2),
            rounds,
            |l, t, _| {
                l.append(TxId(t));
            },
            |l, t, _| {
                l.append(TxId(t), Lsn::NULL, RecKind::RedoOnly, LogPayload::TxBegin);
            },
        );
        report("append", threads, b, s);
    }
    let threads = 4usize;
    {
        let (b, s) = compare(
            threads,
            per / 2,
            rounds,
            |l, t, i| {
                let lsn = l.append(TxId(t));
                if i % 64 == 63 {
                    l.flush_to(lsn);
                }
            },
            |l, t, i| {
                let lsn = l.append(TxId(t), Lsn::NULL, RecKind::RedoOnly, LogPayload::TxBegin);
                if i % 64 == 63 {
                    l.flush_to(lsn);
                }
            },
        );
        report("append+flush64", threads, b, s);
    }
}
