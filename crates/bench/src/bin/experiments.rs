//! Experiment runner: regenerates every table in `EXPERIMENTS.md`.
//!
//! ```text
//! experiments [--full] [e1 e4 e7 ...]   # default: all, quick sizes
//! ```

use mohan_bench::experiments;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let ids: Vec<String> = args.into_iter().filter(|a| a != "--full").collect();
    let ids: Vec<&str> = if ids.is_empty() {
        experiments::ALL.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    let quick = !full;
    println!(
        "# Online index build experiments ({} mode)",
        if quick { "quick" } else { "full" }
    );
    println!("# Mohan & Narang, SIGMOD 1992 — see EXPERIMENTS.md for the expected shapes\n");
    let started = Instant::now();
    for id in ids {
        let t0 = Instant::now();
        match experiments::run(id, quick) {
            Some(tables) => {
                for t in tables {
                    t.print();
                }
                println!("  [{id} took {:.1}s]", t0.elapsed().as_secs_f64());
            }
            None => eprintln!("unknown experiment id: {id}"),
        }
    }
    println!("\n# total: {:.1}s", started.elapsed().as_secs_f64());
}
