//! Experiment runner: regenerates every table in `EXPERIMENTS.md`.
//!
//! ```text
//! experiments [--full] [--smoke] [e1 e4 e7 ...]   # default: all, quick sizes
//! ```
//!
//! `--smoke` shrinks workloads a further 10x (floored at 1k rows) so
//! CI can exercise each experiment's full code path in seconds.

use mohan_bench::experiments;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let smoke = args.iter().any(|a| a == "--smoke");
    let ids: Vec<String> = args
        .into_iter()
        .filter(|a| a != "--full" && a != "--smoke")
        .collect();
    let ids: Vec<&str> = if ids.is_empty() {
        experiments::ALL.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    let quick = !full;
    if smoke {
        experiments::set_size_divisor(10);
    }
    println!(
        "# Online index build experiments ({} mode)",
        if smoke {
            "smoke"
        } else if quick {
            "quick"
        } else {
            "full"
        }
    );
    println!("# Mohan & Narang, SIGMOD 1992 — see EXPERIMENTS.md for the expected shapes\n");
    let started = Instant::now();
    for id in ids {
        let t0 = Instant::now();
        match experiments::run(id, quick) {
            Some(tables) => {
                for t in tables {
                    t.print();
                }
                println!("  [{id} took {:.1}s]", t0.elapsed().as_secs_f64());
            }
            None => eprintln!("unknown experiment id: {id}"),
        }
    }
    println!("\n# total: {:.1}s", started.elapsed().as_secs_f64());
}
