//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace
//! replaces `proptest` with this in-tree shim. It keeps the source
//! shape of the real crate — the `proptest!` macro, `Strategy` with
//! `prop_map`, `any::<T>()`, `prop::collection::vec`, `prop_oneof!`,
//! `Just`, and `ProptestConfig` — but generates cases by plain random
//! sampling (no shrinking). Each `#[test]` runs `cases` deterministic
//! iterations seeded from the test name, so failures reproduce.

use rand::rngs::StdRng;

/// Run-count configuration (field-compatible subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for API compatibility; the shim does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 48,
            max_shrink_iters: 1024,
        }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Box the strategy (object-safe erasure used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// An owned, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    /// Build from `(weight, strategy)` arms.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        let mut roll = rng.random_range(0..self.total);
        for (w, s) in &self.arms {
            if roll < *w {
                return s.sample(rng);
            }
            roll -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// Uniform sampling over a type's whole domain.
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()`: the canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Sample the whole domain uniformly.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Numeric ranges are strategies.
macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String "regex" strategies. Only the `.{lo,hi}` shape the workspace
/// uses is honoured: a random ASCII string with length in `[lo, hi]`.
/// Other patterns fall back to a short random string.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        use rand::Rng;
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 8));
        let len = rng.random_range(lo..=hi);
        (0..len)
            .map(|_| char::from(rng.random_range(0x20u8..0x7f)))
            .collect()
    }
}

fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
    let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Tuples of strategies generate tuples of values.
macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// The `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{StdRng, Strategy};

        /// Strategy for `Vec`s with random length in `len`.
        pub struct VecStrategy<S> {
            elem: S,
            len: std::ops::Range<usize>,
        }

        /// `prop::collection::vec(elem, len_range)`.
        pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                use rand::Rng;
                let n = rng.random_range(self.len.clone());
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property test module imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Stable per-test seed: FNV-1a over the test path.
    #[must_use]
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Assert within a property (maps to a plain panic; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Weighted alternative strategies: `prop_oneof![w1 => s1, w2 => s2]`.
/// All arms must generate the same `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// The property-test harness macro. Each `#[test] fn name(args...)`
/// becomes a normal test running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    // Optional config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    // One test at a time (munch).
    (@cfg ($cfg:expr);
     $(#[$meta:meta])* fn $name:ident ( $($args:tt)* ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for _case in 0..config.cases {
                $crate::proptest!(@bind rng; $($args)*);
                $body
            }
        }
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr);) => {};
    // Argument binding: `[mut] pat in strategy, ...`. Comma rules come
    // first so multi-argument lists are munched before the tail rules.
    (@bind $rng:ident; mut $x:ident in $s:expr, $($rest:tt)+) => {
        #[allow(unused_mut)]
        let mut $x = $crate::Strategy::sample(&($s), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)+);
    };
    (@bind $rng:ident; $x:ident in $s:expr, $($rest:tt)+) => {
        let $x = $crate::Strategy::sample(&($s), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)+);
    };
    (@bind $rng:ident; mut $x:ident in $s:expr) => {
        #[allow(unused_mut)]
        let mut $x = $crate::Strategy::sample(&($s), &mut $rng);
    };
    (@bind $rng:ident; $x:ident in $s:expr) => {
        let $x = $crate::Strategy::sample(&($s), &mut $rng);
    };
    // No config header: default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn sampled_vecs_respect_bounds(v in prop::collection::vec(any::<i64>(), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
        }

        #[test]
        fn ranges_are_strategies(x in 0..100i64, mut y in 5..6usize) {
            y += 1;
            prop_assert!((0..100).contains(&x));
            prop_assert_eq!(y, 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]

        #[test]
        fn oneof_and_map_work(v in prop_oneof![
            3 => (0..10i64).prop_map(|x| x * 2),
            1 => Just(-1i64),
        ]) {
            prop_assert!(v == -1 || (v % 2 == 0 && (0..20).contains(&v)));
        }

        #[test]
        fn string_pattern_lengths(s in ".{0,12}") {
            prop_assert!(s.len() <= 12);
        }
    }
}
