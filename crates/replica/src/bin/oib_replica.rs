//! Standalone replication follower.
//!
//! ```text
//! oib-replica --primary HOST:PORT [--addr HOST:PORT] [--workers N]
//!             [--max-lag-lsn N] [--promote-on-disconnect[=SECS]]
//! ```
//!
//! Creates a fresh replica engine with table 1 (matching
//! `oib-server`'s schema), tails the primary's WAL stream, and serves
//! its *own* wire endpoint. The endpoint answers bounded-staleness
//! reads (`Read`/`Lookup` are refused with `Stale` whenever
//! `repl.lag_lsn` exceeds `--max-lag-lsn`), refuses writes with
//! `NotWritable` carrying the primary's address as leader hint, and
//! accepts `Promote` to take over as primary. With
//! `--promote-on-disconnect`, a watchdog promotes automatically once
//! no WAL frame (heartbeats included) has arrived for SECS seconds.
//! Runs until stdin closes, then drains.

use mohan_common::{EngineConfig, TableId};
use mohan_oib::Db;
use mohan_replica::Replica;
use mohan_server::{PromoteHook, Promotion, Server, ServerConfig};
use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often the `--promote-on-disconnect` watchdog samples the
/// last-frame clock.
const WATCHDOG_POLL: Duration = Duration::from_millis(500);

fn main() {
    let mut primary: Option<String> = None;
    let mut promote_after: Option<Duration> = None;
    let mut cfg = ServerConfig {
        bind_addr: "127.0.0.1:7879".into(),
        // Followers default to a finite staleness bound; primaries
        // keep u64::MAX (the gate never fires there anyway).
        max_lag_lsn: 10_000,
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--primary" => primary = Some(value("--primary")),
            "--addr" => cfg.bind_addr = value("--addr"),
            "--workers" => cfg.workers = value("--workers").parse().expect("--workers N"),
            "--max-lag-lsn" => {
                cfg.max_lag_lsn = value("--max-lag-lsn").parse().expect("--max-lag-lsn N");
            }
            "--promote-on-disconnect" => promote_after = Some(Duration::from_secs(10)),
            other => {
                if let Some(secs) = other.strip_prefix("--promote-on-disconnect=") {
                    let secs: f64 = secs.parse().expect("--promote-on-disconnect=SECS");
                    promote_after = Some(Duration::from_secs_f64(secs));
                } else {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            }
        }
    }
    let Some(primary) = primary else {
        eprintln!(
            "usage: oib-replica --primary HOST:PORT [--addr HOST:PORT] [--workers N] \
             [--max-lag-lsn N] [--promote-on-disconnect[=SECS]]"
        );
        std::process::exit(2);
    };

    let db = Db::new(EngineConfig {
        replica: true,
        ..EngineConfig::default()
    });
    db.create_table(TableId(1));

    let replica = Replica::new(Arc::clone(&db), &primary);
    let apply_thread = replica.spawn();

    // Writes bounced off this follower tell the client where the
    // primary lives; Promote requests flip the replica in place.
    cfg.leader_hint = primary.clone();
    let hook_replica = Arc::clone(&replica);
    cfg.promote_hook = Some(PromoteHook::new(move || {
        hook_replica.promote().map(|r| Promotion {
            last_lsn: r.last_lsn.0,
            losers_undone: r.losers_undone,
        })
    }));

    let server = Server::start(Arc::clone(&db), cfg).expect("bind");
    println!("following {primary}; serving reads on {}", server.addr());
    println!("close stdin (or send EOF) to stop");

    let watchdog_stop = Arc::new(AtomicBool::new(false));
    let watchdog = promote_after.map(|after| {
        let replica = Arc::clone(&replica);
        let stop = Arc::clone(&watchdog_stop);
        std::thread::Builder::new()
            .name("oib-replica-watchdog".into())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(WATCHDOG_POLL);
                    if replica.is_promoted() {
                        return;
                    }
                    if replica.last_frame_elapsed() > after {
                        eprintln!(
                            "no WAL frame for {:.1}s; promoting to primary",
                            after.as_secs_f64()
                        );
                        match replica.promote() {
                            Ok(r) => eprintln!(
                                "promoted: last LSN {}, {} in-flight txs undone, \
                                 downtime {} ms",
                                r.last_lsn.0,
                                r.losers_undone,
                                r.downtime.as_millis()
                            ),
                            Err(e) => eprintln!("promotion failed: {e}"),
                        }
                        return;
                    }
                }
            })
            .expect("spawn watchdog")
    });

    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin();
    loop {
        match stdin.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }

    watchdog_stop.store(true, Ordering::Release);
    replica.stop();
    let _ = apply_thread.join();
    if let Some(w) = watchdog {
        let _ = w.join();
    }
    let report = server.drain();
    eprintln!(
        "stopped at applied LSN {}; drained ({} connections closed)",
        replica.applied_lsn().0,
        report.conns_closed
    );
}
