//! Standalone replication follower.
//!
//! ```text
//! oib-replica --primary HOST:PORT [--addr HOST:PORT] [--workers N]
//! ```
//!
//! Creates a fresh replica engine with table 1 (matching
//! `oib-server`'s schema), tails the primary's WAL stream, and serves
//! its *own* wire endpoint — read-only in spirit, but mainly so
//! `oib-top` can watch `repl.lag_lsn` and the apply histograms live.
//! Runs until stdin closes, then drains.

use mohan_common::{EngineConfig, TableId};
use mohan_oib::Db;
use mohan_replica::Replica;
use mohan_server::{Server, ServerConfig};
use std::io::Read;
use std::sync::Arc;

fn main() {
    let mut primary: Option<String> = None;
    let mut cfg = ServerConfig {
        bind_addr: "127.0.0.1:7879".into(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--primary" => primary = Some(value("--primary")),
            "--addr" => cfg.bind_addr = value("--addr"),
            "--workers" => cfg.workers = value("--workers").parse().expect("--workers N"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let Some(primary) = primary else {
        eprintln!("usage: oib-replica --primary HOST:PORT [--addr HOST:PORT] [--workers N]");
        std::process::exit(2);
    };

    let db = Db::new(EngineConfig {
        replica: true,
        ..EngineConfig::default()
    });
    db.create_table(TableId(1));

    let replica = Replica::new(Arc::clone(&db), &primary);
    let apply_thread = replica.spawn();

    let server = Server::start(db, cfg).expect("bind");
    println!("following {primary}; serving metrics on {}", server.addr());
    println!("close stdin (or send EOF) to stop");

    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin();
    loop {
        match stdin.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }

    replica.stop();
    let _ = apply_thread.join();
    let report = server.drain();
    eprintln!(
        "stopped at applied LSN {}; drained ({} connections closed)",
        replica.applied_lsn().0,
        report.conns_closed
    );
}
