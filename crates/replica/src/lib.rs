//! WAL stream replication follower.
//!
//! A [`Replica`] tails a primary's log over the wire
//! (`SubscribeWal`) and replays every redoable record into its own
//! engine through the same [`RecoveryTarget`] redo path ARIES restart
//! uses — replication *is* continuous recovery, run against a live
//! log instead of a dead one.
//!
//! Two invariants carry the whole design:
//!
//! * **Flushed-prefix-only.** The primary ships nothing beyond its
//!   flushed LSN, so the follower can never apply state the primary
//!   would not itself recover after a crash. Crash epochs fall out
//!   for free: the unflushed suffix the primary discards was never
//!   sent, and the LSNs it reuses reach the follower as fresh
//!   records.
//! * **Contiguous apply.** Records are applied strictly in LSN order
//!   with no gaps. A frame that skips ahead (or repeats) makes the
//!   follower drop the connection and resubscribe from
//!   `applied + 1`, which the server validates against its flushed
//!   tail — reconnect is always safe because `applied` only advances
//!   over records the primary has durably flushed.
//!
//! Index DDL rides the same stream as `CatalogUpdate` snapshot
//! records; the engine applies them because the follower's
//! `EngineConfig::replica` is set (see `mohan_oib`).

#![warn(missing_docs)]

use mohan_client::Client;
use mohan_common::Lsn;
use mohan_obs::Histogram;
use mohan_oib::Db;
use mohan_wal::{LogRecord, RecoveryTarget};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reconnect backoff bounds (exponential between them, reset after
/// any successfully applied frame).
const BACKOFF_MIN: Duration = Duration::from_millis(50);
const BACKOFF_MAX: Duration = Duration::from_secs(2);

/// Read timeout on the subscription socket. The primary heartbeats
/// every ~200ms, so silence this long means the connection is gone.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// A replication follower: owns the local engine's apply position and
/// the reconnect loop.
pub struct Replica {
    db: Arc<Db>,
    addr: Mutex<String>,
    /// Highest LSN applied locally; the resubscribe point is
    /// `applied + 1`.
    applied: AtomicU64,
    /// The primary's flushed LSN as of the last frame (heartbeats
    /// advance it even when no records flow).
    primary_flushed: AtomicU64,
    reconnects: AtomicU64,
    apply_errors: AtomicU64,
    stop: AtomicBool,
    /// A frame was applied since the last disconnect (resets backoff).
    progressed: AtomicBool,
    batch_us: Arc<Histogram>,
    apply_us: Arc<Histogram>,
}

impl Replica {
    /// Create a follower replaying into `db` from the primary at
    /// `addr`. `db` must have been built with
    /// `EngineConfig::replica = true`, or shipped index DDL
    /// (`CatalogUpdate` records) would be silently dropped.
    ///
    /// Registers the follower's gauges and histograms on the engine's
    /// registry: `repl.lag_lsn`, `repl.applied_lsn`,
    /// `repl.primary_flushed_lsn`, `repl.reconnects`,
    /// `repl.apply_errors`, `repl.batch_us`, `repl.apply_us`.
    #[must_use]
    pub fn new(db: Arc<Db>, addr: &str) -> Arc<Replica> {
        assert!(
            db.cfg.replica,
            "Replica requires EngineConfig::replica = true"
        );
        let batch_us = db.obs.histogram("repl.batch_us");
        let apply_us = db.obs.histogram("repl.apply_us");
        let r = Arc::new(Replica {
            db,
            addr: Mutex::new(addr.to_owned()),
            applied: AtomicU64::new(0),
            primary_flushed: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            apply_errors: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            progressed: AtomicBool::new(false),
            batch_us,
            apply_us,
        });
        let gauge = |name: &str, f: fn(&Replica) -> u64| {
            let w = Arc::downgrade(&r);
            r.db.obs
                .gauge_fn(name, move || w.upgrade().map_or(0, |r| f(&r)));
        };
        gauge("repl.lag_lsn", Replica::lag);
        gauge("repl.applied_lsn", |r| r.applied_lsn().0);
        gauge("repl.primary_flushed_lsn", |r| r.primary_flushed().0);
        gauge("repl.reconnects", Replica::reconnects);
        gauge("repl.apply_errors", |r| {
            r.apply_errors.load(Ordering::Relaxed)
        });
        r
    }

    /// Point the reconnect loop at a different primary address (the
    /// next (re)connect uses it).
    pub fn set_addr(&self, addr: &str) {
        *self.addr.lock() = addr.to_owned();
    }

    /// Highest LSN applied locally.
    #[must_use]
    pub fn applied_lsn(&self) -> Lsn {
        Lsn(self.applied.load(Ordering::Acquire))
    }

    /// The primary's flushed LSN as of the last received frame.
    #[must_use]
    pub fn primary_flushed(&self) -> Lsn {
        Lsn(self.primary_flushed.load(Ordering::Acquire))
    }

    /// Replication lag in LSNs (primary's flushed tail − applied).
    #[must_use]
    pub fn lag(&self) -> u64 {
        self.primary_flushed()
            .0
            .saturating_sub(self.applied_lsn().0)
    }

    /// Times the follower re-entered the connect loop after a
    /// disconnect or failed attempt.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Ask the loop to exit. The next frame (heartbeats arrive every
    /// ~200ms) or connect attempt observes the flag.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Run the subscribe/apply/reconnect loop until [`Replica::stop`].
    pub fn run(self: &Arc<Replica>) {
        let mut backoff = BACKOFF_MIN;
        while !self.stop.load(Ordering::Acquire) {
            let addr = self.addr.lock().clone();
            let outcome = Client::connect(&addr).and_then(|client| {
                client.set_read_timeout(Some(READ_TIMEOUT))?;
                let from = self.applied.load(Ordering::Acquire) + 1;
                self.db
                    .obs
                    .trace()
                    .event("repl.subscribe", addr.clone(), from);
                let me = Arc::clone(self);
                client.subscribe_wal(from, move |flushed, records| me.on_frame(flushed, &records))
            });
            if self.stop.load(Ordering::Acquire) {
                return;
            }
            match outcome {
                // `on_frame` returned false: either stop was requested
                // (handled above) or a gap forced a resubscribe.
                Ok(()) => {}
                Err(e) => {
                    self.db
                        .obs
                        .trace()
                        .event("repl.disconnect", e.to_string(), 0);
                }
            }
            if self.progressed.swap(false, Ordering::AcqRel) {
                backoff = BACKOFF_MIN;
            }
            self.reconnects.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(BACKOFF_MAX);
        }
    }

    /// [`Replica::run`] on its own thread.
    pub fn spawn(self: &Arc<Replica>) -> JoinHandle<()> {
        let me = Arc::clone(self);
        std::thread::Builder::new()
            .name("oib-replica".into())
            .spawn(move || me.run())
            .expect("spawn replica thread")
    }

    /// Block until the follower has applied everything up to `target`
    /// (inclusive). Returns false on timeout.
    #[must_use]
    pub fn wait_caught_up(&self, target: Lsn, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.applied_lsn() < target {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Apply one frame. Returning false drops the connection (the
    /// outer loop resubscribes from `applied + 1`).
    fn on_frame(&self, flushed: u64, records: &[LogRecord]) -> bool {
        if self.stop.load(Ordering::Acquire) {
            return false;
        }
        let started = Instant::now();
        self.primary_flushed.fetch_max(flushed, Ordering::AcqRel);
        for rec in records {
            let applied = self.applied.load(Ordering::Acquire);
            if rec.lsn.0 != applied + 1 {
                // Gap or replay: never apply out of order; resubscribe
                // from the position we trust.
                self.db
                    .obs
                    .trace()
                    .event("repl.gap", format!("got {}", rec.lsn.0), applied);
                return false;
            }
            if rec.is_redoable() {
                let t = Instant::now();
                if let Err(e) = self.db.redo(rec) {
                    self.apply_errors.fetch_add(1, Ordering::Relaxed);
                    self.db
                        .obs
                        .trace()
                        .event("repl.apply_error", e.to_string(), rec.lsn.0);
                    return false;
                }
                self.apply_us.record_micros(t.elapsed());
            }
            self.applied.store(rec.lsn.0, Ordering::Release);
        }
        if !records.is_empty() {
            self.batch_us.record_micros(started.elapsed());
            self.progressed.store(true, Ordering::Release);
        }
        true
    }
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("applied", &self.applied_lsn())
            .field("primary_flushed", &self.primary_flushed())
            .field("reconnects", &self.reconnects())
            .finish()
    }
}
