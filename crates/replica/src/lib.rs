//! WAL stream replication follower, with reads and promotion.
//!
//! A [`Replica`] tails a primary's log over the wire
//! (`SubscribeWal`) and replays every redoable record into its own
//! engine through the same `RecoveryTarget` redo path ARIES restart
//! uses — replication *is* continuous recovery, run against a live
//! log instead of a dead one.
//!
//! Two invariants carry the whole design:
//!
//! * **Flushed-prefix-only.** The primary ships nothing beyond its
//!   flushed LSN, so the follower can never apply state the primary
//!   would not itself recover after a crash. Crash epochs fall out
//!   for free: the unflushed suffix the primary discards was never
//!   sent, and the LSNs it reuses reach the follower as fresh
//!   records.
//! * **Contiguous apply.** Records are applied strictly in LSN order
//!   with no gaps. A frame that skips ahead (or repeats) makes the
//!   follower drop the connection and resubscribe from
//!   `applied + 1`, which the server validates against its flushed
//!   tail — reconnect is always safe because `applied` only advances
//!   over records the primary has durably flushed.
//!
//! The follower is two threads. The *receive* thread owns the
//! subscription socket: it checks contiguity, publishes the primary's
//! flushed LSN, and enqueues record batches on a bounded queue (its
//! depth is the `repl.queue_depth` gauge; a full queue blocks the
//! receive thread, which turns into TCP backpressure on the primary).
//! The *apply* thread drains the queue: each record is first
//! **mirrored into the follower's own log** — `LogManager::append`
//! allocates LSNs sequentially, so in-order mirroring reproduces the
//! primary's LSNs exactly, and a mismatch means divergence and stalls
//! the apply — then redone, then the batch is made durable with one
//! `flush_to` per frame. Mirroring is what makes [`Replica::promote`]
//! possible: promotion stops the stream and runs ordinary ARIES
//! restart over the mirrored log, so the undo pass rolls back
//! whatever transactions were still in flight on the dead primary.
//!
//! Index DDL rides the same stream as `CatalogUpdate` snapshot
//! records; the engine applies them while `Db::is_replica()` holds
//! (see `mohan_oib`).

#![warn(missing_docs)]

use mohan_client::{Client, ClientError, ErrorCode};
use mohan_common::stats::Counter;
use mohan_common::{Error, IndexId, KeyValue, Lsn, ReadApi, Result, Rid, TableId};
use mohan_obs::Histogram;
use mohan_oib::Db;
use mohan_wal::{LogRecord, RecoveryTarget};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reconnect backoff bounds (exponential between them, reset after
/// any successfully received frame).
const BACKOFF_MIN: Duration = Duration::from_millis(50);
const BACKOFF_MAX: Duration = Duration::from_secs(2);

/// Read timeout on the subscription socket. The primary heartbeats
/// every ~200ms, so silence this long means the connection is gone.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Apply-queue bound in records. A receive thread that gets this far
/// ahead of the apply thread stops reading the socket, which
/// backpressures the primary through TCP instead of growing memory.
const QUEUE_MAX: u64 = 8192;

/// Poll interval for the queue and the catch-up/drain waits.
const POLL: Duration = Duration::from_millis(1);

/// Follower life-cycle states (`state` field).
const STATE_FOLLOWING: u8 = 0;
const STATE_PROMOTING: u8 = 1;
const STATE_PROMOTED: u8 = 2;

/// What [`Replica::promote`] reports back.
#[derive(Debug, Clone, Copy)]
pub struct PromotionReport {
    /// The new primary's log tail after restart (mirrored records
    /// plus the CLRs the undo pass appended).
    pub last_lsn: Lsn,
    /// In-flight transactions of the old primary rolled back by the
    /// restart-undo pass.
    pub losers_undone: u64,
    /// Wall-clock time from the promote call to the engine accepting
    /// writes.
    pub downtime: Duration,
}

/// One received frame's records plus its trace tags
/// (`(lsn, trace_id)` pairs for the sampled traces covering them).
type TaggedBatch = (Vec<LogRecord>, Vec<(u64, u64)>);

/// A replication follower: owns the local engine's apply position,
/// the reconnect loop, and the promotion state machine.
pub struct Replica {
    db: Arc<Db>,
    addr: Mutex<String>,
    /// Highest LSN applied locally; the resubscribe point is
    /// `applied + 1`.
    applied: AtomicU64,
    /// The primary's flushed LSN as of the last frame (heartbeats
    /// advance it even when no records flow).
    primary_flushed: AtomicU64,
    reconnects: AtomicU64,
    /// Times the primary cut this follower loose
    /// (`ErrorCode::SubscriptionLagged`) for falling behind its
    /// broadcast window. Each one resubscribes immediately from
    /// `applied + 1` — the position is still trusted, only the
    /// stream was dropped.
    cut_loose: AtomicU64,
    apply_errors: AtomicU64,
    stop: AtomicBool,
    /// A frame was received since the last disconnect (resets backoff).
    progressed: AtomicBool,
    /// Received-but-unapplied record batches, each with the frame's
    /// trace tags (`(lsn, trace_id)` pairs). `queued_records` is the
    /// total record count across them; both are only updated with the
    /// queue lock held so clear-and-stall can never interleave with an
    /// enqueue.
    queue: Mutex<VecDeque<TaggedBatch>>,
    queued_records: AtomicU64,
    /// Held for the duration of each frame's apply. Promotion takes it
    /// to wait out (and then exclude) the apply thread without joining
    /// anything — the subscription socket can take seconds to notice a
    /// dead primary, and promotion must not wait on that.
    apply_gate: Mutex<()>,
    /// The apply thread hit an error: the receive thread must drop the
    /// connection and resubscribe from `applied + 1`.
    apply_stalled: AtomicBool,
    /// When the last frame (including heartbeats) arrived; the
    /// `--promote-on-disconnect` watchdog reads this.
    last_frame: Mutex<Instant>,
    state: AtomicU8,
    batch_us: Arc<Histogram>,
    apply_us: Arc<Histogram>,
}

impl Replica {
    /// Create a follower replaying into `db` from the primary at
    /// `addr`. `db` must have been built with
    /// `EngineConfig::replica = true`, or shipped index DDL
    /// (`CatalogUpdate` records) would be silently dropped.
    ///
    /// Registers the follower's gauges and histograms on the engine's
    /// registry: `repl.lag_lsn`, `repl.applied_lsn`,
    /// `repl.primary_flushed_lsn`, `repl.queue_depth`,
    /// `repl.reconnects`, `repl.cut_loose`, `repl.apply_errors`,
    /// `repl.batch_us`, `repl.apply_us`.
    #[must_use]
    pub fn new(db: Arc<Db>, addr: &str) -> Arc<Replica> {
        assert!(
            db.cfg.replica,
            "Replica requires EngineConfig::replica = true"
        );
        let batch_us = db.obs.histogram("repl.batch_us");
        let apply_us = db.obs.histogram("repl.apply_us");
        let r = Arc::new(Replica {
            db,
            addr: Mutex::new(addr.to_owned()),
            applied: AtomicU64::new(0),
            primary_flushed: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            cut_loose: AtomicU64::new(0),
            apply_errors: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            progressed: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queued_records: AtomicU64::new(0),
            apply_gate: Mutex::new(()),
            apply_stalled: AtomicBool::new(false),
            last_frame: Mutex::new(Instant::now()),
            state: AtomicU8::new(STATE_FOLLOWING),
            batch_us,
            apply_us,
        });
        let gauge = |name: &str, f: fn(&Replica) -> u64| {
            let w = Arc::downgrade(&r);
            r.db.obs
                .gauge_fn(name, move || w.upgrade().map_or(0, |r| f(&r)));
        };
        gauge("repl.lag_lsn", Replica::lag);
        gauge("repl.applied_lsn", |r| r.applied_lsn().0);
        gauge("repl.primary_flushed_lsn", |r| r.primary_flushed().0);
        gauge("repl.queue_depth", |r| {
            r.queued_records.load(Ordering::Relaxed)
        });
        gauge("repl.reconnects", Replica::reconnects);
        gauge("repl.cut_loose", Replica::cut_loose_count);
        gauge("repl.apply_errors", |r| {
            r.apply_errors.load(Ordering::Relaxed)
        });
        r
    }

    /// The engine this follower replays into.
    #[must_use]
    pub fn db(&self) -> &Arc<Db> {
        &self.db
    }

    /// Point the reconnect loop at a different primary address (the
    /// next (re)connect uses it).
    pub fn set_addr(&self, addr: &str) {
        *self.addr.lock() = addr.to_owned();
    }

    /// The primary address the reconnect loop currently targets.
    #[must_use]
    pub fn addr(&self) -> String {
        self.addr.lock().clone()
    }

    /// Highest LSN applied locally.
    #[must_use]
    pub fn applied_lsn(&self) -> Lsn {
        Lsn(self.applied.load(Ordering::Acquire))
    }

    /// The primary's flushed LSN as of the last received frame.
    #[must_use]
    pub fn primary_flushed(&self) -> Lsn {
        Lsn(self.primary_flushed.load(Ordering::Acquire))
    }

    /// Replication lag in LSNs (primary's flushed tail − applied).
    #[must_use]
    pub fn lag(&self) -> u64 {
        self.primary_flushed()
            .0
            .saturating_sub(self.applied_lsn().0)
    }

    /// Times the follower re-entered the connect loop after a
    /// disconnect or failed attempt.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Times the primary cut this follower loose for falling behind
    /// its broadcast window.
    #[must_use]
    pub fn cut_loose_count(&self) -> u64 {
        self.cut_loose.load(Ordering::Relaxed)
    }

    /// How long since the last frame (heartbeats included) arrived
    /// from the primary. The `--promote-on-disconnect` watchdog
    /// promotes when this exceeds its threshold.
    #[must_use]
    pub fn last_frame_elapsed(&self) -> Duration {
        self.last_frame.lock().elapsed()
    }

    /// True once [`Replica::promote`] has completed.
    #[must_use]
    pub fn is_promoted(&self) -> bool {
        self.state.load(Ordering::Acquire) == STATE_PROMOTED
    }

    /// Ask the loops to exit. The receive thread notices on the next
    /// frame (heartbeats arrive every ~200ms) or connect attempt; the
    /// apply thread drains its queue and exits.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Run the subscribe/apply/reconnect machinery until
    /// [`Replica::stop`]. The calling thread becomes the receive loop;
    /// the apply loop runs on a thread this spawns and joins.
    pub fn run(self: &Arc<Replica>) {
        let apply = {
            let me = Arc::clone(self);
            std::thread::Builder::new()
                .name("oib-replica-apply".into())
                .spawn(move || me.apply_loop())
                .expect("spawn replica apply thread")
        };
        let mut backoff = BACKOFF_MIN;
        while !self.stop.load(Ordering::Acquire) {
            // Never resubscribe with batches still queued: the
            // resubscribe point is `applied + 1`, which only reflects
            // reality once the apply thread has drained.
            if self.queued_records.load(Ordering::Acquire) > 0 {
                std::thread::sleep(POLL);
                continue;
            }
            self.apply_stalled.store(false, Ordering::Release);
            let addr = self.addr.lock().clone();
            let outcome = Client::connect(&addr).and_then(|client| {
                client.set_read_timeout(Some(READ_TIMEOUT))?;
                let from = self.applied.load(Ordering::Acquire) + 1;
                self.db
                    .obs
                    .trace()
                    .event("repl.subscribe", addr.clone(), from);
                let me = Arc::clone(self);
                let mut expected = from;
                client.subscribe_wal(from, move |flushed, records, traces| {
                    me.on_frame(flushed, records, traces, &mut expected)
                })
            });
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let mut immediate = false;
            match outcome {
                // `on_frame` returned false: stop, stall, backpressure
                // abort or a gap — all roads lead to resubscribing.
                Ok(()) => {}
                Err(ClientError::Server {
                    code: ErrorCode::SubscriptionLagged { retained_from },
                    ..
                }) => {
                    // Deliberate cut-loose, not a failure: the primary
                    // dropped the stream because this cursor fell out
                    // of its broadcast window. `applied + 1` is still a
                    // trusted position — resubscribe right away and let
                    // the primary's catch-up scans walk us back into
                    // the window.
                    self.cut_loose.fetch_add(1, Ordering::Relaxed);
                    self.db
                        .obs
                        .trace()
                        .event("repl.cut_loose", "resubscribing", retained_from);
                    immediate = true;
                }
                Err(e) => {
                    self.db
                        .obs
                        .trace()
                        .event("repl.disconnect", e.to_string(), 0);
                }
            }
            if immediate || self.progressed.swap(false, Ordering::AcqRel) {
                backoff = BACKOFF_MIN;
            }
            self.reconnects.fetch_add(1, Ordering::Relaxed);
            if !immediate {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_MAX);
            }
        }
        let _ = apply.join();
    }

    /// [`Replica::run`] on its own thread.
    pub fn spawn(self: &Arc<Replica>) -> JoinHandle<()> {
        let me = Arc::clone(self);
        std::thread::Builder::new()
            .name("oib-replica".into())
            .spawn(move || me.run())
            .expect("spawn replica thread")
    }

    /// Block until the follower has applied everything up to `target`
    /// (inclusive). Returns false on timeout.
    #[must_use]
    pub fn wait_caught_up(&self, target: Lsn, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.applied_lsn() < target {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Promote this follower to primary.
    ///
    /// The sequence: leave the `FOLLOWING` state (exactly one caller
    /// wins), stop the receive loop, take the apply gate — which waits
    /// out at most one in-flight frame, never the multi-second socket
    /// timeout — discard the received-but-unapplied tail, then run
    /// ordinary ARIES restart over the mirrored log. Redo is
    /// idempotent against the already-applied pages; the undo pass
    /// rolls back the old primary's in-flight transactions with CLRs.
    /// Finally the engine's dynamic role flips and writes are
    /// accepted.
    ///
    /// Discarding the queued tail is sound for the same reason a crash
    /// is: those records were never applied, so they are the exact
    /// analogue of the unflushed suffix a crashed primary forgets.
    ///
    /// # Errors
    /// A `String` description when promotion has already run (or is
    /// running), or when the restart pass fails — the latter leaves
    /// the follower stopped but unpromoted.
    pub fn promote(&self) -> std::result::Result<PromotionReport, String> {
        if self
            .state
            .compare_exchange(
                STATE_FOLLOWING,
                STATE_PROMOTING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            return Err("promotion already started or completed".into());
        }
        let started = Instant::now();
        self.db.obs.trace().event(
            "repl.promote_begin",
            self.addr.lock().clone(),
            self.applied_lsn().0,
        );
        self.stop.store(true, Ordering::Release);
        let _gate = self.apply_gate.lock();
        {
            let mut q = self.queue.lock();
            let dropped = self.queued_records.load(Ordering::Acquire);
            q.clear();
            self.queued_records.store(0, Ordering::Release);
            if dropped > 0 {
                self.db.obs.trace().event(
                    "repl.promote_discard_tail",
                    "unapplied records",
                    dropped,
                );
            }
        }
        let stats = self
            .db
            .promote_to_primary()
            .map_err(|e| format!("promotion restart failed: {e}"))?;
        self.state.store(STATE_PROMOTED, Ordering::Release);
        let downtime = started.elapsed();
        self.db.obs.trace().event(
            "repl.promote_done",
            format!("losers {}", stats.losers),
            u64::try_from(downtime.as_millis()).unwrap_or(u64::MAX),
        );
        Ok(PromotionReport {
            last_lsn: self.db.wal.tail_lsn(),
            losers_undone: stats.losers,
            downtime,
        })
    }

    /// Receive one frame (runs on the receive thread). Returning false
    /// drops the connection; the outer loop resubscribes from
    /// `applied + 1`.
    fn on_frame(
        &self,
        flushed: u64,
        records: Vec<LogRecord>,
        traces: Vec<(u64, u64)>,
        expected: &mut u64,
    ) -> bool {
        if self.stop.load(Ordering::Acquire) || self.apply_stalled.load(Ordering::Acquire) {
            return false;
        }
        *self.last_frame.lock() = Instant::now();
        self.primary_flushed.fetch_max(flushed, Ordering::AcqRel);
        self.db.set_repl_lag(self.lag());
        for rec in &records {
            if rec.lsn.0 != *expected {
                // Gap or replay: never enqueue out of order;
                // resubscribe from the position we trust.
                self.db
                    .obs
                    .trace()
                    .event("repl.gap", format!("got {}", rec.lsn.0), *expected - 1);
                return false;
            }
            *expected += 1;
        }
        self.progressed.store(true, Ordering::Release);
        if records.is_empty() {
            return true; // heartbeat
        }
        let n = records.len() as u64;
        while self.queued_records.load(Ordering::Acquire) + n > QUEUE_MAX {
            if self.stop.load(Ordering::Acquire) || self.apply_stalled.load(Ordering::Acquire) {
                return false;
            }
            std::thread::sleep(POLL);
        }
        let mut q = self.queue.lock();
        // Re-check under the lock: a stall clears the queue, and an
        // enqueue racing past that clear would survive it.
        if self.apply_stalled.load(Ordering::Acquire) {
            return false;
        }
        q.push_back((records, traces));
        self.queued_records.fetch_add(n, Ordering::AcqRel);
        true
    }

    /// The apply thread: drain the queue until stopped.
    fn apply_loop(&self) {
        loop {
            let Some((records, traces)) = self.queue.lock().pop_front() else {
                if self.stop.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(POLL);
                continue;
            };
            let n = records.len() as u64;
            let gate = self.apply_gate.lock();
            if self.stop.load(Ordering::Acquire) {
                // Promotion or shutdown raced in between pop and gate:
                // this frame dies unapplied, like the rest of the
                // queue.
                drop(gate);
                self.sub_queued(n);
                continue;
            }
            let started = Instant::now();
            let mut failed = false;
            let mut last = Lsn::NULL;
            for rec in &records {
                let t = Instant::now();
                // A trace tag on this record's LSN means the primary
                // sampled the originating request: continue the same
                // trace across the process boundary so one id links
                // wire receive, WAL flush, and follower apply.
                let tag = traces.iter().find(|&&(lsn, _)| lsn == rec.lsn.0);
                let _trace_scope =
                    tag.map(|&(_, tid)| mohan_obs::install_ctx(mohan_obs::ctx_for(tid)));
                let apply_span = tag.map(|_| {
                    self.db
                        .obs
                        .trace()
                        .span("repl.apply", format!("{:?}", rec.kind))
                        .with_detail(rec.lsn.0)
                });
                if let Err(e) = self.apply_record(rec) {
                    self.apply_errors.fetch_add(1, Ordering::Relaxed);
                    self.db
                        .obs
                        .trace()
                        .event("repl.apply_error", e.to_string(), rec.lsn.0);
                    failed = true;
                    break;
                }
                self.apply_us.record_micros(t.elapsed());
                if let Some(span) = apply_span {
                    span.commit();
                }
                self.applied.store(rec.lsn.0, Ordering::Release);
                last = rec.lsn;
            }
            if last != Lsn::NULL {
                // One durability point per frame, not per record (the
                // mirrored appends above only hit the in-memory tail).
                self.db.wal.flush_to(last);
            }
            drop(gate);
            if failed {
                // Stall: wipe the queue and make the receive thread
                // drop the connection; the resubscribe from
                // `applied + 1` re-fetches everything discarded here.
                let mut q = self.queue.lock();
                q.clear();
                self.queued_records.store(0, Ordering::Release);
                self.apply_stalled.store(true, Ordering::Release);
            } else {
                self.sub_queued(n);
                self.batch_us.record_micros(started.elapsed());
            }
            self.db.set_repl_lag(self.lag());
        }
    }

    /// Decrement the queued-record count without racing a concurrent
    /// clear-to-zero (all counter updates happen under the queue lock).
    fn sub_queued(&self, n: u64) {
        let q = self.queue.lock();
        let cur = self.queued_records.load(Ordering::Acquire);
        self.queued_records
            .store(cur.saturating_sub(n), Ordering::Release);
        drop(q);
    }

    /// Mirror one record into the local log, then redo it.
    fn apply_record(&self, rec: &LogRecord) -> Result<()> {
        // Mirror first: promotion's restart pass reads the local log,
        // so every applied record must exist in it. The local
        // allocator hands out LSNs sequentially and nothing else
        // appends on a follower (sessions refuse writes), so in-order
        // mirroring reproduces the primary's LSNs exactly — anything
        // else is divergence and must stall the apply.
        let lsn = self
            .db
            .wal
            .append(rec.tx, rec.prev, rec.kind, rec.payload.clone());
        if lsn != rec.lsn {
            return Err(Error::Corruption(format!(
                "replica log mirror diverged: local {} vs primary {}",
                lsn.0, rec.lsn.0
            )));
        }
        // Transactions begun after promotion must never collide with
        // ids the old primary handed out.
        self.db.bump_tx_floor(rec.tx);
        if rec.is_redoable() {
            self.db.redo(rec)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("applied", &self.applied_lsn())
            .field("primary_flushed", &self.primary_flushed())
            .field("reconnects", &self.reconnects())
            .field("promoted", &self.is_promoted())
            .finish()
    }
}

/// Bounded-staleness reads against a follower's replayed state, as a
/// [`ReadApi`] — the same trait the bench oracle and closed-loop
/// drivers use against an in-process session or a wire client, so E19
/// can point them at a follower unchanged.
///
/// Every read first compares the follower's current lag against
/// `max_lag_lsn`; an over-budget read fails with
/// [`Error::ReplicaStale`] instead of returning data of unknown
/// staleness. Serving a read bumps `repl.reads_served`; refusing one
/// bumps `repl.reads_rejected_stale`.
pub struct FollowerReader {
    replica: Arc<Replica>,
    max_lag_lsn: u64,
    reads_served: Arc<Counter>,
    reads_stale: Arc<Counter>,
}

impl FollowerReader {
    /// Read surface over `replica` refusing reads whose lag exceeds
    /// `max_lag_lsn`.
    #[must_use]
    pub fn new(replica: Arc<Replica>, max_lag_lsn: u64) -> FollowerReader {
        let reads_served = replica.db.obs.counter("repl.reads_served");
        let reads_stale = replica.db.obs.counter("repl.reads_rejected_stale");
        FollowerReader {
            replica,
            max_lag_lsn,
            reads_served,
            reads_stale,
        }
    }

    fn check_fresh(&self) -> Result<()> {
        let lag = self.replica.lag();
        if lag > self.max_lag_lsn {
            self.reads_stale.bump();
            return Err(Error::ReplicaStale { lag });
        }
        Ok(())
    }
}

impl ReadApi for FollowerReader {
    type Err = Error;

    fn read(&mut self, table: TableId, rid: Rid) -> Result<Vec<i64>> {
        self.check_fresh()?;
        let rec = self.replica.db.read_record(table, rid)?;
        self.reads_served.bump();
        Ok(rec.0)
    }

    fn lookup(&mut self, index: IndexId, key: &KeyValue) -> Result<Vec<Rid>> {
        self.check_fresh()?;
        let rids = self.replica.db.index_lookup(index, key)?;
        self.reads_served.bump();
        Ok(rids)
    }
}

impl std::fmt::Debug for FollowerReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FollowerReader")
            .field("max_lag_lsn", &self.max_lag_lsn)
            .field("lag", &self.replica.lag())
            .finish()
    }
}
