//! Worker shards: each worker owns a set of non-blocking connections
//! and services them — read bytes, split frames, execute requests
//! through the connection's [`Session`], write responses, watch
//! running builds and streams.
//!
//! Two drive modes share every helper in this file:
//!
//! * **reactor** (`crate::reactor::driver`) — the shard blocks in its
//!   [`crate::reactor::IoBackend`] until a socket is ready or a timer
//!   deadline arrives, so idle connections cost zero wakeups;
//! * **threaded sleep** ([`worker_loop`]) — the legacy config-gated
//!   fallback: scan every connection, sleep 500µs when nothing moved.
//!
//! Responses are *buffered*: a send appends to the connection's
//! outbound buffer and flushes as far as the socket accepts. A
//! `WouldBlock` mid-frame therefore never stalls the shard — the
//! unwritten tail stays buffered and resumes on write-readiness (or
//! next tick on the fallback), with the write timeout measured from
//! when the backlog first appeared.
//!
//! One worker executes one request at a time (closed-loop per shard);
//! concurrency comes from the shard count plus build threads. The
//! global in-flight cap spans all shards, so admission control is a
//! property of the server, not of a lucky shard assignment.

use crate::pg::ConnKind;
use crate::Inner;
use mohan_common::{Error, IndexId, KeyValue, Rid, TableId};
use mohan_oib::build::{build_indexes_observed, BuildOptions, IndexSpec};
use mohan_oib::progress::{self, BuildProgress};
use mohan_oib::schema::{BuildAlgorithm, Record};
use mohan_oib::Session;
use mohan_wire::frame::{take_frame, write_frame, MAX_FRAME};
use mohan_wire::message::{
    proto_major, proto_version, BuildAlgo, BuildOptionsWire, BuildPhase, ErrorCode,
    HistogramSummaryWire, Request, Response, Role, PROTO_MAJOR,
};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Opcode names in [`opcode_index`] order; `Inner::req_us` holds one
/// `server.req_us.<opcode>` histogram per entry.
pub(crate) const OPCODES: &[&str] = &[
    "Ping",
    "Begin",
    "Commit",
    "Rollback",
    "Insert",
    "Update",
    "Delete",
    "Read",
    "Lookup",
    "CreateIndex",
    "Stats",
    "Metrics",
    "ObserveStats",
    "SubscribeWal",
    "Hello",
    "Promote",
    "TraceDump",
    "CreateIndexV2",
];

/// Index of a request's opcode into [`OPCODES`] / `Inner::req_us`.
/// Kept in lockstep with [`Request::name`] by a unit test.
fn opcode_index(req: &Request) -> usize {
    match req {
        Request::Ping => 0,
        Request::Begin => 1,
        Request::Commit => 2,
        Request::Rollback => 3,
        Request::Insert { .. } => 4,
        Request::Update { .. } => 5,
        Request::Delete { .. } => 6,
        Request::Read { .. } => 7,
        Request::Lookup { .. } => 8,
        Request::CreateIndex { .. } => 9,
        Request::Stats => 10,
        Request::Metrics => 11,
        Request::ObserveStats { .. } => 12,
        Request::SubscribeWal { .. } => 13,
        Request::Hello { .. } => 14,
        Request::Promote => 15,
        Request::TraceDump { .. } => 16,
        Request::CreateIndexV2 { .. } => 17,
    }
}

/// Per-shard state shared by both drive modes: the shard's index (for
/// waker lookups) and its live `SubscribeWal` count, which gates the
/// WAL flush waker so shards without subscribers never wake on
/// flushes.
#[derive(Clone)]
pub(crate) struct ShardCtx {
    pub(crate) shard: usize,
    pub(crate) wal_subs: Arc<AtomicUsize>,
}

/// Where a spawned build thread deposits its outcome.
type BuildResult = Arc<Mutex<Option<Result<Vec<IndexId>, Error>>>>;

/// Where the build thread publishes the index ids it registered, as
/// soon as they are allocated (before any scan work).
type BuildIds = Arc<Mutex<Option<Vec<IndexId>>>>;

/// A `CreateIndex` running on its own thread for one connection.
struct BuildJob {
    result: BuildResult,
    /// Ids this build registered — the only ids whose progress this
    /// connection reports (another connection may be building on the
    /// same table concurrently).
    ids: BuildIds,
    /// Last progress frame sent, to emit only on change.
    last_sent: Option<(u32, BuildPhase, u64)>,
    last_poll: Instant,
}

/// An `ObserveStats` subscription: the connection becomes a metrics
/// stream, receiving one [`Response::Metrics`] frame per interval
/// until the client disconnects.
struct ObserveJob {
    interval: Duration,
    last_emit: Instant,
}

/// A `SubscribeWal` subscription: the connection becomes a WAL
/// stream, tailing the log's *flushed* prefix in batched
/// [`Response::WalFrame`]s until the client disconnects. The frames
/// come from the shared broadcast ring (`Inner::broadcast`) — each
/// flushed suffix is scanned and encoded once for every subscriber —
/// with bounded private scans only while the cursor is below the
/// ring's retained window.
struct WalSubJob {
    /// Next LSN to ship.
    next: u64,
    /// When the last frame (records or heartbeat) went out.
    last_emit: Instant,
    /// Force an immediate first frame so the subscriber learns the
    /// primary's flushed LSN without waiting out a heartbeat.
    primed: bool,
    /// Whether this cursor has ever reached the broadcast ring's
    /// retained window. Only a subscriber that was inside the window
    /// and fell out of it is cut loose; one that started behind it
    /// (a fresh replica subscribing from an old LSN) is served by
    /// catch-up scans until it re-enters — otherwise every
    /// resubscription below the window would be cut again, forever.
    caught_up: bool,
}

/// Idle subscriptions still get a frame this often: an empty
/// `WalFrame` is a heartbeat carrying the advancing flushed LSN.
pub(crate) const WAL_SUB_HEARTBEAT: Duration = Duration::from_millis(200);
/// Most records one `WalFrame` carries.
const WAL_SUB_MAX_RECORDS: usize = 1024;
/// Approximate byte budget for one frame's record blob, far under
/// `MAX_FRAME`.
const WAL_SUB_MAX_BYTES: usize = 1 << 20;
/// Most pre-encoded ring chunks one [`pump_wal_sub`] call ships
/// before re-checking the socket; [`pump_wal_burst`] keeps pumping
/// until the backlog pushes back or the cursor catches up.
const WAL_BURST_CHUNKS: usize = 4;

/// A connection whose outbound backlog exceeds this is a slow client
/// regardless of the write timeout: responses to pipelined requests
/// must not buffer without bound while the timeout clock runs.
const OUT_BACKLOG_CAP: usize = 4 * MAX_FRAME;

/// Compact the outbound buffer once this many flushed bytes accumulate
/// at its front.
const OUT_COMPACT: usize = 64 * 1024;

pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    /// Which protocol this connection speaks, plus its protocol
    /// state; decided by the accepting listener.
    pub(crate) proto: crate::pg::Proto,
    pub(crate) buf: Vec<u8>,
    /// Complete frames split off `buf`, each stamped with its arrival
    /// time so the per-request deadline is measured per frame, not
    /// from the connection's most recent byte. Native frames are a
    /// `Request` payload; pg frames are `[type byte][body]`.
    pub(crate) pending: VecDeque<(Vec<u8>, Instant)>,
    pub(crate) session: Session,
    pub(crate) last_activity: Instant,
    build: Option<BuildJob>,
    observe: Option<ObserveJob>,
    wal_sub: Option<WalSubJob>,
    pub(crate) dead: bool,
    /// Outbound bytes not yet accepted by the socket; `out_pos` marks
    /// the flushed prefix.
    out: Vec<u8>,
    out_pos: usize,
    /// When the current backlog first hit `WouldBlock` — the write
    /// (slow-client) timeout runs from here and clears when the
    /// backlog drains.
    pub(crate) blocked_since: Option<Instant>,
    /// Reactor-driver bookkeeping: when this connection's armed timer
    /// fires (`None` = no timer armed). Unused by the threaded loop.
    pub(crate) timer_at: Option<Instant>,
    /// Reactor-driver bookkeeping: write interest currently registered.
    pub(crate) want_write: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, inner: &Arc<Inner>, kind: ConnKind) -> Conn {
        Conn {
            stream,
            proto: match kind {
                ConnKind::Native => crate::pg::Proto::Native,
                ConnKind::Pg => crate::pg::Proto::Pg(Default::default()),
                ConnKind::Http => crate::pg::Proto::Http,
            },
            buf: Vec::new(),
            pending: VecDeque::new(),
            session: Session::new(Arc::clone(&inner.db)),
            last_activity: Instant::now(),
            build: None,
            observe: None,
            wal_sub: None,
            dead: false,
            out: Vec::new(),
            out_pos: 0,
            blocked_since: None,
            timer_at: None,
            want_write: false,
        }
    }

    /// Unwritten outbound bytes exist.
    pub(crate) fn has_backlog(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Any streaming exchange (build/metrics/WAL) owns this
    /// connection.
    pub(crate) fn has_job(&self) -> bool {
        self.build.is_some() || self.observe.is_some() || self.wal_sub.is_some()
    }

    /// A running build whose result may arrive from another thread.
    pub(crate) fn has_build(&self) -> bool {
        self.build.is_some()
    }

    /// A live WAL subscription (pumped on flush wakeups).
    pub(crate) fn has_wal_sub(&self) -> bool {
        self.wal_sub.is_some()
    }

    /// The earliest instant at which this connection needs servicing
    /// absent any socket event: stream emission intervals, the build
    /// progress poll, the idle deadline, or — while a backlog exists —
    /// the slow-client write timeout (stream pumps pause on backlog,
    /// so nothing shorter matters until the socket drains).
    pub(crate) fn next_deadline(&self, cfg: &crate::ServerConfig) -> Option<Instant> {
        if self.dead {
            return None;
        }
        if let Some(b) = self.blocked_since {
            // While blocked, the write timeout dominates — except that
            // a backlogged WAL subscription still owes heartbeats (the
            // follower's liveness signal), so its emission deadline
            // stays armed alongside it.
            let mut at = b + cfg.write_timeout;
            if let Some(j) = &self.wal_sub {
                at = at.min(j.last_emit + WAL_SUB_HEARTBEAT);
            }
            return Some(at);
        }
        let mut at: Option<Instant> = None;
        let mut fold = |t: Instant| at = Some(at.map_or(t, |a: Instant| a.min(t)));
        if let Some(j) = &self.build {
            fold(j.last_poll + cfg.progress_interval);
        }
        if let Some(j) = &self.observe {
            fold(j.last_emit + j.interval);
        }
        if let Some(j) = &self.wal_sub {
            fold(j.last_emit + WAL_SUB_HEARTBEAT);
        }
        if !self.has_job() {
            fold(self.last_activity + cfg.idle_timeout);
        }
        at
    }
}

/// The legacy sleep-poll shard loop (`io_backend = threaded`): scan
/// every connection each tick, sleep 500µs when nothing progressed.
/// Kept config-gated as the portable no-reactor fallback; the event
/// loop lives in `crate::reactor::driver`.
/// A threaded-loop connection slot: serviced by the tick loop,
/// checked out to the shard's executor thread, or vacant.
// `Live` dominating the enum's size is the point: connections live
// inline in the slot vector, and `Out`/`Empty` are transient
// placeholders — boxing would buy an allocation per checkout.
#[allow(clippy::large_enum_variant)]
enum TickSlot {
    Live(Conn),
    Out,
    Empty,
}

pub(crate) fn worker_loop(
    inner: &Arc<Inner>,
    ctx: &ShardCtx,
    rx: &mpsc::Receiver<(TcpStream, ConnKind)>,
) {
    // Lock-acquiring frames run on this executor thread so the tick
    // loop never sits in a lock wait: the loop must stay free to run
    // the peer's `Commit`/`Rollback` that releases the contended
    // lock (see `run_pending_inline`). The reactor driver does the
    // same with its own executor.
    let (exec_tx, exec_rx) = mpsc::channel::<(usize, Conn)>();
    let (ret_tx, ret_rx) = mpsc::channel::<(usize, Conn)>();
    let exec = {
        let inner = Arc::clone(inner);
        let ctx = ctx.clone();
        std::thread::Builder::new()
            .name(format!("oib-exec-{}", ctx.shard))
            .spawn(move || {
                while let Ok((slot, mut conn)) = exec_rx.recv() {
                    run_pending(&inner, &ctx, &mut conn, inner.draining());
                    if ret_tx.send((slot, conn)).is_err() {
                        return;
                    }
                }
            })
            .expect("spawn executor thread")
    };

    let mut slots: Vec<TickSlot> = Vec::new();
    let mut out = 0usize;
    loop {
        let draining = inner.draining();
        while let Ok((stream, kind)) = rx.try_recv() {
            if draining {
                inner.conn_count.fetch_sub(1, Ordering::AcqRel);
                if matches!(kind, crate::pg::ConnKind::Http) {
                    inner.http_conns.fetch_sub(1, Ordering::AcqRel);
                }
                inner.shard_conns[ctx.shard].fetch_sub(1, Ordering::AcqRel);
                drop(stream); // accepted in the race window; EOF to client
                continue;
            }
            let conn = Conn::new(stream, inner, kind);
            match slots.iter().position(|s| matches!(s, TickSlot::Empty)) {
                Some(i) => slots[i] = TickSlot::Live(conn),
                None => slots.push(TickSlot::Live(conn)),
            }
        }
        // Connections back from the executor resume normal service.
        while let Ok((i, conn)) = ret_rx.try_recv() {
            out -= 1;
            slots[i] = TickSlot::Live(conn);
        }

        // A tick is this backend's "wakeup": the contrast with the
        // reactor backends (which only wake on events) is the whole
        // point of the `server.wakeups` counter.
        inner.stats.wakeups.bump();
        let mut progressed = 0u64;
        for (i, slot) in slots.iter_mut().enumerate() {
            let TickSlot::Live(conn) = slot else {
                continue;
            };
            let (prog, needs_exec) = service_conn(inner, ctx, conn, draining);
            if prog || needs_exec {
                progressed += 1;
            }
            if needs_exec {
                let TickSlot::Live(conn) = std::mem::replace(slot, TickSlot::Out) else {
                    unreachable!()
                };
                inner.stats.exec_offloads.bump();
                match exec_tx.send((i, conn)) {
                    Ok(()) => out += 1,
                    Err(mpsc::SendError((_, mut conn))) => {
                        // Executor gone: degrade to inline execution.
                        run_pending(inner, ctx, &mut conn, draining);
                        *slot = TickSlot::Live(conn);
                    }
                }
            }
        }
        inner.events_per_wait.record(progressed);

        if draining {
            drain_mark(
                inner,
                slots.iter_mut().filter_map(|s| match s {
                    TickSlot::Live(conn) => Some(conn),
                    _ => None,
                }),
            );
        }

        for slot in &mut slots {
            if let TickSlot::Live(conn) = slot {
                if conn.dead {
                    reap_conn(inner, ctx, conn);
                    *slot = TickSlot::Empty;
                }
            }
        }

        if draining && out == 0 && slots.iter().all(|s| matches!(s, TickSlot::Empty)) {
            break;
        }
        if progressed == 0 {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    drop(exec_tx);
    let _ = exec.join();
}

/// One drain pass over a shard's connections: a connection with
/// nothing in flight has had its say; once the drain timeout expires
/// everything goes, rolling back open transactions.
pub(crate) fn drain_mark<'a>(inner: &Arc<Inner>, conns: impl Iterator<Item = &'a mut Conn>) {
    let expired = inner.drain_elapsed() >= inner.cfg.drain_timeout;
    // HTTP probe connections survive the early pass so an orchestrator
    // can observe `/readyz` flip during the drain window; every
    // response sent while draining closes its connection (see
    // `crate::http`). Once probes are all that remain *globally*, the
    // drain has nothing left to tell them and they go too — an idle
    // keep-alive probe must not hold the drain open to the timeout.
    let only_probes =
        inner.http_conns.load(Ordering::Acquire) >= inner.conn_count.load(Ordering::Acquire);
    for conn in conns {
        if conn.dead {
            continue;
        }
        let probe = matches!(conn.proto, crate::pg::Proto::Http);
        if probe && !only_probes && !expired {
            continue;
        }
        if conn.build.is_none() && conn.pending.is_empty() && conn.session.current_tx().is_none() {
            conn.dead = true;
        } else if expired {
            if conn.session.current_tx().is_some() {
                inner.stats.drain_rollbacks.bump();
            }
            conn.dead = true;
        }
    }
}

/// Release everything a dead connection still holds. However the
/// connection died — EOF, write timeout, malformed frame, drain — a
/// spawned build or a live stream still holds its admission slot;
/// reclaim it here or the server wedges at max_inflight. The build
/// thread itself keeps running detached (the `Db` is refcounted).
pub(crate) fn reap_conn(inner: &Arc<Inner>, ctx: &ShardCtx, conn: &mut Conn) {
    if conn.build.take().is_some() {
        inner.release();
    }
    if conn.observe.take().is_some() {
        inner.release();
    }
    if conn.wal_sub.take().is_some() {
        inner.release();
        ctx.wal_subs.fetch_sub(1, Ordering::AcqRel);
        inner.broadcast.subscriber_detached();
    }
    let _ = conn.session.close(); // rolls back an open tx
    inner.stats.conns_closed.bump();
    inner.conn_count.fetch_sub(1, Ordering::AcqRel);
    if matches!(conn.proto, crate::pg::Proto::Http) {
        inner.http_conns.fetch_sub(1, Ordering::AcqRel);
    }
    inner.shard_conns[ctx.shard].fetch_sub(1, Ordering::AcqRel);
}

/// One service pass over a connection (threaded backend). Returns true
/// if any work happened (so the worker only sleeps on a fully idle
/// shard).
pub(crate) fn service_conn(
    inner: &Arc<Inner>,
    ctx: &ShardCtx,
    conn: &mut Conn,
    draining: bool,
) -> (bool, bool) {
    let mut progressed = false;
    if conn.has_backlog() {
        progressed |= try_flush(conn);
        check_write_timeout(inner, conn);
        if conn.dead {
            return (true, false);
        }
    }
    if conn.build.is_some() {
        progressed |= watch_build(inner, conn);
    }
    if conn.observe.is_some() {
        progressed |= pump_observe(inner, conn);
    }
    if conn.wal_sub.is_some() {
        progressed |= pump_wal_sub(inner, ctx, conn);
    }

    progressed |= read_socket(inner, conn);
    if conn.dead {
        return (true, false);
    }
    let before = conn.pending.len();
    let needs_exec = run_pending_inline(inner, ctx, conn, draining);
    progressed |= conn.pending.len() != before;
    progressed |= check_idle(inner, conn);
    (progressed, needs_exec)
}

/// Pull whatever the socket has and split complete frames off the
/// receive buffer, stamping each with its arrival time: the
/// per-request deadline is measured from when a frame's bytes were
/// all here. (`last_activity` is refreshed by any later pipelined
/// bytes, so it only feeds the idle timeout.)
pub(crate) fn read_socket(inner: &Arc<Inner>, conn: &mut Conn) -> bool {
    let mut progressed = false;
    let mut tmp = [0u8; 4096];
    loop {
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                conn.dead = true;
                return true;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&tmp[..n]);
                conn.last_activity = Instant::now();
                progressed = true;
                if n < tmp.len() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return true;
            }
        }
    }

    match conn.proto {
        crate::pg::Proto::Pg(_) => {
            crate::pg::split_frames(inner, conn);
            return progressed;
        }
        crate::pg::Proto::Http => {
            crate::http::split_frames(inner, conn);
            return progressed;
        }
        crate::pg::Proto::Native => {}
    }
    while !conn.dead {
        match take_frame(&mut conn.buf) {
            Ok(None) => break,
            Ok(Some(payload)) => {
                conn.pending.push_back((payload, Instant::now()));
            }
            Err(_) => {
                // Oversized length prefix: framing is unrecoverable.
                inner.stats.malformed.bump();
                send(
                    inner,
                    conn,
                    &protocol_err(ErrorCode::Malformed, "frame too large"),
                );
                conn.dead = true;
            }
        }
    }
    progressed
}

/// Execute queued frames. While a build or a metrics/WAL stream owns
/// this connection the exchange is mid-stream — queued requests wait
/// their turn (for a stream, until the client disconnects).
pub(crate) fn run_pending(
    inner: &Arc<Inner>,
    ctx: &ShardCtx,
    conn: &mut Conn,
    draining: bool,
) -> bool {
    let mut progressed = false;
    while !conn.dead && !conn.has_job() {
        let Some((payload, arrived)) = conn.pending.pop_front() else {
            break;
        };
        progressed = true;
        handle_payload(inner, ctx, conn, &payload, arrived, draining);
    }
    progressed
}

/// Execute queued frames that cannot wait on engine locks, stopping
/// at the first one that can. Returns `true` when a lock-acquiring
/// frame remains queued — the reactor driver then hands the
/// connection to the shard's executor thread instead of running it
/// on the event loop. The loop itself must never sit in a lock wait:
/// it services every connection on the shard, including the one
/// whose `Commit` would release the locks the wait is queued behind.
pub(crate) fn run_pending_inline(
    inner: &Arc<Inner>,
    ctx: &ShardCtx,
    conn: &mut Conn,
    draining: bool,
) -> bool {
    while !conn.dead && !conn.has_job() {
        let Some((payload, _)) = conn.pending.front() else {
            return false;
        };
        let may_block = match conn.proto {
            crate::pg::Proto::Native => Request::frame_may_block(payload),
            crate::pg::Proto::Pg(_) => crate::pg::frame_may_block(payload),
            // Every HTTP route answers from in-memory state; none can
            // sit in an engine lock wait.
            crate::pg::Proto::Http => false,
        };
        if may_block {
            return true;
        }
        let (payload, arrived) = conn.pending.pop_front().expect("front observed above");
        handle_payload(inner, ctx, conn, &payload, arrived, draining);
    }
    false
}

/// Close a connection that has been silent past the idle timeout.
/// Connections owned by a build or stream are exempt.
pub(crate) fn check_idle(inner: &Arc<Inner>, conn: &mut Conn) -> bool {
    if !conn.dead && !conn.has_job() && conn.last_activity.elapsed() >= inner.cfg.idle_timeout {
        inner.stats.idle_closed.bump();
        conn.dead = true;
        return true;
    }
    false
}

/// Kill a connection whose backlog has been stuck past the write
/// timeout (the slow-client bound, measured from the first
/// `WouldBlock` of the current backlog).
pub(crate) fn check_write_timeout(inner: &Arc<Inner>, conn: &mut Conn) {
    if let Some(since) = conn.blocked_since {
        if !conn.dead && since.elapsed() >= inner.cfg.write_timeout {
            inner.stats.slow_closed.bump();
            conn.dead = true;
        }
    }
}

fn protocol_err(code: ErrorCode, message: &str) -> Response {
    Response::Err {
        code,
        message: message.into(),
    }
}

fn handle_payload(
    inner: &Arc<Inner>,
    ctx: &ShardCtx,
    conn: &mut Conn,
    payload: &[u8],
    arrived: Instant,
    draining: bool,
) {
    match conn.proto {
        crate::pg::Proto::Pg(_) => {
            crate::pg::handle_payload(inner, ctx, conn, payload, arrived, draining);
            return;
        }
        // Admission- and drain-exempt: health probes must answer
        // precisely when the server is saturated or draining.
        crate::pg::Proto::Http => {
            crate::http::handle_payload(inner, conn, payload);
            return;
        }
        crate::pg::Proto::Native => {}
    }
    // The trace envelope is transport dressing, peeled before decode;
    // a bare frame passes through unchanged.
    let (supplied_trace, payload) = mohan_wire::peel_traced(payload);
    let Some(req) = Request::decode(payload) else {
        inner.stats.malformed.bump();
        send(
            inner,
            conn,
            &protocol_err(ErrorCode::Malformed, "undecodable request"),
        );
        return;
    };

    // During a drain, only finishing an open transaction is allowed.
    if draining && !matches!(req, Request::Commit | Request::Rollback) {
        send(
            inner,
            conn,
            &protocol_err(ErrorCode::Draining, "server is draining"),
        );
        return;
    }

    // Commit/Rollback are exempt from admission control: they release
    // locks (and the client's next request slot), so refusing them at
    // the cap would let a saturated server deadlock against itself —
    // the blocked statements hold every slot while waiting for exactly
    // those locks. Ping is exempt as a pure liveness probe, and Hello
    // likewise: a handshake refused with Busy would read as a protocol
    // mismatch to the peer.
    let admitted = if matches!(
        req,
        Request::Commit | Request::Rollback | Request::Ping | Request::Hello { .. }
    ) {
        false
    } else if inner.admit() {
        true
    } else {
        inner.stats.busy_rejects.bump();
        send(inner, conn, &Response::Busy);
        return;
    };

    // `arrived` is when this frame was completely received; by the
    // time the worker gets here it may have sat behind pipelined
    // predecessors or a slow statement on a sibling connection.
    let waited = arrived.elapsed();
    if waited >= inner.cfg.request_deadline {
        inner.stats.deadline_rejects.bump();
        if admitted {
            inner.release();
        }
        send(
            inner,
            conn,
            &protocol_err(
                ErrorCode::DeadlineExceeded,
                &format!("queued {}ms", waited.as_millis()),
            ),
        );
        return;
    }

    inner.stats.requests.bump();
    let opcode = req.name();
    let op_idx = opcode_index(&req);
    // Every executed request runs under a trace context: the client's
    // id when the frame arrived enveloped, a fresh one otherwise. The
    // `wire.recv` span is the trace's root on this process — engine
    // events (lock waits, WAL flushes, build phases) fired during
    // execution link under it through the thread-local context.
    let _trace_scope = mohan_obs::install_ctx(mohan_obs::ctx_for(supplied_trace.unwrap_or(0)));
    let recv_span = inner
        .db
        .obs
        .trace()
        .span("wire.recv", opcode)
        .with_detail(waited.as_micros().min(u128::from(u64::MAX)) as u64);
    let started = Instant::now();
    let keep_slot = execute(inner, ctx, conn, req);
    let ran = started.elapsed();
    inner.req_us[op_idx].record_micros(ran);
    let slow = ran >= inner.cfg.slow_request;
    if slow {
        inner.db.obs.trace().span_event(
            "server.slow_request",
            opcode,
            ran.as_micros().min(u128::from(u64::MAX)) as u64,
            waited.as_micros().min(u128::from(u64::MAX)) as u64,
        );
    }
    // Commit before the slow dump so the rendered tree has its root.
    recv_span.commit();
    if slow {
        log_slow_trace(inner, opcode, ran);
    }
    if ran + waited >= inner.cfg.request_deadline {
        inner.stats.deadline_overruns.bump();
    }
    if admitted && !keep_slot {
        inner.release();
    }
}

/// Dump the current trace's reconstructed span tree to stderr — the
/// slow-request log. Only sampled traces have anything to render;
/// unsampled ones already recorded nothing.
pub(crate) fn log_slow_trace(inner: &Arc<Inner>, opcode: &str, ran: Duration) {
    let Some(tctx) = mohan_obs::current_ctx() else {
        return;
    };
    if !tctx.sampled {
        return;
    }
    let tree = mohan_obs::render_span_tree(&inner.db.obs.trace().events_filtered(tctx.trace_id, 0));
    eprintln!(
        "slow request: {opcode} took {}ms, trace {:#x}:\n{tree}",
        ran.as_millis(),
        tctx.trace_id
    );
}

/// Execute one request and send its response(s). Returns true when
/// the admission slot stays held past this call (a spawned build).
fn execute(inner: &Arc<Inner>, ctx: &ShardCtx, conn: &mut Conn, req: Request) -> bool {
    // Role gate: on a replication follower, writes are refused with a
    // redirect hint and data reads are bounded by the configured
    // staleness budget. Checked here, at the wire boundary, so the
    // answer can carry `leader_hint`; the session layer repeats the
    // write check underneath as defense in depth.
    if inner.db.is_replica() {
        match &req {
            Request::Begin
            | Request::Insert { .. }
            | Request::Update { .. }
            | Request::Delete { .. }
            | Request::CreateIndex { .. }
            | Request::CreateIndexV2 { .. } => {
                send(
                    inner,
                    conn,
                    &Response::Err {
                        code: ErrorCode::NotWritable {
                            leader_hint: inner.cfg.leader_hint.clone(),
                        },
                        message: "server is a replication follower; writes go to the primary"
                            .into(),
                    },
                );
                return false;
            }
            Request::Read { .. } | Request::Lookup { .. } => {
                let lag = inner.db.repl_lag();
                if lag > inner.cfg.max_lag_lsn {
                    inner.reads_stale.bump();
                    send(
                        inner,
                        conn,
                        &Response::Err {
                            code: ErrorCode::Stale { lag },
                            message: format!(
                                "replication lag {lag} LSNs exceeds max_lag_lsn {}",
                                inner.cfg.max_lag_lsn
                            ),
                        },
                    );
                    return false;
                }
            }
            _ => {}
        }
    }
    let resp = match req {
        Request::Ping => Response::Pong,
        Request::Begin => match conn.session.begin() {
            Ok(tx) => Response::TxBegun { tx: tx.0 },
            Err(e) => Response::from_error(&e),
        },
        Request::Commit => match conn.session.commit() {
            Ok(()) => Response::Committed,
            Err(e) => Response::from_error(&e),
        },
        Request::Rollback => match conn.session.rollback() {
            Ok(()) => Response::RolledBack,
            Err(e) => Response::from_error(&e),
        },
        Request::Insert { table, cols } => {
            match conn.session.insert(TableId(table), &Record(cols)) {
                Ok(rid) => Response::Inserted { rid: rid.pack() },
                Err(e) => Response::from_error(&e),
            }
        }
        Request::Update { table, rid, cols } => {
            match conn
                .session
                .update(TableId(table), Rid::unpack(rid), &Record(cols))
            {
                Ok(_) => Response::Updated,
                Err(e) => Response::from_error(&e),
            }
        }
        Request::Delete { table, rid } => {
            match conn.session.delete(TableId(table), Rid::unpack(rid)) {
                Ok(_) => Response::Deleted,
                Err(e) => Response::from_error(&e),
            }
        }
        Request::Read { table, rid } => match conn.session.read(TableId(table), Rid::unpack(rid)) {
            Ok(rec) => {
                if inner.db.is_replica() {
                    inner.reads_served.bump();
                }
                Response::Record { cols: rec.0 }
            }
            Err(e) => Response::from_error(&e),
        },
        Request::Lookup { index, key } => {
            match conn.session.lookup(IndexId(index), &KeyValue(key)) {
                Ok(rids) => {
                    if inner.db.is_replica() {
                        inner.reads_served.bump();
                    }
                    Response::Rids {
                        rids: rids.into_iter().map(Rid::pack).collect(),
                    }
                }
                Err(e) => Response::from_error(&e),
            }
        }
        Request::Stats => {
            let mut counters = inner.stats.snapshot();
            counters.push(("engine.active_txs".into(), inner.db.active_txs() as u64));
            counters.push((
                "server.inflight".into(),
                inner.inflight.load(Ordering::Acquire) as u64,
            ));
            let b = &inner.broadcast;
            counters.push(("repl.fanout.subscribers".into(), b.subscribers()));
            counters.push(("repl.fanout.ring_chunks".into(), b.ring_chunks()));
            counters.push(("repl.fanout.ring_bytes".into(), b.ring_bytes()));
            counters.push(("repl.fanout.scans".into(), b.scans()));
            counters.push(("repl.fanout.encodes".into(), b.encodes()));
            counters.push(("repl.fanout.evicted".into(), b.chunks_evicted()));
            counters.push(("repl.fanout.cut_loose".into(), b.cut_loose()));
            // Sorted so responses are deterministic and clients can
            // binary-search; `ServerStats::snapshot` emits in struct
            // order and the two gauges above land at the tail.
            counters.sort_by(|a, b| a.0.cmp(&b.0));
            Response::Stats { counters }
        }
        Request::Metrics => metrics_response(inner),
        Request::ObserveStats { interval_ms } => {
            let interval = Duration::from_millis(u64::from(interval_ms).clamp(10, 60_000));
            // First frame immediately: the subscriber gets a baseline
            // before the first interval elapses.
            inner.stats.observe_frames.bump();
            let first = metrics_response(inner);
            send(inner, conn, &first);
            conn.observe = Some(ObserveJob {
                interval,
                last_emit: Instant::now(),
            });
            return true; // slot stays held while the stream is live
        }
        Request::SubscribeWal { from_lsn } => {
            // Only `1 ..= flushed + 1` are valid starting points:
            // below 1 no record exists, and past the flushed tail the
            // requested records either don't exist yet or could still
            // be discarded by a crash — a follower asking for them has
            // state the primary would not recover with.
            let flushed = inner.db.wal.flushed_lsn().0;
            if from_lsn == 0 || from_lsn > flushed + 1 {
                send(
                    inner,
                    conn,
                    &protocol_err(
                        ErrorCode::Malformed,
                        &format!("from_lsn {from_lsn} outside 1..={}", flushed + 1),
                    ),
                );
                return false;
            }
            inner.stats.wal_subs.bump();
            ctx.wal_subs.fetch_add(1, Ordering::AcqRel);
            inner.broadcast.subscriber_attached();
            conn.wal_sub = Some(WalSubJob {
                next: from_lsn,
                last_emit: Instant::now(),
                primed: false,
                caught_up: false,
            });
            pump_wal_sub(inner, ctx, conn);
            return true; // slot stays held while the stream is live
        }
        Request::CreateIndex { table, algo, specs } => {
            return start_build(
                inner,
                ctx,
                conn,
                TableId(table),
                algo,
                specs,
                BuildOptionsWire::default(),
            );
        }
        Request::CreateIndexV2 {
            table,
            algo,
            specs,
            options,
        } => {
            return start_build(inner, ctx, conn, TableId(table), algo, specs, options);
        }
        Request::Hello {
            proto_version: theirs,
            role,
        } => {
            if proto_major(theirs) != PROTO_MAJOR {
                protocol_err(
                    ErrorCode::UnsupportedProto,
                    &format!(
                        "peer speaks protocol major {}, server speaks {PROTO_MAJOR}",
                        proto_major(theirs)
                    ),
                )
            } else {
                inner
                    .db
                    .obs
                    .trace()
                    .event("server.hello", format!("{role:?}"), u64::from(theirs));
                Response::Welcome {
                    proto_version: proto_version(),
                    role: if inner.db.is_replica() {
                        Role::Replica
                    } else {
                        Role::Primary
                    },
                    flushed_lsn: inner.db.wal.flushed_lsn().0,
                }
            }
        }
        Request::Promote => {
            if !inner.db.is_replica() {
                protocol_err(ErrorCode::Internal, "already a primary")
            } else {
                match &inner.cfg.promote_hook {
                    None => protocol_err(ErrorCode::Internal, "no promotion hook configured"),
                    Some(hook) => match hook.call() {
                        Ok(p) => Response::Promoted {
                            last_lsn: p.last_lsn,
                            losers_undone: p.losers_undone,
                        },
                        Err(msg) => protocol_err(ErrorCode::Internal, &msg),
                    },
                }
            }
        }
        Request::TraceDump {
            trace_id,
            since_seq,
        } => Response::TraceDump {
            jsonl: inner
                .db
                .obs
                .trace()
                .dump_jsonl_filtered(trace_id, since_seq),
        },
    };
    send(inner, conn, &resp);
    false
}

/// Assemble one [`Response::Metrics`] frame: the engine registry's
/// counters, gauges, and histogram summaries merged with the server's
/// own counters and live gauges, everything sorted by name.
fn metrics_response(inner: &Arc<Inner>) -> Response {
    let snap = inner.db.obs.snapshot();
    let mut counters = snap.counters; // includes the engine.active_txs gauge
    counters.extend(inner.stats.snapshot());
    counters.push((
        "server.inflight".into(),
        inner.inflight.load(Ordering::Acquire) as u64,
    ));
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    let hists = snap
        .histograms
        .into_iter()
        .map(|(name, h)| {
            let summary = HistogramSummaryWire {
                count: h.count,
                sum: h.sum,
                max: h.max,
                p50: h.p50(),
                p90: h.p90(),
                p99: h.p99(),
            };
            (name, summary)
        })
        .collect();
    Response::Metrics { counters, hists }
}

/// Emit the next frame of a connection's `ObserveStats` stream when
/// its interval has elapsed. Paused while a backlog exists — the
/// frames would only pile onto a socket that is not draining.
pub(crate) fn pump_observe(inner: &Arc<Inner>, conn: &mut Conn) -> bool {
    if conn.has_backlog() {
        return false;
    }
    let due = match &mut conn.observe {
        Some(job) if job.last_emit.elapsed() >= job.interval => {
            job.last_emit = Instant::now();
            true
        }
        _ => false,
    };
    if !due {
        return false;
    }
    inner.stats.observe_frames.bump();
    let frame = metrics_response(inner);
    send(inner, conn, &frame);
    true
}

/// What one pump step decided to do for a subscriber, derived from
/// where its cursor sits relative to the broadcast ring.
enum PumpPlan {
    /// Cursor is inside the retained window: ship pre-encoded chunks.
    Chunks(Vec<Arc<mohan_wal::WalChunk>>),
    /// Cursor is below the window (or between chunk boundaries): a
    /// bounded private scan through `through` inclusive, after which
    /// the cursor lands on a chunk boundary and rejoins the ring.
    Scan { through: u64 },
    /// Cursor was inside the window and fell out of it: cut the
    /// stream loose with a structured error so the follower
    /// resubscribes instead of waiting forever.
    CutLoose { retained_from: u64 },
    /// Nothing flushed past the cursor: heartbeat when due.
    Heartbeat,
}

/// Ship the next batch of a connection's WAL subscription, or a
/// heartbeat when the log is quiet. Only the flushed prefix ever goes
/// out: a record past the flushed tail could still be discarded by a
/// crash, and a follower must never apply state the primary would not
/// itself recover.
///
/// Records come from the shared broadcast ring: whichever subscriber
/// pumps first scans and encodes the newly flushed suffix *once*, and
/// every other subscriber ships the same pre-encoded chunks from its
/// own cursor. A cursor below the ring's retained window gets bounded
/// private scans (a fresh replica catching up); one that *fell out*
/// of the window is cut loose — see [`PumpPlan`].
pub(crate) fn pump_wal_sub(inner: &Arc<Inner>, ctx: &ShardCtx, conn: &mut Conn) -> bool {
    let Some(job) = &conn.wal_sub else {
        return false;
    };
    let (cursor, caught_up) = (job.next, job.caught_up);
    let heartbeat_due = !job.primed || job.last_emit.elapsed() >= WAL_SUB_HEARTBEAT;

    inner.broadcast.fill(&inner.db.wal);

    let plan = match inner.broadcast.tail_from(cursor, WAL_BURST_CHUNKS) {
        mohan_wal::Tail::Chunks(chunks) => PumpPlan::Chunks(chunks),
        mohan_wal::Tail::CaughtUp => PumpPlan::Heartbeat,
        mohan_wal::Tail::CatchUp { through } => PumpPlan::Scan { through },
        mohan_wal::Tail::Behind { retained_from } if caught_up => {
            PumpPlan::CutLoose { retained_from }
        }
        mohan_wal::Tail::Behind { retained_from } => PumpPlan::Scan {
            through: retained_from.saturating_sub(1),
        },
    };
    if matches!(plan, PumpPlan::Chunks(_) | PumpPlan::Heartbeat) {
        if let Some(j) = conn.wal_sub.as_mut() {
            j.caught_up = true;
        }
    }

    match plan {
        PumpPlan::CutLoose { retained_from } => {
            // Executes even against a backlog: the error frame rides
            // the existing buffer and the ring no longer owes this
            // cursor anything.
            cut_loose(inner, ctx, conn, cursor, retained_from);
            false
        }
        PumpPlan::Heartbeat => {
            if heartbeat_due {
                emit_heartbeat(inner, conn);
            }
            false
        }
        _ if conn.has_backlog() => {
            // Records wait for the socket to drain and coalesce into
            // bigger batches, but liveness must not: a backlogged
            // follower still gets periodic heartbeats, so it can tell
            // "I am slow" apart from "the primary is dead".
            if heartbeat_due {
                emit_heartbeat(inner, conn);
            }
            false
        }
        PumpPlan::Chunks(chunks) => ship_chunks(inner, ctx, conn, &chunks),
        PumpPlan::Scan { through } => ship_scan(inner, conn, through),
    }
}

/// Emit an empty `WalFrame` carrying only the flushed LSN — the
/// stream's liveness signal.
fn emit_heartbeat(inner: &Arc<Inner>, conn: &mut Conn) {
    let flushed = inner.db.wal.flushed_lsn().0;
    if let Some(j) = conn.wal_sub.as_mut() {
        j.primed = true;
        j.last_emit = Instant::now();
    }
    inner.stats.wal_frames.bump();
    send(
        inner,
        conn,
        &Response::WalFrame {
            flushed,
            count: 0,
            records: Vec::new(),
            traces: Vec::new(),
        },
    );
}

/// Ship pre-encoded ring chunks from the subscriber's cursor. The
/// wire framing for each chunk is built once, on first ship, and
/// cached on the chunk itself — later subscribers reuse the bytes.
fn ship_chunks(
    inner: &Arc<Inner>,
    ctx: &ShardCtx,
    conn: &mut Conn,
    chunks: &[Arc<mohan_wal::WalChunk>],
) -> bool {
    let mut progressed = false;
    for chunk in chunks {
        let framed = chunk.wire_cache.get_or_init(|| {
            let payload = Response::WalFrame {
                flushed: chunk.flushed,
                count: chunk.count,
                records: chunk.records.clone(),
                traces: chunk.traces.clone(),
            }
            .encode();
            let mut framed = Vec::with_capacity(4 + payload.len());
            framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            framed.extend_from_slice(&payload);
            framed
        });
        if framed.len() > MAX_FRAME + 4 {
            // A single record too large for any frame can never ship.
            // End the stream with an explicit error instead of letting
            // `send` substitute one mid-stream and silently desync the
            // follower's cursor.
            send(
                inner,
                conn,
                &protocol_err(ErrorCode::Internal, "WAL record exceeds the wire frame cap"),
            );
            drop_sub(inner, ctx, conn);
            return progressed;
        }
        inner.stats.wal_frames.bump();
        inner.stats.wal_records.add(u64::from(chunk.count));
        send_raw(inner, conn, framed);
        if conn.dead {
            return progressed;
        }
        if let Some(j) = conn.wal_sub.as_mut() {
            j.next = chunk.last_lsn + 1;
            j.primed = true;
            j.last_emit = Instant::now();
        }
        progressed = true;
        if conn.has_backlog() {
            break;
        }
    }
    progressed
}

/// Bounded private scan for a cursor below the broadcast window,
/// through `through` inclusive — at most a frame's worth per call, so
/// one lagging follower cannot monopolise the shard.
fn ship_scan(inner: &Arc<Inner>, conn: &mut Conn, through: u64) -> bool {
    let Some(job) = &conn.wal_sub else {
        return false;
    };
    let next = job.next;
    let mut batch: Vec<Arc<mohan_wal::LogRecord>> = Vec::new();
    let mut bytes = 0usize;
    for rec in inner
        .db
        .wal
        .scan_range(mohan_common::Lsn(next - 1), WAL_SUB_MAX_RECORDS)
    {
        if rec.lsn.0 > through {
            break;
        }
        let size = rec.payload.encoded_size() + 32;
        // Cap *before* pushing so a full batch is never extended past
        // the budget; a record that alone exceeds it (e.g. a catalog
        // snapshot) travels in its own frame.
        if !batch.is_empty() && bytes + size > WAL_SUB_MAX_BYTES {
            break;
        }
        bytes += size;
        batch.push(rec);
    }
    let Some(last) = batch.last() else {
        return false;
    };
    let flushed = inner.db.wal.flushed_lsn().0;
    let count = batch.len() as u32;
    // Trace tags ride the frame so the follower's apply spans join
    // the primary-side trace that caused each record.
    let traces = inner.db.wal.trace_tags_for(batch[0].lsn.0, last.lsn.0);
    let next = last.lsn.0 + 1;
    let records = mohan_wal::encode_records(batch.iter().map(|r| &**r));
    if let Some(j) = conn.wal_sub.as_mut() {
        j.next = next;
        j.primed = true;
        j.last_emit = Instant::now();
    }
    inner.stats.wal_frames.bump();
    inner.stats.wal_records.add(u64::from(count));
    send(
        inner,
        conn,
        &Response::WalFrame {
            flushed,
            count,
            records,
            traces,
        },
    );
    true
}

/// Terminate a lagging subscription with [`ErrorCode::SubscriptionLagged`].
/// The follower treats it as "resubscribe from where you are" — the
/// catch-up scans in [`ship_scan`] then walk it back into the window.
fn cut_loose(inner: &Arc<Inner>, ctx: &ShardCtx, conn: &mut Conn, cursor: u64, retained_from: u64) {
    inner.broadcast.note_cut_loose();
    inner.db.obs.trace().event(
        "repl.cut_loose",
        format!("cursor {cursor} behind window start {retained_from}"),
        retained_from,
    );
    send(
        inner,
        conn,
        &protocol_err(
            ErrorCode::SubscriptionLagged { retained_from },
            &format!("subscriber cursor {cursor} fell behind the broadcast window"),
        ),
    );
    drop_sub(inner, ctx, conn);
}

/// Tear down a WAL subscription without closing the connection:
/// release the admission slot, drop the shard's flush-wakeup gate,
/// and detach from the broadcast ring.
fn drop_sub(inner: &Arc<Inner>, ctx: &ShardCtx, conn: &mut Conn) {
    if conn.wal_sub.take().is_some() {
        inner.release();
        ctx.wal_subs.fetch_sub(1, Ordering::AcqRel);
        inner.broadcast.subscriber_detached();
    }
}

/// Drain a WAL subscription's ready records completely: one
/// [`pump_wal_sub`] ships at most a burst of chunks, so a flush
/// wakeup that published a large suffix keeps pumping until nothing
/// is ready or the socket pushes back.
pub(crate) fn pump_wal_burst(inner: &Arc<Inner>, ctx: &ShardCtx, conn: &mut Conn) -> bool {
    let mut progressed = false;
    while pump_wal_sub(inner, ctx, conn) {
        progressed = true;
    }
    progressed
}

/// Refuse a build before it spawns, rendered per protocol.
fn build_refuse(inner: &Arc<Inner>, conn: &mut Conn, e: &Error) {
    match conn.proto {
        // HTTP connections never start builds; the arm is for match
        // exhaustiveness only.
        crate::pg::Proto::Native | crate::pg::Proto::Http => {
            send(inner, conn, &Response::from_error(e));
        }
        crate::pg::Proto::Pg(_) => {
            let mut out = Vec::new();
            mohan_pgwire::proto::error_response(
                &mut out,
                mohan_pgwire::sqlstate_of(e),
                &e.to_string(),
            );
            send_raw(inner, conn, &out);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn start_build(
    inner: &Arc<Inner>,
    ctx: &ShardCtx,
    conn: &mut Conn,
    table: TableId,
    algo: BuildAlgo,
    specs: Vec<mohan_wire::message::IndexSpecWire>,
    options: BuildOptionsWire,
) -> bool {
    if specs.is_empty() {
        // Same statement-level rejection the engine would raise,
        // answered before a build thread spawns for nothing.
        build_refuse(inner, conn, &Error::InvalidArg("no index specs".into()));
        return false;
    }
    let algorithm = match algo {
        BuildAlgo::Offline => BuildAlgorithm::Offline,
        BuildAlgo::Nsf => BuildAlgorithm::Nsf,
        BuildAlgo::Sf => BuildAlgorithm::Sf,
    };
    let engine_specs: Vec<IndexSpec> = specs.into_iter().map(IndexSpec::from).collect();
    start_build_engine(
        inner,
        ctx,
        conn,
        table,
        algorithm,
        engine_specs,
        BuildOptions::from(options),
    )
}

/// Spawn an online index build on its own thread and attach it to
/// this connection. Both protocols land here — the native
/// `CreateIndex` opcode (via [`start_build`]'s wire-type conversion)
/// and a SQL `CREATE INDEX` (via the pg executor's validated
/// `StmtOutcome::StartBuild`). The immediate first frame and any
/// failure reply are rendered per protocol.
#[allow(clippy::too_many_arguments)]
pub(crate) fn start_build_engine(
    inner: &Arc<Inner>,
    ctx: &ShardCtx,
    conn: &mut Conn,
    table: TableId,
    algorithm: BuildAlgorithm,
    engine_specs: Vec<IndexSpec>,
    options: BuildOptions,
) -> bool {
    if let Some(tx) = conn.session.current_tx() {
        build_refuse(inner, conn, &Error::TxAlreadyOpen(tx));
        return false;
    }
    let result: BuildResult = Arc::new(Mutex::new(None));
    let ids: BuildIds = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let ids_slot = Arc::clone(&ids);
    let db = Arc::clone(&inner.db);
    // Wake the owning shard when the result lands, so a blocked
    // reactor notices completion immediately instead of at the next
    // progress-poll deadline.
    let waker = inner.shard_waker(ctx.shard);
    inner.stats.builds_started.bump();
    // Carry the requesting trace onto the build thread: the build's
    // phase transitions, drain passes, and quiesce/flip spans then
    // link into the same trace as the `CREATE INDEX` that caused them.
    let trace_ctx = mohan_obs::current_ctx();
    let spawned = std::thread::Builder::new()
        .name("oib-build".into())
        .spawn(move || {
            let _trace_scope = trace_ctx.map(mohan_obs::install_ctx);
            let r = build_indexes_observed(
                &db,
                table,
                &engine_specs,
                algorithm,
                &options,
                |registered| {
                    *ids_slot.lock() = Some(registered.to_vec());
                },
            );
            *slot.lock() = Some(r);
            if let Some(w) = waker {
                w.wake();
            }
        });
    if spawned.is_err() {
        inner.stats.builds_failed.bump();
        match conn.proto {
            crate::pg::Proto::Native | crate::pg::Proto::Http => send(
                inner,
                conn,
                &protocol_err(ErrorCode::Internal, "could not spawn build thread"),
            ),
            crate::pg::Proto::Pg(_) => {
                let mut out = Vec::new();
                mohan_pgwire::proto::error_response(
                    &mut out,
                    "XX000",
                    "could not spawn build thread",
                );
                send_raw(inner, conn, &out);
            }
        }
        return false;
    }
    // First frame immediately: the client knows the build was admitted
    // before any checkpoint exists to poll.
    inner.stats.progress_frames.bump();
    match conn.proto {
        crate::pg::Proto::Native | crate::pg::Proto::Http => send(
            inner,
            conn,
            &Response::Progress {
                index: 0,
                phase: BuildPhase::Starting,
                detail: 0,
            },
        ),
        crate::pg::Proto::Pg(_) => {
            let mut out = Vec::new();
            mohan_pgwire::proto::notice_response(&mut out, "index build: Starting");
            send_raw(inner, conn, &out);
        }
    }
    conn.build = Some(BuildJob {
        result,
        ids,
        last_sent: Some((0, BuildPhase::Starting, 0)),
        last_poll: Instant::now(),
    });
    true // slot stays held until the build finishes
}

/// Poll a connection's running build: stream progress on change, and
/// finish the exchange when the build thread reports its result. The
/// final frames go out (into the buffer) even against a backlog —
/// they end the exchange and are bounded — but progress frames pause
/// until the socket drains.
pub(crate) fn watch_build(inner: &Arc<Inner>, conn: &mut Conn) -> bool {
    let Some(job) = &mut conn.build else {
        return false;
    };

    let finished = { job.result.lock().take() };
    if let Some(result) = finished {
        if matches!(conn.proto, crate::pg::Proto::Pg(_)) {
            // SQL exchange: NOTICE + CommandComplete (or
            // ErrorResponse), then the ReadyForQuery deferred since
            // the CREATE INDEX statement.
            let mut out = Vec::new();
            match result {
                Ok(ids) => {
                    inner.stats.builds_done.bump();
                    inner.stats.progress_frames.bump();
                    conn.build = None;
                    inner.release();
                    mohan_pgwire::proto::notice_response(
                        &mut out,
                        &format!("index build: Done ({} indexes)", ids.len()),
                    );
                    mohan_pgwire::proto::command_complete(&mut out, "CREATE INDEX");
                }
                Err(e) => {
                    inner.stats.builds_failed.bump();
                    conn.build = None;
                    inner.release();
                    mohan_pgwire::proto::error_response(
                        &mut out,
                        mohan_pgwire::sqlstate_of(&e),
                        &e.to_string(),
                    );
                }
            }
            mohan_pgwire::proto::ready_for_query(&mut out, crate::pg::tx_status(conn));
            send_raw(inner, conn, &out);
            return true;
        }
        let final_resp = match result {
            Ok(ids) => {
                inner.stats.builds_done.bump();
                inner.stats.progress_frames.bump();
                let done = Response::Progress {
                    index: ids.first().map_or(0, |id| id.0),
                    phase: BuildPhase::Done,
                    detail: 0,
                };
                conn.build = None;
                inner.release();
                send(inner, conn, &done);
                Response::IndexCreated {
                    ids: ids.into_iter().map(|id| id.0).collect(),
                }
            }
            Err(e) => {
                inner.stats.builds_failed.bump();
                conn.build = None;
                inner.release();
                Response::from_error(&e)
            }
        };
        send(inner, conn, &final_resp);
        return true;
    }

    if conn.has_backlog() {
        return false;
    }
    let Some(job) = &mut conn.build else {
        return false;
    };
    if job.last_poll.elapsed() < inner.cfg.progress_interval {
        return false;
    }
    job.last_poll = Instant::now();
    // The building indexes' durable checkpoints are the progress
    // source — the same records a post-crash resume would start from.
    // Only the ids this build registered are consulted: another
    // connection may be building on the same table at the same time,
    // and its frames must not leak into this exchange. A finished
    // index clears its progress record, so the first id that still has
    // one is the batch's current position.
    let ids = job.ids.lock().clone();
    let Some(ids) = ids else { return false };
    let mut next: Option<(u32, BuildPhase, u64)> = None;
    for id in ids {
        let Ok(Some(p)) = progress::load(&inner.db, id) else {
            continue;
        };
        let (phase, detail) = phase_of(&p);
        let frame = (id.0, phase, detail);
        if job.last_sent == Some(frame) {
            return false;
        }
        job.last_sent = Some(frame);
        next = Some(frame);
        break;
    }
    let Some((index, phase, detail)) = next else {
        return false;
    };
    inner.stats.progress_frames.bump();
    match conn.proto {
        crate::pg::Proto::Native | crate::pg::Proto::Http => send(
            inner,
            conn,
            &Response::Progress {
                index,
                phase,
                detail,
            },
        ),
        crate::pg::Proto::Pg(_) => {
            // Progress as NOTICE lines: visible in psql mid-build
            // without breaking the simple-query exchange.
            let mut out = Vec::new();
            mohan_pgwire::proto::notice_response(
                &mut out,
                &format!("index build {index}: {phase:?} ({detail})"),
            );
            send_raw(inner, conn, &out);
        }
    }
    true
}

fn phase_of(p: &BuildProgress) -> (BuildPhase, u64) {
    match p {
        BuildProgress::Scanning { sort } => (BuildPhase::Scanning, sort.scan_pos),
        // Parallel scan: report the partitions' combined position.
        BuildProgress::ScanningParallel { parts } => (
            BuildPhase::Scanning,
            parts.iter().map(|p| p.sort.scan_pos).sum(),
        ),
        BuildProgress::Reducing { .. } => (BuildPhase::Reducing, 0),
        BuildProgress::Loading { merge, .. } => (BuildPhase::Loading, merge.emitted),
        BuildProgress::Inserting { inserted, .. } => (BuildPhase::Inserting, *inserted),
        BuildProgress::Draining { pos } => (BuildPhase::Draining, *pos),
    }
}

/// Queue one response on a connection and flush as far as the socket
/// accepts. Never blocks: a `WouldBlock` tail stays in the outbound
/// buffer and resumes on write-readiness (reactor) or next tick
/// (threaded), bounded by the write timeout and the backlog cap.
pub(crate) fn send(inner: &Arc<Inner>, conn: &mut Conn, resp: &Response) {
    if conn.dead {
        return;
    }
    let mut payload = resp.encode();
    if payload.len() > MAX_FRAME {
        // The peer drops the connection on an oversized frame; answer
        // with an in-band error instead. (Unreachable with the current
        // message set — encode-time list clamps keep every response
        // under the cap — but the invariant belongs here, not in each
        // response constructor.)
        payload = protocol_err(ErrorCode::Internal, "response exceeds frame cap").encode();
    }
    debug_assert!({
        // write_frame and this manual framing must agree.
        let mut check = Vec::new();
        write_frame(&mut check, &payload).unwrap();
        let mut framed = Vec::with_capacity(4 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        framed.extend_from_slice(&payload);
        check == framed
    });
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    framed.extend_from_slice(&payload);
    send_raw(inner, conn, &framed);
}

/// Queue pre-encoded outbound bytes — a native frame or a batch of
/// pg backend messages — and flush as far as the socket accepts.
/// Shares the backlog cap and slow-client accounting with [`send`].
pub(crate) fn send_raw(inner: &Arc<Inner>, conn: &mut Conn, bytes: &[u8]) {
    if conn.dead {
        return;
    }
    if conn.out.len() - conn.out_pos + bytes.len() > OUT_BACKLOG_CAP {
        inner.stats.slow_closed.bump();
        conn.dead = true;
        return;
    }
    conn.out.extend_from_slice(bytes);
    try_flush(conn);
}

/// Push buffered outbound bytes until the socket stops accepting.
/// Returns true if any byte moved (or the connection died trying).
pub(crate) fn try_flush(conn: &mut Conn) -> bool {
    if conn.dead || !conn.has_backlog() {
        return false;
    }
    let mut progressed = false;
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return true;
            }
            Ok(n) => {
                conn.out_pos += n;
                progressed = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if conn.blocked_since.is_none() {
                    conn.blocked_since = Some(Instant::now());
                }
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return true;
            }
        }
    }
    if conn.out_pos == conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
        conn.blocked_since = None;
    } else if conn.out_pos >= OUT_COMPACT {
        conn.out.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
    progressed
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One value per `Request` variant — a new variant that misses
    /// this list fails the exhaustiveness check in `opcode_index`.
    fn one_of_each() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Begin,
            Request::Commit,
            Request::Rollback,
            Request::Insert {
                table: 1,
                cols: vec![],
            },
            Request::Update {
                table: 1,
                rid: 0,
                cols: vec![],
            },
            Request::Delete { table: 1, rid: 0 },
            Request::Read { table: 1, rid: 0 },
            Request::Lookup {
                index: 1,
                key: vec![],
            },
            Request::CreateIndex {
                table: 1,
                algo: BuildAlgo::Sf,
                specs: vec![],
            },
            Request::Stats,
            Request::Metrics,
            Request::ObserveStats { interval_ms: 100 },
            Request::SubscribeWal { from_lsn: 1 },
            Request::Hello {
                proto_version: proto_version(),
                role: Role::Client,
            },
            Request::Promote,
            Request::TraceDump {
                trace_id: 0,
                since_seq: 0,
            },
            Request::CreateIndexV2 {
                table: 1,
                algo: BuildAlgo::Sf,
                specs: vec![],
                options: BuildOptionsWire::default(),
            },
        ]
    }

    #[test]
    fn opcode_table_matches_request_names() {
        let all = one_of_each();
        assert_eq!(all.len(), OPCODES.len());
        for req in &all {
            assert_eq!(OPCODES[opcode_index(req)], req.name());
        }
    }
}
