//! Standalone engine server.
//!
//! ```text
//! oib-server [--addr HOST:PORT] [--pg-port PORT|HOST:PORT]
//!            [--http-port PORT|HOST:PORT] [--workers N]
//!            [--max-inflight N] [--seed-rows N]
//!            [--io-backend auto|epoll|poll|threaded]
//! ```
//!
//! Creates a fresh in-memory engine with table 1 (optionally
//! pre-seeded with `--seed-rows` two-column records), arms failpoints
//! from `MOHAN_FAILPOINTS` (`site:count,...`) so CI can exercise crash
//! points without code changes, serves until stdin closes (or the
//! process is killed), then drains gracefully.

use mohan_common::failpoint::FAILPOINTS_ENV;
use mohan_common::EngineConfig;
use mohan_common::TableId;
use mohan_oib::schema::Record;
use mohan_oib::Db;
use mohan_server::{Server, ServerConfig};
use std::io::Read;

fn main() {
    let mut cfg = ServerConfig {
        bind_addr: "127.0.0.1:7878".into(),
        ..ServerConfig::default()
    };
    let mut seed_rows = 0i64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.bind_addr = value("--addr"),
            // Overrides MOHAN_PG_PORT (same precedence rule as
            // --io-backend). A bare port binds 127.0.0.1.
            "--pg-port" => {
                let v = value("--pg-port");
                cfg.pg_bind_addr = Some(if v.contains(':') {
                    v
                } else {
                    format!("127.0.0.1:{v}")
                });
            }
            // Overrides MOHAN_HTTP_PORT; same shape as --pg-port.
            "--http-port" => {
                let v = value("--http-port");
                cfg.http_bind_addr = Some(if v.contains(':') {
                    v
                } else {
                    format!("127.0.0.1:{v}")
                });
            }
            "--workers" => cfg.workers = value("--workers").parse().expect("--workers N"),
            "--max-inflight" => {
                cfg.max_inflight = value("--max-inflight").parse().expect("--max-inflight N");
            }
            "--seed-rows" => seed_rows = value("--seed-rows").parse().expect("--seed-rows N"),
            // Overrides MOHAN_IO_BACKEND (the flag is the more
            // deliberate of the two).
            "--io-backend" => {
                let v = value("--io-backend");
                cfg.io_backend = mohan_common::IoBackendChoice::parse(&v).unwrap_or_else(|| {
                    eprintln!("bad --io-backend {v:?}: want auto|epoll|poll|threaded");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let db = Db::new(EngineConfig::default());
    let table = TableId(1);
    db.create_table(table);
    match db.failpoints.arm_from_env() {
        Ok(0) => {}
        Ok(n) => eprintln!("armed {n} failpoint(s) from {FAILPOINTS_ENV}"),
        Err(e) => {
            eprintln!("bad {FAILPOINTS_ENV}: {e}");
            std::process::exit(2);
        }
    }
    if seed_rows > 0 {
        let tx = db.begin();
        for k in 0..seed_rows {
            db.insert_record(tx, table, &Record(vec![k, k * 3]))
                .expect("seed insert");
        }
        db.commit(tx).expect("seed commit");
        eprintln!("seeded {seed_rows} rows into table 1");
    }

    let server = Server::start(db, cfg).expect("bind");
    println!(
        "listening on {} (io backend: {})",
        server.addr(),
        server.io_backend()
    );
    if let Some(pg) = server.pg_addr() {
        println!(
            "pg protocol on {pg} (try: psql -h {} -p {})",
            pg.ip(),
            pg.port()
        );
    }
    if let Some(http) = server.http_addr() {
        println!("http sidecar on {http} (/metrics /healthz /readyz)");
    }
    println!("serving table 1; close stdin (or send EOF) to drain and exit");

    // Block until the launcher closes our stdin — the portable,
    // dependency-free stand-in for signal handling.
    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin();
    loop {
        match stdin.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }

    eprintln!("draining ...");
    let report = server.drain();
    eprintln!(
        "drained: {} open tx rolled back, {} build(s) abandoned, {} conn(s) served",
        report.rolled_back, report.builds_abandoned, report.conns_closed
    );
}
