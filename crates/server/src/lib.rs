//! Threaded TCP service exposing the engine over the wire protocol.
//!
//! The paper's availability story (§2.2.1 NSF's short descriptor
//! quiesce, §3.2.1 SF's zero quiesce) is a claim about what *clients*
//! experience while `CREATE INDEX` runs. This crate is the serving
//! substrate that makes the claim observable end-to-end: a `std::net`
//! TCP listener (no async runtime — the container has no crates.io
//! access, consistent with the in-tree shim policy) feeding a sharded
//! pool of worker threads, each owning a set of non-blocking
//! connections with a per-connection [`mohan_oib::Session`].
//!
//! Connections are driven by a **readiness reactor** (see the
//! `reactor` module): each shard registers its sockets with an epoll
//! or poll(2) backend — thin in-tree FFI, no crates — and blocks
//! until the kernel reports readiness or a coarse timer-wheel
//! deadline (idle reaping, stream emission, write timeouts) arrives.
//! Idle connections therefore cost zero wakeups. The original
//! sleep-polling worker loop survives config-gated
//! ([`mohan_common::IoBackendChoice::ThreadedSleep`]) as the portable
//! fallback and as the baseline for the `server.wakeups` /
//! `server.idle_scan_skipped` metrics.
//!
//! Service behaviours, all bounded by configuration rather than left
//! to queue without limit:
//!
//! * **admission control** — a global in-flight cap; requests over the
//!   cap get an immediate [`mohan_wire::Response::Busy`] instead of
//!   queueing (closed-loop clients back off; the cap bounds engine
//!   concurrency);
//! * **per-request deadlines** — a request that sat buffered past its
//!   deadline is refused with `DeadlineExceeded` rather than executed
//!   late; post-execution overruns are counted;
//! * **idle / slow-client timeouts** — both directions of a stuck
//!   connection are bounded: reads by the idle timeout, writes by the
//!   write timeout;
//! * **online builds over the wire** — `CreateIndex` runs the build on
//!   its own thread while the worker streams
//!   [`mohan_wire::Response::Progress`] frames from the build's
//!   durable checkpoints, so a client watches the scan/sort/load/drain
//!   phases of §2/§3 live;
//! * **graceful drain** — [`Server::drain`] stops accepting, lets
//!   in-flight work and commits finish (rolling back what does not
//!   finish inside the drain timeout), flushes the WAL, and joins
//!   every thread; committed work survives a crash-and-recover after
//!   the drain by construction.

#![warn(missing_docs)]

mod http;
mod pg;
#[cfg(unix)]
mod reactor;
mod worker;

/// Non-unix stub: only the threaded backend exists, and wakers are
/// no-ops (the sleep loop polls everything anyway).
#[cfg(not(unix))]
mod reactor {
    use mohan_common::IoBackendChoice;
    use std::io;

    pub(crate) mod driver {
        use crate::pg::ConnKind;
        use crate::worker::{self, ShardCtx};
        use crate::Inner;
        use std::net::TcpStream;
        use std::sync::{mpsc, Arc};

        pub(crate) fn run(
            inner: &Arc<Inner>,
            ctx: &ShardCtx,
            rx: &mpsc::Receiver<(TcpStream, ConnKind)>,
            _kind: super::ResolvedBackend,
            _wake: super::WakeRx,
        ) {
            worker::worker_loop(inner, ctx, rx);
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(crate) enum ResolvedBackend {
        ThreadedSleep,
    }

    impl ResolvedBackend {
        pub(crate) fn name(self) -> &'static str {
            "threaded"
        }
    }

    pub(crate) struct Waker;

    impl Waker {
        pub(crate) fn wake(&self) {}
    }

    pub(crate) struct WakeRx;

    pub(crate) fn waker_pair() -> io::Result<(Waker, WakeRx)> {
        Ok((Waker, WakeRx))
    }

    pub(crate) fn resolve(choice: IoBackendChoice) -> io::Result<ResolvedBackend> {
        match choice {
            IoBackendChoice::Auto | IoBackendChoice::ThreadedSleep => {
                Ok(ResolvedBackend::ThreadedSleep)
            }
            IoBackendChoice::Epoll | IoBackendChoice::Poll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "reactor backends require a unix host",
            )),
        }
    }
}

use mohan_common::stats::{Counter, ShardDist};
use mohan_common::IoBackendChoice;
use mohan_obs::Histogram;
use mohan_oib::Db;
use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`"127.0.0.1:0"` picks a free port).
    pub bind_addr: String,
    /// Worker threads; each owns a shard of the connections.
    pub workers: usize,
    /// Maximum simultaneous connections; further accepts are closed
    /// immediately.
    pub max_connections: usize,
    /// Maximum requests executing at once (running builds count);
    /// requests over the cap get `Busy`.
    pub max_inflight: usize,
    /// A request older than this when the worker gets to it is refused
    /// with `DeadlineExceeded`.
    pub request_deadline: Duration,
    /// Connections silent for this long are closed (open transaction
    /// rolled back). Connections with a running build are exempt.
    pub idle_timeout: Duration,
    /// A response write blocked longer than this marks the client slow
    /// and closes the connection.
    pub write_timeout: Duration,
    /// How long a drain waits for open transactions and running builds
    /// before rolling back / abandoning them.
    pub drain_timeout: Duration,
    /// How often a build's checkpoints are polled for progress frames.
    pub progress_interval: Duration,
    /// A request whose execution runs at least this long is recorded
    /// in the engine's trace ring buffer as a `server.slow_request`
    /// span (see `mohan_obs::TraceSink`).
    pub slow_request: Duration,
    /// Staleness bound for reads served while the engine is a
    /// replication follower: a `Read`/`Lookup` is refused with
    /// [`mohan_wire::message::ErrorCode::Stale`] when the follower's
    /// replication lag (in LSNs) exceeds this. The default
    /// (`u64::MAX`) never refuses, which is also the right answer on a
    /// primary where the lag is always 0.
    pub max_lag_lsn: u64,
    /// Where writes should go instead, attached to
    /// [`mohan_wire::message::ErrorCode::NotWritable`] answers on a
    /// follower. Usually the primary's address; empty when unknown.
    pub leader_hint: String,
    /// How a `Promote` request is executed. The server itself cannot
    /// stop the replication subscription (that is the replica layer,
    /// which sits above this crate), so promotion is injected: the
    /// hook runs the whole stop-subscription → restart-undo →
    /// open-for-writes sequence and reports what it did. With no hook
    /// configured, `Promote` answers an `Internal` error.
    pub promote_hook: Option<PromoteHook>,
    /// Optional second listener speaking the Postgres v3 protocol
    /// (simple query). `None` disables it. The default honors the
    /// `MOHAN_PG_PORT` environment variable: a bare port binds
    /// `127.0.0.1:<port>`, a value containing `:` is used as the full
    /// bind address.
    pub pg_bind_addr: Option<String>,
    /// Optional HTTP sidecar listener serving `/metrics` (OpenMetrics
    /// text exposition), `/healthz` (process liveness), and `/readyz`
    /// (role, drain state, replication lag vs [`Self::max_lag_lsn`]).
    /// `None` disables it. The default honors the `MOHAN_HTTP_PORT`
    /// environment variable with the same spelling as
    /// [`Self::pg_bind_addr`]: a bare port binds `127.0.0.1:<port>`,
    /// a value containing `:` is the full bind address.
    pub http_bind_addr: Option<String>,
    /// Head-based trace sampling: keep one trace in `N` (`0`/`1` keep
    /// every trace). Applied process-wide at [`Server::start`] via
    /// [`mohan_obs::set_trace_sampling`]; the keep/drop decision is a
    /// deterministic hash of the trace id, so a primary and its
    /// followers agree on which traces record when their rates agree.
    /// The default honors the `MOHAN_TRACE_SAMPLE` environment
    /// variable.
    pub trace_sample_one_in: u32,
    /// Byte budget for the WAL broadcast ring: each newly flushed
    /// suffix is scanned and encoded **once** into pre-framed chunks
    /// that every `SubscribeWal` connection tails at its own cursor.
    /// When the retained window (bounded by this budget) moves past a
    /// subscriber's cursor, that subscriber is cut loose with
    /// [`mohan_wire::message::ErrorCode::SubscriptionLagged`] and
    /// falls back to the replica layer's reconnect-catch-up path.
    /// Clamped up to one chunk (`mohan_wal::broadcast::CHUNK_MAX_BYTES`).
    pub fanout_ring_bytes: usize,
    /// Which I/O readiness backend drives the connection layer.
    /// `Auto` detects at startup (epoll where available, else
    /// poll(2)); `ThreadedSleep` selects the legacy sleep-polling
    /// loop. The default honors the `MOHAN_IO_BACKEND` environment
    /// variable when set, so whole test suites can be re-run under a
    /// different backend without touching call sites.
    pub io_backend: IoBackendChoice,
}

/// What a successful promotion reports back over the wire.
#[derive(Debug, Clone, Copy)]
pub struct Promotion {
    /// The new primary's log tail after restart undo.
    pub last_lsn: u64,
    /// In-flight transactions rolled back by the restart-undo pass.
    pub losers_undone: u64,
}

/// Callback executing a promotion (see [`ServerConfig::promote_hook`]).
///
/// Runs synchronously on the worker thread servicing the `Promote`
/// request; implementations must not block on multi-second waits (the
/// replica layer's promotion takes an apply gate, never a socket
/// timeout, for exactly this reason).
#[derive(Clone)]
pub struct PromoteHook(Arc<dyn Fn() -> Result<Promotion, String> + Send + Sync>);

impl PromoteHook {
    /// Wrap a promotion closure.
    pub fn new(f: impl Fn() -> Result<Promotion, String> + Send + Sync + 'static) -> PromoteHook {
        PromoteHook(Arc::new(f))
    }

    pub(crate) fn call(&self) -> Result<Promotion, String> {
        (self.0)()
    }
}

impl std::fmt::Debug for PromoteHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PromoteHook(..)")
    }
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            bind_addr: "127.0.0.1:0".into(),
            workers: 4,
            max_connections: 64,
            max_inflight: 8,
            request_deadline: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(2),
            drain_timeout: Duration::from_secs(10),
            progress_interval: Duration::from_millis(25),
            slow_request: Duration::from_millis(100),
            max_lag_lsn: u64::MAX,
            leader_hint: String::new(),
            promote_hook: None,
            pg_bind_addr: bind_addr_from_env(mohan_common::config::PG_PORT_ENV),
            http_bind_addr: bind_addr_from_env(mohan_common::config::HTTP_PORT_ENV),
            trace_sample_one_in: std::env::var(mohan_common::config::TRACE_SAMPLE_ENV)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(1),
            fanout_ring_bytes: 4 << 20,
            io_backend: IoBackendChoice::from_env()
                .unwrap_or_else(|bad| {
                    eprintln!(
                    "warning: {}={bad:?} is not a backend (auto|epoll|poll|threaded); using auto",
                    mohan_common::config::IO_BACKEND_ENV
                );
                    None
                })
                .unwrap_or_default(),
        }
    }
}

/// `env` as a bind address: a bare port means `127.0.0.1:<port>`, a
/// value containing `:` is used verbatim, unset/empty means none.
fn bind_addr_from_env(env: &str) -> Option<String> {
    std::env::var(env).ok().filter(|v| !v.is_empty()).map(|v| {
        if v.contains(':') {
            v
        } else {
            format!("127.0.0.1:{v}")
        }
    })
}

/// Server-side counters, exposed over the wire via `Request::Stats`.
#[derive(Debug)]
pub struct ServerStats {
    /// Connections accepted.
    pub conns_accepted: Counter,
    /// Connections refused at the `max_connections` cap.
    pub conns_rejected: Counter,
    /// Connections closed (any reason).
    pub conns_closed: Counter,
    /// Connections closed by the idle timeout.
    pub idle_closed: Counter,
    /// Connections closed by the write (slow-client) timeout.
    pub slow_closed: Counter,
    /// Requests executed (admitted past admission control).
    pub requests: Counter,
    /// Requests refused with `Busy`.
    pub busy_rejects: Counter,
    /// Requests refused with `DeadlineExceeded` before execution.
    pub deadline_rejects: Counter,
    /// Requests that executed but finished past their deadline.
    pub deadline_overruns: Counter,
    /// Frames that failed to decode.
    pub malformed: Counter,
    /// `CreateIndex` builds started.
    pub builds_started: Counter,
    /// Builds finished successfully.
    pub builds_done: Counter,
    /// Builds that returned an error.
    pub builds_failed: Counter,
    /// Progress frames streamed.
    pub progress_frames: Counter,
    /// Metrics frames streamed to `ObserveStats` subscribers.
    pub observe_frames: Counter,
    /// `SubscribeWal` subscriptions accepted.
    pub wal_subs: Counter,
    /// WAL frames streamed to subscribers (heartbeats included).
    pub wal_frames: Counter,
    /// Log records shipped inside those frames.
    pub wal_records: Counter,
    /// Open transactions rolled back by a drain.
    pub drain_rollbacks: Counter,
    /// Times a worker shard woke up — reactor `wait` returns, or
    /// sleep-loop ticks under the threaded backend. The headline
    /// backend-cost number: an idle reactor shard holds this flat
    /// while the threaded loop burns ~2000/s per shard.
    pub wakeups: Counter,
    /// Idle connections a wakeup did *not* scan (live minus touched,
    /// summed per wait) — the per-tick work the sleep-poll loop would
    /// have done. Always zero under the threaded backend, which scans
    /// everything every tick.
    pub idle_scan_skipped: Counter,
    /// Accept-loop errors (excluding `WouldBlock`), whether transient
    /// or resource exhaustion.
    pub accept_errors: Counter,
    /// Connections handed to a shard's executor thread because a
    /// queued frame could block on engine locks (reactor mode only —
    /// the event loop never sits in a lock wait).
    pub exec_offloads: Counter,
    /// Connection count per worker shard.
    pub conn_shards: ShardDist,
}

impl ServerStats {
    fn new(workers: usize) -> ServerStats {
        ServerStats {
            conns_accepted: Counter::default(),
            conns_rejected: Counter::default(),
            conns_closed: Counter::default(),
            idle_closed: Counter::default(),
            slow_closed: Counter::default(),
            requests: Counter::default(),
            busy_rejects: Counter::default(),
            deadline_rejects: Counter::default(),
            deadline_overruns: Counter::default(),
            malformed: Counter::default(),
            builds_started: Counter::default(),
            builds_done: Counter::default(),
            builds_failed: Counter::default(),
            progress_frames: Counter::default(),
            observe_frames: Counter::default(),
            wal_subs: Counter::default(),
            wal_frames: Counter::default(),
            wal_records: Counter::default(),
            drain_rollbacks: Counter::default(),
            wakeups: Counter::default(),
            idle_scan_skipped: Counter::default(),
            accept_errors: Counter::default(),
            exec_offloads: Counter::default(),
            conn_shards: ShardDist::new(workers.max(1)),
        }
    }

    /// Flat `(name, value)` snapshot for the `Stats` response.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut out = vec![
            ("server.conns_accepted".into(), self.conns_accepted.get()),
            ("server.conns_rejected".into(), self.conns_rejected.get()),
            ("server.conns_closed".into(), self.conns_closed.get()),
            ("server.idle_closed".into(), self.idle_closed.get()),
            ("server.slow_closed".into(), self.slow_closed.get()),
            ("server.requests".into(), self.requests.get()),
            ("server.busy_rejects".into(), self.busy_rejects.get()),
            (
                "server.deadline_rejects".into(),
                self.deadline_rejects.get(),
            ),
            (
                "server.deadline_overruns".into(),
                self.deadline_overruns.get(),
            ),
            ("server.malformed".into(), self.malformed.get()),
            ("server.builds_started".into(), self.builds_started.get()),
            ("server.builds_done".into(), self.builds_done.get()),
            ("server.builds_failed".into(), self.builds_failed.get()),
            ("server.progress_frames".into(), self.progress_frames.get()),
            ("server.observe_frames".into(), self.observe_frames.get()),
            ("server.wal_subs".into(), self.wal_subs.get()),
            ("server.wal_frames".into(), self.wal_frames.get()),
            ("server.wal_records".into(), self.wal_records.get()),
            ("server.drain_rollbacks".into(), self.drain_rollbacks.get()),
            ("server.wakeups".into(), self.wakeups.get()),
            (
                "server.idle_scan_skipped".into(),
                self.idle_scan_skipped.get(),
            ),
            ("server.accept_errors".into(), self.accept_errors.get()),
            ("server.exec_offloads".into(), self.exec_offloads.get()),
        ];
        for (i, n) in self.conn_shards.snapshot().into_iter().enumerate() {
            out.push((format!("server.conn_shard.{i}"), n));
        }
        out
    }
}

const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;

/// State shared by the accept thread, the workers, and the handle.
pub(crate) struct Inner {
    pub(crate) db: Arc<Db>,
    pub(crate) cfg: ServerConfig,
    pub(crate) stats: ServerStats,
    state: AtomicU8,
    drain_started: Mutex<Option<Instant>>,
    pub(crate) inflight: AtomicUsize,
    pub(crate) conn_count: AtomicUsize,
    /// Live HTTP sidecar connections (a subset of `conn_count`). When
    /// every remaining connection is an HTTP probe, a drain has
    /// nothing left to wait for (see `worker::drain_mark`).
    pub(crate) http_conns: AtomicUsize,
    /// Live connections per shard, for least-occupied accept routing.
    /// Incremented at hand-off, decremented when the shard reaps (or
    /// drops) the connection — unlike `stats.conn_shards`, which
    /// counts cumulative assignments.
    pub(crate) shard_conns: Vec<AtomicUsize>,
    /// Shared WAL fan-out ring: every flushed suffix is scanned,
    /// encoded, and trace-tagged once, and each `SubscribeWal`
    /// connection tails the pre-encoded chunks at its own cursor.
    pub(crate) broadcast: Arc<mohan_wal::WalBroadcast>,
    /// Table-name catalog shared by every pg session.
    pub(crate) catalog: Arc<mohan_pgwire::Catalog>,
    /// Per-statement-kind latency histograms
    /// (`server.pg_req_us.<kind>`), mirroring `req_us`.
    pub(crate) pg_req_us: Vec<Arc<Histogram>>,
    /// Per-opcode request-latency histograms (`server.req_us.<op>`),
    /// resolved once at startup so the request hot path records with
    /// plain atomics instead of a registry lookup.
    pub(crate) req_us: Vec<Arc<Histogram>>,
    /// Follower-read counters (`repl.reads_served` /
    /// `repl.reads_rejected_stale`), cached off the registry for the
    /// same reason as `req_us`. Only bumped while the engine is a
    /// replica.
    pub(crate) reads_served: Arc<Counter>,
    pub(crate) reads_stale: Arc<Counter>,
    /// Events delivered per reactor wait (`server.events_per_wait`);
    /// under the threaded backend, connections progressed per tick.
    pub(crate) events_per_wait: Arc<Histogram>,
    /// One waker per shard under a reactor backend (empty under the
    /// threaded backend): cross-thread state changes — a new
    /// connection handed off, a build result deposited, the WAL
    /// flushed past a subscriber, a drain starting — wake the blocked
    /// shard instead of waiting out its timer.
    wakers: Vec<Arc<reactor::Waker>>,
}

impl Inner {
    pub(crate) fn draining(&self) -> bool {
        self.state.load(Ordering::Acquire) == STATE_DRAINING
    }

    /// Time since the drain began (zero if not draining).
    pub(crate) fn drain_elapsed(&self) -> Duration {
        self.drain_started
            .lock()
            .map_or(Duration::ZERO, |t| t.elapsed())
    }

    /// Try to take an in-flight execution slot.
    pub(crate) fn admit(&self) -> bool {
        self.inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.cfg.max_inflight).then_some(n + 1)
            })
            .is_ok()
    }

    /// Release a slot taken by [`Inner::admit`].
    pub(crate) fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }

    /// The waker for `shard`, if the server runs a reactor backend.
    pub(crate) fn shard_waker(&self, shard: usize) -> Option<Arc<reactor::Waker>> {
        self.wakers.get(shard).cloned()
    }

    /// Wake every shard (drain kick-off).
    fn wake_all(&self) {
        for w in &self.wakers {
            w.wake();
        }
    }
}

/// What a [`Server::drain`] accomplished.
#[derive(Debug)]
pub struct DrainReport {
    /// Open transactions the drain had to roll back.
    pub rolled_back: u64,
    /// Builds still running when the drain timeout expired; their
    /// threads keep running detached (the `Db` is refcounted), but no
    /// client is connected to see them finish.
    pub builds_abandoned: u64,
    /// Connections closed over the server's lifetime.
    pub conns_closed: u64,
}

/// A running server: accept thread + worker pool over a shared [`Db`].
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    /// Bound address of the pg listener, when configured.
    pg_addr: Option<SocketAddr>,
    /// Bound address of the HTTP sidecar listener, when configured.
    http_addr: Option<SocketAddr>,
    accept: Option<JoinHandle<()>>,
    pg_accept: Option<JoinHandle<()>>,
    http_accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Wakes a reactor-blocked accept thread at drain time.
    accept_waker: Option<reactor::Waker>,
    /// Same, for the pg listener's accept thread.
    pg_accept_waker: Option<reactor::Waker>,
    /// Same, for the HTTP sidecar's accept thread.
    http_accept_waker: Option<reactor::Waker>,
    /// WAL flush-waker registrations to undo after the workers join.
    flush_hooks: Vec<u64>,
    /// What the configured `io_backend` resolved to on this host.
    backend: reactor::ResolvedBackend,
}

impl Server {
    /// Bind and start serving `db` per `cfg`. Fails if `cfg.io_backend`
    /// names a backend this host cannot run (e.g. epoll elsewhere than
    /// Linux); `Auto` always succeeds.
    pub fn start(db: Arc<Db>, cfg: ServerConfig) -> io::Result<Server> {
        let backend = reactor::resolve(cfg.io_backend)?;
        let reactor_mode = !matches!(backend, reactor::ResolvedBackend::ThreadedSleep);
        // Process-wide by design: the sampling decision must be a pure
        // function of the trace id so every layer (and every follower
        // configured with the same rate) agrees which traces record.
        mohan_obs::set_trace_sampling(cfg.trace_sample_one_in);
        let listener = TcpListener::bind(&cfg.bind_addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let pg_listener = match &cfg.pg_bind_addr {
            Some(bind) => {
                let l = TcpListener::bind(bind)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let pg_addr = pg_listener
            .as_ref()
            .map(TcpListener::local_addr)
            .transpose()?;
        let http_listener = match &cfg.http_bind_addr {
            Some(bind) => {
                let l = TcpListener::bind(bind)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let http_addr = http_listener
            .as_ref()
            .map(TcpListener::local_addr)
            .transpose()?;
        let workers = cfg.workers.max(1);
        let req_us = worker::OPCODES
            .iter()
            .map(|op| db.obs.histogram(&format!("server.req_us.{op}")))
            .collect();
        let pg_req_us = pg::PG_OPS
            .iter()
            .map(|op| db.obs.histogram(&format!("server.pg_req_us.{op}")))
            .collect();
        let catalog = Arc::new(mohan_pgwire::Catalog::new(&db));
        let reads_served = db.obs.counter("repl.reads_served");
        let reads_stale = db.obs.counter("repl.reads_rejected_stale");
        let events_per_wait = db.obs.histogram("server.events_per_wait");
        db.obs.trace().event("server.io_backend", backend.name(), 0);

        // The broadcast ring starts at the durable tail: records below
        // it are served to late subscribers by bounded catch-up scans.
        let broadcast = Arc::new(mohan_wal::WalBroadcast::new(
            db.wal.flushed_lsn().0 + 1,
            cfg.fanout_ring_bytes,
        ));
        // Fan-out gauges, weak so a drained server's ring can drop.
        {
            let gauge = |name: &str, f: fn(&mohan_wal::WalBroadcast) -> u64| {
                let w = Arc::downgrade(&broadcast);
                db.obs
                    .gauge_fn(name, move || w.upgrade().map_or(0, |b| f(&b)));
            };
            gauge("repl.fanout.subscribers", |b| b.subscribers());
            gauge("repl.fanout.ring_chunks", |b| b.ring_chunks());
            gauge("repl.fanout.ring_bytes", |b| b.ring_bytes());
            gauge("repl.fanout.scans", |b| b.scans());
            gauge("repl.fanout.encodes", |b| b.encodes());
            gauge("repl.fanout.evicted", |b| b.chunks_evicted());
            gauge("repl.fanout.cut_loose", |b| b.cut_loose());
        }

        // Wake pipes exist only under a reactor backend; the sleep
        // loop polls everything anyway, and an undrained pipe would
        // just fill up.
        let mut wakers = Vec::new();
        let mut wake_rxs = Vec::new();
        if reactor_mode {
            for _ in 0..workers {
                let (w, rx) = reactor::waker_pair()?;
                wakers.push(Arc::new(w));
                wake_rxs.push(rx);
            }
        }

        let inner = Arc::new(Inner {
            db,
            stats: ServerStats::new(workers),
            cfg,
            state: AtomicU8::new(STATE_RUNNING),
            drain_started: Mutex::new(None),
            inflight: AtomicUsize::new(0),
            conn_count: AtomicUsize::new(0),
            http_conns: AtomicUsize::new(0),
            shard_conns: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
            broadcast,
            catalog,
            pg_req_us,
            req_us,
            reads_served,
            reads_stale,
            events_per_wait,
            wakers,
        });

        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        let mut flush_hooks = Vec::new();
        for shard in 0..workers {
            let (tx, rx) = mpsc::channel::<(TcpStream, pg::ConnKind)>();
            senders.push(tx);
            let wal_subs = Arc::new(AtomicUsize::new(0));
            if let Some(waker) = inner.shard_waker(shard) {
                // Event-driven WAL shipping: when the durable prefix
                // advances, wake exactly the shards that have live
                // subscribers (the AtomicUsize gate keeps everyone
                // else asleep).
                let gate = Arc::clone(&wal_subs);
                flush_hooks.push(inner.db.wal.register_flush_waker(Box::new(move || {
                    if gate.load(Ordering::Acquire) > 0 {
                        waker.wake();
                    }
                })));
            }
            let ctx = worker::ShardCtx { shard, wal_subs };
            let inner2 = Arc::clone(&inner);
            let wake_rx = if reactor_mode {
                Some(wake_rxs.remove(0))
            } else {
                None
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("oib-worker-{shard}"))
                    .spawn(move || match wake_rx {
                        Some(wrx) => reactor::driver::run(&inner2, &ctx, &rx, backend, wrx),
                        None => worker::worker_loop(&inner2, &ctx, &rx),
                    })
                    .expect("spawn worker"),
            );
        }

        let (pg_accept_waker, pg_accept) = match pg_listener {
            Some(l) => {
                let (w, h) = spawn_accept(
                    &inner,
                    l,
                    senders.clone(),
                    pg::ConnKind::Pg,
                    backend,
                    reactor_mode,
                    "oib-pg-accept",
                )?;
                (w, Some(h))
            }
            None => (None, None),
        };
        let (http_accept_waker, http_accept) = match http_listener {
            Some(l) => {
                let (w, h) = spawn_accept(
                    &inner,
                    l,
                    senders.clone(),
                    pg::ConnKind::Http,
                    backend,
                    reactor_mode,
                    "oib-http-accept",
                )?;
                (w, Some(h))
            }
            None => (None, None),
        };
        let (accept_waker, accept) = spawn_accept(
            &inner,
            listener,
            senders,
            pg::ConnKind::Native,
            backend,
            reactor_mode,
            "oib-accept",
        )?;

        Ok(Server {
            inner,
            addr,
            pg_addr,
            http_addr,
            accept: Some(accept),
            pg_accept,
            http_accept,
            workers: handles,
            accept_waker,
            pg_accept_waker,
            http_accept_waker,
            flush_hooks,
            backend,
        })
    }

    /// The backend name the configured choice resolved to
    /// (`"epoll"`, `"poll"`, or `"threaded"`).
    #[must_use]
    pub fn io_backend(&self) -> &'static str {
        self.backend.name()
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The pg listener's bound address, when one is configured.
    #[must_use]
    pub fn pg_addr(&self) -> Option<SocketAddr> {
        self.pg_addr
    }

    /// The HTTP sidecar listener's bound address, when one is
    /// configured.
    #[must_use]
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// The server's counters.
    #[must_use]
    pub fn stats(&self) -> &ServerStats {
        &self.inner.stats
    }

    /// Connections currently open.
    #[must_use]
    pub fn connections(&self) -> usize {
        self.inner.conn_count.load(Ordering::Acquire)
    }

    /// Graceful shutdown: stop accepting, let buffered requests and
    /// commits finish (other statements are refused with `Draining`),
    /// wait up to the drain timeout for open transactions and running
    /// builds, roll back what remains, flush the WAL, and join every
    /// thread.
    pub fn drain(mut self) -> DrainReport {
        let drain_started = Instant::now();
        *self.inner.drain_started.lock() = Some(drain_started);
        self.inner.state.store(STATE_DRAINING, Ordering::Release);
        // Reactor threads may be blocked in wait() with no deadline;
        // kick them so they observe the drain immediately.
        if let Some(w) = &self.accept_waker {
            w.wake();
        }
        if let Some(w) = &self.pg_accept_waker {
            w.wake();
        }
        if let Some(w) = &self.http_accept_waker {
            w.wake();
        }
        self.inner.wake_all();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.pg_accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.http_accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        for id in self.flush_hooks.drain(..) {
            self.inner.db.wal.unregister_flush_waker(id);
        }
        let drained_in = drain_started.elapsed();
        self.inner
            .db
            .obs
            .histogram("server.drain_us")
            .record_micros(drained_in);
        self.inner.db.obs.trace().span_event(
            "server.drain",
            "drain",
            drained_in.as_micros().min(u128::from(u64::MAX)) as u64,
            self.inner.stats.drain_rollbacks.get(),
        );
        // Every committed transaction's log is already flushed at
        // commit; this force-flush covers stray tail records so a
        // post-drain copy of the log is complete.
        self.inner.db.wal.flush_all();
        let abandoned = self
            .inner
            .stats
            .builds_started
            .get()
            .saturating_sub(self.inner.stats.builds_done.get())
            .saturating_sub(self.inner.stats.builds_failed.get());
        DrainReport {
            rolled_back: self.inner.stats.drain_rollbacks.get(),
            builds_abandoned: abandoned,
            conns_closed: self.inner.stats.conns_closed.get(),
        }
    }
}

/// Accept-error classes. Most errors the accept syscall reports are
/// about the *one* connection being accepted (the peer reset during
/// the handshake, a protocol error on that socket) — backing off
/// would penalize every other client in the backlog for one bad peer.
/// Only resource exhaustion (out of fds/memory) is about *us*, and
/// retrying it hot would spin: those back off.
enum AcceptError {
    /// EMFILE / ENFILE / ENOMEM / ENOBUFS: accepting again immediately
    /// will fail again until resources free up.
    Exhausted,
    /// Everything else: specific to the connection just attempted;
    /// keep accepting at full speed.
    Transient,
}

fn classify_accept_error(e: &io::Error) -> AcceptError {
    // EMFILE=24, ENFILE=23, ENOMEM=12, ENOBUFS=105 on Linux; matching
    // by kind where std has one keeps this portable.
    match e.raw_os_error() {
        Some(12 | 23 | 24 | 105) => AcceptError::Exhausted,
        _ => AcceptError::Transient,
    }
}

/// Spawn one accept thread for `listener`, tagging every accepted
/// connection with `kind` so the shard knows which protocol to speak.
fn spawn_accept(
    inner: &Arc<Inner>,
    listener: TcpListener,
    senders: Vec<mpsc::Sender<(TcpStream, pg::ConnKind)>>,
    kind: pg::ConnKind,
    backend: reactor::ResolvedBackend,
    reactor_mode: bool,
    name: &str,
) -> io::Result<(Option<reactor::Waker>, JoinHandle<()>)> {
    if reactor_mode {
        let (w, rx) = reactor::waker_pair()?;
        let inner2 = Arc::clone(inner);
        let h = std::thread::Builder::new()
            .name(name.into())
            .spawn(move || accept_loop(&inner2, &listener, &senders, kind, backend, Some(rx)))
            .expect("spawn acceptor");
        Ok((Some(w), h))
    } else {
        let inner2 = Arc::clone(inner);
        let h = std::thread::Builder::new()
            .name(name.into())
            .spawn(move || accept_loop(&inner2, &listener, &senders, kind, backend, None))
            .expect("spawn acceptor");
        Ok((None, h))
    }
}

/// Pick the shard with the fewest live connections, starting the scan
/// at a rotating offset so ties spread round-robin. Both listeners
/// route through here, so a shard loaded with long-lived pg sessions
/// receives fewer native connections and vice versa.
fn pick_shard(inner: &Arc<Inner>, next: &mut usize) -> usize {
    let n = inner.shard_conns.len();
    let start = *next % n;
    *next = next.wrapping_add(1);
    let mut best = start;
    let mut best_count = inner.shard_conns[start].load(Ordering::Acquire);
    for off in 1..n {
        let i = (start + off) % n;
        let count = inner.shard_conns[i].load(Ordering::Acquire);
        if count < best_count {
            best = i;
            best_count = count;
        }
    }
    best
}

/// Accept until `WouldBlock` (socket drained) or drain. Classifies
/// errors per [`AcceptError`]: exhaustion backs off with a doubling
/// sleep, transient errors keep the loop accepting. Each error burst
/// is traced once (first error after a successful accept), not per
/// error — an fd-exhaustion storm must not flood the trace ring.
fn accept_burst(
    inner: &Arc<Inner>,
    listener: &TcpListener,
    senders: &[mpsc::Sender<(TcpStream, pg::ConnKind)>],
    kind: pg::ConnKind,
    next: &mut usize,
    burst_logged: &mut bool,
) {
    let mut backoff = Duration::from_millis(1);
    loop {
        if inner.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                *burst_logged = false;
                backoff = Duration::from_millis(1);
                if inner.conn_count.load(Ordering::Acquire) >= inner.cfg.max_connections {
                    inner.stats.conns_rejected.bump();
                    drop(stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                inner.conn_count.fetch_add(1, Ordering::AcqRel);
                if matches!(kind, pg::ConnKind::Http) {
                    inner.http_conns.fetch_add(1, Ordering::AcqRel);
                }
                inner.stats.conns_accepted.bump();
                let shard = pick_shard(inner, next);
                inner.stats.conn_shards.bump(shard);
                inner.shard_conns[shard].fetch_add(1, Ordering::AcqRel);
                // A worker only disappears at drain time; if the send
                // races that, the stream just drops (client sees EOF).
                if senders[shard].send((stream, kind)).is_err() {
                    inner.conn_count.fetch_sub(1, Ordering::AcqRel);
                    if matches!(kind, pg::ConnKind::Http) {
                        inner.http_conns.fetch_sub(1, Ordering::AcqRel);
                    }
                    inner.shard_conns[shard].fetch_sub(1, Ordering::AcqRel);
                } else if let Some(w) = inner.shard_waker(shard) {
                    w.wake();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                inner.stats.accept_errors.bump();
                match classify_accept_error(&e) {
                    AcceptError::Exhausted => {
                        if !*burst_logged {
                            *burst_logged = true;
                            inner.db.obs.trace().event(
                                "server.accept_exhausted",
                                e.to_string(),
                                backoff.as_micros().min(u128::from(u64::MAX)) as u64,
                            );
                        }
                        // Out of fds/memory: hammering accept cannot
                        // help, and closing an idle connection or a
                        // finishing request is what frees resources.
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(Duration::from_millis(100));
                    }
                    AcceptError::Transient => {
                        if !*burst_logged {
                            *burst_logged = true;
                            inner
                                .db
                                .obs
                                .trace()
                                .event("server.accept_error", e.to_string(), 0);
                        }
                        // The failed handshake already consumed the
                        // backlog entry; keep accepting.
                    }
                }
            }
        }
    }
}

fn accept_loop(
    inner: &Arc<Inner>,
    listener: &TcpListener,
    senders: &[mpsc::Sender<(TcpStream, pg::ConnKind)>],
    kind: pg::ConnKind,
    backend: reactor::ResolvedBackend,
    wake_rx: Option<reactor::WakeRx>,
) {
    #[cfg(unix)]
    if let Some(rx) = wake_rx {
        if accept_reactor_loop(inner, listener, senders, kind, backend, &rx).is_ok() {
            return;
        }
        // Backend construction failed; fall through to sleep-polling.
    }
    #[cfg(not(unix))]
    let _ = wake_rx;
    let _ = backend;

    let mut next = 0usize;
    let mut burst_logged = false;
    while !inner.draining() {
        accept_burst(inner, listener, senders, kind, &mut next, &mut burst_logged);
        std::thread::sleep(Duration::from_micros(500));
    }
}

/// Reactor-driven accept: block until the listener is readable or the
/// drain waker fires — no polling sleep at all.
#[cfg(unix)]
fn accept_reactor_loop(
    inner: &Arc<Inner>,
    listener: &TcpListener,
    senders: &[mpsc::Sender<(TcpStream, pg::ConnKind)>],
    kind: pg::ConnKind,
    backend: reactor::ResolvedBackend,
    wake_rx: &reactor::WakeRx,
) -> io::Result<()> {
    use std::os::fd::AsRawFd;
    let mut b = reactor::new_backend(backend)?;
    b.register(listener.as_raw_fd(), 0, reactor::Interest::READ)?;
    b.register(
        reactor::raw_fd(wake_rx),
        reactor::WAKE_TOKEN,
        reactor::Interest::READ,
    )?;
    let mut events = Vec::new();
    let mut next = 0usize;
    let mut burst_logged = false;
    while !inner.draining() {
        if let Err(e) = b.wait(&mut events, None) {
            inner
                .db
                .obs
                .trace()
                .event("server.accept_wait_error", e.to_string(), 0);
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        for ev in &events {
            if ev.token == reactor::WAKE_TOKEN {
                reactor::drain_wake(wake_rx);
            }
        }
        accept_burst(inner, listener, senders, kind, &mut next, &mut burst_logged);
    }
    Ok(())
}
