//! Threaded TCP service exposing the engine over the wire protocol.
//!
//! The paper's availability story (§2.2.1 NSF's short descriptor
//! quiesce, §3.2.1 SF's zero quiesce) is a claim about what *clients*
//! experience while `CREATE INDEX` runs. This crate is the serving
//! substrate that makes the claim observable end-to-end: a `std::net`
//! TCP listener (no async runtime — the container has no crates.io
//! access, consistent with the in-tree shim policy) feeding a sharded
//! pool of worker threads, each owning a set of non-blocking
//! connections with a per-connection [`mohan_oib::Session`].
//!
//! Service behaviours, all bounded by configuration rather than left
//! to queue without limit:
//!
//! * **admission control** — a global in-flight cap; requests over the
//!   cap get an immediate [`mohan_wire::Response::Busy`] instead of
//!   queueing (closed-loop clients back off; the cap bounds engine
//!   concurrency);
//! * **per-request deadlines** — a request that sat buffered past its
//!   deadline is refused with `DeadlineExceeded` rather than executed
//!   late; post-execution overruns are counted;
//! * **idle / slow-client timeouts** — both directions of a stuck
//!   connection are bounded: reads by the idle timeout, writes by the
//!   write timeout;
//! * **online builds over the wire** — `CreateIndex` runs the build on
//!   its own thread while the worker streams
//!   [`mohan_wire::Response::Progress`] frames from the build's
//!   durable checkpoints, so a client watches the scan/sort/load/drain
//!   phases of §2/§3 live;
//! * **graceful drain** — [`Server::drain`] stops accepting, lets
//!   in-flight work and commits finish (rolling back what does not
//!   finish inside the drain timeout), flushes the WAL, and joins
//!   every thread; committed work survives a crash-and-recover after
//!   the drain by construction.

#![warn(missing_docs)]

mod worker;

use mohan_common::stats::{Counter, ShardDist};
use mohan_obs::Histogram;
use mohan_oib::Db;
use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`"127.0.0.1:0"` picks a free port).
    pub bind_addr: String,
    /// Worker threads; each owns a shard of the connections.
    pub workers: usize,
    /// Maximum simultaneous connections; further accepts are closed
    /// immediately.
    pub max_connections: usize,
    /// Maximum requests executing at once (running builds count);
    /// requests over the cap get `Busy`.
    pub max_inflight: usize,
    /// A request older than this when the worker gets to it is refused
    /// with `DeadlineExceeded`.
    pub request_deadline: Duration,
    /// Connections silent for this long are closed (open transaction
    /// rolled back). Connections with a running build are exempt.
    pub idle_timeout: Duration,
    /// A response write blocked longer than this marks the client slow
    /// and closes the connection.
    pub write_timeout: Duration,
    /// How long a drain waits for open transactions and running builds
    /// before rolling back / abandoning them.
    pub drain_timeout: Duration,
    /// How often a build's checkpoints are polled for progress frames.
    pub progress_interval: Duration,
    /// A request whose execution runs at least this long is recorded
    /// in the engine's trace ring buffer as a `server.slow_request`
    /// span (see `mohan_obs::TraceSink`).
    pub slow_request: Duration,
    /// Staleness bound for reads served while the engine is a
    /// replication follower: a `Read`/`Lookup` is refused with
    /// [`mohan_wire::message::ErrorCode::Stale`] when the follower's
    /// replication lag (in LSNs) exceeds this. The default
    /// (`u64::MAX`) never refuses, which is also the right answer on a
    /// primary where the lag is always 0.
    pub max_lag_lsn: u64,
    /// Where writes should go instead, attached to
    /// [`mohan_wire::message::ErrorCode::NotWritable`] answers on a
    /// follower. Usually the primary's address; empty when unknown.
    pub leader_hint: String,
    /// How a `Promote` request is executed. The server itself cannot
    /// stop the replication subscription (that is the replica layer,
    /// which sits above this crate), so promotion is injected: the
    /// hook runs the whole stop-subscription → restart-undo →
    /// open-for-writes sequence and reports what it did. With no hook
    /// configured, `Promote` answers an `Internal` error.
    pub promote_hook: Option<PromoteHook>,
}

/// What a successful promotion reports back over the wire.
#[derive(Debug, Clone, Copy)]
pub struct Promotion {
    /// The new primary's log tail after restart undo.
    pub last_lsn: u64,
    /// In-flight transactions rolled back by the restart-undo pass.
    pub losers_undone: u64,
}

/// Callback executing a promotion (see [`ServerConfig::promote_hook`]).
///
/// Runs synchronously on the worker thread servicing the `Promote`
/// request; implementations must not block on multi-second waits (the
/// replica layer's promotion takes an apply gate, never a socket
/// timeout, for exactly this reason).
#[derive(Clone)]
pub struct PromoteHook(Arc<dyn Fn() -> Result<Promotion, String> + Send + Sync>);

impl PromoteHook {
    /// Wrap a promotion closure.
    pub fn new(f: impl Fn() -> Result<Promotion, String> + Send + Sync + 'static) -> PromoteHook {
        PromoteHook(Arc::new(f))
    }

    pub(crate) fn call(&self) -> Result<Promotion, String> {
        (self.0)()
    }
}

impl std::fmt::Debug for PromoteHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PromoteHook(..)")
    }
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            bind_addr: "127.0.0.1:0".into(),
            workers: 4,
            max_connections: 64,
            max_inflight: 8,
            request_deadline: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(2),
            drain_timeout: Duration::from_secs(10),
            progress_interval: Duration::from_millis(25),
            slow_request: Duration::from_millis(100),
            max_lag_lsn: u64::MAX,
            leader_hint: String::new(),
            promote_hook: None,
        }
    }
}

/// Server-side counters, exposed over the wire via `Request::Stats`.
#[derive(Debug)]
pub struct ServerStats {
    /// Connections accepted.
    pub conns_accepted: Counter,
    /// Connections refused at the `max_connections` cap.
    pub conns_rejected: Counter,
    /// Connections closed (any reason).
    pub conns_closed: Counter,
    /// Connections closed by the idle timeout.
    pub idle_closed: Counter,
    /// Connections closed by the write (slow-client) timeout.
    pub slow_closed: Counter,
    /// Requests executed (admitted past admission control).
    pub requests: Counter,
    /// Requests refused with `Busy`.
    pub busy_rejects: Counter,
    /// Requests refused with `DeadlineExceeded` before execution.
    pub deadline_rejects: Counter,
    /// Requests that executed but finished past their deadline.
    pub deadline_overruns: Counter,
    /// Frames that failed to decode.
    pub malformed: Counter,
    /// `CreateIndex` builds started.
    pub builds_started: Counter,
    /// Builds finished successfully.
    pub builds_done: Counter,
    /// Builds that returned an error.
    pub builds_failed: Counter,
    /// Progress frames streamed.
    pub progress_frames: Counter,
    /// Metrics frames streamed to `ObserveStats` subscribers.
    pub observe_frames: Counter,
    /// `SubscribeWal` subscriptions accepted.
    pub wal_subs: Counter,
    /// WAL frames streamed to subscribers (heartbeats included).
    pub wal_frames: Counter,
    /// Log records shipped inside those frames.
    pub wal_records: Counter,
    /// Open transactions rolled back by a drain.
    pub drain_rollbacks: Counter,
    /// Connection count per worker shard.
    pub conn_shards: ShardDist,
}

impl ServerStats {
    fn new(workers: usize) -> ServerStats {
        ServerStats {
            conns_accepted: Counter::default(),
            conns_rejected: Counter::default(),
            conns_closed: Counter::default(),
            idle_closed: Counter::default(),
            slow_closed: Counter::default(),
            requests: Counter::default(),
            busy_rejects: Counter::default(),
            deadline_rejects: Counter::default(),
            deadline_overruns: Counter::default(),
            malformed: Counter::default(),
            builds_started: Counter::default(),
            builds_done: Counter::default(),
            builds_failed: Counter::default(),
            progress_frames: Counter::default(),
            observe_frames: Counter::default(),
            wal_subs: Counter::default(),
            wal_frames: Counter::default(),
            wal_records: Counter::default(),
            drain_rollbacks: Counter::default(),
            conn_shards: ShardDist::new(workers.max(1)),
        }
    }

    /// Flat `(name, value)` snapshot for the `Stats` response.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut out = vec![
            ("server.conns_accepted".into(), self.conns_accepted.get()),
            ("server.conns_rejected".into(), self.conns_rejected.get()),
            ("server.conns_closed".into(), self.conns_closed.get()),
            ("server.idle_closed".into(), self.idle_closed.get()),
            ("server.slow_closed".into(), self.slow_closed.get()),
            ("server.requests".into(), self.requests.get()),
            ("server.busy_rejects".into(), self.busy_rejects.get()),
            (
                "server.deadline_rejects".into(),
                self.deadline_rejects.get(),
            ),
            (
                "server.deadline_overruns".into(),
                self.deadline_overruns.get(),
            ),
            ("server.malformed".into(), self.malformed.get()),
            ("server.builds_started".into(), self.builds_started.get()),
            ("server.builds_done".into(), self.builds_done.get()),
            ("server.builds_failed".into(), self.builds_failed.get()),
            ("server.progress_frames".into(), self.progress_frames.get()),
            ("server.observe_frames".into(), self.observe_frames.get()),
            ("server.wal_subs".into(), self.wal_subs.get()),
            ("server.wal_frames".into(), self.wal_frames.get()),
            ("server.wal_records".into(), self.wal_records.get()),
            ("server.drain_rollbacks".into(), self.drain_rollbacks.get()),
        ];
        for (i, n) in self.conn_shards.snapshot().into_iter().enumerate() {
            out.push((format!("server.conn_shard.{i}"), n));
        }
        out
    }
}

const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;

/// State shared by the accept thread, the workers, and the handle.
pub(crate) struct Inner {
    pub(crate) db: Arc<Db>,
    pub(crate) cfg: ServerConfig,
    pub(crate) stats: ServerStats,
    state: AtomicU8,
    drain_started: Mutex<Option<Instant>>,
    pub(crate) inflight: AtomicUsize,
    pub(crate) conn_count: AtomicUsize,
    /// Per-opcode request-latency histograms (`server.req_us.<op>`),
    /// resolved once at startup so the request hot path records with
    /// plain atomics instead of a registry lookup.
    pub(crate) req_us: Vec<Arc<Histogram>>,
    /// Follower-read counters (`repl.reads_served` /
    /// `repl.reads_rejected_stale`), cached off the registry for the
    /// same reason as `req_us`. Only bumped while the engine is a
    /// replica.
    pub(crate) reads_served: Arc<Counter>,
    pub(crate) reads_stale: Arc<Counter>,
}

impl Inner {
    pub(crate) fn draining(&self) -> bool {
        self.state.load(Ordering::Acquire) == STATE_DRAINING
    }

    /// Time since the drain began (zero if not draining).
    pub(crate) fn drain_elapsed(&self) -> Duration {
        self.drain_started
            .lock()
            .map_or(Duration::ZERO, |t| t.elapsed())
    }

    /// Try to take an in-flight execution slot.
    pub(crate) fn admit(&self) -> bool {
        self.inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.cfg.max_inflight).then_some(n + 1)
            })
            .is_ok()
    }

    /// Release a slot taken by [`Inner::admit`].
    pub(crate) fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// What a [`Server::drain`] accomplished.
#[derive(Debug)]
pub struct DrainReport {
    /// Open transactions the drain had to roll back.
    pub rolled_back: u64,
    /// Builds still running when the drain timeout expired; their
    /// threads keep running detached (the `Db` is refcounted), but no
    /// client is connected to see them finish.
    pub builds_abandoned: u64,
    /// Connections closed over the server's lifetime.
    pub conns_closed: u64,
}

/// A running server: accept thread + worker pool over a shared [`Db`].
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `db` per `cfg`.
    pub fn start(db: Arc<Db>, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.bind_addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let req_us = worker::OPCODES
            .iter()
            .map(|op| db.obs.histogram(&format!("server.req_us.{op}")))
            .collect();
        let reads_served = db.obs.counter("repl.reads_served");
        let reads_stale = db.obs.counter("repl.reads_rejected_stale");
        let inner = Arc::new(Inner {
            db,
            stats: ServerStats::new(workers),
            cfg,
            state: AtomicU8::new(STATE_RUNNING),
            drain_started: Mutex::new(None),
            inflight: AtomicUsize::new(0),
            conn_count: AtomicUsize::new(0),
            req_us,
            reads_served,
            reads_stale,
        });

        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for shard in 0..workers {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            senders.push(tx);
            let inner2 = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("oib-worker-{shard}"))
                    .spawn(move || worker::worker_loop(&inner2, shard, &rx))
                    .expect("spawn worker"),
            );
        }

        let inner2 = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("oib-accept".into())
            .spawn(move || accept_loop(&inner2, &listener, &senders))
            .expect("spawn acceptor");

        Ok(Server {
            inner,
            addr,
            accept: Some(accept),
            workers: handles,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's counters.
    #[must_use]
    pub fn stats(&self) -> &ServerStats {
        &self.inner.stats
    }

    /// Connections currently open.
    #[must_use]
    pub fn connections(&self) -> usize {
        self.inner.conn_count.load(Ordering::Acquire)
    }

    /// Graceful shutdown: stop accepting, let buffered requests and
    /// commits finish (other statements are refused with `Draining`),
    /// wait up to the drain timeout for open transactions and running
    /// builds, roll back what remains, flush the WAL, and join every
    /// thread.
    pub fn drain(mut self) -> DrainReport {
        let drain_started = Instant::now();
        *self.inner.drain_started.lock() = Some(drain_started);
        self.inner.state.store(STATE_DRAINING, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let drained_in = drain_started.elapsed();
        self.inner
            .db
            .obs
            .histogram("server.drain_us")
            .record_micros(drained_in);
        self.inner.db.obs.trace().span_event(
            "server.drain",
            "drain",
            drained_in.as_micros().min(u128::from(u64::MAX)) as u64,
            self.inner.stats.drain_rollbacks.get(),
        );
        // Every committed transaction's log is already flushed at
        // commit; this force-flush covers stray tail records so a
        // post-drain copy of the log is complete.
        self.inner.db.wal.flush_all();
        let abandoned = self
            .inner
            .stats
            .builds_started
            .get()
            .saturating_sub(self.inner.stats.builds_done.get())
            .saturating_sub(self.inner.stats.builds_failed.get());
        DrainReport {
            rolled_back: self.inner.stats.drain_rollbacks.get(),
            builds_abandoned: abandoned,
            conns_closed: self.inner.stats.conns_closed.get(),
        }
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener, senders: &[mpsc::Sender<TcpStream>]) {
    let mut next = 0usize;
    while !inner.draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if inner.conn_count.load(Ordering::Acquire) >= inner.cfg.max_connections {
                    inner.stats.conns_rejected.bump();
                    drop(stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                inner.conn_count.fetch_add(1, Ordering::AcqRel);
                inner.stats.conns_accepted.bump();
                inner.stats.conn_shards.bump(next % senders.len());
                // A worker only disappears at drain time; if the send
                // races that, the stream just drops (client sees EOF).
                if senders[next % senders.len()].send(stream).is_err() {
                    inner.conn_count.fetch_sub(1, Ordering::AcqRel);
                }
                next = next.wrapping_add(1);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}
