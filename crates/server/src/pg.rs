//! Postgres-protocol connection service: the second front door.
//!
//! Connections accepted on the pg listener run the same shard loops,
//! admission control, deadlines, idle reaping, and drain as native
//! connections — only the framing and dispatch differ. The protocol
//! work (startup packets, typed messages, SQL parsing, statement
//! execution) lives in `mohan_pgwire`; this module is the glue that
//! feeds it from a [`Conn`]'s buffers and maps server-side refusals
//! (busy, deadline, draining) to `ErrorResponse` SQLSTATEs.
//!
//! The paper's availability claim extends here unchanged: a
//! `CREATE INDEX` arriving over SQL runs the same online build as the
//! native `CreateIndex` opcode — the client watches `NOTICE` progress
//! lines instead of `Progress` frames, and its concurrent DML on
//! *other* connections keeps flowing throughout.

use crate::worker::{self, Conn, ShardCtx};
use crate::Inner;
use mohan_pgwire::exec::execute_statement;
use mohan_pgwire::proto::{self, FrameError, Startup};
use mohan_pgwire::{sql, ExecEnv, Statement, StmtOutcome};
use std::sync::Arc;
use std::time::Instant;

/// Which wire protocol a connection speaks, decided by the listener
/// that accepted it and carried through the shard hand-off channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnKind {
    /// The native length-prefixed binary protocol.
    Native,
    /// Postgres protocol v3 (simple query).
    Pg,
    /// HTTP/1.1 sidecar (`/metrics`, `/healthz`, `/readyz`).
    Http,
}

/// Per-connection protocol state.
pub(crate) enum Proto {
    /// Native binary protocol: frames are `Request`s.
    Native,
    /// Postgres protocol v3.
    Pg(PgState),
    /// HTTP/1.1 sidecar: frames are request head blocks.
    Http,
}

/// Mutable pg-session state.
#[derive(Default)]
pub(crate) struct PgState {
    /// Startup packet consumed and greeting sent; typed messages flow.
    pub(crate) started: bool,
    /// The open transaction hit an error; statements are refused with
    /// `25P02` until `COMMIT`/`ROLLBACK` ends the block.
    pub(crate) failed: bool,
}

/// Statement kinds in [`pg_op_index`] order; `Inner::pg_req_us` holds
/// one `server.pg_req_us.<kind>` histogram per entry.
pub(crate) const PG_OPS: &[&str] = &[
    "Begin",
    "Commit",
    "Rollback",
    "CreateTable",
    "CreateIndex",
    "Insert",
    "Select",
    "Update",
    "Delete",
];

/// Index of a statement's kind into [`PG_OPS`] / `Inner::pg_req_us`.
/// Kept in lockstep with [`Statement::kind`] by a unit test.
fn pg_op_index(stmt: &Statement) -> usize {
    match stmt {
        Statement::Begin => 0,
        Statement::Commit => 1,
        Statement::Rollback => 2,
        Statement::CreateTable { .. } => 3,
        Statement::CreateIndex { .. } => 4,
        Statement::Insert { .. } => 5,
        Statement::Select { .. } => 6,
        Statement::Update { .. } => 7,
        Statement::Delete { .. } => 8,
    }
}

/// The transaction-status byte of a `ReadyForQuery`: `'E'` in a
/// failed block, `'T'` inside an open transaction, `'I'` idle.
pub(crate) fn tx_status(conn: &Conn) -> u8 {
    match &conn.proto {
        Proto::Pg(st) if st.failed => b'E',
        _ if conn.session.current_tx().is_some() => b'T',
        _ => b'I',
    }
}

fn pg_failed(conn: &Conn) -> bool {
    matches!(&conn.proto, Proto::Pg(st) if st.failed)
}

fn set_failed(conn: &mut Conn, failed: bool) {
    if let Proto::Pg(st) = &mut conn.proto {
        st.failed = failed;
    }
}

/// Can this queued pg frame block on engine locks? Only `Query`
/// frames can, and only when they carry a non-control statement —
/// the same split [`mohan_wire::message::Request::frame_may_block`]
/// makes for native frames, so the reactor's executor-checkout rule
/// covers both protocols.
pub(crate) fn frame_may_block(payload: &[u8]) -> bool {
    match payload.first() {
        Some(&b'Q') => {
            proto::query_string(&payload[1..]).is_none_or(|sql| sql::query_may_block(&sql))
        }
        _ => false,
    }
}

fn send_err_rfq(inner: &Arc<Inner>, conn: &mut Conn, sqlstate: &str, message: &str) {
    let mut out = Vec::new();
    proto::error_response(&mut out, sqlstate, message);
    proto::ready_for_query(&mut out, tx_status(conn));
    worker::send_raw(inner, conn, &out);
}

/// Split pg frames off `conn.buf` into `conn.pending`. Startup
/// packets (including `SSLRequest`/`GSSENCRequest` probes) are
/// serviced inline — their replies never touch the engine, so they
/// cannot block the event loop.
pub(crate) fn split_frames(inner: &Arc<Inner>, conn: &mut Conn) {
    while !conn.dead {
        let started = match &conn.proto {
            Proto::Pg(st) => st.started,
            Proto::Native | Proto::Http => return,
        };
        if !started {
            match proto::take_startup(&mut conn.buf) {
                Ok(None) => return,
                Ok(Some(Startup::Ssl | Startup::Gssenc)) => {
                    // Not supported; 'N' tells the client to continue
                    // in the clear (psql's default sslmode=prefer).
                    worker::send_raw(inner, conn, b"N");
                }
                Ok(Some(Startup::Cancel)) => {
                    // Cancel keys are never issued, so there is
                    // nothing to cancel; the cancel socket just
                    // closes, per protocol.
                    conn.dead = true;
                }
                Ok(Some(Startup::Start { .. })) => {
                    if let Proto::Pg(st) = &mut conn.proto {
                        st.started = true;
                    }
                    let mut greet = Vec::new();
                    proto::auth_ok(&mut greet);
                    for (k, v) in [
                        ("server_version", "13.0"),
                        ("server_encoding", "UTF8"),
                        ("client_encoding", "UTF8"),
                        ("DateStyle", "ISO, MDY"),
                        ("integer_datetimes", "on"),
                        ("standard_conforming_strings", "on"),
                    ] {
                        proto::parameter_status(&mut greet, k, v);
                    }
                    proto::backend_key_data(&mut greet, std::process::id(), 0);
                    proto::ready_for_query(&mut greet, b'I');
                    worker::send_raw(inner, conn, &greet);
                }
                Err(e) => {
                    inner.stats.malformed.bump();
                    let (state, msg) = match e {
                        FrameError::UnsupportedProtocol(v) => (
                            "0A000",
                            format!("unsupported frontend protocol {}.{}", v >> 16, v & 0xFFFF),
                        ),
                        FrameError::Oversized => ("08P01", "startup packet too large".to_string()),
                        FrameError::Garbled => ("08P01", "garbled startup packet".to_string()),
                    };
                    let mut out = Vec::new();
                    proto::error_response(&mut out, state, &msg);
                    worker::send_raw(inner, conn, &out);
                    conn.dead = true;
                }
            }
            continue;
        }
        match proto::take_message(&mut conn.buf) {
            Ok(None) => return,
            Ok(Some((typ, body))) => {
                let mut payload = Vec::with_capacity(1 + body.len());
                payload.push(typ);
                payload.extend_from_slice(&body);
                conn.pending.push_back((payload, Instant::now()));
            }
            Err(_) => {
                // Oversized or garbled length prefix: framing is
                // unrecoverable, same as the native wire.
                inner.stats.malformed.bump();
                let mut out = Vec::new();
                proto::error_response(&mut out, "08P01", "protocol violation: bad message framing");
                worker::send_raw(inner, conn, &out);
                conn.dead = true;
            }
        }
    }
}

/// Dispatch one queued pg frame (`[type byte][body]`).
pub(crate) fn handle_payload(
    inner: &Arc<Inner>,
    ctx: &ShardCtx,
    conn: &mut Conn,
    payload: &[u8],
    arrived: Instant,
    draining: bool,
) {
    let Some((&typ, body)) = payload.split_first() else {
        conn.dead = true;
        return;
    };
    match typ {
        // Terminate: clean close, no reply.
        b'X' => conn.dead = true,
        // Sync: not part of the simple-query flow, but harmless —
        // answer readiness so a confused client can resynchronize.
        b'S' => {
            let mut out = Vec::new();
            proto::ready_for_query(&mut out, tx_status(conn));
            worker::send_raw(inner, conn, &out);
        }
        b'Q' => match proto::query_string(body) {
            Some(sql) => handle_query(inner, ctx, conn, &sql, arrived, draining),
            None => {
                inner.stats.malformed.bump();
                send_err_rfq(inner, conn, "08P01", "query string is not valid UTF-8");
            }
        },
        // Extended-protocol and COPY messages are not spoken here;
        // the connection survives so psql can fall back.
        other => send_err_rfq(
            inner,
            conn,
            "0A000",
            &format!(
                "unsupported frontend message {:?} (simple query only)",
                other as char
            ),
        ),
    }
}

/// Run one simple-query string: parse, then execute each statement
/// until one fails, refuses, or hands the connection to an index
/// build. Ends with `ReadyForQuery` unless a build now owns the
/// connection (its completion sends the deferred one).
fn handle_query(
    inner: &Arc<Inner>,
    ctx: &ShardCtx,
    conn: &mut Conn,
    sql: &str,
    arrived: Instant,
    draining: bool,
) {
    let stmts = match sql::parse(sql) {
        Ok(stmts) => stmts,
        Err(e) => {
            if conn.session.current_tx().is_some() {
                set_failed(conn, true);
            }
            send_err_rfq(inner, conn, e.sqlstate, &e.message);
            return;
        }
    };
    if stmts.is_empty() {
        let mut out = Vec::new();
        proto::empty_query_response(&mut out);
        proto::ready_for_query(&mut out, tx_status(conn));
        worker::send_raw(inner, conn, &out);
        return;
    }

    // Admission control: one slot per query string that carries
    // non-control work. `COMMIT`/`ROLLBACK`-only strings are exempt
    // for the same reason the native opcodes are — they release the
    // locks (and slots) a saturated server is waiting on.
    let needs_slot = stmts.iter().any(|s| !s.is_control());
    let admitted = if !needs_slot {
        false
    } else if inner.admit() {
        true
    } else {
        inner.stats.busy_rejects.bump();
        send_err_rfq(
            inner,
            conn,
            "53300",
            "too many concurrent requests; retry after backoff",
        );
        return;
    };

    let waited = arrived.elapsed();
    if waited >= inner.cfg.request_deadline {
        inner.stats.deadline_rejects.bump();
        if admitted {
            inner.release();
        }
        send_err_rfq(
            inner,
            conn,
            "57014",
            &format!("canceling statement: queued {}ms", waited.as_millis()),
        );
        return;
    }

    inner.stats.requests.bump();
    // Every admitted query runs under a trace context. SQL has no
    // envelope to carry a client id, so the id is server-generated
    // here; the `pg.query` span parents every statement's lock waits,
    // WAL flushes and (for CREATE INDEX) build phases.
    let _trace_scope = mohan_obs::install_ctx(mohan_obs::ctx_for(0));
    let query_span = inner
        .db
        .obs
        .trace()
        .span("pg.query", stmts[0].kind())
        .with_detail(stmts.len() as u64);
    let mut slowest: Option<(&'static str, std::time::Duration)> = None;
    let env = ExecEnv {
        is_replica: inner.db.is_replica(),
        leader_hint: inner.cfg.leader_hint.clone(),
        repl_lag: inner.db.repl_lag(),
        max_lag_lsn: inner.cfg.max_lag_lsn,
    };
    let mut out = Vec::new();
    let mut build_started = false;
    for (i, stmt) in stmts.iter().enumerate() {
        if draining && !stmt.is_control() {
            proto::error_response(&mut out, "57P01", "server is draining");
            break;
        }
        if pg_failed(conn) {
            match stmt {
                // Either way out of a failed block is a rollback;
                // postgres reports `ROLLBACK` even for `COMMIT`.
                Statement::Commit | Statement::Rollback => {
                    let _ = conn.session.rollback();
                    set_failed(conn, false);
                    proto::command_complete(&mut out, "ROLLBACK");
                    continue;
                }
                _ => {
                    proto::error_response(
                        &mut out,
                        "25P02",
                        "current transaction is aborted, \
                         commands ignored until end of transaction block",
                    );
                    break;
                }
            }
        }
        let started = Instant::now();
        let result = execute_statement(stmt, &mut conn.session, &inner.catalog, &env, &mut out);
        let ran = started.elapsed();
        inner.pg_req_us[pg_op_index(stmt)].record_micros(ran);
        if ran >= inner.cfg.slow_request {
            inner.db.obs.trace().span_event(
                "server.slow_request",
                stmt.kind(),
                ran.as_micros().min(u128::from(u64::MAX)) as u64,
                waited.as_micros().min(u128::from(u64::MAX)) as u64,
            );
            if slowest.is_none_or(|(_, worst)| ran > worst) {
                slowest = Some((stmt.kind(), ran));
            }
        }
        match result {
            Ok(StmtOutcome::Complete) => {}
            Ok(StmtOutcome::StartBuild {
                table,
                specs,
                algorithm,
                options,
            }) => {
                // The build owns the connection until it finishes;
                // trailing statements in the same string would never
                // run, so refuse them instead of dropping silently.
                if i + 1 != stmts.len() {
                    proto::error_response(
                        &mut out,
                        "0A000",
                        "CREATE INDEX must be the last statement in a query string",
                    );
                    break;
                }
                // Flush what earlier statements produced, then hand
                // off; the build's frames follow in order.
                worker::send_raw(inner, conn, &out);
                out.clear();
                build_started =
                    worker::start_build_engine(inner, ctx, conn, table, algorithm, specs, options);
                break;
            }
            Err(e) => {
                if conn.session.current_tx().is_some() {
                    set_failed(conn, true);
                }
                proto::error_response(&mut out, e.sqlstate, &e.message);
                break;
            }
        }
    }
    // Commit the query span before the slow-request dump so the
    // rendered tree contains its own root.
    query_span.commit();
    if let Some((kind, ran)) = slowest {
        worker::log_slow_trace(inner, kind, ran);
    }
    if build_started {
        // `ReadyForQuery` is deferred to build completion
        // (`watch_build`), and the admission slot rides with the
        // build, exactly like the native `CreateIndex` exchange.
        return;
    }
    proto::ready_for_query(&mut out, tx_status(conn));
    worker::send_raw(inner, conn, &out);
    if admitted {
        inner.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pg_ops_table_matches_statement_kinds() {
        let one_of_each = [
            Statement::Begin,
            Statement::Commit,
            Statement::Rollback,
            Statement::CreateTable {
                name: "t".into(),
                cols: vec!["k".into()],
            },
            Statement::CreateIndex {
                unique: false,
                name: "i".into(),
                table: "t".into(),
                cols: vec!["k".into()],
                algo: None,
                with_options: vec![],
            },
            Statement::Insert {
                table: "t".into(),
                cols: None,
                rows: vec![vec![1]],
            },
            Statement::Select {
                table: "t".into(),
                cols: mohan_pgwire::sql::SelectCols::Star,
                filter: None,
            },
            Statement::Update {
                table: "t".into(),
                set: vec![("k".into(), 1)],
                filter: mohan_pgwire::sql::Filter::Eq("k".into(), 1),
            },
            Statement::Delete {
                table: "t".into(),
                filter: mohan_pgwire::sql::Filter::Eq("k".into(), 1),
            },
        ];
        assert_eq!(one_of_each.len(), PG_OPS.len());
        for stmt in &one_of_each {
            assert_eq!(PG_OPS[pg_op_index(stmt)], stmt.kind());
        }
    }

    #[test]
    fn query_frames_classify_like_native_dml() {
        let q = |sql: &str| {
            let mut p = vec![b'Q'];
            p.extend_from_slice(sql.as_bytes());
            p.push(0);
            p
        };
        assert!(frame_may_block(&q("INSERT INTO kv VALUES (1, 2)")));
        assert!(frame_may_block(&q("SELECT * FROM kv WHERE k = 1")));
        assert!(!frame_may_block(&q("COMMIT")));
        assert!(!frame_may_block(&q("ROLLBACK")));
        assert!(!frame_may_block(b"X"));
        assert!(!frame_may_block(b"S"));
        // Garbage queries classify as blocking (safe side): they run
        // on the executor and fail there.
        assert!(frame_may_block(&q("\u{1F980} not sql")));
    }
}
