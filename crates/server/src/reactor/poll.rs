//! poll(2) implementation of [`IoBackend`] — the portable fallback.
//!
//! O(registered fds) per wait (the kernel rescans the whole array),
//! but crucially still *event-driven*: a shard of idle connections
//! blocks in one syscall instead of waking on a timer, so the
//! per-idle-connection cost is paid in scan width, not wakeups.

use super::sys::{self, pollfd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use super::{Event, Interest, IoBackend};
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

pub(crate) struct Poll {
    /// Dense registration array handed to `poll(2)` as-is; `tokens`
    /// runs parallel to it. Deregistration swap-removes, so both stay
    /// dense and the order is meaningless.
    fds: Vec<pollfd>,
    tokens: Vec<usize>,
}

impl Poll {
    pub(crate) fn new() -> Poll {
        Poll {
            fds: Vec::new(),
            tokens: Vec::new(),
        }
    }

    fn position(&self, fd: RawFd) -> Option<usize> {
        self.fds.iter().position(|p| p.fd == fd)
    }
}

fn mask(interest: Interest) -> i16 {
    let mut m = 0;
    if interest.read {
        m |= POLLIN;
    }
    if interest.write {
        m |= POLLOUT;
    }
    m
}

impl IoBackend for Poll {
    fn name(&self) -> &'static str {
        "poll"
    }

    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        if self.position(fd).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.fds.push(pollfd {
            fd,
            events: mask(interest),
            revents: 0,
        });
        self.tokens.push(token);
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let i = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds[i].events = mask(interest);
        self.tokens[i] = token;
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let i = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds.swap_remove(i);
        self.tokens.swap_remove(i);
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        if self.fds.is_empty() {
            // poll(2) with zero fds is a pure sleep; honor it so a
            // shard with no connections still blocks until its timer.
            if let Some(d) = timeout {
                std::thread::sleep(d);
                return Ok(());
            }
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "indefinite wait with nothing registered would never return",
            ));
        }
        let n = match sys::sys_poll(&mut self.fds, sys::timeout_ms(timeout)) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Ok(());
        }
        for (p, &token) in self.fds.iter().zip(&self.tokens) {
            let r = p.revents;
            if r == 0 {
                continue;
            }
            out.push(Event {
                token,
                readable: r & (POLLIN | POLLHUP) != 0,
                writable: r & POLLOUT != 0,
                failed: r & (POLLERR | POLLHUP | POLLNVAL) != 0,
            });
            if out.len() == n {
                break;
            }
        }
        Ok(())
    }
}
