//! epoll(7) implementation of [`IoBackend`] — the production backend
//! on Linux. Level-triggered, O(ready) dispatch: a shard with ten
//! thousand idle connections and one readable socket pays for one.

use super::sys::epoll::{
    EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP, EPOLL_CTL_ADD, EPOLL_CTL_DEL, EPOLL_CTL_MOD,
};
use super::sys::{self, epoll_event};
use super::{Event, Interest, IoBackend};
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// How many events one `epoll_wait` can report. More ready fds than
/// this simply arrive on the next wait (level-triggered, nothing is
/// lost).
const WAIT_BATCH: usize = 256;

pub(crate) struct Epoll {
    epfd: RawFd,
    buf: Vec<epoll_event>,
}

impl Epoll {
    pub(crate) fn new() -> io::Result<Epoll> {
        Ok(Epoll {
            epfd: sys::epoll::create()?,
            buf: vec![epoll_event { events: 0, data: 0 }; WAIT_BATCH],
        })
    }
}

fn mask(interest: Interest) -> u32 {
    let mut m = EPOLLRDHUP; // always: a half-close must wake the read path
    if interest.read {
        m |= EPOLLIN;
    }
    if interest.write {
        m |= EPOLLOUT;
    }
    m
}

impl IoBackend for Epoll {
    fn name(&self) -> &'static str {
        "epoll"
    }

    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        sys::epoll::ctl(self.epfd, EPOLL_CTL_ADD, fd, mask(interest), token as u64)
    }

    fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        sys::epoll::ctl(self.epfd, EPOLL_CTL_MOD, fd, mask(interest), token as u64)
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        sys::epoll::ctl(self.epfd, EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let n = match sys::epoll::wait(self.epfd, &mut self.buf, sys::timeout_ms(timeout)) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &self.buf[..n] {
            // Copy out of the (possibly packed) struct before use.
            let events = { ev.events };
            let data = { ev.data };
            out.push(Event {
                token: data as usize,
                readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: events & EPOLLOUT != 0,
                failed: events & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}
