//! Raw syscall bindings for the readiness backends.
//!
//! The build environment has no crates.io access, so instead of the
//! `libc` crate these are hand-written `extern "C"` declarations for
//! exactly the five symbols the reactor needs (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `poll`, `close`), following the same
//! in-tree-shim policy as `crates/shim-*`. Every constant is copied
//! from the Linux UAPI / POSIX headers and cross-checked by the unit
//! tests at the bottom, which drive the real syscalls against a
//! loopback socket pair.

#![allow(non_camel_case_types)]

use std::io;
use std::os::raw::{c_int, c_short};

// `close(2)` — the epoll instance fd is not wrapped by any std type.
extern "C" {
    fn close(fd: c_int) -> c_int;
}

/// Close a raw fd, ignoring the (unactionable) result.
pub(crate) fn close_fd(fd: c_int) {
    // SAFETY: `fd` is an fd this module opened and owns; double-close
    // is excluded by the owning types' Drop running at most once.
    unsafe {
        let _ = close(fd);
    }
}

/// Last OS error as `io::Error` (the errno read must happen before any
/// other libc call).
pub(crate) fn last_errno() -> io::Error {
    io::Error::last_os_error()
}

/// Clamp a wait timeout to the `c_int` milliseconds both `epoll_wait`
/// and `poll` take: `None` blocks forever (-1); sub-millisecond waits
/// round *up* so a 100µs deadline does not degenerate into a busy
/// spin of zero-timeout waits.
pub(crate) fn timeout_ms(timeout: Option<std::time::Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) => {
            if d.is_zero() {
                0
            } else {
                let ms = d.as_millis().max(1);
                c_int::try_from(ms).unwrap_or(c_int::MAX)
            }
        }
    }
}

// ---------------------------------------------------------------- poll

/// `struct pollfd` from `<poll.h>`; identical layout on every POSIX
/// target.
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct pollfd {
    pub fd: c_int,
    pub events: c_short,
    pub revents: c_short,
}

pub(crate) const POLLIN: c_short = 0x001;
pub(crate) const POLLOUT: c_short = 0x004;
pub(crate) const POLLERR: c_short = 0x008;
pub(crate) const POLLHUP: c_short = 0x010;
pub(crate) const POLLNVAL: c_short = 0x020;

#[cfg(target_os = "linux")]
type nfds_t = std::os::raw::c_ulong;
#[cfg(not(target_os = "linux"))]
type nfds_t = std::os::raw::c_uint;

extern "C" {
    fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
}

/// `poll(2)` over a caller-owned pollfd array. Returns the number of
/// entries with non-zero `revents` (0 on timeout).
pub(crate) fn sys_poll(fds: &mut [pollfd], timeout: c_int) -> io::Result<usize> {
    // SAFETY: `fds` is a valid, exclusively borrowed slice for the
    // duration of the call, and `len` matches its length.
    let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as nfds_t, timeout) };
    if n < 0 {
        Err(last_errno())
    } else {
        Ok(n as usize)
    }
}

// --------------------------------------------------------------- epoll

/// `struct epoll_event`. The kernel declares it `__attribute__
/// ((packed))` on x86-64 only (so 32-bit and 64-bit userlands share
/// one layout); every other architecture uses natural alignment.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub(crate) struct epoll_event {
    pub events: u32,
    pub data: u64,
}

#[cfg(all(target_os = "linux", not(target_arch = "x86_64")))]
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct epoll_event {
    pub events: u32,
    pub data: u64,
}

#[cfg(target_os = "linux")]
pub(crate) mod epoll {
    use super::{c_int, epoll_event, io, last_errno};

    pub(crate) const EPOLLIN: u32 = 0x001;
    pub(crate) const EPOLLOUT: u32 = 0x004;
    pub(crate) const EPOLLERR: u32 = 0x008;
    pub(crate) const EPOLLHUP: u32 = 0x010;
    /// Peer shut down its write half — surfaced so a half-closed
    /// connection wakes the read path (which then sees EOF).
    pub(crate) const EPOLLRDHUP: u32 = 0x2000;

    pub(crate) const EPOLL_CTL_ADD: c_int = 1;
    pub(crate) const EPOLL_CTL_DEL: c_int = 2;
    pub(crate) const EPOLL_CTL_MOD: c_int = 3;

    /// `EPOLL_CLOEXEC` == `O_CLOEXEC` == 0o2000000.
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    /// New epoll instance fd. This doubling as the runtime-detection
    /// probe: failure means "no epoll here", not a fatal error.
    pub(crate) fn create() -> io::Result<c_int> {
        // SAFETY: no pointers involved; the kernel validates flags.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            Err(last_errno())
        } else {
            Ok(fd)
        }
    }

    pub(crate) fn ctl(epfd: c_int, op: c_int, fd: c_int, events: u32, data: u64) -> io::Result<()> {
        let mut ev = epoll_event { events, data };
        // SAFETY: `ev` lives across the call; DEL ignores the pointer
        // (passed non-null anyway for pre-2.6.9 kernel compatibility).
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            Err(last_errno())
        } else {
            Ok(())
        }
    }

    /// Wait for readiness; fills `buf` from the front and returns how
    /// many entries are valid.
    pub(crate) fn wait(epfd: c_int, buf: &mut [epoll_event], timeout: c_int) -> io::Result<usize> {
        // SAFETY: `buf` is a valid exclusively borrowed slice and
        // `maxevents` matches its length.
        let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout) };
        if n < 0 {
            Err(last_errno())
        } else {
            Ok(n as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poll_sees_readable_socket() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut fds = [pollfd {
            fd: b.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        assert_eq!(sys_poll(&mut fds, 0).unwrap(), 0, "nothing written yet");
        a.write_all(b"x").unwrap();
        assert_eq!(sys_poll(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_sees_readable_socket_and_times_out() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let ep = epoll::create().unwrap();
        epoll::ctl(ep, epoll::EPOLL_CTL_ADD, b.as_raw_fd(), epoll::EPOLLIN, 7).unwrap();
        let mut buf = [epoll_event { events: 0, data: 0 }; 4];
        assert_eq!(epoll::wait(ep, &mut buf, 0).unwrap(), 0, "timeout path");
        a.write_all(b"x").unwrap();
        assert_eq!(epoll::wait(ep, &mut buf, 1000).unwrap(), 1);
        let ev = buf[0];
        assert_eq!({ ev.data }, 7);
        assert_ne!({ ev.events } & epoll::EPOLLIN, 0);
        epoll::ctl(ep, epoll::EPOLL_CTL_DEL, b.as_raw_fd(), 0, 0).unwrap();
        close_fd(ep);
    }

    #[test]
    fn timeout_rounds_up_not_down() {
        use std::time::Duration;
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
    }
}
