//! Coarse hashed timer wheel for connection deadlines.
//!
//! Each shard schedules *check* times — idle reaping, per-request
//! progress/metrics/heartbeat emission, write timeouts, drain
//! expiry — on this wheel and uses [`TimerWheel::next_deadline`] as
//! its reactor-wait timeout. Entries are one-shot and deliberately
//! never cancelled: a fired token is a hint ("re-examine this
//! connection now"), and the handler reschedules from actual state.
//! Stale fires are therefore harmless (the check is cheap) and the
//! wheel needs no cancel bookkeeping on the hot path.
//!
//! Precision is one tick (1ms by default) — deadlines here bound
//! 25ms+ intervals and multi-second timeouts, not request latency.

use std::time::{Duration, Instant};

/// One-shot timer entries hashed into `SLOTS` buckets by expiry tick.
pub(crate) struct TimerWheel {
    granularity: Duration,
    start: Instant,
    slots: Vec<Vec<(u64, usize)>>,
    /// First tick not yet swept; entries at earlier ticks have fired.
    swept: u64,
    /// Cached earliest pending expiry tick (`u64::MAX` when empty),
    /// kept exact: lowered on schedule, recomputed after a sweep.
    earliest: u64,
    len: usize,
}

const SLOTS: usize = 256;

impl TimerWheel {
    pub(crate) fn new(granularity: Duration) -> TimerWheel {
        TimerWheel {
            granularity: granularity.max(Duration::from_micros(100)),
            start: Instant::now(),
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            swept: 0,
            earliest: u64::MAX,
            len: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.start);
        (since.as_nanos() / self.granularity.as_nanos()).min(u128::from(u64::MAX)) as u64
    }

    /// Schedule `token` to fire `after` from now (rounded up to at
    /// least one full tick, so a zero delay cannot busy-loop).
    pub(crate) fn schedule(&mut self, after: Duration, token: usize) {
        let now_tick = self.tick_of(Instant::now());
        let delay_ticks = (after.as_nanos().div_ceil(self.granularity.as_nanos())).max(1) as u64;
        let tick = now_tick.saturating_add(delay_ticks);
        self.slots[(tick % SLOTS as u64) as usize].push((tick, token));
        self.earliest = self.earliest.min(tick);
        self.len += 1;
    }

    /// When the earliest pending entry is due, as a delay from now
    /// (zero if already overdue). `None` when nothing is scheduled.
    pub(crate) fn next_deadline(&self) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        let now_tick = self.tick_of(Instant::now());
        if self.earliest <= now_tick {
            return Some(Duration::ZERO);
        }
        Some(self.granularity * (self.earliest - now_tick) as u32)
    }

    /// Pop every entry due by now into `fired`. Sweeps only the slots
    /// the elapsed tick range maps to (all of them once the range
    /// exceeds one wheel revolution).
    pub(crate) fn expire(&mut self, fired: &mut Vec<usize>) {
        if self.len == 0 {
            self.swept = self.tick_of(Instant::now());
            return;
        }
        let now_tick = self.tick_of(Instant::now());
        if now_tick < self.earliest {
            return;
        }
        let from = self.swept.min(self.earliest);
        let revolutions = now_tick.saturating_sub(from).saturating_add(1);
        let slot_range: Box<dyn Iterator<Item = u64>> = if revolutions >= SLOTS as u64 {
            Box::new(0..SLOTS as u64)
        } else {
            Box::new((from..=now_tick).map(|t| t % SLOTS as u64))
        };
        for s in slot_range {
            let slot = &mut self.slots[s as usize];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].0 <= now_tick {
                    fired.push(slot.swap_remove(i).1);
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.swept = now_tick + 1;
        // Recompute the cache; O(pending) but only after actual fires.
        self.earliest = if self.len == 0 {
            u64::MAX
        } else {
            self.slots
                .iter()
                .flatten()
                .map(|&(t, _)| t)
                .min()
                .unwrap_or(u64::MAX)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_order_of_deadline_not_insertion() {
        let mut w = TimerWheel::new(Duration::from_millis(1));
        w.schedule(Duration::from_millis(50), 1);
        w.schedule(Duration::from_millis(5), 2);
        let mut fired = Vec::new();
        std::thread::sleep(Duration::from_millis(10));
        w.expire(&mut fired);
        assert_eq!(fired, vec![2], "only the near deadline fired");
        assert!(w.next_deadline().is_some());
        std::thread::sleep(Duration::from_millis(50));
        w.expire(&mut fired);
        assert_eq!(fired, vec![2, 1]);
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn far_deadlines_share_a_slot_without_firing_early() {
        let mut w = TimerWheel::new(Duration::from_millis(1));
        // Same slot (256 ticks apart), very different deadlines.
        w.schedule(Duration::from_millis(2), 7);
        w.schedule(Duration::from_millis(2 + 256), 8);
        std::thread::sleep(Duration::from_millis(6));
        let mut fired = Vec::new();
        w.expire(&mut fired);
        assert_eq!(fired, vec![7], "wrapped entry must not fire a lap early");
    }

    #[test]
    fn zero_delay_still_waits_one_tick() {
        let mut w = TimerWheel::new(Duration::from_millis(1));
        w.schedule(Duration::ZERO, 1);
        let d = w.next_deadline().unwrap();
        assert!(d > Duration::ZERO, "zero-delay must not spin: {d:?}");
    }

    #[test]
    fn next_deadline_reflects_earliest() {
        let mut w = TimerWheel::new(Duration::from_millis(1));
        assert_eq!(w.next_deadline(), None);
        w.schedule(Duration::from_secs(60), 1);
        let d = w.next_deadline().unwrap();
        assert!(d > Duration::from_secs(59), "{d:?}");
        w.schedule(Duration::from_millis(10), 2);
        let d = w.next_deadline().unwrap();
        assert!(d <= Duration::from_millis(11), "{d:?}");
    }
}
