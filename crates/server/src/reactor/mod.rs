//! Readiness reactor: the server's I/O backends.
//!
//! The worker pool used to sleep-poll every non-blocking socket, so an
//! idle connection cost a wakeup every 500µs per shard forever — the
//! opposite of thousands-of-connections cheap. This module inverts
//! that: each shard owns an [`IoBackend`] instance, registers the fds
//! it cares about, and blocks in `wait` until the kernel reports
//! readiness (or the shard's earliest timer deadline arrives). Three
//! implementations exist behind [`mohan_common::config::IoBackendChoice`]:
//!
//! * **epoll** ([`epoll::Epoll`]) — Linux, O(ready) dispatch, the
//!   production path;
//! * **poll(2)** ([`poll::Poll`]) — portable POSIX fallback, O(fds)
//!   per wait but still zero wakeups while nothing is ready;
//! * **threaded sleep** — the legacy sleep-poll worker loop, kept
//!   config-gated as the no-syscall-surprises fallback (it never
//!   constructs an `IoBackend` at all).
//!
//! Both reactor backends are level-triggered: interest is re-armed by
//! simply not draining the source, and write interest is only
//! registered while a connection actually has unwritten bytes, so a
//! writable socket never busy-wakes a shard.

pub(crate) mod driver;
pub(crate) mod poll;
pub(crate) mod sys;
pub(crate) mod timer;

#[cfg(target_os = "linux")]
pub(crate) mod epoll;

use mohan_common::config::IoBackendChoice;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Which readiness the caller wants to hear about for one fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    pub read: bool,
    pub write: bool,
}

impl Interest {
    pub(crate) const READ: Interest = Interest {
        read: true,
        write: false,
    };
    pub(crate) const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness report from [`IoBackend::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    pub readable: bool,
    pub writable: bool,
    /// Error or hangup. The fd is still dispatched to its read path,
    /// which observes the concrete EOF/error itself.
    pub failed: bool,
}

/// A pluggable readiness-notification backend.
///
/// Registration is keyed by fd; the token is opaque payload echoed
/// back in events (the driver uses slab indexes). Implementations are
/// level-triggered and single-threaded — each shard owns its own
/// instance, so no interior synchronization is needed.
pub(crate) trait IoBackend: Send {
    /// Backend name for logs/metrics (`"epoll"`, `"poll"`).
    fn name(&self) -> &'static str;

    /// Start watching `fd`.
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;

    /// Change what is being watched for an already registered `fd`.
    fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;

    /// Stop watching `fd`. Must be called *before* the fd is closed.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;

    /// Block until at least one event, the timeout, or a spurious
    /// wakeup (EINTR is swallowed and reported as zero events).
    /// `None` blocks indefinitely. Events are appended to `out`
    /// (cleared first).
    fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()>;
}

/// The backend a [`IoBackendChoice`] resolves to on this machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ResolvedBackend {
    Epoll,
    Poll,
    ThreadedSleep,
}

impl ResolvedBackend {
    pub(crate) fn name(self) -> &'static str {
        match self {
            ResolvedBackend::Epoll => "epoll",
            ResolvedBackend::Poll => "poll",
            ResolvedBackend::ThreadedSleep => "threaded",
        }
    }
}

/// Does this machine support epoll? Probed by actually creating (and
/// closing) an instance, not by `cfg`, so a kernel with epoll compiled
/// out falls back gracefully.
pub(crate) fn epoll_available() -> bool {
    #[cfg(target_os = "linux")]
    {
        match sys::epoll::create() {
            Ok(fd) => {
                sys::close_fd(fd);
                true
            }
            Err(_) => false,
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// Resolve a configured choice against what the machine supports.
/// `Auto` prefers epoll, then poll; an explicit `Epoll` on a machine
/// without it is an error (the operator asked for something this host
/// cannot do), while `Poll` and `ThreadedSleep` always work.
pub(crate) fn resolve(choice: IoBackendChoice) -> io::Result<ResolvedBackend> {
    match choice {
        IoBackendChoice::Auto => Ok(if epoll_available() {
            ResolvedBackend::Epoll
        } else {
            ResolvedBackend::Poll
        }),
        IoBackendChoice::Epoll => {
            if epoll_available() {
                Ok(ResolvedBackend::Epoll)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "io_backend=epoll requested but epoll is unavailable on this host",
                ))
            }
        }
        IoBackendChoice::Poll => Ok(ResolvedBackend::Poll),
        IoBackendChoice::ThreadedSleep => Ok(ResolvedBackend::ThreadedSleep),
    }
}

/// Instantiate a reactor backend. Never called for `ThreadedSleep`
/// (that path has no reactor).
pub(crate) fn new_backend(kind: ResolvedBackend) -> io::Result<Box<dyn IoBackend>> {
    match kind {
        #[cfg(target_os = "linux")]
        ResolvedBackend::Epoll => Ok(Box::new(epoll::Epoll::new()?)),
        #[cfg(not(target_os = "linux"))]
        ResolvedBackend::Epoll => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll backend is Linux-only",
        )),
        ResolvedBackend::Poll => Ok(Box::new(poll::Poll::new())),
        ResolvedBackend::ThreadedSleep => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "threaded-sleep backend has no reactor",
        )),
    }
}

/// Cross-thread wakeup for a blocked [`IoBackend::wait`]: a
/// non-blocking socketpair whose read end is registered with the
/// shard's reactor under [`WAKE_TOKEN`]. `wake` writes one byte; a
/// full pipe means a wake is already pending, which is exactly the
/// coalescing we want.
pub(crate) struct Waker {
    tx: UnixStream,
}

/// Token reserved for a shard's wake pipe (never a slab index).
pub(crate) const WAKE_TOKEN: usize = usize::MAX;

/// The read end of a wake pipe (aliased so call sites in `lib.rs`
/// stay identical under the non-unix stub module).
pub(crate) type WakeRx = UnixStream;

/// Construct a wake pipe — [`Waker::new`] under a portable name.
pub(crate) fn waker_pair() -> io::Result<(Waker, WakeRx)> {
    Waker::new()
}

impl Waker {
    /// `(waker, read_end)` — the read end gets registered with the
    /// reactor and drained by [`drain_wake`].
    pub(crate) fn new() -> io::Result<(Waker, UnixStream)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Waker { tx }, rx))
    }

    /// Wake the owning shard. Infallible by design: `WouldBlock`
    /// means a wake is already queued, and any other error means the
    /// shard is gone (nothing left to wake).
    pub(crate) fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// Empty the wake pipe so level-triggered backends stop reporting it.
pub(crate) fn drain_wake(rx: &UnixStream) {
    let mut buf = [0u8; 64];
    loop {
        match (&*rx).read(&mut buf) {
            Ok(0) => return, // waker dropped; drain is imminent
            Ok(_) => {}
            Err(_) => return, // WouldBlock: drained
        }
    }
}

/// Raw fd of the wake pipe's read end (helper so the driver does not
/// import `AsRawFd` everywhere).
pub(crate) fn raw_fd(s: &UnixStream) -> RawFd {
    s.as_raw_fd()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend_roundtrip(mut b: Box<dyn IoBackend>) {
        let (mut a, c) = UnixStream::pair().unwrap();
        c.set_nonblocking(true).unwrap();
        b.register(c.as_raw_fd(), 3, Interest::READ).unwrap();

        let mut out = Vec::new();
        b.wait(&mut out, Some(Duration::ZERO)).unwrap();
        assert!(out.is_empty(), "{}: nothing ready yet", b.name());

        a.write_all(b"hi").unwrap();
        b.wait(&mut out, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, 3);
        assert!(out[0].readable);

        // Write interest on an empty socket buffer is immediately
        // ready; read interest alone must not report writable.
        b.modify(c.as_raw_fd(), 3, Interest::READ_WRITE).unwrap();
        b.wait(&mut out, Some(Duration::from_secs(5))).unwrap();
        assert!(out.iter().any(|e| e.writable));

        b.deregister(c.as_raw_fd()).unwrap();
        b.wait(&mut out, Some(Duration::ZERO)).unwrap();
        assert!(out.is_empty(), "{}: deregistered fd still fires", b.name());
    }

    #[test]
    fn poll_backend_roundtrip() {
        backend_roundtrip(new_backend(ResolvedBackend::Poll).unwrap());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_roundtrip() {
        if !epoll_available() {
            return;
        }
        backend_roundtrip(new_backend(ResolvedBackend::Epoll).unwrap());
    }

    #[test]
    fn waker_wakes_a_blocked_wait() {
        let mut b = new_backend(ResolvedBackend::Poll).unwrap();
        let (waker, rx) = Waker::new().unwrap();
        b.register(rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)
            .unwrap();
        let mut out = Vec::new();
        waker.wake();
        waker.wake(); // coalesces, no error
        b.wait(&mut out, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, WAKE_TOKEN);
        drain_wake(&rx);
        b.wait(&mut out, Some(Duration::ZERO)).unwrap();
        assert!(out.is_empty(), "wake pipe drained, no level re-fire");
    }

    #[test]
    fn auto_resolves_to_a_reactor() {
        let r = resolve(IoBackendChoice::Auto).unwrap();
        assert_ne!(r, ResolvedBackend::ThreadedSleep);
    }
}
